// Reproduces Fig. 6(b): distribution of the number of child nodes per hop on
// the 225-node fields (paper Sec. IV-A2).
//
// Paper shape: in the tight network some nodes solicit many children
// (enlarging the per-hop bit space but shrinking total depth); the sparse
// network spreads children thinly across many hops.

#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

void report(const char* name, Network& net) {
  GroupedStats children_by_hop;
  SummaryStats overall;
  for (NodeId i = 0; i < net.size(); ++i) {
    const auto* tele = net.node(i).tele();
    if (tele == nullptr) continue;
    const int hops = net.node(i).ctp().hops();
    if (hops < 0 || hops >= 0xFF) continue;
    const auto n = static_cast<double>(tele->addressing().children().size());
    children_by_hop.add(hops, n);
    if (n > 0) overall.add(n);
  }
  std::printf("\n%s\n", name);
  TextTable table({"hop count", "nodes", "avg #children", "max #children"});
  for (const auto& [hop, stats] : children_by_hop.groups()) {
    table.row({std::to_string(hop), std::to_string(stats.count()),
               TextTable::fmt(stats.mean(), 2),
               TextTable::fmt(stats.max(), 0)});
  }
  table.print();
  std::printf("parents only: mean %.2f children, max %.0f\n", overall.mean(),
              overall.max());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const SimTime converge = opt.full ? 30 * kMinute : 15 * kMinute;

  std::printf("== Fig. 6(b): number of children per hop ==\n");
  auto tight = converge_code_study(make_tight_grid(opt.seed), opt.seed, converge);
  report("Tight-grid", *tight);
  auto sparse =
      converge_code_study(make_sparse_linear(opt.seed), opt.seed, converge);
  report("Sparse-linear", *sparse);
  return 0;
}
