// Reproduces Fig. 9: average radio duty cycle per protocol on the clean and
// WiFi-interfered channels (paper Sec. IV-B3).
//
// Paper values: Drip 5.01% / 5.42%, RPL 3.83% / 4.22%, TeleAdjusting lowest.
// Shape to reproduce: Drip > RPL > Tele, and each protocol costs more under
// WiFi interference (false LPL wakeups + retransmissions).

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Fig. 9: average radio duty cycle (%u run(s)) ==\n",
              opt.runs);

  const ControlProtocol protocols[] = {ControlProtocol::kDrip,
                                       ControlProtocol::kRpl,
                                       ControlProtocol::kTele,
                                       ControlProtocol::kReTele};
  const char* paper[] = {"5.01% / 5.42%", "3.83% / 4.22%", "lowest", "-"};

  // One batch holds all 8 (protocol, channel) cells: clean at 2*pi,
  // noisy at 2*pi + 1.
  TrialBatch batch(opt);
  for (std::size_t pi = 0; pi < 4; ++pi) {
    batch.cell(protocols[pi], false);
    batch.cell(protocols[pi], true);
  }
  const auto cells = batch.run();

  TextTable table({"protocol", "ch26 duty", "ch19 duty", "paper (26/19)",
                   "ch26 mA", "ch19 mA", "p50 (s)", "p90 (s)", "p99 (s)",
                   "ch26 uJ/cmd", "ch19 uJ/cmd"});
  for (std::size_t pi = 0; pi < 4; ++pi) {
    const auto& clean = cells[2 * pi];
    const auto& noisy = cells[2 * pi + 1];
    table.row({protocol_name(protocols[pi]),
               TextTable::fmt_pct(clean.duty_cycle, 2),
               TextTable::fmt_pct(noisy.duty_cycle, 2), paper[pi],
               TextTable::fmt(clean.current_ma, 3),
               TextTable::fmt(noisy.current_ma, 3),
               TextTable::fmt(clean.latency.quantile(0.5), 2),
               TextTable::fmt(clean.latency.quantile(0.9), 2),
               TextTable::fmt(clean.latency.quantile(0.99), 2),
               TextTable::fmt(clean.energy_uj_per_command, 1),
               TextTable::fmt(noisy.energy_uj_per_command, 1)});
  }
  emit_table(table, "fig9_dutycycle");
  emit_runner_stats(batch, "fig9_dutycycle");
  std::printf("energy extension: average battery current per node (TelosB "
              "model); a 2xAA pack is ~2200 mAh\n");
  return 0;
}
