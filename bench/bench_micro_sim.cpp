// Micro-benchmarks (google-benchmark) for the simulator substrate: event
// queue throughput, CPM noise sampling and the CC2420 PRR curve. These bound
// how much virtual time per wall-second the full-system experiments get.

#include <benchmark/benchmark.h>

#include "radio/noise.hpp"
#include "radio/phy.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace telea {
namespace {

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    Pcg32 rng(7, 1);
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(rng.next(), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(1000)->Arg(100000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // The LPL MAC cancels constantly; measure the tombstone path.
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(1000);
    for (std::size_t i = 0; i < 1000; ++i) {
      handles.push_back(q.schedule(i, [] {}));
    }
    for (std::size_t i = 0; i < 1000; i += 2) q.cancel(handles[i]);
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) sim.schedule_in(10, tick);
    };
    sim.schedule_in(10, tick);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_CpmNoiseSample(benchmark::State& state) {
  const auto trace = generate_heavy_noise_trace({}, 11);
  const CpmNoiseModel model(trace, 3);
  auto gen = model.make_generator(1, 1);
  SimTime t = 0;
  for (auto _ : state) {
    t += 2 * kMillisecond;
    benchmark::DoNotOptimize(gen.noise_dbm(t));
  }
}
BENCHMARK(BM_CpmNoiseSample);

void BM_CpmTraining(benchmark::State& state) {
  const auto trace = generate_heavy_noise_trace({}, 12);
  for (auto _ : state) {
    CpmNoiseModel model(trace, 3);
    benchmark::DoNotOptimize(model.marginal_mean_dbm());
  }
}
BENCHMARK(BM_CpmTraining);

void BM_PrrCurve(benchmark::State& state) {
  double sinr = -5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Cc2420Phy::packet_reception_ratio(sinr, -80.0, 50));
    sinr += 0.1;
    if (sinr > 10) sinr = -5.0;
  }
}
BENCHMARK(BM_PrrCurve);

void BM_TraceGeneration(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_heavy_noise_trace({}, ++seed));
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace
}  // namespace telea

BENCHMARK_MAIN();
