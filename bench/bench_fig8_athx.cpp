// Reproduces Fig. 8: accumulated transmission hop count (ATHX) of received
// control packets versus the receiver's CTP hop count, for TeleAdjusting,
// Drip and RPL (paper Sec. IV-B3).
//
// Paper shape: TeleAdjusting's ATHX tracks (often undercuts) the CTP hop
// count thanks to opportunistic shortcuts; Drip's flood gives widely
// scattered, redundant ATHX; RPL's ATHX pins to the CTP hop count exactly.

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Fig. 8: accumulated transmission hops vs CTP hops ==\n");

  const ControlProtocol protocols[] = {ControlProtocol::kTele,
                                       ControlProtocol::kDrip,
                                       ControlProtocol::kRpl};
  for (ControlProtocol p : protocols) {
    const auto r = run_testbed(p, /*wifi=*/false, opt);
    std::printf("\n--- %s ---\n", protocol_name(p));
    TextTable table({"ctp hops", "receptions", "avg ATHX", "min", "max",
                     "ATHX/hops"});
    for (const auto& [hop, stats] : r.athx_by_hop.groups()) {
      if (hop <= 0) continue;
      table.row({std::to_string(hop), std::to_string(stats.count()),
                 TextTable::fmt(stats.mean(), 2),
                 TextTable::fmt(stats.min(), 0),
                 TextTable::fmt(stats.max(), 0),
                 TextTable::fmt(stats.mean() / hop, 2)});
    }
    table.print();
  }
  std::printf("\npaper: Tele ratio <= ~1 (shortcuts), RPL ratio == 1 "
              "(deterministic), Drip scattered/redundant\n");
  return 0;
}
