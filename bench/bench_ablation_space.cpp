// Ablation: Algorithm 1's bit-space headroom (χ = N + clamp(N/divisor, min,
// max)). More slack per hop means longer codes (Fig. 6a's cost) but fewer
// on-demand space extensions and position requests when hidden children
// appear later (the benefit the paper buys it for).

#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const SimTime converge = opt.full ? 30 * kMinute : 12 * kMinute;
  std::printf("== Ablation: Alg. 1 bit-space headroom policy ==\n");

  struct Policy {
    const char* name;
    HeadroomPolicy headroom;
  };
  const Policy policies[] = {
      {"none (chi = N+1)", {1, 1, 1000000}},
      {"paper (N/2, cap 10)", {1, 10, 2}},
      {"aggressive (N, cap 20)", {1, 20, 1}},
  };

  // Each policy's network is an independent trial — run the three
  // concurrently on the trial runner and render rows in policy order.
  struct PolicyResult {
    double coverage = 0.0;
    SummaryStats len, space;
  };
  TrialRunner runner(RunnerConfig{opt.jobs, {}});
  const auto results = runner.run_indexed(
      std::size(policies), [&policies, &opt, converge](std::size_t pi) {
        NetworkConfig cfg;
        cfg.topology = make_tight_grid(opt.seed);
        cfg.seed = opt.seed;
        cfg.protocol = ControlProtocol::kReTele;
        cfg.tele.addressing.headroom = policies[pi].headroom;
        Network net(cfg);
        net.start();
        net.run_for(converge);

        PolicyResult out;
        out.coverage = net.code_coverage();
        for (NodeId i = 1; i < net.size(); ++i) {
          const auto* tele = net.node(i).tele();
          if (tele == nullptr) continue;
          if (tele->addressing().has_code()) {
            out.len.add(static_cast<double>(tele->addressing().code().size()));
          }
          if (tele->addressing().space_bits() > 0) {
            out.space.add(tele->addressing().space_bits());
          }
        }
        return out;
      });

  TextTable table({"policy", "coverage", "avg code len", "max code len",
                   "avg space bits"});
  for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
    const PolicyResult& r = results[pi];
    table.row({policies[pi].name, TextTable::fmt_pct(r.coverage, 1),
               TextTable::fmt(r.len.mean(), 2), TextTable::fmt(r.len.max(), 0),
               TextTable::fmt(r.space.mean(), 2)});
  }
  emit_table(table, "ablation_space");
  std::printf("expected: more headroom -> longer codes, wider spaces; "
              "coverage stays high everywhere\n");
  return 0;
}
