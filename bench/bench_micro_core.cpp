// Micro-benchmarks (google-benchmark) for the hot data-plane primitives of
// TeleAdjusting: every overheard control packet triggers prefix matches
// against the node's own code and its neighbor table, so these operations
// bound the per-packet CPU cost on a mote-class device.

#include <benchmark/benchmark.h>

#include "core/path_code.hpp"
#include "core/tables.hpp"
#include "util/rng.hpp"

namespace telea {
namespace {

BitString random_code(Pcg32& rng, std::size_t len) {
  BitString b;
  for (std::size_t i = 0; i < len; ++i) b.push_back(rng.chance(0.5));
  return b;
}

void BM_PrefixMatch(benchmark::State& state) {
  Pcg32 rng(1, 1);
  const auto len = static_cast<std::size_t>(state.range(0));
  const BitString dest = random_code(rng, len);
  const BitString own = dest.prefix(len / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(own.is_prefix_of(dest));
  }
}
BENCHMARK(BM_PrefixMatch)->Arg(8)->Arg(20)->Arg(40)->Arg(120);

void BM_CommonPrefixLen(benchmark::State& state) {
  Pcg32 rng(2, 1);
  const auto len = static_cast<std::size_t>(state.range(0));
  const BitString a = random_code(rng, len);
  BitString b = a;
  if (len > 2) b.set_bit(len / 2, !b.bit(len / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.common_prefix_len(b));
  }
}
BENCHMARK(BM_CommonPrefixLen)->Arg(20)->Arg(40)->Arg(120);

void BM_MakeChildCode(benchmark::State& state) {
  Pcg32 rng(3, 1);
  const BitString parent = random_code(rng, 24);
  std::uint32_t pos = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_child_code(parent, pos, 5));
    pos = (pos % 30) + 1;
  }
}
BENCHMARK(BM_MakeChildCode);

void BM_SpaceBitsFor(benchmark::State& state) {
  const HeadroomPolicy policy{};
  std::uint32_t n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space_bits_for(n, policy, true));
    n = (n % 60) + 1;
  }
}
BENCHMARK(BM_SpaceBitsFor);

void BM_NeighborTableScan(benchmark::State& state) {
  // The forwarding engine's candidate scan: match every neighbor code
  // against the destination code (pick_expected_relay's inner loop shape).
  Pcg32 rng(4, 1);
  const auto neighbors = static_cast<std::size_t>(state.range(0));
  NeighborCodeTable table;
  const BitString dest = random_code(rng, 36);
  for (std::size_t i = 0; i < neighbors; ++i) {
    const std::size_t len = 4 + rng.uniform(30);
    // Half the neighbors share the destination's prefix.
    BitString code = rng.chance(0.5) ? dest.prefix(std::min(len, dest.size()))
                                     : random_code(rng, len);
    table.observe(static_cast<NodeId>(i + 1), code, 0);
  }
  for (auto _ : state) {
    std::size_t best = 0;
    for (const auto& e : table.entries()) {
      if (e.new_code.is_prefix_of(dest) && e.new_code.size() > best) {
        best = e.new_code.size();
      }
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_NeighborTableScan)->Arg(8)->Arg(16)->Arg(32);

void BM_ChildTableAllocate(benchmark::State& state) {
  Pcg32 rng(5, 1);
  const BitString parent = random_code(rng, 12);
  for (auto _ : state) {
    state.PauseTiming();
    ChildTable table;
    state.ResumeTiming();
    for (std::uint32_t p = 1; p <= 16; ++p) {
      const auto free = table.free_position(5, 1);
      benchmark::DoNotOptimize(free);
      table.upsert(static_cast<NodeId>(p), *free,
                   make_child_code(parent, *free, 5));
    }
  }
}
BENCHMARK(BM_ChildTableAllocate);

void BM_CodeDivergence(benchmark::State& state) {
  Pcg32 rng(6, 1);
  const BitString a = random_code(rng, 40);
  const BitString b = random_code(rng, 36);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code_divergence(a, b));
  }
}
BENCHMARK(BM_CodeDivergence);

}  // namespace
}  // namespace telea

BENCHMARK_MAIN();
