// Ablation: which parts of TeleAdjusting's forwarding strategy buy what?
// (DESIGN.md design-choice bench; not a paper figure, but the paper's Tele
// vs Re-Tele pair is one point of this sweep.)
//
// Variants, all on the WiFi-interfered channel where the mechanisms matter:
//   structured     conditions (2)+(3) off, backtracking off: pure
//                  expected-relay forwarding along the encoded path
//   +opportunism   condition (2) on (on-path overhearers claim)
//   +neighbors     condition (3) on too (off-path assist, Fig. 4c/4d)
//   +backtrack     backtracking feedback on (full Tele)
//   +re-tele       destination-unreachable countermeasure on (full system)

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Ablation: opportunistic-forwarding mechanisms (ch19) ==\n");

  struct Variant {
    const char* name;
    ControlProtocol protocol;
    bool opportunistic;
    bool neighbor_assist;
    bool backtracking;
  };
  const Variant variants[] = {
      {"structured", ControlProtocol::kTele, false, false, false},
      {"+opportunism", ControlProtocol::kTele, true, false, false},
      {"+neighbors", ControlProtocol::kTele, true, true, false},
      {"+backtrack (Tele)", ControlProtocol::kTele, true, true, true},
      {"+re-tele (full)", ControlProtocol::kReTele, true, true, true},
  };

  // All 5 variants go into one batch — the whole sweep shares the pool.
  TrialBatch batch(opt);
  for (const Variant& v : variants) {
    batch.cell(v.protocol, /*wifi=*/true, [v](ControlExperimentConfig& cfg) {
      cfg.network.tele.forwarding.opportunistic = v.opportunistic;
      cfg.network.tele.forwarding.neighbor_assist = v.neighbor_assist;
      cfg.network.tele.forwarding.backtracking = v.backtracking;
    });
  }
  const auto cells = batch.run();

  TextTable table({"variant", "PDR", "tx/pkt", "avg delay (s)", "duty"});
  for (std::size_t vi = 0; vi < std::size(variants); ++vi) {
    const Variant& v = variants[vi];
    const auto& r = cells[vi];
    SummaryStats delay;
    for (const auto& [hop, stats] : r.latency_by_hop.groups()) {
      (void)hop;
      delay.merge(stats);
    }
    table.row({v.name, TextTable::fmt_pct(r.pdr(), 1),
               TextTable::fmt(r.tx_per_control, 2),
               TextTable::fmt(delay.mean(), 2),
               TextTable::fmt_pct(r.duty_cycle, 2)});
  }
  emit_table(table, "ablation_opportunism");
  emit_runner_stats(batch, "ablation_opportunism");
  std::printf("expected: PDR and delay improve monotonically down the "
              "table; tx/pkt drops with opportunism\n");
  return 0;
}
