// Reproduces Fig. 7: control-packet delivery ratio (PDR) from the sink to
// individual nodes versus hop count, for Drip / RPL / Tele / Re-Tele, on the
// 40-node indoor testbed — (a) clean channel 26, (b) WiFi-interfered
// channel 19 (paper Sec. IV-B2).
//
// Paper shape: Drip ~100% everywhere; RPL degrades with hops (to ~98% clean,
// ~90% under WiFi); Tele stays close to Drip (98.9% / 96.9% at 6 hops) and
// Re-Tele closes most of the remaining gap (99.8% / 99.3%).

#include <set>

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Fig. 7: PDR vs hop count (%u run(s), %.0f min each) ==\n",
              opt.runs, to_seconds(opt.duration) / 60);

  const ControlProtocol protocols[] = {
      ControlProtocol::kDrip, ControlProtocol::kRpl, ControlProtocol::kTele,
      ControlProtocol::kReTele};

  // All 8 (protocol, channel) cells go into one batch so every trial of the
  // sweep shares the worker pool; tables render afterwards in queue order.
  TrialBatch batch(opt);
  for (bool wifi : {false, true}) {
    for (ControlProtocol p : protocols) batch.cell(p, wifi);
  }
  const auto cells = batch.run();

  std::size_t next_cell = 0;
  for (bool wifi : {false, true}) {
    std::printf("\n--- %s ---\n", channel_name(wifi));
    std::vector<ControlExperimentResult> results;
    std::set<int> hops;
    for (ControlProtocol p : protocols) {
      (void)p;
      results.push_back(cells[next_cell++]);
      for (const auto& [h, s] : results.back().pdr_by_hop.groups()) {
        (void)s;
        hops.insert(h);
      }
    }
    TextTable table({"hop count", "Drip", "RPL", "Tele", "Re-Tele"});
    for (int h : hops) {
      std::vector<std::string> row{std::to_string(h)};
      for (const auto& r : results) {
        const auto it = r.pdr_by_hop.groups().find(h);
        row.push_back(it == r.pdr_by_hop.groups().end()
                          ? "-"
                          : TextTable::fmt_pct(it->second.mean(), 1));
      }
      table.row(std::move(row));
    }
    emit_table(table, std::string("fig7_pdr_") + (wifi ? "ch19" : "ch26"));
    std::printf("overall:");
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::printf("  %s=%s", protocol_name(protocols[i]),
                  TextTable::fmt_pct(results[i].pdr(), 1).c_str());
    }
    std::printf("\n");
  }
  emit_runner_stats(batch, "fig7_pdr");
  return 0;
}
