// Reproduces Fig. 10: average end-to-end delay of a control packet from the
// sink to individual nodes versus hop count, per protocol and channel
// (paper Sec. IV-B4).
//
// Paper shape: Drip fastest (every node forwards, the quickest chain wins);
// RPL slowest (each hop waits for one specific node's wake-up, delay is
// proportional to wake interval x hops); TeleAdjusting sits in between,
// much closer to Drip, because any earlier-waking eligible relay advances
// the packet.

#include <set>

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Fig. 10: end-to-end delay vs hop count (%u run(s)) ==\n",
              opt.runs);

  const ControlProtocol protocols[] = {
      ControlProtocol::kDrip, ControlProtocol::kRpl, ControlProtocol::kTele,
      ControlProtocol::kReTele};

  // Queue all 8 (protocol, channel) cells up front so the whole sweep shares
  // the trial runner's worker pool.
  TrialBatch batch(opt);
  for (bool wifi : {false, true}) {
    for (ControlProtocol p : protocols) batch.cell(p, wifi);
  }
  const auto cells = batch.run();

  std::size_t next_cell = 0;
  for (bool wifi : {false, true}) {
    std::printf("\n--- %s ---\n", channel_name(wifi));
    std::vector<ControlExperimentResult> results;
    std::set<int> hops;
    for (ControlProtocol p : protocols) {
      (void)p;
      results.push_back(cells[next_cell++]);
      for (const auto& [h, s] : results.back().latency_by_hop.groups()) {
        (void)s;
        hops.insert(h);
      }
    }
    TextTable table({"hop count", "Drip (s)", "RPL (s)", "Tele (s)",
                     "Re-Tele (s)"});
    for (int h : hops) {
      if (h <= 0) continue;
      std::vector<std::string> row{std::to_string(h)};
      for (const auto& r : results) {
        const auto it = r.latency_by_hop.groups().find(h);
        row.push_back(it == r.latency_by_hop.groups().end()
                          ? "-"
                          : TextTable::fmt(it->second.mean(), 2));
      }
      table.row(std::move(row));
    }
    const std::string channel = wifi ? "ch19" : "ch26";
    emit_table(table, "fig10_latency_" + channel);

    // Distribution + energy summary: the axes deployments budget on.
    TextTable summary({"protocol", "p50 (s)", "p90 (s)", "p99 (s)",
                       "uJ/command"});
    for (std::size_t pi = 0; pi < results.size(); ++pi) {
      const auto& r = results[pi];
      summary.row({protocol_name(protocols[pi]),
                   TextTable::fmt(r.latency.quantile(0.5), 2),
                   TextTable::fmt(r.latency.quantile(0.9), 2),
                   TextTable::fmt(r.latency.quantile(0.99), 2),
                   TextTable::fmt(r.energy_uj_per_command, 1)});
    }
    std::printf("\nlatency distribution + energy per command (%s)\n",
                channel_name(wifi));
    emit_table(summary, "fig10_latency_summary_" + channel);
  }
  std::printf("\npaper: Drip < Tele << RPL at every hop count\n");
  emit_runner_stats(batch, "fig10_latency");
  return 0;
}
