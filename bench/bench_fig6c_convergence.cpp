// Reproduces Fig. 6(c): convergence rate of path-code construction — the CDF
// of the time between a node's routing-found event and its first path code,
// measured in routing-beacon rounds of 512 ms (paper Sec. IV-A3).
//
// Paper shape: no node exceeds ~20 beacon-times; most converge in <10.
// (The 10-round stability window of Algorithm 1 dominates the constant.)

#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

void report(const char* name, Network& net, SimTime wake_interval) {
  Cdf beacons;
  std::size_t converged = 0, total = 0;
  for (NodeId i = 1; i < net.size(); ++i) {
    const auto* tele = net.node(i).tele();
    if (tele == nullptr) continue;
    ++total;
    const auto& a = tele->addressing();
    if (!a.triggered_at().has_value() || !a.code_assigned_at().has_value()) {
      continue;
    }
    ++converged;
    const double rounds =
        static_cast<double>(*a.code_assigned_at() - *a.triggered_at()) /
        static_cast<double>(wake_interval);
    beacons.add(rounds);
  }
  // Per-level cascade latency: how long after its *allocator* obtained a
  // code this node's own code arrived. This isolates the protocol's own
  // per-hop cost from network-wide tree formation (see EXPERIMENTS.md on
  // the measuring-point difference vs the paper).
  Cdf per_level;
  for (NodeId i = 1; i < net.size(); ++i) {
    const auto* tele = net.node(i).tele();
    if (tele == nullptr) continue;
    const auto& a = tele->addressing();
    const NodeId p = a.code_parent();
    if (!a.code_assigned_at().has_value() || p == kInvalidNode) continue;
    const auto* ptele = net.node(p).tele();
    if (ptele == nullptr ||
        !ptele->addressing().code_assigned_at().has_value()) {
      continue;
    }
    const SimTime parent_at = *ptele->addressing().code_assigned_at();
    const SimTime mine_at = *a.code_assigned_at();
    if (mine_at >= parent_at) {
      per_level.add(static_cast<double>(mine_at - parent_at) /
                    static_cast<double>(wake_interval));
    }
  }

  std::printf("\n%s: %zu/%zu nodes converged\n", name, converged, total);
  TextTable table({"percentile", "since own routing-found (rounds)",
                   "since allocator's code (rounds)"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    table.row({TextTable::fmt_pct(q, 0),
               TextTable::fmt(beacons.quantile(q), 1),
               TextTable::fmt(per_level.quantile(q), 1)});
  }
  table.print();
  std::printf("fraction within 10 beacons: %s, within 20: %s "
              "(per-level: %s / %s)\n",
              TextTable::fmt_pct(beacons.at(10.0), 1).c_str(),
              TextTable::fmt_pct(beacons.at(20.0), 1).c_str(),
              TextTable::fmt_pct(per_level.at(10.0), 1).c_str(),
              TextTable::fmt_pct(per_level.at(20.0), 1).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const SimTime converge = opt.full ? 30 * kMinute : 15 * kMinute;

  std::printf("== Fig. 6(c): path-code convergence rate ==\n");
  std::printf("paper: all nodes < ~20 beacon rounds, most < 10\n");

  NetworkConfig probe_cfg;  // for the wake interval default
  const SimTime wake = probe_cfg.lpl.wake_interval;

  auto tight = converge_code_study(make_tight_grid(opt.seed), opt.seed, converge);
  report("Tight-grid", *tight, wake);
  auto sparse =
      converge_code_study(make_sparse_linear(opt.seed), opt.seed, converge);
  report("Sparse-linear", *sparse, wake);
  return 0;
}
