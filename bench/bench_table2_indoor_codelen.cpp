// Reproduces Table II: nodes' path-code length per hop count on the 40-node
// indoor testbed at CC2420 power level 2 (up to 6 hops) — paper Sec. IV-A2.
//
// Paper values for reference:
//   hop:      1     2     3      4      5      6
//   avg len:  4.23  7.06  9.41   11.28  13.83  15.8
//   min len:  3     4     5      7      8      12
//   max len:  5     9     18     16     17     20
// Shape to reproduce: ~2-3 bits per hop, max ~20 bits at 6 hops.

#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const SimTime converge = opt.full ? 30 * kMinute : 15 * kMinute;

  std::printf("== Table II: indoor-testbed path-code length per hop ==\n");

  GroupedStats len_by_hop;
  for (unsigned r = 0; r < opt.runs; ++r) {
    auto net = converge_code_study(make_indoor_testbed(opt.seed + r),
                                   opt.seed + r, converge);
    for (NodeId i = 1; i < net->size(); ++i) {
      const auto* tele = net->node(i).tele();
      if (tele == nullptr || !tele->addressing().has_code()) continue;
      const int hops = net->node(i).ctp().hops();
      if (hops <= 0 || hops >= 0xFF) continue;
      len_by_hop.add(hops,
                     static_cast<double>(tele->addressing().code().size()));
    }
  }

  TextTable table({"hop count", "nodes", "avg code len", "min", "max",
                   "paper avg"});
  const char* paper_avg[] = {"-", "4.23", "7.06", "9.41", "11.28", "13.83",
                             "15.8"};
  for (const auto& [hop, stats] : len_by_hop.groups()) {
    table.row({std::to_string(hop), std::to_string(stats.count()),
               TextTable::fmt(stats.mean(), 2), TextTable::fmt(stats.min(), 0),
               TextTable::fmt(stats.max(), 0),
               hop >= 1 && hop <= 6 ? paper_avg[hop] : "-"});
  }
  emit_table(table, "table2_indoor_codelen");
  return 0;
}
