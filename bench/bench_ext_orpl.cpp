// Extension bench: TeleAdjusting vs ORPL-lite — the related-work comparison
// the paper argues but does not measure (Sec. V: ORPL's "inherent false
// positive of bloom filter can incur multiple rounds of ineffectual
// transmissions, especially in the large-scale networks").
//
// Head-to-head on the 40-node indoor testbed (PDR / tx / latency), plus the
// Bloom-load mechanism on the 225-node Tight-grid: at 225 members a 64-bit
// filter saturates, so most membership queries answer "yes" regardless.

#include "bench_common.hpp"
#include "util/bloom.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

double mean_latency(const ControlExperimentResult& r) {
  SummaryStats all;
  for (const auto& [hop, stats] : r.latency_by_hop.groups()) {
    (void)hop;
    all.merge(stats);
  }
  return all.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Extension: TeleAdjusting vs ORPL-lite ==\n");

  TextTable table({"protocol", "channel", "PDR", "tx/pkt", "avg delay (s)",
                   "duty"});
  for (ControlProtocol p : {ControlProtocol::kReTele, ControlProtocol::kOrpl}) {
    for (bool wifi : {false, true}) {
      const auto r = run_testbed(p, wifi, opt);
      table.row({protocol_name(p), channel_name(wifi),
                 TextTable::fmt_pct(r.pdr(), 1),
                 TextTable::fmt(r.tx_per_control, 2),
                 TextTable::fmt(mean_latency(r), 2),
                 TextTable::fmt_pct(r.duty_cycle, 2)});
    }
  }
  emit_table(table, "ext_orpl");

  // The scaling mechanism: Bloom false-positive rate vs member count.
  std::printf("\n64-bit/2-hash Bloom false-positive rate vs members "
              "(the paper's large-scale critique):\n");
  TextTable fp({"members", "false-positive rate"});
  for (unsigned members : {10u, 40u, 100u, 225u}) {
    OrplBloom filter;
    for (NodeId id = 0; id < members; ++id) filter.insert(id);
    unsigned hits = 0;
    const unsigned probes = 5000;
    for (unsigned i = 0; i < probes; ++i) {
      if (filter.contains(static_cast<NodeId>(10000 + i))) ++hits;
    }
    fp.row({std::to_string(members),
            TextTable::fmt_pct(static_cast<double>(hits) / probes, 1)});
  }
  emit_table(fp, "ext_orpl_bloom");
  std::printf(
      "reading: the 64-bit/2-hash filter is already >50%% false-positive at\n"
      "40 members and saturates by ~100-225, where ORPL's addressing\n"
      "dissolves while path codes stay exact. ORPL-lite implements no\n"
      "false-positive recovery, so its PDR penalty is an upper bound on the\n"
      "effect the paper describes; real ORPL trades bigger filters and\n"
      "recovery rounds (the 'ineffectual transmissions') against it.\n");
  return 0;
}
