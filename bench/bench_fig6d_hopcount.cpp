// Reproduces Fig. 6(d): downward (reverse-path / code-tree) hop count versus
// the CTP routing hop count (paper Sec. IV-A4).
//
// Paper shape: the reverse path closely tracks the CTP path; the ratio of
// average reverse hops to average CTP hops is ~1.08 (the code tree lags the
// live routing tree slightly, it never needs loop-avoidance updates).

#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

void report(const char* name, Network& net) {
  GroupedStats down_by_ctp;
  SummaryStats advertised_hops, live_hops, down_hops;
  for (NodeId i = 1; i < net.size(); ++i) {
    const int ctp = net.node(i).ctp().hops();       // beacon-carried field
    const int live = net.ctp_tree_depth(i);         // live parent chain
    const int down = net.code_tree_depth(i);        // allocator chain
    if (ctp <= 0 || ctp >= 0xFF || down <= 0 || live <= 0) continue;
    down_by_ctp.add(ctp, down);
    advertised_hops.add(ctp);
    live_hops.add(live);
    down_hops.add(down);
  }
  std::printf("\n%s (%zu nodes with all measures)\n", name,
              advertised_hops.count());
  TextTable table(
      {"ctp hops", "nodes", "avg downward hops", "min", "max"});
  for (const auto& [hop, stats] : down_by_ctp.groups()) {
    table.row({std::to_string(hop), std::to_string(stats.count()),
               TextTable::fmt(stats.mean(), 2), TextTable::fmt(stats.min(), 0),
               TextTable::fmt(stats.max(), 0)});
  }
  emit_table(table, std::string("fig6d_") + name);
  // Two honest denominators: the beacon-carried hops field can lag the live
  // tree (Trickle backs beacons off), the live parent chain cannot. The
  // paper's 1.08 sits between the two views.
  const double vs_advertised = advertised_hops.mean() > 0
                                   ? down_hops.mean() / advertised_hops.mean()
                                   : 0.0;
  const double vs_live =
      live_hops.mean() > 0 ? down_hops.mean() / live_hops.mean() : 0.0;
  std::printf("avg downward hops / avg advertised CTP hops = %.3f, "
              "/ avg live-chain hops = %.3f (paper: 1.08)\n",
              vs_advertised, vs_live);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const SimTime converge = opt.full ? 30 * kMinute : 15 * kMinute;

  std::printf("== Fig. 6(d): downward hop count vs CTP hop count ==\n");
  auto tight = converge_code_study(make_tight_grid(opt.seed), opt.seed, converge);
  report("Tight-grid", *tight);
  auto sparse =
      converge_code_study(make_sparse_linear(opt.seed), opt.seed, converge);
  report("Sparse-linear", *sparse);
  return 0;
}
