// Reproduces Fig. 6(a): path-code length vs hop count on the 225-node
// Tight-grid and Sparse-linear fields (paper Sec. IV-A2).
//
// Paper shape to reproduce: code length grows roughly linearly with hop
// count; ~40 bits suffice for the Tight-grid; the Sparse-linear field needs
// longer codes at equal hop count (bit space wasted per hop on potential
// hidden children in a sparser tree).

#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

void report(const char* name, Network& net) {
  GroupedStats len_by_hop;
  std::size_t max_len = 0;
  std::size_t coded = 0;
  for (NodeId i = 1; i < net.size(); ++i) {
    const auto* tele = net.node(i).tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    const int hops = net.node(i).ctp().hops();
    if (hops <= 0 || hops >= 0xFF) continue;
    ++coded;
    const std::size_t len = tele->addressing().code().size();
    len_by_hop.add(hops, static_cast<double>(len));
    max_len = std::max(max_len, len);
  }
  std::printf("\n%s: %zu/%zu nodes coded, max code length %zu bits\n", name,
              coded, net.size() - 1, max_len);
  TextTable table({"hop count", "nodes", "avg code len (bits)", "min", "max"});
  for (const auto& [hop, stats] : len_by_hop.groups()) {
    table.row({std::to_string(hop), std::to_string(stats.count()),
               TextTable::fmt(stats.mean(), 2), TextTable::fmt(stats.min(), 0),
               TextTable::fmt(stats.max(), 0)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  const SimTime converge = opt.full ? 30 * kMinute : 15 * kMinute;

  std::printf("== Fig. 6(a): path code length vs hop count ==\n");
  std::printf("paper: near-linear growth; Tight-grid fits in ~40 bits;\n");
  std::printf("       Sparse-linear needs more bits at equal hop count\n");

  auto tight = converge_code_study(make_tight_grid(opt.seed), opt.seed, converge);
  report("Tight-grid (15x15, 200mx200m, high gain)", *tight);

  auto sparse =
      converge_code_study(make_sparse_linear(opt.seed), opt.seed, converge);
  report("Sparse-linear (5x45, 60mx600m, low gain)", *sparse);
  return 0;
}
