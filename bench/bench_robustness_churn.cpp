// Robustness churn soak (extension): the same randomized churn + link-fault
// scenario run with the reliable controller (retry / backoff / Re-Tele
// escalation) and fire-and-forget, comparing command delivery, retries,
// escalations and control-plane cost. Also writes the raw comparison as
// $TELEA_RESULTS_DIR/robustness_churn.json (the soak test's artifact format).

#include "bench_common.hpp"
#include "harness/soak.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);

  ChurnSoakConfig cfg;
  cfg.seed = opt.seed;
  if (opt.full) {
    cfg.nodes = 40;
    cfg.warmup = 20 * kMinute;
    cfg.duration = 2 * kHour;
    cfg.outages = 12;
    cfg.link_blackouts = 6;
  }

  std::printf("== Robustness churn: reliable controller vs fire-and-forget "
              "(%zu nodes, %u faults scheduled) ==\n",
              cfg.nodes,
              cfg.outages + cfg.link_blackouts + (cfg.noise_burst ? 1u : 0u) +
                  (cfg.state_loss_reboot ? 1u : 0u));

  // Both arms run concurrently on the trial runner (same seed, same fault
  // schedule — the A/B is about the controller, not the scenario).
  const ChurnSoakPair pair = run_churn_soak_pair(cfg, opt.jobs);
  const ChurnSoakResult& with_retries = pair.with_retries;
  const ChurnSoakResult& without = pair.without;

  TextTable table({"controller", "commands", "acked", "delivery", "retries",
                   "escalations", "gave up", "tx/cmd"});
  const auto add_row = [&table](const char* name, const ChurnSoakResult& r) {
    table.row({name, std::to_string(r.commands), std::to_string(r.acked),
               TextTable::fmt_pct(r.delivery_ratio(), 1),
               std::to_string(r.retries), std::to_string(r.escalations),
               std::to_string(r.gave_up), TextTable::fmt(r.tx_per_command, 1)});
  };
  add_row("reliable", with_retries);
  add_row("fire-and-forget", without);
  emit_table(table, "robustness_churn_table");

  const char* results_env = std::getenv("TELEA_RESULTS_DIR");
  const std::string results_dir =
      results_env != nullptr ? results_env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);
  if (!write_churn_soak_json(results_dir + "/robustness_churn.json", cfg,
                             with_retries, without)) {
    TELEA_WARN("bench") << "could not write robustness_churn.json";
  }
  std::printf("expected: the reliable controller recovers nearly every "
              "command the faults cost the fire-and-forget baseline\n");
  return 0;
}
