#pragma once

// Shared scaffolding for the experiment-reproduction benchmarks: command-line
// options, the testbed experiment suite (paper Sec. IV-B) and the 225-node
// code-study networks (paper Sec. IV-A).
//
// Every bench binary accepts:
//   --full        paper-scale durations (3 h measurement, 5 runs)
//   --runs N      override the number of runs
//   --minutes M   override the measurement duration
//   --warmup M    override the warm-up duration
//   --seed S      base seed
//   --jobs N      worker threads for independent trials (0 = TELEA_JOBS
//                 env, then hardware concurrency; docs/PARALLELISM.md)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/network.hpp"
#include "harness/runner.hpp"
#include "stats/table.hpp"
#include "topo/topology.hpp"
#include "util/logging.hpp"

namespace telea::bench {

struct Options {
  unsigned runs = 2;
  SimTime duration = 40 * kMinute;
  SimTime warmup = 20 * kMinute;
  std::uint64_t seed = 1;
  bool full = false;
  unsigned jobs = 0;  // 0 = resolve_jobs() (TELEA_JOBS, then hardware)
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
      opt.runs = 5;
      opt.duration = 3 * kHour;
      opt.warmup = 30 * kMinute;
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      opt.runs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
      opt.duration =
          static_cast<SimTime>(std::strtoul(argv[++i], nullptr, 10)) * kMinute;
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      opt.warmup =
          static_cast<SimTime>(std::strtoul(argv[++i], nullptr, 10)) * kMinute;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      opt.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "options: --full | --runs N | --minutes M | --warmup M | --seed S "
          "| --jobs N\n");
      std::exit(0);
    }
  }
  return opt;
}

/// A batch of independent testbed trials executed on the trial runner: queue
/// one cell per (protocol, channel[, tweak]) combination, then run() every
/// trial of every cell concurrently and get back one merged result per cell
/// in queue order. Per-trial seeds are splitmix64-derived from the base seed
/// and the batch-global trial index, so the merged results are bit-identical
/// whatever --jobs is (docs/PARALLELISM.md — the determinism contract the
/// bench artifacts are tested against).
class TrialBatch {
 public:
  using Tweak = std::function<void(ControlExperimentConfig&)>;

  explicit TrialBatch(const Options& opt) : opt_(opt) {}

  /// Queues `opt.runs` replicate trials of one experiment cell; returns the
  /// cell's index into run()'s result vector.
  std::size_t cell(ControlProtocol protocol, bool wifi,
                   const Tweak& tweak = nullptr) {
    const std::size_t cell_index = cells_;
    for (unsigned r = 0; r < opt_.runs; ++r) {
      const std::uint64_t seed =
          derive_trial_seed(opt_.seed, trial_configs_.size());
      ControlExperimentConfig cfg;
      cfg.network.topology = make_indoor_testbed(seed);
      cfg.network.seed = seed;
      cfg.network.protocol = protocol;
      cfg.network.wifi_interference = wifi;
      cfg.warmup = opt_.warmup;
      cfg.duration = opt_.duration;
      if (tweak) tweak(cfg);
      trial_configs_.push_back(std::move(cfg));
      cell_of_trial_.push_back(cell_index);
    }
    ++cells_;
    return cell_index;
  }

  /// Executes every queued trial across the worker pool and merges each
  /// cell's runs (in submission order — aggregation never depends on
  /// completion order). Accumulates wall-clock for emit_runner_stats.
  std::vector<ControlExperimentResult> run() {
    TrialRunner runner(RunnerConfig{opt_.jobs, {}});
    const auto per_trial = runner.run_indexed(
        trial_configs_.size(), [this](std::size_t i) {
          return run_control_experiment(trial_configs_[i]);
        });
    jobs_used_ = runner.jobs();
    wall_seconds_ += runner.last_wall_seconds();
    trials_run_ += per_trial.size();
    std::vector<std::vector<ControlExperimentResult>> by_cell(cells_);
    for (std::size_t i = 0; i < per_trial.size(); ++i) {
      by_cell[cell_of_trial_[i]].push_back(per_trial[i]);
    }
    std::vector<ControlExperimentResult> merged;
    merged.reserve(cells_);
    for (const auto& runs : by_cell) merged.push_back(merge_results(runs));
    trial_configs_.clear();
    cell_of_trial_.clear();
    cells_ = 0;
    return merged;
  }

  [[nodiscard]] unsigned jobs_used() const noexcept { return jobs_used_; }
  [[nodiscard]] std::uint64_t trials_run() const noexcept {
    return trials_run_;
  }
  [[nodiscard]] double wall_seconds() const noexcept { return wall_seconds_; }

 private:
  Options opt_;
  std::vector<ControlExperimentConfig> trial_configs_;
  std::vector<std::size_t> cell_of_trial_;
  std::size_t cells_ = 0;
  unsigned jobs_used_ = 0;
  std::uint64_t trials_run_ = 0;
  double wall_seconds_ = 0.0;
};

/// One (protocol, channel) cell of the paper's testbed evaluation, averaged
/// over `opt.runs` runs on the 40-node indoor topology. `tweak` (optional)
/// edits each run's config before it executes — the ablation hook. Runs its
/// replicates concurrently; multi-cell benches should queue every cell into
/// one TrialBatch instead, so the whole sweep shares the pool.
inline ControlExperimentResult run_testbed_with(
    ControlProtocol protocol, bool wifi, const Options& opt,
    const std::function<void(ControlExperimentConfig&)>& tweak) {
  TrialBatch batch(opt);
  batch.cell(protocol, wifi, tweak);
  return batch.run().front();
}

inline ControlExperimentResult run_testbed(ControlProtocol protocol, bool wifi,
                                           const Options& opt) {
  return run_testbed_with(protocol, wifi, opt, nullptr);
}

inline const char* channel_name(bool wifi) {
  // Paper: ZigBee channel 26 is clean, channel 19 overlaps WiFi.
  return wifi ? "ch19 (WiFi)" : "ch26 (clean)";
}

/// Prints the table and writes a machine-readable JSON summary to
/// $TELEA_RESULTS_DIR/<name>.json (default bench_results/). When
/// TELEA_CSV_DIR is set, also writes $TELEA_CSV_DIR/<name>.csv — plot-ready
/// artifacts next to the console rendering.
inline void emit_table(const TextTable& table, const std::string& name) {
  table.print();
  if (const char* dir = std::getenv("TELEA_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".csv";
    if (!table.write_csv(path)) {
      TELEA_WARN("bench") << "could not write " << path;
    }
  }
  const char* results_env = std::getenv("TELEA_RESULTS_DIR");
  const std::string results_dir =
      results_env != nullptr ? results_env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);
  const std::string json_path = results_dir + "/" + name + ".json";
  if (ec || !table.write_json(name, json_path)) {
    TELEA_WARN("bench") << "could not write " << json_path;
  }
}

/// Writes $TELEA_RESULTS_DIR/<name>.runner.json describing how the bench's
/// trials were executed (worker count, trial count, wall-clock). Kept as a
/// separate sidecar on purpose: the result tables emitted by emit_table are
/// byte-identical across --jobs settings, and this is the one artifact that
/// legitimately varies run to run, so determinism checks compare everything
/// *except* `*.runner.json`.
inline void emit_runner_stats(const TrialBatch& batch,
                              const std::string& name) {
  const char* results_env = std::getenv("TELEA_RESULTS_DIR");
  const std::string results_dir =
      results_env != nullptr ? results_env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);
  const std::string path = results_dir + "/" + name + ".runner.json";
  std::ostringstream body;
  body << "{\"bench\": \"" << name << "\", \"jobs\": " << batch.jobs_used()
       << ", \"trials\": " << batch.trials_run()
       << ", \"wall_seconds\": " << batch.wall_seconds() << "}\n";
  std::FILE* f = ec ? nullptr : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TELEA_WARN("bench") << "could not write " << path;
    return;
  }
  const std::string text = body.str();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("[runner] jobs=%u trials=%llu wall=%.2fs\n", batch.jobs_used(),
              static_cast<unsigned long long>(batch.trials_run()),
              batch.wall_seconds());
}

/// Builds and converges one of the paper's 225-node simulation fields
/// (Sec. IV-A) far enough that path codes are in place.
inline std::unique_ptr<Network> converge_code_study(const Topology& topo,
                                                    std::uint64_t seed,
                                                    SimTime duration) {
  NetworkConfig cfg;
  cfg.topology = topo;
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kReTele;
  auto net = std::make_unique<Network>(cfg);
  net->start();
  net->run_for(duration);
  return net;
}

}  // namespace telea::bench
