#pragma once

// Shared scaffolding for the experiment-reproduction benchmarks: command-line
// options, the testbed experiment suite (paper Sec. IV-B) and the 225-node
// code-study networks (paper Sec. IV-A).
//
// Every bench binary accepts:
//   --full        paper-scale durations (3 h measurement, 5 runs)
//   --runs N      override the number of runs
//   --minutes M   override the measurement duration
//   --warmup M    override the warm-up duration
//   --seed S      base seed

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/network.hpp"
#include "stats/table.hpp"
#include "topo/topology.hpp"
#include "util/logging.hpp"

namespace telea::bench {

struct Options {
  unsigned runs = 2;
  SimTime duration = 40 * kMinute;
  SimTime warmup = 20 * kMinute;
  std::uint64_t seed = 1;
  bool full = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
      opt.runs = 5;
      opt.duration = 3 * kHour;
      opt.warmup = 30 * kMinute;
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      opt.runs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--minutes") == 0 && i + 1 < argc) {
      opt.duration =
          static_cast<SimTime>(std::strtoul(argv[++i], nullptr, 10)) * kMinute;
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      opt.warmup =
          static_cast<SimTime>(std::strtoul(argv[++i], nullptr, 10)) * kMinute;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "options: --full | --runs N | --minutes M | --warmup M | --seed S\n");
      std::exit(0);
    }
  }
  return opt;
}

/// One (protocol, channel) cell of the paper's testbed evaluation, averaged
/// over `opt.runs` runs on the 40-node indoor topology. `tweak` (optional)
/// edits each run's config before it executes — the ablation hook.
inline ControlExperimentResult run_testbed_with(
    ControlProtocol protocol, bool wifi, const Options& opt,
    const std::function<void(ControlExperimentConfig&)>& tweak) {
  std::vector<ControlExperimentResult> runs;
  for (unsigned r = 0; r < opt.runs; ++r) {
    ControlExperimentConfig cfg;
    cfg.network.topology = make_indoor_testbed(opt.seed + r);
    cfg.network.seed = opt.seed + r;
    cfg.network.protocol = protocol;
    cfg.network.wifi_interference = wifi;
    cfg.warmup = opt.warmup;
    cfg.duration = opt.duration;
    if (tweak) tweak(cfg);
    runs.push_back(run_control_experiment(cfg));
  }
  return merge_results(runs);
}

inline ControlExperimentResult run_testbed(ControlProtocol protocol, bool wifi,
                                           const Options& opt) {
  return run_testbed_with(protocol, wifi, opt, nullptr);
}

inline const char* channel_name(bool wifi) {
  // Paper: ZigBee channel 26 is clean, channel 19 overlaps WiFi.
  return wifi ? "ch19 (WiFi)" : "ch26 (clean)";
}

/// Prints the table and writes a machine-readable JSON summary to
/// $TELEA_RESULTS_DIR/<name>.json (default bench_results/). When
/// TELEA_CSV_DIR is set, also writes $TELEA_CSV_DIR/<name>.csv — plot-ready
/// artifacts next to the console rendering.
inline void emit_table(const TextTable& table, const std::string& name) {
  table.print();
  if (const char* dir = std::getenv("TELEA_CSV_DIR")) {
    const std::string path = std::string(dir) + "/" + name + ".csv";
    if (!table.write_csv(path)) {
      TELEA_WARN("bench") << "could not write " << path;
    }
  }
  const char* results_env = std::getenv("TELEA_RESULTS_DIR");
  const std::string results_dir =
      results_env != nullptr ? results_env : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(results_dir, ec);
  const std::string json_path = results_dir + "/" + name + ".json";
  if (ec || !table.write_json(name, json_path)) {
    TELEA_WARN("bench") << "could not write " << json_path;
  }
}

/// Builds and converges one of the paper's 225-node simulation fields
/// (Sec. IV-A) far enough that path codes are in place.
inline std::unique_ptr<Network> converge_code_study(const Topology& topo,
                                                    std::uint64_t seed,
                                                    SimTime duration) {
  NetworkConfig cfg;
  cfg.topology = topo;
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kReTele;
  auto net = std::make_unique<Network>(cfg);
  net->start();
  net->run_for(duration);
  return net;
}

}  // namespace telea::bench
