// Reproduces Table III: average network-wide transmission count for
// delivering one control packet, per protocol and channel (paper
// Sec. IV-B3).
//
// Paper values: Tele 4.43 / 4.59, Drip 109.35 / 116.35, RPL 5.17 / 5.52
// (channels 26 / 19). Shape to reproduce: Drip costs on the order of the
// network size; Tele beats RPL by >14% thanks to opportunistic forwarding.

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf(
      "== Table III: transmissions per control packet (%u run(s)) ==\n",
      opt.runs);

  const ControlProtocol protocols[] = {ControlProtocol::kTele,
                                       ControlProtocol::kDrip,
                                       ControlProtocol::kRpl};
  const char* paper[2][3] = {{"4.43", "109.35", "5.17"},
                             {"4.59", "116.35", "5.52"}};

  TextTable table({"protocol", "ch26 tx/pkt", "paper", "ch19 tx/pkt",
                   "paper", "ch26 tx/delivered", "ch19 tx/delivered",
                   "ch26 PDR", "ch19 PDR"});
  double tx_del[2][3] = {};
  auto per_delivered = [](const ControlExperimentResult& r) {
    return r.delivered == 0 ? 0.0
                            : r.tx_per_control * static_cast<double>(r.sent) /
                                  static_cast<double>(r.delivered);
  };
  // One batch, 6 cells: clean at 2*pi, noisy at 2*pi + 1.
  TrialBatch batch(opt);
  for (std::size_t pi = 0; pi < 3; ++pi) {
    batch.cell(protocols[pi], false);
    batch.cell(protocols[pi], true);
  }
  const auto cells = batch.run();
  for (std::size_t pi = 0; pi < 3; ++pi) {
    const auto& clean = cells[2 * pi];
    const auto& noisy = cells[2 * pi + 1];
    tx_del[0][pi] = per_delivered(clean);
    tx_del[1][pi] = per_delivered(noisy);
    table.row({protocol_name(protocols[pi]),
               TextTable::fmt(clean.tx_per_control, 2), paper[0][pi],
               TextTable::fmt(noisy.tx_per_control, 2), paper[1][pi],
               TextTable::fmt(tx_del[0][pi], 2),
               TextTable::fmt(tx_del[1][pi], 2),
               TextTable::fmt_pct(clean.pdr(), 1),
               TextTable::fmt_pct(noisy.pdr(), 1)});
  }
  emit_table(table, "table3_txcount");
  emit_runner_stats(batch, "table3_txcount");
  if (tx_del[0][2] > 0) {
    std::printf("per *delivered* packet, Tele saves %.1f%% / %.1f%% "
                "transmissions vs RPL on ch26 / ch19 (paper: >14.3%%; a "
                "lost RPL packet costs fewer transmissions than a "
                "delivered one, so the sent-normalized column understates "
                "RPL's cost)\n",
                (1.0 - tx_del[0][0] / tx_del[0][2]) * 100.0,
                (1.0 - tx_del[1][0] / tx_del[1][2]) * 100.0);
  }
  return 0;
}
