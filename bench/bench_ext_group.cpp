// Extension bench (not a paper figure): one-to-many remote control.
// The paper claims TeleAdjusting "can be easily extended to application
// scenarios of one-to-all or one-to-many packet dissemination" (Sec. I).
// This bench quantifies the claim on the indoor testbed: cost of commanding
// k nodes via (a) k independent control packets, (b) one group packet with
// branch splitting, (c) a Drip flood.

#include <set>

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

std::uint64_t total_ops(Network& net) {
  std::uint64_t ops = 0;
  for (NodeId i = 0; i < net.size(); ++i) ops += net.node(i).mac().send_ops();
  return ops;
}

std::unique_ptr<Network> fresh_net(ControlProtocol proto, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_indoor_testbed(seed);
  cfg.seed = seed;
  cfg.protocol = proto;
  auto net = std::make_unique<Network>(cfg);
  net->start();
  net->run_for(20 * kMinute);
  net->reset_accounting();
  return net;
}

std::vector<NodeId> pick_targets(Network& net, std::size_t k,
                                 std::uint64_t seed) {
  Pcg32 rng(seed, 31);
  std::set<NodeId> out;
  while (out.size() < k) {
    const auto id = static_cast<NodeId>(
        1 + rng.uniform(static_cast<std::uint32_t>(net.size() - 1)));
    if (net.node(id).tele() == nullptr ||
        net.node(id).tele()->addressing().has_code()) {
      out.insert(id);
    }
  }
  return {out.begin(), out.end()};
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_options(argc, argv);
  std::printf("== Extension: one-to-many control cost (40-node indoor) ==\n");

  TextTable table({"targets k", "unicast xk (tx)", "group (tx)",
                   "drip flood (tx)", "group delivered"});
  for (std::size_t k : {2u, 4u, 8u, 16u}) {
    // (a) k unicasts.
    auto uni = fresh_net(ControlProtocol::kReTele, opt.seed);
    const auto targets = pick_targets(*uni, k, opt.seed + k);
    const auto base_u = total_ops(*uni);
    for (NodeId t : targets) {
      uni->sink().tele()->send_control(
          t, uni->node(t).tele()->addressing().code(), 1);
      uni->run_for(20 * kSecond);
    }
    uni->run_for(kMinute);
    const auto cost_u = total_ops(*uni) - base_u;

    // (b) one group packet.
    auto grp = fresh_net(ControlProtocol::kReTele, opt.seed);
    unsigned delivered = 0;
    for (NodeId t : targets) {
      grp->node(t).tele()->group_control().on_delivered =
          [&delivered](std::uint16_t, std::uint32_t) { ++delivered; };
      grp->node(t).tele()->on_control_delivered =
          [&delivered](const msg::ControlPacket&, bool) { ++delivered; };
    }
    std::vector<msg::GroupDest> dests;
    for (NodeId t : targets) {
      dests.push_back(
          msg::GroupDest{t, grp->node(t).tele()->addressing().code()});
    }
    const auto base_g = total_ops(*grp);
    grp->sink().tele()->send_control_group(dests, 1);
    grp->run_for(3 * kMinute);
    const auto cost_g = total_ops(*grp) - base_g;

    // (c) one Drip flood reaches everyone (k deliveries for free).
    auto drip = fresh_net(ControlProtocol::kDrip, opt.seed);
    const auto base_d = total_ops(*drip);
    drip->sink().drip()->disseminate(targets.front(), 1);
    drip->run_for(2 * kMinute);
    const auto cost_d = total_ops(*drip) - base_d;

    table.row({std::to_string(k), std::to_string(cost_u),
               std::to_string(cost_g), std::to_string(cost_d),
               std::to_string(delivered) + "/" + std::to_string(k)});
  }
  emit_table(table, "ext_group");
  std::printf(
      "expected: the group's shared-segment savings grow with k — for small\n"
      "k the per-branch claim overhead can exceed plain unicasts, but by\n"
      "k~8 the group wins and stays below the flood's fixed cost\n");
  return 0;
}
