// Robustness sweep (extension; the paper's robustness evidence is Fig. 7's
// WiFi contrast): control-plane PDR as relay nodes die mid-experiment.
// After warm-up, k random non-sink nodes are killed; the sink keeps sending
// control packets to the *surviving* nodes. Deterministic protocols lose
// whatever routed through the dead relays until their state heals; the
// anycast planes route around them.

#include <set>

#include "bench_common.hpp"

using namespace telea;
using namespace telea::bench;

namespace {

struct Outcome {
  unsigned sent = 0;
  unsigned delivered = 0;
};

Outcome run_with_failures(ControlProtocol proto, unsigned kills,
                          std::uint64_t seed, const Options& opt) {
  NetworkConfig cfg;
  cfg.topology = make_indoor_testbed(seed);
  cfg.seed = seed;
  cfg.protocol = proto;
  Network net(cfg);
  net.start();
  net.run_for(opt.warmup);

  // Kill k random non-sink nodes.
  Pcg32 rng(seed ^ 0xDEADULL, kills + 1);
  std::set<NodeId> dead;
  while (dead.size() < kills) {
    dead.insert(static_cast<NodeId>(
        1 + rng.uniform(static_cast<std::uint32_t>(net.size() - 1))));
  }
  for (NodeId d : dead) net.node(d).kill();

  Outcome out;
  std::set<std::uint32_t> delivered_seqs;
  std::uint32_t next_seq = 1;
  for (NodeId i = 1; i < net.size(); ++i) {
    if (dead.contains(i)) continue;
    if (auto* tele = net.node(i).tele()) {
      tele->on_control_delivered = [&delivered_seqs](
                                       const msg::ControlPacket& p, bool) {
        delivered_seqs.insert(p.seqno);
      };
    }
    if (auto* drip = net.node(i).drip()) {
      drip->on_delivered = [&delivered_seqs](const msg::DripMsg& m) {
        delivered_seqs.insert(m.version);
      };
    }
    if (auto* rpl = net.node(i).rpl()) {
      rpl->on_delivered = [&delivered_seqs](const msg::RplData& d) {
        delivered_seqs.insert(d.seqno);
      };
    }
  }

  Pcg32 dest_rng(seed ^ 0x5EL, 3);
  const SimTime end = net.sim().now() + opt.duration;
  while (net.sim().now() < end) {
    net.run_for(kMinute);
    if (net.sim().now() >= end) break;
    NodeId dest;
    do {
      dest = static_cast<NodeId>(
          1 + dest_rng.uniform(static_cast<std::uint32_t>(net.size() - 1)));
    } while (dead.contains(dest));

    ++out.sent;
    switch (proto) {
      case ControlProtocol::kTele:
      case ControlProtocol::kReTele: {
        auto* dest_tele = net.node(dest).tele();
        if (dest_tele != nullptr && dest_tele->addressing().has_code()) {
          net.sink().tele()->send_control(
              dest, dest_tele->addressing().code(), 1);
        }
        break;
      }
      case ControlProtocol::kDrip:
        net.sink().drip()->disseminate(dest, 1);
        break;
      case ControlProtocol::kRpl:
        net.sink().rpl()->send_downward(dest, 1, next_seq);
        break;
    }
    ++next_seq;
  }
  net.run_for(2 * kMinute);
  out.delivered = static_cast<unsigned>(delivered_seqs.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt = parse_options(argc, argv);
  if (!opt.full && opt.duration > 30 * kMinute) opt.duration = 30 * kMinute;

  std::printf("== Robustness: PDR with k relays killed after warm-up ==\n");
  const ControlProtocol protocols[] = {ControlProtocol::kReTele,
                                       ControlProtocol::kRpl,
                                       ControlProtocol::kDrip};
  TextTable table({"k killed", "Re-Tele", "RPL", "Drip"});
  for (unsigned k : {0u, 2u, 4u, 8u}) {
    std::vector<std::string> row{std::to_string(k)};
    for (ControlProtocol p : protocols) {
      const auto out = run_with_failures(p, k, opt.seed, opt);
      row.push_back(out.sent == 0
                        ? "-"
                        : TextTable::fmt_pct(
                              static_cast<double>(out.delivered) /
                                  static_cast<double>(out.sent),
                              1));
    }
    table.row(std::move(row));
  }
  emit_table(table, "robustness");
  std::printf("expected: the anycast planes degrade gracefully with k; "
              "deterministic RPL falls off fastest\n");
  return 0;
}
