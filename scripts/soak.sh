#!/usr/bin/env bash
# Runs the robustness churn soak (reliable controller vs fire-and-forget
# under randomized node outages, parent-link blackouts, a noise burst and a
# state-loss reboot) and validates the exported artifact. Usage:
#
#   scripts/soak.sh               # quick profile (~seconds)
#   scripts/soak.sh --full        # paper-scale profile (40 nodes, 2 h sim)
#   scripts/soak.sh --seed 9      # change the randomized fault plan
#
# Results land in bench_results/robustness_churn.json (override the
# directory with TELEA_RESULTS_DIR). See docs/ROBUSTNESS.md.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo" -B "$build" >/dev/null
cmake --build "$build" -j "$jobs" --target bench_robustness_churn json_lint

results="${TELEA_RESULTS_DIR:-$repo/bench_results}"
mkdir -p "$results"
TELEA_RESULTS_DIR="$results" "$build/bench/bench_robustness_churn" "$@"
"$build/tools/json_lint" "$results/robustness_churn.json"
