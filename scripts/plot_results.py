#!/usr/bin/env python3
"""Plot the CSV artifacts the benchmarks emit.

Run any bench with TELEA_CSV_DIR set, then point this script at the
directory:

    mkdir -p results
    TELEA_CSV_DIR=results ./build/bench/bench_fig7_pdr
    TELEA_CSV_DIR=results ./build/bench/bench_fig10_latency
    python3 scripts/plot_results.py results

One PNG per known CSV lands next to its input. Requires matplotlib
(optional dependency; the library itself never needs Python).
"""

import csv
import pathlib
import sys

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")


def read_rows(path: pathlib.Path):
    with path.open() as f:
        reader = csv.reader(f)
        headers = next(reader)
        rows = [row for row in reader if row]
    return headers, rows


def numeric(value: str):
    value = value.strip().rstrip("%")
    try:
        return float(value)
    except ValueError:
        return None


def plot_series_csv(path: pathlib.Path) -> bool:
    """Generic: first column = x, every numeric column = one series."""
    headers, rows = read_rows(path)
    if len(headers) < 2 or not rows:
        return False
    xs = [numeric(r[0]) for r in rows]
    if any(x is None for x in xs):
        return False
    fig, ax = plt.subplots(figsize=(6, 4))
    plotted = False
    for col in range(1, len(headers)):
        ys = [numeric(r[col]) if col < len(r) else None for r in rows]
        pairs = [(x, y) for x, y in zip(xs, ys) if y is not None]
        if len(pairs) < 2:
            continue
        ax.plot([p[0] for p in pairs], [p[1] for p in pairs],
                marker="o", label=headers[col])
        plotted = True
    if not plotted:
        plt.close(fig)
        return False
    ax.set_xlabel(headers[0])
    ax.set_title(path.stem.replace("_", " "))
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    out = path.with_suffix(".png")
    fig.tight_layout()
    fig.savefig(out, dpi=140)
    plt.close(fig)
    print(f"wrote {out}")
    return True


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    directory = pathlib.Path(sys.argv[1])
    if not directory.is_dir():
        sys.exit(f"not a directory: {directory}")
    count = 0
    for path in sorted(directory.glob("*.csv")):
        if plot_series_csv(path):
            count += 1
        else:
            print(f"skipped {path} (no numeric series)")
    print(f"{count} plot(s) written")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
