#!/usr/bin/env bash
# The repo's one verification entry point — CI runs this same script
# (.github/workflows/ci.yml), so a green local run means a green CI run.
#
# Build/test matrix:
#
#   stage     build dir      config                               tests run
#   -------   ------------   ----------------------------------   --------------
#   plain     build/         default                              tier-1, soak excluded
#   static    build/         telea_lint + clang-tidy + cppcheck   (source analysis only)
#   asan      build-asan/    -DTELEA_SANITIZE=address;undefined   tier-1 + one soak pass
#   thread    build-tsan/    -DTELEA_SANITIZE=thread              tier-1, soak excluded
#
# Why each stage: the soaks run once under ASan/UBSan because their fault-plan
# churn covers the most lifecycle/teardown code per wall-clock second. Each
# simulation is single-threaded by design, but the trial runner
# (src/harness/runner, docs/PARALLELISM.md) executes independent trials on a
# worker pool — so the TSan stage additionally drives a runner-backed bench
# smoke at jobs=8 to prove the pool shares nothing mutable between trials. The static stage always
# runs tools/telea_lint (built from this tree); clang-tidy and cppcheck run
# only when installed (CI installs them; a bare container skips with a notice).
#
# Usage:
#   scripts/check.sh              # plain + asan + thread + static
#   scripts/check.sh --fast       # plain + static only
#   scripts/check.sh --san-only   # asan + thread only
#   scripts/check.sh --static     # static analysis only
#   scripts/check.sh --lint-fix   # apply telea_lint's mechanical fixes
#                                 # (enum cases, doc rows), then report
#   scripts/check.sh --bench      # bench regression gate only (pinned short
#                                 # bench runs vs bench/baselines/, >10%
#                                 # worsening on latency/duty columns fails)
#
# Long randomized soaks (ctest label "soak") are excluded from the fast
# default pass and run once under ASan/UBSan. Plain `ctest` still runs
# everything. Any bench_results/*.json the test runs produce must parse
# (tools/json_lint) or the check fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_plain=1
run_san=1
run_static=1
run_bench=0
run_lint_fix=0
for arg in "$@"; do
  case "$arg" in
    --fast) run_san=0 ;;
    --san-only) run_plain=0; run_static=0 ;;
    --static) run_plain=0; run_san=0 ;;
    --lint-fix) run_plain=0; run_san=0; run_static=0; run_lint_fix=1 ;;
    --bench) run_plain=0; run_san=0; run_static=0; run_bench=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

build_and_test() {
  local dir="$1"; shift
  local labels="$1"; shift
  cmake -S "$repo" -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -LE soak
  if [ "$labels" = "soak" ]; then
    ctest --test-dir "$dir" --output-on-failure -L soak
  fi
  lint_results "$dir"
}

lint_results() {
  local dir="$1"
  local artifacts=()
  while IFS= read -r f; do artifacts+=("$f"); done \
    < <(find "$dir" -path '*/bench_results/*.json' 2>/dev/null)
  if [ "${#artifacts[@]}" -gt 0 ]; then
    "$dir/tools/json_lint" "${artifacts[@]}"
  fi
}

build_lint() {
  # telea_lint needs only its own sources; build just that target.
  cmake -S "$repo" -B "$repo/build" >/dev/null
  cmake --build "$repo/build" -j "$jobs" --target telea_lint
}

static_stage() {
  echo "== static analysis (docs/STATIC_ANALYSIS.md) =="
  build_lint
  # SARIF for code-scanning upload; the incremental cache keeps repeat runs
  # (and CI runs restoring build/) warm. Both live in build/ — untracked.
  "$repo/build/tools/telea_lint" --root "$repo" \
    --sarif "$repo/build/telea_lint.sarif" \
    --cache "$repo/build/telea_lint.cache"

  if command -v clang-tidy >/dev/null 2>&1; then
    # Changed files against the merge base when on a branch, else the full
    # src/ tree. clang-tidy reads .clang-tidy at the repo root.
    local files=()
    local base
    base="$(git -C "$repo" merge-base HEAD origin/main 2>/dev/null ||
            git -C "$repo" merge-base HEAD main 2>/dev/null || true)"
    if [ -n "$base" ] && [ "$base" != "$(git -C "$repo" rev-parse HEAD)" ]; then
      while IFS= read -r f; do
        case "$f" in
          src/*.cpp|tools/*.cpp|examples/*.cpp) files+=("$repo/$f") ;;
        esac
      done < <(git -C "$repo" diff --name-only --diff-filter=d "$base")
    else
      while IFS= read -r f; do files+=("$f"); done \
        < <(find "$repo/src" -name '*.cpp')
    fi
    if [ "${#files[@]}" -gt 0 ]; then
      echo "-- clang-tidy (${#files[@]} files)"
      clang-tidy -p "$repo/build" --quiet "${files[@]}"
    fi
  else
    echo "-- clang-tidy skipped (not installed)"
  fi

  if command -v cppcheck >/dev/null 2>&1; then
    echo "-- cppcheck"
    cppcheck --error-exitcode=1 --inline-suppr --std=c++20 \
      --enable=warning,portability \
      --suppressions-list="$repo/.cppcheck-suppressions" \
      -I "$repo/src" -I "$repo/tools" \
      "$repo/src" "$repo/tools"
  else
    echo "-- cppcheck skipped (not installed)"
  fi
}

# Pinned short bench invocations (deterministic: virtual-time results depend
# only on the seed and the code) diffed against the committed baseline set.
# Refresh baselines after an intentional perf change with:
#   TELEA_RESULTS_DIR=bench/baselines <the bench_stage invocations below>
bench_stage() {
  echo "== bench regression gate (bench/baselines) =="
  cmake -S "$repo" -B "$repo/build" >/dev/null
  cmake --build "$repo/build" -j "$jobs" \
    --target bench_fig10_latency bench_fig9_dutycycle bench_compare
  local tmp
  tmp="$(mktemp -d)"
  TELEA_RESULTS_DIR="$tmp" "$repo/build/bench/bench_fig10_latency" \
    --runs 1 --warmup 10 --minutes 10 --seed 1
  TELEA_RESULTS_DIR="$tmp" "$repo/build/bench/bench_fig9_dutycycle" \
    --runs 1 --warmup 10 --minutes 10 --seed 1
  "$repo/build/tools/bench_compare" \
    baseline="$repo/bench/baselines" current="$tmp"
  rm -rf "$tmp"
}

if [ "$run_plain" = 1 ]; then
  echo "== default build + tests (soak excluded) =="
  build_and_test "$repo/build" ""
fi

if [ "$run_bench" = 1 ]; then
  bench_stage
fi

if [ "$run_lint_fix" = 1 ]; then
  echo "== telea_lint --fix (mechanical fixes only) =="
  build_lint
  # Exit 1 here means findings remain that need a human; the fixes that
  # could be applied mechanically already were.
  "$repo/build/tools/telea_lint" --root "$repo" --fix
fi

if [ "$run_static" = 1 ]; then
  static_stage
fi

if [ "$run_san" = 1 ]; then
  echo "== ASan/UBSan build + tests (incl. one soak pass) =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  build_and_test "$repo/build-asan" "soak" "-DTELEA_SANITIZE=address;undefined"

  echo "== TSan build + tests (fast label) =="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  build_and_test "$repo/build-tsan" "" "-DTELEA_SANITIZE=thread"

  echo "== TSan runner smoke (8 concurrent trials) =="
  # The trial runner under maximum concurrency: 8 workers over the fig7
  # sweep's 8 trials. Any cross-trial shared mutable state is a TSan report.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  "$repo/build-tsan/bench/bench_fig7_pdr" --runs 1 --warmup 4 --minutes 4 \
    --jobs 8
fi

echo "all checks passed"
