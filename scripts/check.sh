#!/usr/bin/env bash
# Builds the project and runs the tier-1 test suite twice: once in the
# default configuration and once instrumented with ASan + UBSan
# (-DTELEA_SANITIZE=address;undefined). Usage:
#
#   scripts/check.sh              # both passes
#   scripts/check.sh --fast       # default pass only
#   scripts/check.sh --san-only   # sanitizer pass only
#
# Long randomized soaks (ctest label "soak") are excluded from the fast
# default pass and run once under the sanitizers, where their fault-plan
# churn covers the most lifecycle/teardown code per wall-clock second.
# Plain `ctest` still runs everything. Any bench_results/*.json the test
# runs produce must parse (tools/json_lint) or the check fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
run_plain=1
run_san=1
for arg in "$@"; do
  case "$arg" in
    --fast) run_san=0 ;;
    --san-only) run_plain=0 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

build_and_test() {
  local dir="$1"; shift
  local labels="$1"; shift
  cmake -S "$repo" -B "$dir" "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs" -LE soak
  if [ "$labels" = "soak" ]; then
    ctest --test-dir "$dir" --output-on-failure -L soak
  fi
  lint_results "$dir"
}

lint_results() {
  local dir="$1"
  local artifacts=()
  while IFS= read -r f; do artifacts+=("$f"); done \
    < <(find "$dir" -path '*/bench_results/*.json' 2>/dev/null)
  if [ "${#artifacts[@]}" -gt 0 ]; then
    "$dir/tools/json_lint" "${artifacts[@]}"
  fi
}

if [ "$run_plain" = 1 ]; then
  echo "== default build + tests (soak excluded) =="
  build_and_test "$repo/build" ""
fi

if [ "$run_san" = 1 ]; then
  echo "== ASan/UBSan build + tests (incl. one soak pass) =="
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  build_and_test "$repo/build-asan" "soak" "-DTELEA_SANITIZE=address;undefined"
fi

echo "all checks passed"
