#include "stats/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace telea {
namespace {

TimelineConfig tiny_config() {
  TimelineConfig cfg;
  cfg.interval = 10 * kSecond;
  cfg.raw_capacity = 8;
  cfg.mid = {4, 2};     // fold raw 2:1
  cfg.coarse = {4, 2};  // fold mid buckets 2:1
  cfg.window = 3;
  cfg.quantile_window = 5;
  cfg.ewma_alpha = 0.5;
  return cfg;
}

TEST(MetricSeries, TiersFoldAndEvict) {
  MetricSeries s(tiny_config(), false);
  for (std::uint64_t i = 0; i < 12; ++i) {
    s.append(i * 10 * kSecond, static_cast<double>(i));
  }
  EXPECT_EQ(s.total_points(), 12u);
  // Raw ring keeps the newest 8 of 12 points.
  ASSERT_EQ(s.raw().size(), 8u);
  EXPECT_DOUBLE_EQ(s.raw().front().value, 4.0);
  EXPECT_DOUBLE_EQ(s.raw().back().value, 11.0);
  // Mid tier: 12 points folded 2:1 = 6 buckets, capacity keeps the last 4.
  ASSERT_EQ(s.mid().size(), 4u);
  const TimelineBucket& b = s.mid().back();  // points 10, 11
  EXPECT_DOUBLE_EQ(b.min, 10.0);
  EXPECT_DOUBLE_EQ(b.max, 11.0);
  EXPECT_DOUBLE_EQ(b.sum, 21.0);
  EXPECT_EQ(b.count, 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 10.5);
  EXPECT_EQ(b.start, 10u * 10 * kSecond);
  // Coarse tier folds *mid buckets* 2:1 — 6 mid buckets = 3 coarse buckets,
  // each aggregating 4 raw points.
  ASSERT_EQ(s.coarse().size(), 3u);
  EXPECT_EQ(s.coarse().back().count, 4u);
  EXPECT_DOUBLE_EQ(s.coarse().back().sum, 8.0 + 9.0 + 10.0 + 11.0);
}

TEST(MetricSeries, WindowedSignals) {
  MetricSeries s(tiny_config(), true);
  // Deltas appended at the 10 s cadence: 0, 3, 6, 9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    s.append(i * 10 * kSecond, static_cast<double>(3 * i));
  }
  EXPECT_DOUBLE_EQ(s.last(), 9.0);
  EXPECT_DOUBLE_EQ(s.window_sum(3), 3.0 + 6.0 + 9.0);
  // Rate over 3 samples x 10 s of window.
  EXPECT_DOUBLE_EQ(s.window_rate(3), 18.0 / 30.0);
  // EWMA with alpha 0.5 over 0,3,6,9.
  EXPECT_DOUBLE_EQ(s.ewma(), ((0.0 * 0.5 + 3.0) * 0.5 + 6.0) * 0.5 * 0.5 + 4.5);
  const double p50 = s.window_quantile(0.5);
  EXPECT_GT(p50, 0.0);
  EXPECT_LT(p50, 9.0);
  EXPECT_DOUBLE_EQ(s.window_quantile(1.0), 9.0);
  EXPECT_DOUBLE_EQ(s.window_quantile(0.0), 0.0);
}

TEST(AlertRules, ParseAllForms) {
  const char* text =
      "# watch the control plane\n"
      "retry_storm: rate(telea_retries_total{node=\"3\"}) > 0.5 for 3\n"
      "\n"
      "deep_queue: p90(telea_queue_depth) >= 7\n"
      "coverage_low: value(telea_health_coverage) < 0.5 for 2\n"
      "silent: absent(telea_health_coverage) for 2\n"
      "burn: burn_rate(telea_drops_total{a=\"x\",b=\"y\"}, 0.01) > 2 for 4\n";
  std::vector<AlertParseError> errors;
  const auto rules = parse_alert_rules(text, &errors);
  ASSERT_TRUE(rules.has_value()) << (errors.empty() ? "" : errors[0].message);
  ASSERT_EQ(rules->size(), 5u);

  EXPECT_EQ((*rules)[0].name, "retry_storm");
  EXPECT_EQ((*rules)[0].signal, AlertSignal::kRate);
  EXPECT_EQ((*rules)[0].series, "telea_retries_total{node=\"3\"}");
  EXPECT_EQ((*rules)[0].op, AlertOp::kGt);
  EXPECT_DOUBLE_EQ((*rules)[0].threshold, 0.5);
  EXPECT_EQ((*rules)[0].for_windows, 3u);

  EXPECT_EQ((*rules)[1].signal, AlertSignal::kQuantile);
  EXPECT_DOUBLE_EQ((*rules)[1].quantile, 0.9);
  EXPECT_EQ((*rules)[1].op, AlertOp::kGe);
  EXPECT_EQ((*rules)[1].for_windows, 1u);  // default

  EXPECT_EQ((*rules)[3].signal, AlertSignal::kAbsent);

  // burn_rate's comma split must respect the labels' own commas.
  EXPECT_EQ((*rules)[4].signal, AlertSignal::kBurnRate);
  EXPECT_EQ((*rules)[4].series, "telea_drops_total{a=\"x\",b=\"y\"}");
  EXPECT_DOUBLE_EQ((*rules)[4].budget_per_s, 0.01);

  // Every parsed rule round-trips through its rendered grammar line.
  for (const AlertRule& rule : *rules) {
    const auto again = parse_alert_rules(render_alert_rule(rule) + "\n");
    ASSERT_TRUE(again.has_value()) << render_alert_rule(rule);
    ASSERT_EQ(again->size(), 1u);
    EXPECT_EQ(render_alert_rule((*again)[0]), render_alert_rule(rule));
  }
}

TEST(AlertRules, MalformedLinesFailLoudlyWithLineNumbers) {
  std::vector<AlertParseError> errors;
  EXPECT_FALSE(parse_alert_rules("x: frobnicate(a) > 1\n", &errors).has_value());
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].line, 1u);

  errors.clear();
  EXPECT_FALSE(
      parse_alert_rules("# fine\nbad line without colon\n", &errors)
          .has_value());
  ASSERT_FALSE(errors.empty());
  EXPECT_EQ(errors[0].line, 2u);

  EXPECT_FALSE(parse_alert_rules("x: value(a) >> 1\n").has_value());
  EXPECT_FALSE(parse_alert_rules("x: value(a) > nope\n").has_value());
  EXPECT_FALSE(parse_alert_rules("x: value(a) > 1 for zero\n").has_value());
  EXPECT_FALSE(parse_alert_rules("x: burn_rate(a) > 1\n").has_value());
}

TEST(AlertRules, SeriesNodeLabel) {
  EXPECT_EQ(series_node_label("telea_duty_cycle{node=\"7\",sub=\"phy\"}"), 7u);
  EXPECT_EQ(series_node_label("telea_x{a=\"1\",node=\"12\"}"), 12u);
  EXPECT_FALSE(series_node_label("telea_duty_cycle{sub=\"phy\"}").has_value());
  EXPECT_FALSE(series_node_label("telea_plain").has_value());
}

// Test rig: a scripted collector driving the engine through a live
// simulator, the way Network::enable_timeline wires it.
struct EngineRig {
  Simulator sim;
  TimelineEngine engine{sim, tiny_config()};
  double gauge_value = 0.0;
  std::uint64_t counter_total = 0;
  bool emit_gauge = true;

  EngineRig() {
    engine.set_collector([this](MetricsRegistry& reg) {
      if (emit_gauge) {
        reg.gauge("telea_test_depth", {{"node", "2"}}).set(gauge_value);
      }
      reg.counter("telea_test_ops_total").set_total(counter_total);
    });
  }
};

TEST(TimelineEngine, SamplesOnCadenceAndDeltaEncodesCounters) {
  EngineRig rig;
  rig.engine.start();
  rig.counter_total = 100;
  rig.gauge_value = 4.0;
  rig.sim.run_until(35 * kSecond);  // samples at t=10,20,30
  EXPECT_EQ(rig.engine.samples_taken(), 3u);
  EXPECT_EQ(rig.engine.series_count(), 2u);

  const MetricSeries* ops = rig.engine.series("telea_test_ops_total");
  ASSERT_NE(ops, nullptr);
  EXPECT_TRUE(ops->cumulative());
  ASSERT_EQ(ops->raw().size(), 3u);
  // First observation of a cumulative series is its baseline: delta 100,
  // then no growth.
  EXPECT_DOUBLE_EQ(ops->raw()[0].value, 100.0);
  EXPECT_DOUBLE_EQ(ops->raw()[1].value, 0.0);

  const MetricSeries* depth =
      rig.engine.series("telea_test_depth{node=\"2\"}");
  ASSERT_NE(depth, nullptr);
  EXPECT_FALSE(depth->cumulative());
  EXPECT_DOUBLE_EQ(depth->last(), 4.0);  // gauges stay absolute

  // Counter reset (state-loss reboot): total drops 100 -> 5. The delta is
  // clamped to zero and counted, never emitted negative.
  rig.counter_total = 5;
  rig.sim.run_until(45 * kSecond);
  EXPECT_DOUBLE_EQ(ops->raw().back().value, 0.0);
  EXPECT_EQ(rig.engine.counter_resets(), 1u);
  // And the next interval's delta is measured against the new baseline.
  rig.counter_total = 8;
  rig.sim.run_until(55 * kSecond);
  EXPECT_DOUBLE_EQ(ops->raw().back().value, 3.0);
}

TEST(TimelineEngine, AlertFiresAfterForWindowsAndResolves) {
  EngineRig rig;
  AlertRule rule;
  rule.name = "deep";
  rule.series = "telea_test_depth{node=\"2\"}";
  rule.signal = AlertSignal::kValue;
  rule.op = AlertOp::kGt;
  rule.threshold = 5.0;
  rule.for_windows = 2;
  rig.engine.set_rules({rule});

  Tracer tracer(64);
  rig.engine.set_tracer(&tracer);
  std::vector<NodeId> fired_at;
  rig.engine.on_alert_fired = [&fired_at](const AlertState& state,
                                          NodeId node) {
    EXPECT_EQ(state.rule.name, "deep");
    fired_at.push_back(node);
  };

  rig.engine.start();
  rig.gauge_value = 9.0;
  rig.sim.run_until(15 * kSecond);  // one window above threshold: armed only
  EXPECT_FALSE(rig.engine.alerts()[0].active);
  EXPECT_TRUE(fired_at.empty());

  rig.sim.run_until(25 * kSecond);  // second consecutive window: fires
  const AlertState& state = rig.engine.alerts()[0];
  EXPECT_TRUE(state.active);
  EXPECT_EQ(state.fired, 1u);
  EXPECT_EQ(state.last_fired, 20 * kSecond);
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_EQ(fired_at[0], 2u);  // the rule's node="2" label
  ASSERT_EQ(tracer.count(TraceEvent::kAlertFired), 1u);
  const TraceRecord fired_rec = tracer.by_event(TraceEvent::kAlertFired)[0];
  EXPECT_EQ(fired_rec.node, 2u);
  EXPECT_EQ(fired_rec.a, 0u);  // rule index

  // Still above threshold: active, no re-fire.
  rig.sim.run_until(35 * kSecond);
  EXPECT_EQ(rig.engine.alerts()[0].fired, 1u);

  rig.gauge_value = 1.0;  // condition clears: resolves on the next sample
  rig.sim.run_until(45 * kSecond);
  EXPECT_FALSE(rig.engine.alerts()[0].active);
  EXPECT_EQ(rig.engine.alerts()[0].resolved, 1u);
  EXPECT_EQ(tracer.count(TraceEvent::kAlertResolved), 1u);
  EXPECT_EQ(rig.engine.alerts_fired_total(), 1u);
  EXPECT_EQ(rig.engine.alerts_resolved_total(), 1u);

  // The engine mirrors alert state as metrics, like every subsystem.
  MetricsRegistry reg;
  rig.engine.collect_metrics(reg);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.at("telea_alert_fired_total{rule=\"deep\"}"), 1.0);
  EXPECT_DOUBLE_EQ(snap.at("telea_alert_active{rule=\"deep\"}"), 0.0);
  EXPECT_GT(snap.at("telea_timeline_samples_total"), 0.0);
}

TEST(TimelineEngine, AbsentRuleFiresWhenSeriesStopsReporting) {
  EngineRig rig;
  AlertRule rule;
  rule.name = "silent";
  rule.series = "telea_test_depth{node=\"2\"}";
  rule.signal = AlertSignal::kAbsent;
  rule.for_windows = 2;
  rig.engine.set_rules({rule});
  rig.engine.start();

  rig.sim.run_until(25 * kSecond);
  EXPECT_FALSE(rig.engine.alerts()[0].active);  // reporting: no alert

  rig.emit_gauge = false;
  rig.sim.run_until(45 * kSecond);  // two silent windows
  EXPECT_TRUE(rig.engine.alerts()[0].active);

  rig.emit_gauge = true;
  rig.sim.run_until(55 * kSecond);
  EXPECT_FALSE(rig.engine.alerts()[0].active);
  EXPECT_EQ(rig.engine.alerts()[0].resolved, 1u);
}

TEST(TimelineEngine, JsonlStreamIsParseableAndDescribesTiers) {
  const std::string path = "timeline_test_stream.jsonl";
  {
    EngineRig rig;
    AlertRule rule;
    rule.name = "deep";
    rule.series = "telea_test_depth{node=\"2\"}";
    rule.threshold = 5.0;
    rig.engine.set_rules({rule});
    ASSERT_TRUE(rig.engine.set_jsonl(path));
    rig.engine.start();
    rig.gauge_value = 9.0;
    rig.sim.run_until(25 * kSecond);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t meta_lines = 0;
  std::size_t sample_lines = 0;
  std::size_t alert_lines = 0;
  while (std::getline(in, line)) {
    const auto v = JsonValue::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    if (const JsonValue* meta = v->find("meta")) {
      ++meta_lines;
      EXPECT_DOUBLE_EQ(meta->number_or("interval_us", 0.0),
                       static_cast<double>(10 * kSecond));
      EXPECT_DOUBLE_EQ(meta->number_or("raw_capacity", 0.0), 8.0);
      const JsonValue* rules = meta->find("rules");
      ASSERT_NE(rules, nullptr);
      ASSERT_EQ(rules->as_array().size(), 1u);
    } else if (v->find("alert") != nullptr) {
      ++alert_lines;
      EXPECT_EQ(v->string_or("alert", ""), "deep");
      EXPECT_EQ(v->string_or("state", ""), "fired");
    } else {
      ++sample_lines;
      const JsonValue* values = v->find("v");
      ASSERT_NE(values, nullptr);
      EXPECT_NE(values->find("telea_test_depth{node=\"2\"}"), nullptr);
    }
  }
  EXPECT_EQ(meta_lines, 1u);
  EXPECT_EQ(sample_lines, 2u);
  EXPECT_EQ(alert_lines, 1u);
  std::remove(path.c_str());
}

TEST(Metrics, VisitSamplesReportsKinds) {
  MetricsRegistry reg;
  reg.counter("telea_ops_total").inc(2);
  reg.gauge("telea_depth").set(7);
  reg.histogram("telea_lat_seconds", {1.0}).observe(0.5);
  std::map<std::string, SampleKind> kinds;
  reg.visit_samples([&kinds](const std::string& name, double value,
                             SampleKind kind) {
    (void)value;
    kinds[name] = kind;
  });
  EXPECT_EQ(kinds.at("telea_ops_total"), SampleKind::kCounter);
  EXPECT_EQ(kinds.at("telea_depth"), SampleKind::kGauge);
  EXPECT_EQ(kinds.at("telea_lat_seconds_count"), SampleKind::kHistogram);
  EXPECT_EQ(kinds.at("telea_lat_seconds_sum"), SampleKind::kHistogram);
}

}  // namespace
}  // namespace telea
