#include "stats/energy.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

using namespace time_literals;

TEST(EnergyModel, TxCurrentTableAnchors) {
  EXPECT_DOUBLE_EQ(EnergyModel::tx_current_ma(0.0), 17.4);
  EXPECT_DOUBLE_EQ(EnergyModel::tx_current_ma(-25.0), 8.5);
  EXPECT_NEAR(EnergyModel::tx_current_ma(-5.0), 13.9, 1e-9);
}

TEST(EnergyModel, TxCurrentInterpolatesAndClamps) {
  const double mid = EnergyModel::tx_current_ma(-2.0);
  EXPECT_GT(mid, 15.2);
  EXPECT_LT(mid, 16.5);
  EXPECT_DOUBLE_EQ(EnergyModel::tx_current_ma(-40.0), 8.5);
  EXPECT_DOUBLE_EQ(EnergyModel::tx_current_ma(5.0), 17.4);
  // Monotone in power.
  double prev = 0;
  for (double p = -25; p <= 0; p += 0.5) {
    const double c = EnergyModel::tx_current_ma(p);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(EnergyModel, AllSleepIsMicroamps) {
  EnergyModel model;
  const double ma = model.average_current_ma(0, 0, 1_h);
  EXPECT_NEAR(ma, 0.0051, 1e-6);
}

TEST(EnergyModel, AlwaysOnListeningIsFullRxDraw) {
  EnergyModel model;
  const double ma = model.average_current_ma(1_h, 0, 1_h);
  EXPECT_NEAR(ma, 18.8 + 1.8, 1e-6);
}

TEST(EnergyModel, DutyCycledDrawScales) {
  EnergyModel model;
  // 2% duty at RX: ~0.412 mA + sleep floor.
  const double ma = model.average_current_ma(72_s, 0, 1_h);
  EXPECT_NEAR(ma, 0.02 * 20.6 + 0.98 * 0.0051, 1e-3);
}

TEST(EnergyModel, TxTimeUsesTxCurrent) {
  EnergyModelConfig cfg;
  cfg.tx_power_dbm = -25.0;  // 8.5 mA, well below RX draw
  EnergyModel model(cfg);
  const double rx_only = model.average_current_ma(1_h, 0, 1_h);
  const double tx_heavy = model.average_current_ma(1_h, 1_h, 1_h);
  EXPECT_LT(tx_heavy, rx_only);  // TX at -25 dBm draws less than RX
}

TEST(EnergyModel, EnergyIsCurrentTimesVoltsTimesTime) {
  EnergyModel model;
  const double ma = model.average_current_ma(36_s, 0, 1_h);
  EXPECT_NEAR(model.energy_mj(36_s, 0, 1_h), ma * 3600.0 * 3.0, 1e-6);
}

TEST(EnergyModel, LifetimeProjection) {
  EnergyModel model;
  // 1 mA average on a 2400 mAh pack: 100 days.
  const SimTime total = 1_h;
  // Find radio-on giving ~1 mA: x * 20.6 ≈ 1 -> 4.85% duty.
  const SimTime on = static_cast<SimTime>(0.04854 * 3600.0 * 1e6);
  const double days = model.lifetime_days(2400.0, on, 0, total);
  EXPECT_NEAR(days, 100.0, 2.0);
}

TEST(EnergyModel, ZeroWindowIsZero) {
  EnergyModel model;
  EXPECT_DOUBLE_EQ(model.average_current_ma(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.energy_mj(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(model.lifetime_days(1000, 0, 0, 0), 0.0);
}

}  // namespace
}  // namespace telea
