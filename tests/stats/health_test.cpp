#include <gtest/gtest.h>

#include "stats/health.hpp"
#include "stats/metrics.hpp"
#include "util/json.hpp"

namespace telea {
namespace {

using namespace telea::time_literals;

msg::HealthReport report_with_seqno(std::uint8_t seqno) {
  HealthSample s;
  s.duty_cycle = 0.01;
  s.etx10 = 15;
  return encode_health_report(s, seqno);
}

TEST(HealthEncode, QuantizesAndSaturates) {
  HealthSample s;
  s.duty_cycle = 0.012;     // 1.2% -> 12 permille
  s.etx10 = 23;             // ETX 2.3
  s.code_len = 9;
  s.mac_queue_hwm = 3;
  s.ctp_queue_hwm = 5;
  s.parent_changes = 258;   // wraps mod 256
  s.energy_mj = 123.6;
  const msg::HealthReport r = encode_health_report(s, 7);
  EXPECT_EQ(r.seqno, 7);
  EXPECT_EQ(r.duty_permille, 12);
  EXPECT_EQ(r.etx10, 23);
  EXPECT_EQ(r.code_len, 9);
  EXPECT_EQ(r.queue_hwm >> 4, 3);
  EXPECT_EQ(r.queue_hwm & 0xF, 5);
  EXPECT_EQ(r.parent_epoch, 2);
  EXPECT_EQ(r.energy_mj, 124);  // rounded

  HealthSample hot;
  hot.duty_cycle = 0.9;       // > 25.5% ceiling
  hot.etx10 = 4000;           // > u8
  hot.code_len = 300;
  hot.mac_queue_hwm = 99;     // > nibble
  hot.ctp_queue_hwm = 99;
  hot.energy_mj = 1e9;        // > u16
  const msg::HealthReport sat = encode_health_report(hot, 0);
  EXPECT_EQ(sat.duty_permille, 255);
  EXPECT_EQ(sat.etx10, 255);
  EXPECT_EQ(sat.code_len, 255);
  EXPECT_EQ(sat.queue_hwm, 0xFF);
  EXPECT_EQ(sat.energy_mj, 65535);
}

TEST(HealthEncode, SeqnoFreshnessWraps) {
  EXPECT_TRUE(health_seqno_newer(1, 0));
  EXPECT_TRUE(health_seqno_newer(127, 0));
  EXPECT_FALSE(health_seqno_newer(128, 0));  // half the ring away: ambiguous
  EXPECT_FALSE(health_seqno_newer(0, 0));
  EXPECT_FALSE(health_seqno_newer(0, 1));
  EXPECT_TRUE(health_seqno_newer(3, 250));  // wrapped past 255
  EXPECT_FALSE(health_seqno_newer(250, 3));
}

TEST(HealthReporter, RateLimitsToOneReportPerPeriod) {
  HealthReporterConfig cfg;
  cfg.min_interval = 60_s;
  HealthReporter reporter(cfg);
  std::size_t sampled = 0;
  const auto sample = [&sampled] {
    ++sampled;
    return HealthSample{};
  };

  msg::CtpData first;
  reporter.maybe_attach(0, first, sample);
  EXPECT_TRUE(first.has_health);
  EXPECT_EQ(sampled, 1u);

  msg::CtpData second;  // still inside the interval
  reporter.maybe_attach(30_s, second, sample);
  EXPECT_FALSE(second.has_health);
  EXPECT_EQ(sampled, 1u) << "rate-limited offer must not sample";

  msg::CtpData third;
  reporter.maybe_attach(61_s, third, sample);
  EXPECT_TRUE(third.has_health);
  EXPECT_TRUE(health_seqno_newer(third.health.seqno, first.health.seqno));

  EXPECT_EQ(reporter.stats().reports_attached, 2u);
  EXPECT_EQ(reporter.stats().suppressed, 1u);
  EXPECT_EQ(reporter.stats().bytes_attached, 2 * msg::kHealthReportBytes);

  // A frame that already carries a report (e.g. re-offered) is left alone.
  reporter.maybe_attach(200_s, third, sample);
  EXPECT_EQ(reporter.stats().reports_attached, 2u);
}

TEST(HealthModel, FreshestWinsOnOutOfOrderArrivals) {
  NetworkHealthModel model;
  model.set_expected_nodes(3);
  model.on_report(10_s, 1, report_with_seqno(5));
  model.on_report(11_s, 1, report_with_seqno(4));  // straggler: dropped
  ASSERT_NE(model.entry(1), nullptr);
  EXPECT_EQ(model.entry(1)->report.seqno, 5);
  EXPECT_EQ(model.entry(1)->updated, 10_s) << "straggler must not refresh age";
  EXPECT_EQ(model.stats().reports, 1u);
  EXPECT_EQ(model.stats().stale_dropped, 1u);
  // Every arrival costs bytes on the wire, accepted or not.
  EXPECT_EQ(model.stats().bytes, 2 * msg::kHealthReportBytes);

  model.on_report(12_s, 1, report_with_seqno(6));
  EXPECT_EQ(model.entry(1)->report.seqno, 6);
  EXPECT_EQ(model.entry(1)->updates, 2u);
}

TEST(HealthModel, StalenessAndCoverage) {
  HealthModelConfig cfg;
  cfg.period = 60_s;  // stale_after defaults to two periods
  NetworkHealthModel model(cfg);
  model.set_expected_nodes(4);
  model.on_report(0, 1, report_with_seqno(0));
  model.on_report(0, 2, report_with_seqno(0));
  model.on_report(100_s, 3, report_with_seqno(0));

  // At t=110 s every entry is younger than the 2x60 s cutoff.
  EXPECT_DOUBLE_EQ(model.coverage(110_s), 0.75);
  // At t=130 s nodes 1 and 2 (age 130 s) have crossed it; node 3 has not.
  EXPECT_TRUE(model.is_fresh(130_s, 3));
  EXPECT_FALSE(model.is_fresh(130_s, 1));
  EXPECT_FALSE(model.is_fresh(130_s, 4));  // never reported
  EXPECT_DOUBLE_EQ(model.coverage(130_s), 0.25);
  EXPECT_EQ(model.stale_nodes(130_s), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(model.unseen_nodes(), (std::vector<NodeId>{4}));
}

TEST(HealthModel, EvictsAfterConfigurableAge) {
  HealthModelConfig cfg;
  cfg.period = 60_s;
  cfg.evict_after = 300_s;
  NetworkHealthModel model(cfg);
  model.set_expected_nodes(2);
  model.on_report(0, 1, report_with_seqno(0));
  model.on_report(250_s, 2, report_with_seqno(0));

  model.prune(299_s);
  EXPECT_EQ(model.tracked(), 2u);

  model.prune(301_s);  // node 1's entry is now older than evict_after
  EXPECT_EQ(model.tracked(), 1u);
  EXPECT_EQ(model.entry(1), nullptr);
  EXPECT_NE(model.entry(2), nullptr);
  EXPECT_EQ(model.stats().evicted, 1u);
  EXPECT_EQ(model.unseen_nodes(), (std::vector<NodeId>{1}));

  // evict_after = 0 keeps entries forever.
  NetworkHealthModel keeper;
  keeper.set_expected_nodes(1);
  keeper.on_report(0, 1, report_with_seqno(0));
  keeper.prune(3600_s);
  EXPECT_EQ(keeper.tracked(), 1u);
}

TEST(HealthModel, SnapshotJsonParsesAndMetricsExport) {
  HealthModelConfig cfg;
  cfg.period = 60_s;
  NetworkHealthModel model(cfg);
  model.set_expected_nodes(2);
  model.on_report(10_s, 1, report_with_seqno(3));

  const std::string line = model.render_snapshot_json(70_s);
  const auto doc = JsonValue::parse(line);
  ASSERT_TRUE(doc.has_value()) << line;
  EXPECT_DOUBLE_EQ(doc->number_or("expected", 0), 2.0);
  EXPECT_DOUBLE_EQ(doc->number_or("tracked", 0), 1.0);
  EXPECT_DOUBLE_EQ(doc->number_or("coverage", 0), 0.5);
  const JsonValue* nodes = doc->find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_EQ(nodes->as_array().size(), 1u);
  const JsonValue& n = nodes->as_array().front();
  EXPECT_DOUBLE_EQ(n.number_or("id", 0), 1.0);
  EXPECT_DOUBLE_EQ(n.number_or("age_s", 0), 60.0);
  EXPECT_DOUBLE_EQ(n.number_or("seq", 0), 3.0);

  MetricsRegistry registry;
  model.collect_metrics(registry, 70_s);
  EXPECT_DOUBLE_EQ(registry
                       .gauge("telea_health_coverage",
                              {{"side", "sink"}, {"sub", "health"}})
                       .value(),
                   0.5);
}

}  // namespace
}  // namespace telea
