// Causal span engine: reconstructing per-command spans from the trace
// stream, the segment-sum reconciliation invariant, energy attribution,
// and the report/Perfetto exports (docs/OBSERVABILITY.md, spans section).

#include "stats/spans.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "stats/metrics.hpp"
#include "stats/trace.hpp"
#include "topo/topology.hpp"
#include "util/json.hpp"

namespace telea {
namespace {

using namespace time_literals;

// One clean two-relay delivery: 0 transmits, 1 claims (the copy started at
// 1.040), 1 transmits, destination 2 consumes it.
std::vector<TraceRecord> clean_delivery() {
  Tracer t(32);
  t.record(1000000, 0, TraceEvent::kControlTx, 7, 1);
  t.record(1040000, 0, TraceEvent::kControlTx, 7, 1);  // LPL copy
  t.record(1044000, 1, TraceEvent::kForwardDecision, 7, 0,
           TraceReason::kExpectedRelay);
  t.record(1100000, 1, TraceEvent::kControlTx, 7, 2);
  t.record(1104000, 2, TraceEvent::kControlDelivered, 7, 1);
  return t.snapshot();
}

TEST(CommandSpans, ReconstructsHopsAndSegments) {
  const auto spans = build_command_spans(clean_delivery());
  ASSERT_EQ(spans.size(), 1u);
  const CommandSpan& s = spans.front();
  EXPECT_EQ(s.seqno, 7u);
  EXPECT_EQ(s.origin, 0);
  EXPECT_EQ(s.dest, 2);
  EXPECT_TRUE(s.delivered);
  EXPECT_EQ(s.start, 1000000u);
  EXPECT_EQ(s.end, 1104000u);
  EXPECT_EQ(s.latency(), 104000u);

  // Tenures: origin until node 1's claim, node 1 until delivery.
  ASSERT_EQ(s.hops.size(), 2u);
  EXPECT_EQ(s.hops[0].node, 0);
  EXPECT_EQ(s.hops[0].copies, 2u);
  EXPECT_EQ(s.hops[1].node, 1);
  EXPECT_EQ(s.hops[1].end, s.end);

  // Partition: wait at 0, the claimed copy's airtime, wait at 1, airtime
  // into the destination. Both airtime gaps run transmission -> arrival.
  EXPECT_NEAR(s.segment_seconds(SegmentKind::kLplWait), 0.096, 1e-9);
  EXPECT_NEAR(s.segment_seconds(SegmentKind::kAirtime), 0.008, 1e-9);
  EXPECT_EQ(s.segment_seconds(SegmentKind::kBacktrack), 0.0);
  EXPECT_EQ(s.dominant_segment(), SegmentKind::kLplWait);
}

TEST(CommandSpans, SegmentSumsEqualLatencyByConstruction) {
  const auto spans = build_command_spans(clean_delivery());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.front().segment_total(), spans.front().latency());
  EXPECT_TRUE(spans.front().reconciles(0));  // exact, not just within a tick
  EXPECT_EQ(count_reconcile_failures(spans), 0u);
}

TEST(CommandSpans, BacktrackAndDetourGetTheirOwnSegments) {
  Tracer t(32);
  t.record(1000000, 0, TraceEvent::kControlTx, 3, 1);
  t.record(1010000, 1, TraceEvent::kForwardDecision, 3, 0,
           TraceReason::kExpectedRelay);
  t.record(1020000, 1, TraceEvent::kControlTx, 3, 2);
  t.record(1600000, 1, TraceEvent::kBacktrack, 3, 0,
           TraceReason::kRetryExhausted);
  t.record(1700000, 0, TraceEvent::kRedirect, 3, 5,
           TraceReason::kNeighborUnreachable);
  t.record(1800000, 0, TraceEvent::kControlTx, 3, 5);
  t.record(1810000, 2, TraceEvent::kControlDelivered, 3, 0);
  const auto spans = build_command_spans(t.snapshot());
  ASSERT_EQ(spans.size(), 1u);
  const CommandSpan& s = spans.front();
  EXPECT_TRUE(s.delivered);
  EXPECT_NEAR(s.segment_seconds(SegmentKind::kBacktrack), 0.1, 1e-9);
  EXPECT_NEAR(s.segment_seconds(SegmentKind::kDetour), 0.1, 1e-9);
  EXPECT_TRUE(s.reconciles(0));
}

TEST(CommandSpans, UndeliveredSpanIsMarkedAndNotAReconcileFailure) {
  Tracer t(16);
  t.record(2000000, 0, TraceEvent::kControlTx, 9, 1);
  t.record(2100000, 0, TraceEvent::kControlTx, 9, 1);
  const auto spans = build_command_spans(t.snapshot());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_FALSE(spans.front().delivered);
  EXPECT_EQ(spans.front().dest, kInvalidNode);
  EXPECT_EQ(count_reconcile_failures(spans), 0u);
}

TEST(CommandSpans, PartiallyEvictedTraceDegradesGracefully) {
  // Ring eviction ate the origin's transmissions: the span starts at the
  // first surviving record instead of crashing or inventing time.
  Tracer t(16);
  t.record(5000000, 3, TraceEvent::kForwardDecision, 11, 0,
           TraceReason::kLongerPrefix);
  t.record(5100000, 3, TraceEvent::kControlTx, 11, 4);
  t.record(5110000, 4, TraceEvent::kControlDelivered, 11, 3);
  const auto spans = build_command_spans(t.snapshot());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans.front().origin, 3);
  EXPECT_TRUE(spans.front().delivered);
  EXPECT_TRUE(spans.front().reconciles());
}

TEST(CommandSpans, EnergyAttributionFollowsTheRadioStateModel) {
  const auto spans = build_command_spans(clean_delivery());
  ASSERT_EQ(spans.size(), 1u);
  SpanEnergyConfig cfg;
  cfg.supply_volts = 3.0;
  cfg.tx_current_ma = 20.0;
  cfg.rx_current_ma = 18.0;
  cfg.copy_airtime_s = 0.004;
  const CommandEnergy e = attribute_energy(spans.front(), cfg);
  // Listen floor: 0.104 s * 18 mA * 3 V = 5.616 mJ. TX delta: 3 copies *
  // 4 ms * 2 mA * 3 V = 0.072 mJ.
  EXPECT_NEAR(e.listen_uj, 5616.0, 1e-6);
  EXPECT_NEAR(e.tx_uj, 72.0, 1e-6);
  EXPECT_NEAR(e.total_uj, e.listen_uj + e.tx_uj, 1e-9);
  double per_node = 0.0;
  for (const auto& [node, uj] : e.per_node_uj) per_node += uj;
  EXPECT_NEAR(per_node, e.total_uj, 1e-6);
}

TEST(CommandSpans, MetricsCollectionFeedsHistogramsAndCounters) {
  const auto spans = build_command_spans(clean_delivery());
  MetricsRegistry reg;
  collect_span_metrics(spans, SpanEnergyConfig{}, reg);
  EXPECT_EQ(reg.counter("telea_command_spans_total").value(), 1u);
  EXPECT_EQ(reg.counter("telea_command_spans_delivered_total").value(), 1u);
  EXPECT_EQ(reg.counter("telea_span_reconcile_failures_total").value(), 0u);
  auto& lat = reg.histogram("telea_command_latency_seconds", {});
  EXPECT_EQ(lat.count(), 1u);
  EXPECT_NEAR(lat.sum(), 0.104, 1e-9);
  // The JSON export (and the quantiles the benches print) stay parseable.
  EXPECT_TRUE(JsonValue::parse(reg.render_json()).has_value());
}

TEST(CommandSpans, ReportJsonParsesWithAggregates) {
  const auto spans = build_command_spans(clean_delivery());
  const auto doc =
      JsonValue::parse(render_report_json(spans, SpanEnergyConfig{}, "unit"));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("name", ""), "unit");
  EXPECT_EQ(doc->number_or("commands", -1), 1.0);
  EXPECT_EQ(doc->number_or("delivered", -1), 1.0);
  EXPECT_EQ(doc->number_or("reconcile_failures", -1), 0.0);
  const JsonValue* lat = doc->find("latency_s");
  ASSERT_NE(lat, nullptr);
  EXPECT_NEAR(lat->number_or("p50", 0.0), 0.104, 1e-6);
  const JsonValue* rows = doc->find("per_command");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->as_array().size(), 1u);
  EXPECT_EQ(rows->as_array()[0].string_or("dominant", ""), "lpl_wait");
}

TEST(CommandSpans, PerfettoJsonIsSchemaValid) {
  const auto spans = build_command_spans(clean_delivery());
  const auto doc = JsonValue::parse(render_perfetto_json(spans));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("displayTimeUnit", ""), "ms");
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type(), JsonValue::Type::kArray);
  std::size_t complete = 0;
  std::size_t metadata = 0;
  for (const auto& e : events->as_array()) {
    const std::string ph = e.string_or("ph", "");
    ASSERT_TRUE(ph == "X" || ph == "M") << "unexpected phase " << ph;
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    if (ph == "X") {
      ++complete;
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
    } else {
      ++metadata;
    }
  }
  // 1 command slice + segments + 2 hop slices; 2 process + 3 thread names.
  EXPECT_GE(complete, 3u);
  EXPECT_GE(metadata, 5u);
}

TEST(CommandSpansIntegration, LiveDeliveryReconcilesEndToEnd) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 21;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  net.enable_tracing();
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());
  const auto seq = net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 1);
  ASSERT_TRUE(seq.has_value());
  net.run_for(2_min);

  const auto spans = net.command_spans();
  const CommandSpan* s = nullptr;
  for (const auto& span : spans) {
    if (span.seqno == *seq) s = &span;
  }
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->delivered);
  EXPECT_EQ(s->origin, 0);
  EXPECT_EQ(s->dest, 3);
  EXPECT_GE(s->hops.size(), 3u);
  // The tentpole invariant on real protocol output: the decomposition
  // tiles the measured end-to-end latency within one scheduler tick.
  EXPECT_TRUE(s->reconciles());
  EXPECT_EQ(count_reconcile_failures(spans), 0u);
  // A delivery across a 4-node line must include on-air time.
  EXPECT_GT(s->segment_seconds(SegmentKind::kAirtime), 0.0);

  const SpanEnergyConfig ecfg = net.span_energy_config();
  EXPECT_GT(ecfg.copy_airtime_s, 0.0);
  EXPECT_GT(attribute_energy(*s, ecfg).total_uj, 0.0);
}

}  // namespace
}  // namespace telea
