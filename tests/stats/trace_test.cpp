#include "stats/trace.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(Tracer, RecordsAndSnapshotsInOrder) {
  Tracer t(8);
  t.record(10, 1, TraceEvent::kTransmit, 3, 4);
  t.record(20, 2, TraceEvent::kKill);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].time, 10u);
  EXPECT_EQ(snap[0].node, 1);
  EXPECT_EQ(snap[0].a, 3u);
  EXPECT_EQ(snap[1].event, TraceEvent::kKill);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingDropsOldestBeyondCapacity) {
  Tracer t(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(i, 0, TraceEvent::kTransmit, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto snap = t.snapshot();
  EXPECT_EQ(snap.front().a, 6u);
  EXPECT_EQ(snap.back().a, 9u);
}

TEST(Tracer, CountAndByEventFilter) {
  Tracer t(16);
  t.record(1, 0, TraceEvent::kTransmit);
  t.record(2, 0, TraceEvent::kParentChange, 1, 2);
  t.record(3, 0, TraceEvent::kTransmit);
  EXPECT_EQ(t.count(TraceEvent::kTransmit), 2u);
  EXPECT_EQ(t.by_event(TraceEvent::kParentChange).size(), 1u);
}

TEST(Tracer, ControlPathCollapsesRepeats) {
  Tracer t(16);
  t.record(1, 0, TraceEvent::kControlTx, 7);
  t.record(2, 0, TraceEvent::kControlTx, 7);  // retry at same node
  t.record(3, 5, TraceEvent::kControlTx, 7);
  t.record(4, 9, TraceEvent::kControlTx, 8);  // different packet
  const auto path = t.control_path(7);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 5);
}

TEST(Tracer, CsvRendering) {
  Tracer t(4);
  t.record(1500000, 3, TraceEvent::kCodeChange, 12);
  t.record(1600000, 4, TraceEvent::kBacktrack, 7, 2,
           TraceReason::kRetryExhausted);
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("time_s,node,event,a,b,reason"), std::string::npos);
  EXPECT_NE(csv.find("1.500000,3,code_change,12,0,none"), std::string::npos);
  EXPECT_NE(csv.find("1.600000,4,backtrack,7,2,retry_exhausted"),
            std::string::npos);
}

TEST(Tracer, NamesRoundTripThroughLookups) {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(TraceEvent::kAlertResolved); ++i) {
    const auto e = static_cast<TraceEvent>(i);
    const auto back = trace_event_from_name(trace_event_name(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(TraceReason::kNeighborUnreachable); ++i) {
    const auto r = static_cast<TraceReason>(i);
    const auto back = trace_reason_from_name(trace_reason_name(r));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, r);
  }
  EXPECT_FALSE(trace_event_from_name("bogus").has_value());
  EXPECT_FALSE(trace_reason_from_name("bogus").has_value());
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t(4);
  t.set_enabled(false);
  t.record(1, 0, TraceEvent::kKill);
  TELEA_TRACE_EVENT(&t, 2, 0, TraceEvent::kKill);
  EXPECT_EQ(t.size(), 0u);
  t.set_enabled(true);
  TELEA_TRACE_EVENT(&t, 3, 0, TraceEvent::kKill);
  EXPECT_EQ(t.size(), 1u);
  Tracer* null_tracer = nullptr;
  TELEA_TRACE_EVENT(null_tracer, 4, 0, TraceEvent::kKill);  // must not crash
}

TEST(TracerRing, ExactlyAtCapacityKeepsEverything) {
  Tracer t(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    t.record(i, 0, TraceEvent::kTransmit, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 0u);
  EXPECT_EQ(t.count(TraceEvent::kTransmit), 4u);
  EXPECT_EQ(t.by_event(TraceEvent::kTransmit).size(), 4u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].a, i);
}

TEST(TracerRing, CapacityPlusOneDropsExactlyTheOldest) {
  Tracer t(4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    t.record(i, 0, TraceEvent::kTransmit, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 1u);
  // count() and by_event() must agree with each other and with snapshot()
  // right after the wrap.
  EXPECT_EQ(t.count(TraceEvent::kTransmit), 4u);
  const auto filtered = t.by_event(TraceEvent::kTransmit);
  ASSERT_EQ(filtered.size(), 4u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].a, i + 1);  // record 0 was dropped; order chronological
    EXPECT_EQ(filtered[i].a, i + 1);
  }
}

TEST(TracerRing, SnapshotStaysChronologicalAcrossManyWraps) {
  Tracer t(3);
  for (std::uint64_t i = 0; i < 11; ++i) {
    t.record(i * 10, 0, TraceEvent::kTransmit, i);
  }
  EXPECT_EQ(t.dropped(), 8u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].a, 8u);
  EXPECT_EQ(snap[1].a, 9u);
  EXPECT_EQ(snap[2].a, 10u);
  EXPECT_LT(snap[0].time, snap[1].time);
  EXPECT_LT(snap[1].time, snap[2].time);
}

TEST(TracerRing, ExplainSurvivesPartialEviction) {
  // A long run wraps the ring past a command's early records: explain must
  // render the surviving tail, not crash or claim the seqno never existed.
  Tracer t(4);
  t.record(1000000, 0, TraceEvent::kControlTx, 7, 1);
  t.record(1100000, 1, TraceEvent::kForwardDecision, 7, 0,
           TraceReason::kExpectedRelay);
  t.record(1200000, 1, TraceEvent::kControlTx, 7, 2);
  t.record(1300000, 2, TraceEvent::kForwardDecision, 7, 1,
           TraceReason::kExpectedRelay);
  t.record(1400000, 2, TraceEvent::kControlTx, 7, 3);
  t.record(1500000, 2, TraceEvent::kBacktrack, 7, 1,
           TraceReason::kRetryExhausted);
  EXPECT_EQ(t.dropped(), 2u);  // the sink's tx and node 1's claim are gone
  const std::string text = t.explain(7);
  EXPECT_NE(text.find("control seqno 7"), std::string::npos);
  EXPECT_NE(text.find("backtrack"), std::string::npos);
  // The reconstructed relay path starts at the first *surviving* node.
  EXPECT_NE(text.find("relay path: 1 2"), std::string::npos);
  // A fully evicted seqno still answers gracefully.
  EXPECT_NE(t.explain(99).find("no records"), std::string::npos);
}

TEST(TracerRing, ExplainAckOnlyTailAfterHeavyEviction) {
  // Heavier truncation: every forward-trip record is gone and only the ack
  // leg survives. The narrative must still render the ack hops, and the
  // relay-path summary (built from kControlTx records) must simply be
  // absent rather than fabricated.
  Tracer t(3);
  t.record(100, 0, TraceEvent::kControlTx, 5, 1);
  t.record(200, 1, TraceEvent::kControlTx, 5, 2);
  t.record(300, 2, TraceEvent::kControlDelivered, 5, 1);
  t.record(400, 2, TraceEvent::kAckPath, 5, 1);
  t.record(500, 1, TraceEvent::kAckPath, 5, 0);
  t.record(600, 0, TraceEvent::kCommandResolve, 5, 2);
  EXPECT_EQ(t.dropped(), 3u);  // both kControlTx records evicted

  const std::string text = t.explain(5);
  EXPECT_NE(text.find("control seqno 5"), std::string::npos);
  EXPECT_NE(text.find("ack hop"), std::string::npos);
  EXPECT_EQ(text.find("relay path"), std::string::npos);
  EXPECT_EQ(text.find("no records"), std::string::npos);

  // control_path agrees: no surviving transmissions, empty path, no crash.
  EXPECT_TRUE(t.control_path(5).empty());
}

TEST(TracerRing, TruncatedRingRoundTripsThroughJsonl) {
  // Offline tooling path: a wrapped ring is exported, re-parsed, and
  // explained via explain_control. The reconstruction from the truncated
  // export must match the live tracer's own rendering exactly.
  Tracer t(4);
  t.record(1000000, 0, TraceEvent::kControlTx, 9, 1);
  t.record(1100000, 1, TraceEvent::kForwardDecision, 9, 2,
           TraceReason::kExpectedRelay);
  t.record(1200000, 1, TraceEvent::kControlTx, 9, 2);
  t.record(1300000, 2, TraceEvent::kControlDelivered, 9, 1);
  t.record(1400000, 2, TraceEvent::kAckPath, 9, 1);
  t.record(1500000, 1, TraceEvent::kAckPath, 9, 0);
  EXPECT_EQ(t.dropped(), 2u);

  std::size_t skipped = 0;
  const auto records = parse_trace_jsonl(t.render_jsonl(), &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), t.size());
  EXPECT_EQ(explain_control(records, 9), t.explain(9));
  // The surviving tail starts mid-flight at node 1's second transmission.
  EXPECT_NE(t.explain(9).find("relay path: 1"), std::string::npos);
}

TEST(Tracer, ExplainOptionsFilterByNode) {
  Tracer t(16);
  t.record(1000000, 0, TraceEvent::kControlTx, 5, 1);
  t.record(1100000, 1, TraceEvent::kForwardDecision, 5, 0,
           TraceReason::kExpectedRelay);
  t.record(1200000, 1, TraceEvent::kControlTx, 5, 2);
  const auto records = t.snapshot();

  ExplainOptions opts;
  opts.node = 1;
  const std::string text = explain_control(records, 5, opts);
  EXPECT_EQ(text.find("node 0"), std::string::npos);
  EXPECT_NE(text.find("node 1"), std::string::npos);
  // The path summary still reflects the whole trajectory.
  EXPECT_NE(text.find("relay path: 0 1"), std::string::npos);

  opts.node = 9;  // a node that never touched the packet
  const std::string empty = explain_control(records, 5, opts);
  EXPECT_NE(empty.find("no records for this seqno at the selected node"),
            std::string::npos);
  EXPECT_NE(empty.find("relay path: 0 1"), std::string::npos);
}

TEST(Tracer, ExplainOptionsPathOnlyAndDeltas) {
  Tracer t(16);
  t.record(1000000, 0, TraceEvent::kControlTx, 5, 1);
  t.record(1100000, 1, TraceEvent::kForwardDecision, 5, 0,
           TraceReason::kExpectedRelay);
  t.record(1200000, 1, TraceEvent::kControlTx, 5, 2);
  const auto records = t.snapshot();

  ExplainOptions path_only;
  path_only.path_only = true;
  const std::string path = explain_control(records, 5, path_only);
  EXPECT_NE(path.find("control seqno 5"), std::string::npos);
  EXPECT_NE(path.find("relay path: 0 1"), std::string::npos);
  EXPECT_EQ(path.find("transmit"), std::string::npos);

  ExplainOptions deltas;
  deltas.deltas = true;
  const std::string rel = explain_control(records, 5, deltas);
  // First line anchors at +0, the claim shows its 0.1 s offset.
  EXPECT_NE(rel.find("+ 0.000000s"), std::string::npos);
  EXPECT_NE(rel.find("+ 0.100000s"), std::string::npos);
  EXPECT_EQ(rel.find("1000000"), std::string::npos);

  // Default options render byte-identically to the two-argument overload.
  EXPECT_EQ(explain_control(records, 5, ExplainOptions{}),
            explain_control(records, 5));
}

TEST(Tracer, ControlPathKeepsBacktrackLoops) {
  // A backtracked trajectory revisits a node non-adjacently: A,A,B,A must
  // collapse only the adjacent repeat, giving A,B,A — the loop is the
  // evidence of the backtrack and must survive.
  Tracer t(16);
  t.record(1, 4, TraceEvent::kControlTx, 9);
  t.record(2, 4, TraceEvent::kControlTx, 9);  // LPL copy at the same node
  t.record(3, 6, TraceEvent::kControlTx, 9);  // claimed downstream
  t.record(4, 6, TraceEvent::kBacktrack, 9, 4, TraceReason::kRetryExhausted);
  t.record(5, 4, TraceEvent::kControlTx, 9);  // upstream retries
  const auto path = t.control_path(9);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 4);
  EXPECT_EQ(path[1], 6);
  EXPECT_EQ(path[2], 4);
}

TEST(Tracer, ExplainReconstructsTrajectoryWithReasons) {
  Tracer t(16);
  t.record(1000000, 0, TraceEvent::kControlTx, 5, 1);
  t.record(1100000, 1, TraceEvent::kForwardDecision, 5, 0,
           TraceReason::kExpectedRelay);
  t.record(1200000, 1, TraceEvent::kControlTx, 5, 2);
  t.record(1300000, 1, TraceEvent::kBacktrack, 5, 0,
           TraceReason::kNeighborUnreachable);
  t.record(1400000, 2, TraceEvent::kRedirect, 5, 3,
           TraceReason::kNeighborUnreachable);
  const std::string text = t.explain(5);
  EXPECT_NE(text.find("control seqno 5"), std::string::npos);
  EXPECT_NE(text.find("expected_relay"), std::string::npos);
  EXPECT_NE(text.find("backtrack"), std::string::npos);
  EXPECT_NE(text.find("neighbor_unreachable"), std::string::npos);
  EXPECT_NE(text.find("redirect"), std::string::npos);
  EXPECT_NE(text.find("relay path: 0 1"), std::string::npos);
  EXPECT_NE(t.explain(99).find("no records"), std::string::npos);
}

TEST(Tracer, JsonlRoundTripsThroughParser) {
  Tracer t(16);
  t.record(1500000, 3, TraceEvent::kForwardDecision, 12, 7,
           TraceReason::kLongerPrefix);
  t.record(1600000, 4, TraceEvent::kSuppress, 12, 3,
           TraceReason::kRetryExhausted);
  const std::string jsonl = t.render_jsonl();

  std::size_t skipped = 0;
  const auto parsed = parse_trace_jsonl(jsonl, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].time, 1500000u);
  EXPECT_EQ(parsed[0].node, 3);
  EXPECT_EQ(parsed[0].event, TraceEvent::kForwardDecision);
  EXPECT_EQ(parsed[0].reason, TraceReason::kLongerPrefix);
  EXPECT_EQ(parsed[0].a, 12u);
  EXPECT_EQ(parsed[0].b, 7u);
  EXPECT_EQ(parsed[1].event, TraceEvent::kSuppress);
  EXPECT_EQ(parsed[1].reason, TraceReason::kRetryExhausted);

  // explain_control over reloaded records matches the live tracer's view.
  EXPECT_EQ(explain_control(parsed, 12), t.explain(12));
}

TEST(Tracer, JsonlParserSkipsMalformedLines) {
  std::size_t skipped = 0;
  const auto parsed = parse_trace_jsonl(
      "{\"t\":1.0,\"node\":2,\"event\":\"kill\",\"a\":0,\"b\":0,"
      "\"reason\":\"none\"}\n"
      "not json at all\n"
      "{\"t\":2.0,\"node\":9}\n"  // valid JSON, unknown shape -> kept? no event
      "\n",
      &skipped);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].node, 2);
  EXPECT_EQ(parsed[0].event, TraceEvent::kKill);
  EXPECT_EQ(skipped, 2u);
}

TEST(Tracer, ClearResets) {
  Tracer t(4);
  t.record(1, 0, TraceEvent::kKill);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(TracerIntegration, NetworkTracesControlPath) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 91;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(4_min);
  EXPECT_GT(tracer.count(TraceEvent::kTransmit), 10u);
  EXPECT_GT(tracer.count(TraceEvent::kCodeChange), 0u);

  const auto seq = net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 1);
  ASSERT_TRUE(seq.has_value());
  net.run_for(30_s);
  // The realized relay chain starts at the sink and ends adjacent to the
  // destination (the destination itself never retransmits).
  const auto path = tracer.control_path(*seq);
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
}

TEST(TracerIntegration, KillAndReviveAreRecorded) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 92;
  cfg.protocol = ControlProtocol::kTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(1_min);
  net.node(2).kill();
  net.run_for(30_s);
  net.node(2).revive();
  net.run_for(30_s);
  EXPECT_EQ(tracer.count(TraceEvent::kKill), 1u);
  EXPECT_EQ(tracer.count(TraceEvent::kRevive), 1u);
  EXPECT_FALSE(net.node(2).killed());
}

TEST(TracerIntegration, RevivedNodeRejoinsAndIsControllable) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 93;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  net.node(2).kill();
  net.run_for(2_min);
  net.node(2).revive();
  net.run_for(3_min);  // CTP + addressing repair

  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto& code = net.node(2).tele()->addressing().code();
  ASSERT_FALSE(code.empty());
  net.sink().tele()->send_control(2, code, 1);
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace telea
