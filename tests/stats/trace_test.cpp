#include "stats/trace.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(Tracer, RecordsAndSnapshotsInOrder) {
  Tracer t(8);
  t.record(10, 1, TraceEvent::kTransmit, 3, 4);
  t.record(20, 2, TraceEvent::kKill);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].time, 10u);
  EXPECT_EQ(snap[0].node, 1);
  EXPECT_EQ(snap[0].a, 3u);
  EXPECT_EQ(snap[1].event, TraceEvent::kKill);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingDropsOldestBeyondCapacity) {
  Tracer t(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(i, 0, TraceEvent::kTransmit, i);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto snap = t.snapshot();
  EXPECT_EQ(snap.front().a, 6u);
  EXPECT_EQ(snap.back().a, 9u);
}

TEST(Tracer, CountAndByEventFilter) {
  Tracer t(16);
  t.record(1, 0, TraceEvent::kTransmit);
  t.record(2, 0, TraceEvent::kParentChange, 1, 2);
  t.record(3, 0, TraceEvent::kTransmit);
  EXPECT_EQ(t.count(TraceEvent::kTransmit), 2u);
  EXPECT_EQ(t.by_event(TraceEvent::kParentChange).size(), 1u);
}

TEST(Tracer, ControlPathCollapsesRepeats) {
  Tracer t(16);
  t.record(1, 0, TraceEvent::kControlTx, 7);
  t.record(2, 0, TraceEvent::kControlTx, 7);  // retry at same node
  t.record(3, 5, TraceEvent::kControlTx, 7);
  t.record(4, 9, TraceEvent::kControlTx, 8);  // different packet
  const auto path = t.control_path(7);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], 0);
  EXPECT_EQ(path[1], 5);
}

TEST(Tracer, CsvRendering) {
  Tracer t(4);
  t.record(1500000, 3, TraceEvent::kCodeChange, 12);
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("time_s,node,event,a,b"), std::string::npos);
  EXPECT_NE(csv.find("1.500000,3,code_change,12,0"), std::string::npos);
}

TEST(Tracer, ClearResets) {
  Tracer t(4);
  t.record(1, 0, TraceEvent::kKill);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

TEST(TracerIntegration, NetworkTracesControlPath) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 91;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(4_min);
  EXPECT_GT(tracer.count(TraceEvent::kTransmit), 10u);
  EXPECT_GT(tracer.count(TraceEvent::kCodeChange), 0u);

  const auto seq = net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 1);
  ASSERT_TRUE(seq.has_value());
  net.run_for(30_s);
  // The realized relay chain starts at the sink and ends adjacent to the
  // destination (the destination itself never retransmits).
  const auto path = tracer.control_path(*seq);
  ASSERT_GE(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
}

TEST(TracerIntegration, KillAndReviveAreRecorded) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 92;
  cfg.protocol = ControlProtocol::kTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(1_min);
  net.node(2).kill();
  net.run_for(30_s);
  net.node(2).revive();
  net.run_for(30_s);
  EXPECT_EQ(tracer.count(TraceEvent::kKill), 1u);
  EXPECT_EQ(tracer.count(TraceEvent::kRevive), 1u);
  EXPECT_FALSE(net.node(2).killed());
}

TEST(TracerIntegration, RevivedNodeRejoinsAndIsControllable) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 93;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  net.node(2).kill();
  net.run_for(2_min);
  net.node(2).revive();
  net.run_for(3_min);  // CTP + addressing repair

  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto& code = net.node(2).tele()->addressing().code();
  ASSERT_FALSE(code.empty());
  net.sink().tele()->send_control(2, code, 1);
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace telea
