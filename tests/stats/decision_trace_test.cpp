// Integration coverage for the decision-level trace events: the protocol
// stack must emit claim / suppress / backtrack / ack-path records with
// reasons as a control packet traverses a live network, and the JSONL export
// must reconstruct the same trajectory offline.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/network.hpp"
#include "stats/trace.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(DecisionTrace, HealthyDeliveryEmitsClaimsAndAckPath) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 5;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());

  const auto seq = net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 1);
  ASSERT_TRUE(seq.has_value());
  net.run_for(2_min);

  // Intermediate relays claim the forwarding task; every claim carries the
  // condition that fired (on a line, the expected relay is hit).
  const auto claims = tracer.by_event(TraceEvent::kForwardDecision);
  ASSERT_FALSE(claims.empty());
  for (const auto& c : claims) {
    EXPECT_NE(c.reason, TraceReason::kNone);
    EXPECT_EQ(c.a, *seq);
  }

  // The end-to-end ack rides the collection plane back to the sink.
  const auto acks = tracer.by_event(TraceEvent::kAckPath);
  EXPECT_FALSE(acks.empty());

  const std::string text = tracer.explain(*seq);
  EXPECT_NE(text.find("claim forwarding"), std::string::npos);
  EXPECT_NE(text.find("relay path: 0"), std::string::npos);
}

TEST(DecisionTrace, DeadRelayProvokesBacktrackWithReason) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 6;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());

  // Cut the line at node 2: a control packet for node 3 gets as far as node
  // 1, exhausts its retries into the hole, and must hand the task back.
  net.node(2).kill();
  net.run_for(10_s);
  const auto seq = net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 2);
  ASSERT_TRUE(seq.has_value());
  net.run_for(4_min);

  const auto backtracks = tracer.by_event(TraceEvent::kBacktrack);
  ASSERT_FALSE(backtracks.empty());
  for (const auto& b : backtracks) {
    EXPECT_EQ(b.a, *seq);
    EXPECT_TRUE(b.reason == TraceReason::kRetryExhausted ||
                b.reason == TraceReason::kNeighborUnreachable);
  }
  EXPECT_NE(tracer.explain(*seq).find("backtrack"), std::string::npos);
}

TEST(DecisionTrace, JsonlExportReconstructsIdenticalTrajectory) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 7;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  net.start();
  net.run_for(6_min);
  const auto seq = net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 3);
  ASSERT_TRUE(seq.has_value());
  net.run_for(2_min);

  const std::string path =
      std::string(::testing::TempDir()) + "decision_trace.jsonl";
  ASSERT_TRUE(tracer.write_jsonl(path));
  std::size_t skipped = 0;
  const auto reloaded = load_trace_jsonl(path, &skipped);
  std::remove(path.c_str());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(reloaded->size(), tracer.size());
  EXPECT_EQ(explain_control(*reloaded, *seq), tracer.explain(*seq));
}

TEST(DecisionTrace, RuntimeDisableSilencesTheStack) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 8;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing();
  tracer.set_enabled(false);
  net.start();
  net.run_for(3_min);
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(true);
  net.run_for(1_min);
  EXPECT_GT(tracer.size(), 0u);
}

}  // namespace
}  // namespace telea
