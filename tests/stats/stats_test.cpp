#include "stats/summary.hpp"
#include "stats/table.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(SummaryStats, BasicMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);  // sample stddev
}

TEST(SummaryStats, EmptyIsZeroed) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(SummaryStats, MergeEqualsCombinedStream) {
  SummaryStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3;
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStats, MergeWithEmpty) {
  SummaryStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(GroupedStats, GroupsByKey) {
  GroupedStats g;
  g.add(1, 10.0);
  g.add(1, 20.0);
  g.add(2, 5.0);
  ASSERT_EQ(g.groups().size(), 2u);
  EXPECT_DOUBLE_EQ(g.groups().at(1).mean(), 15.0);
  EXPECT_EQ(g.groups().at(2).count(), 1u);
}

TEST(GroupedStats, MergeAccumulates) {
  GroupedStats a, b;
  a.add(1, 1.0);
  b.add(1, 3.0);
  b.add(2, 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.groups().at(1).mean(), 2.0);
  EXPECT_EQ(a.groups().at(2).count(), 1u);
}

TEST(Cdf, QuantilesAndAt) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.at(50), 0.5);
  EXPECT_DOUBLE_EQ(c.at(0), 0.0);
  EXPECT_DOUBLE_EQ(c.at(1000), 1.0);
  EXPECT_NEAR(c.quantile(0.9), 90, 1.01);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
}

TEST(Cdf, InterleavedAddAndQuery) {
  Cdf c;
  c.add(5);
  EXPECT_DOUBLE_EQ(c.at(5), 1.0);
  c.add(10);
  EXPECT_DOUBLE_EQ(c.at(5), 0.5);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"proto", "pdr"});
  t.row({"Tele", "99.8%"});
  t.row({"Drip", "100.0%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| proto"), std::string::npos);
  EXPECT_NE(out.find("| Tele"), std::string::npos);
  EXPECT_NE(out.find("| 100.0%"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TextTable, FmtHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_pct(0.998, 1), "99.8%");
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.row({"only-one"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace telea
