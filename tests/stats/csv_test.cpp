#include <gtest/gtest.h>

#include <cstdio>

#include "stats/table.hpp"

namespace telea {
namespace {

TEST(Csv, PlainFieldsUnquoted) {
  TextTable t({"a", "b"});
  t.row({"1", "2.5"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2.5\n");
}

TEST(Csv, FieldsWithSeparatorsQuoted) {
  TextTable t({"name", "value"});
  t.row({"hop, count", "line\nbreak"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"hop, count\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(Csv, EmbeddedQuotesDoubled) {
  TextTable t({"q"});
  t.row({"say \"hi\""});
  EXPECT_NE(t.render_csv().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, ShortRowsRenderTheirCells) {
  TextTable t({"a", "b", "c"});
  t.row({"only"});
  EXPECT_EQ(t.render_csv(), "a,b,c\nonly\n");
}

TEST(Csv, WriteCsvRoundTrips) {
  TextTable t({"x", "y"});
  t.row({"1", "2"});
  const std::string path = "/tmp/telea_csv_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "x,y\n1,2\n");
}

TEST(Csv, WriteCsvFailsOnBadPath) {
  TextTable t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent/dir/file.csv"));
}

}  // namespace
}  // namespace telea
