#include "stats/metrics.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"
#include "util/json.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter("telea_test_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  c.set_total(42);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = reg.gauge("telea_test_level");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, InstancesAreStableAndLabelOrderCanonical) {
  MetricsRegistry reg;
  Counter& a = reg.counter("telea_x_total", {{"node", "1"}, {"sub", "lpl"}});
  // Same labels in a different order must resolve to the same instance.
  Counter& b = reg.counter("telea_x_total", {{"sub", "lpl"}, {"node", "1"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("telea_x_total", {{"node", "2"}, {"sub", "lpl"}});
  EXPECT_NE(&a, &other);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, HistogramBucketsArePrometheusShaped) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("telea_lat_seconds", {0.1, 0.5, 1.0});
  h.observe(0.05);
  h.observe(0.3);
  h.observe(0.3);
  h.observe(2.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.65);
  EXPECT_EQ(h.cumulative(0), 1u);  // <= 0.1
  EXPECT_EQ(h.cumulative(1), 3u);  // <= 0.5
  EXPECT_EQ(h.cumulative(2), 3u);  // <= 1.0
  EXPECT_EQ(h.bucket_counts().back(), 1u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.cumulative(2), 0u);
}

TEST(Metrics, HistogramQuantileInterpolatesInsideBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("telea_q_seconds", {1.0, 2.0, 4.0});
  for (int i = 0; i < 8; ++i) h.observe(1.5);  // all in (1, 2]
  // Rank q*8 lands in the (1,2] bucket; interpolation walks it linearly.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);

  h.observe(1.5);
  h.observe(8.0);  // one overflow observation
  // A rank inside +Inf clamps to the highest finite bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 4.0);

  Histogram& empty = reg.histogram("telea_q_empty", {1.0});
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(Metrics, HistogramQuantileSingleSampleReturnsSampleValue) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("telea_q_single", {0.0, 100.0});
  h.observe(7.0);
  // Interpolating the lone sample's bucket used to answer 50 for p50 — a
  // value never observed. One sample IS every quantile.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);

  // A histogram with no finite bucket puts everything in +Inf; the mean is
  // the only bounded answer (this used to report 0).
  Histogram& unbounded = reg.histogram("telea_q_unbounded", {});
  unbounded.observe(3.0);
  unbounded.observe(5.0);
  EXPECT_DOUBLE_EQ(unbounded.quantile(0.5), 4.0);
}

TEST(Metrics, HistogramQuantileSpansMultipleBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("telea_q_multi", {1.0, 2.0, 4.0});
  h.observe(0.5);   // (0, 1]
  h.observe(0.5);
  h.observe(1.5);   // (1, 2]
  h.observe(3.0);   // (2, 4]
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.5);  // rank 1 of 2 in the first bucket
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 2.0);  // rank 3 exhausts bucket two
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Metrics, PrometheusRenderingIsValidExposition) {
  MetricsRegistry reg;
  reg.describe("telea_ops_total", "operations performed");
  reg.counter("telea_ops_total", {{"node", "3"}}).inc(7);
  reg.gauge("telea_depth").set(4);
  Histogram& h = reg.histogram("telea_lat_seconds", {0.5});
  h.observe(0.25);
  h.observe(0.75);

  const std::string text = reg.render_prometheus();
  EXPECT_NE(text.find("# HELP telea_ops_total operations performed\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE telea_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("telea_ops_total{node=\"3\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE telea_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("telea_depth 4\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE telea_lat_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("telea_lat_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("telea_lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("telea_lat_seconds_sum 1\n"), std::string::npos);
  EXPECT_NE(text.find("telea_lat_seconds_count 2\n"), std::string::npos);
}

TEST(Metrics, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("telea_ops_total", {{"node", "3"}, {"sub", "lpl"}}).inc(7);
  reg.gauge("telea_depth").set(4.25);
  Histogram& h = reg.histogram("telea_lat_seconds", {0.5, 1.0});
  h.observe(0.25);
  h.observe(0.75);
  h.observe(5.0);

  const auto doc = JsonValue::parse(reg.render_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type(), JsonValue::Type::kArray);
  ASSERT_EQ(metrics->as_array().size(), 3u);

  // Entries are ordered by (name, labels); pick each back out and check the
  // values survived the round trip exactly.
  const JsonValue& depth = metrics->as_array()[0];
  EXPECT_EQ(depth.string_or("name", ""), "telea_depth");
  EXPECT_EQ(depth.string_or("type", ""), "gauge");
  EXPECT_DOUBLE_EQ(depth.number_or("value", -1), 4.25);

  const JsonValue& lat = metrics->as_array()[1];
  EXPECT_EQ(lat.string_or("name", ""), "telea_lat_seconds");
  EXPECT_EQ(lat.string_or("type", ""), "histogram");
  EXPECT_DOUBLE_EQ(lat.number_or("sum", -1), 6.0);
  EXPECT_DOUBLE_EQ(lat.number_or("count", -1), 3);
  EXPECT_DOUBLE_EQ(lat.number_or("overflow", -1), 1);
  const JsonValue* buckets = lat.find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->as_array()[0].number_or("le", -1), 0.5);
  EXPECT_DOUBLE_EQ(buckets->as_array()[0].number_or("count", -1), 1);
  EXPECT_DOUBLE_EQ(buckets->as_array()[1].number_or("count", -1), 1);

  const JsonValue& ops = metrics->as_array()[2];
  EXPECT_EQ(ops.string_or("name", ""), "telea_ops_total");
  EXPECT_EQ(ops.string_or("type", ""), "counter");
  EXPECT_DOUBLE_EQ(ops.number_or("value", -1), 7);
  const JsonValue* labels = ops.find("labels");
  ASSERT_NE(labels, nullptr);
  EXPECT_EQ(labels->string_or("node", ""), "3");
  EXPECT_EQ(labels->string_or("sub", ""), "lpl");
}

TEST(Metrics, SnapshotDiffSubtractsCountersButNotGauges) {
  MetricsRegistry reg;
  Counter& c = reg.counter("telea_ops_total");
  Gauge& g = reg.gauge("telea_depth");
  Histogram& h = reg.histogram("telea_lat_seconds", {1.0});
  c.inc(10);
  g.set(5);
  h.observe(0.5);

  const MetricsSnapshot before = reg.snapshot();
  EXPECT_DOUBLE_EQ(before.at("telea_ops_total"), 10.0);

  c.inc(3);
  g.set(2);
  h.observe(0.25);
  h.observe(7.0);

  const MetricsSnapshot delta = reg.diff(before);
  EXPECT_DOUBLE_EQ(delta.at("telea_ops_total"), 3.0);
  EXPECT_DOUBLE_EQ(delta.at("telea_depth"), 2.0);  // gauge: current value
  EXPECT_DOUBLE_EQ(delta.at("telea_lat_seconds_count"), 2.0);
  EXPECT_DOUBLE_EQ(delta.at("telea_lat_seconds_bucket{le=\"1\"}"), 1.0);
  EXPECT_DOUBLE_EQ(delta.at("telea_lat_seconds_bucket{le=\"+Inf\"}"), 2.0);
}

TEST(Metrics, SnapshotDiffClampsCounterResetsToZero) {
  // Regression: a collector-mirrored counter can go *backwards* when its
  // source node reboots with protocol state wiped. diff() must clamp the
  // delta to zero — a negative "increase" poisons every rate computed from
  // it — while gauges keep reporting their (legitimately lower) value.
  MetricsRegistry reg;
  Counter& c = reg.counter("telea_ops_total");
  Gauge& g = reg.gauge("telea_depth");
  Histogram& h = reg.histogram("telea_lat_seconds", {1.0});
  c.inc(10);
  g.set(5);
  h.observe(0.5);
  h.observe(0.25);
  const MetricsSnapshot before = reg.snapshot();

  // Simulate the reboot: fresh registry, totals restart from zero.
  MetricsRegistry after_reboot;
  after_reboot.counter("telea_ops_total").inc(4);
  after_reboot.gauge("telea_depth").set(2);
  after_reboot.histogram("telea_lat_seconds", {1.0}).observe(0.5);

  const MetricsSnapshot delta = after_reboot.diff(before);
  EXPECT_DOUBLE_EQ(delta.at("telea_ops_total"), 0.0);  // 4 - 10, clamped
  EXPECT_DOUBLE_EQ(delta.at("telea_depth"), 2.0);      // gauge: current value
  EXPECT_DOUBLE_EQ(delta.at("telea_lat_seconds_count"), 0.0);  // 1 - 2
  EXPECT_DOUBLE_EQ(delta.at("telea_lat_seconds_bucket{le=\"1\"}"), 0.0);
}

TEST(MetricsIntegration, NetworkCollectorRefreshesWithoutDoubleCounting) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 17;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  net.start();
  net.run_for(4_min);

  MetricsRegistry reg;
  net.collect_metrics(reg);
  const MetricsSnapshot first = reg.snapshot();
  EXPECT_GT(reg.size(), 0u);
  EXPECT_GT(first.at("telea_phy_transmissions_total{sub=\"phy\"}"), 0.0);

  // Collecting again without advancing time must be idempotent — the
  // collector mirrors absolute totals, it does not accumulate.
  net.collect_metrics(reg);
  const MetricsSnapshot second = reg.snapshot();
  EXPECT_EQ(first, second);

  net.run_for(2_min);
  net.collect_metrics(reg);
  const MetricsSnapshot delta = reg.diff(first);
  EXPECT_GT(delta.at("telea_phy_transmissions_total{sub=\"phy\"}"), 0.0);

  // The export formats stay parseable with the full live label set.
  EXPECT_TRUE(JsonValue::parse(reg.render_json()).has_value());
  EXPECT_NE(reg.render_prometheus().find("# TYPE telea_duty_cycle gauge"),
            std::string::npos);
}

}  // namespace
}  // namespace telea
