#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include "radio/phy.hpp"

namespace telea {
namespace {

TEST(Topology, TightGridHas225NodesInField) {
  const Topology t = make_tight_grid(1);
  EXPECT_EQ(t.size(), 225u);
  EXPECT_EQ(t.name, "Tight-grid");
  for (const auto& p : t.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 200.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 200.0);
  }
  // Sink at the center.
  EXPECT_NEAR(t.positions[0].x, 100.0, 1e-9);
  EXPECT_NEAR(t.positions[0].y, 100.0, 1e-9);
}

TEST(Topology, SparseLinearHas225NodesInLongField) {
  const Topology t = make_sparse_linear(1);
  EXPECT_EQ(t.size(), 225u);
  for (const auto& p : t.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 60.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 600.0);
  }
  // Sink at one endpoint of the field.
  EXPECT_NEAR(t.positions[0].y, 0.0, 1e-9);
}

TEST(Topology, SparseLinearLossierThanTightGrid) {
  // "High gain" vs "low gain": the sparse-linear field uses a shorter
  // nominal range, i.e. higher reference loss.
  EXPECT_GT(make_sparse_linear(1).path_loss.loss_at_reference_db,
            make_tight_grid(1).path_loss.loss_at_reference_db);
}

TEST(Topology, IndoorTestbedHas40NodesAtLowPower) {
  const Topology t = make_indoor_testbed(1);
  EXPECT_EQ(t.size(), 40u);
  EXPECT_DOUBLE_EQ(t.tx_power_dbm, Cc2420Phy::tx_power_dbm(2));
}

TEST(Topology, IndoorBoardNodesOnTwoRows) {
  const Topology t = make_indoor_testbed(1);
  // Nodes 1..21 are board slots: y is 0 or 1.8.
  for (std::size_t i = 1; i <= 21; ++i) {
    EXPECT_TRUE(t.positions[i].y == 0.0 || t.positions[i].y == 1.8)
        << "node " << i;
  }
}

TEST(Topology, UniformRandomRespectsBounds) {
  const Topology t = make_uniform_random(30, 120.0, 9);
  EXPECT_EQ(t.size(), 30u);
  for (const auto& p : t.positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 120.0);
  }
}

TEST(Topology, LineIsEvenlySpacedAndDeterministic) {
  const Topology t = make_line(5, 10.0);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(t.positions[i].x, static_cast<double>(i) * 10.0);
    EXPECT_DOUBLE_EQ(t.positions[i].y, 0.0);
  }
  EXPECT_DOUBLE_EQ(t.path_loss.shadowing_sigma_db, 0.0);
}

TEST(Topology, GeneratorsDeterministicPerSeed) {
  const Topology a = make_tight_grid(5);
  const Topology b = make_tight_grid(5);
  const Topology c = make_tight_grid(6);
  EXPECT_DOUBLE_EQ(a.positions[10].x, b.positions[10].x);
  EXPECT_NE(a.positions[10].x, c.positions[10].x);
}

TEST(Topology, AllExactly225ForPaperFields) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    EXPECT_EQ(make_tight_grid(seed).size(), 225u);
    EXPECT_EQ(make_sparse_linear(seed).size(), 225u);
  }
}

}  // namespace
}  // namespace telea
