#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

TEST(Connectivity, LineIsConnected) {
  EXPECT_TRUE(is_connected(make_line(6, 20.0), 1));
}

TEST(Connectivity, FarApartPairIsNot) {
  Topology topo = make_line(2, 20.0);
  topo.positions[1].x = 5000.0;
  EXPECT_FALSE(is_connected(topo, 1));
}

TEST(Connectivity, EmptyTopologyIsNot) {
  Topology topo;
  EXPECT_FALSE(is_connected(topo, 1));
}

TEST(Connectivity, SingleNodeIsConnected) {
  Topology topo = make_line(1, 10.0);
  EXPECT_TRUE(is_connected(topo, 1));
}

TEST(Connectivity, MarginTightensTheVerdict) {
  // A topology that passes with generous margin can fail when headroom is
  // demanded.
  Topology topo = make_line(2, 20.0);  // nominal range 30 m
  EXPECT_TRUE(is_connected(topo, 1, /*margin_db=*/0.0));
  EXPECT_FALSE(is_connected(topo, 1, /*margin_db=*/-40.0));
}

TEST(Connectivity, MakeConnectedRandomAlwaysConnected) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const Topology topo = make_connected_random(15, 60.0, seed);
    EXPECT_EQ(topo.size(), 15u);
    EXPECT_TRUE(is_connected(topo, seed)) << "seed " << seed;
  }
}

TEST(Connectivity, PaperTopologiesAreConnected) {
  EXPECT_TRUE(is_connected(make_tight_grid(1), 1, 0.0));
  EXPECT_TRUE(is_connected(make_indoor_testbed(1), 1, 0.0));
}

}  // namespace
}  // namespace telea
