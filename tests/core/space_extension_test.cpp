// Space extension (Sec. III-B6): a parent that runs out of positions extends
// its bit space by one, keeps every allocated position, and the new codes
// ripple down the tree through TeleAdjusting beacons.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kTele;
  return cfg;
}

TEST(SpaceExtension, ExtensionRipplesDownTheLine) {
  Network net(line_config(4, 61));
  net.start();
  net.run_for(4_min);

  auto& a0 = net.sink().tele()->addressing();
  auto& a1 = net.node(1).tele()->addressing();
  auto& a2 = net.node(2).tele()->addressing();
  ASSERT_TRUE(a1.has_code() && a2.has_code());
  const std::uint8_t old_bits = a0.space_bits();
  const PathCode old_code_1 = a1.code();
  const PathCode old_code_2 = a2.code();

  // Exhaust the sink's space with synthetic position requests.
  const std::uint32_t capacity = (1u << old_bits) - 1;
  for (std::uint32_t i = 0; i <= capacity + 1; ++i) {
    a0.handle_position_request(static_cast<NodeId>(600 + i), true);
  }
  ASSERT_GT(a0.space_bits(), old_bits);

  // Let the extension beacons propagate down two levels.
  net.run_for(2_min);

  // Node 1's position is unchanged, its code longer (wider field).
  const auto* entry = a0.children().find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(a1.code().size(), a0.code().size() + a0.space_bits());
  EXPECT_NE(a1.code(), old_code_1);
  // The change propagated to node 2 (its prefix is node 1's new code).
  EXPECT_TRUE(a1.code().is_prefix_of(a2.code()));
  EXPECT_NE(a2.code(), old_code_2);
  // Old codes retained for in-flight control (Sec. III-B6).
  EXPECT_EQ(a1.old_code(), old_code_1);
}

TEST(SpaceExtension, ControlStillDeliversAcrossCodeChange) {
  Network net(line_config(4, 62));
  net.start();
  net.run_for(4_min);

  auto& a0 = net.sink().tele()->addressing();
  const std::uint32_t capacity = (1u << a0.space_bits()) - 1;
  for (std::uint32_t i = 0; i <= capacity; ++i) {
    a0.handle_position_request(static_cast<NodeId>(700 + i), true);
  }
  net.run_for(2_min);  // codes settle again

  bool delivered = false;
  net.node(3).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto& code = net.node(3).tele()->addressing().code();
  net.sink().tele()->send_control(3, code, 1);
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace telea
