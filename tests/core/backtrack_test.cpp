// Backtracking mechanics (Sec. III-C3): feedback delivery, resumption at
// the upstream relay, unreachable marks, and the bounded backtrack budget
// (the anti-livelock rule DESIGN.md §7 documents).

#include <gtest/gtest.h>

#include "core/teleadjusting.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

/// Diamond with a stub: 0 - {1,2} - 3, destination 4 hanging off node 3.
NetworkConfig diamond_config(std::uint64_t seed) {
  NetworkConfig cfg;
  Topology topo = make_line(2, 22.0);
  topo.name = "DiamondStub";
  topo.positions = {{0, 0}, {20, 8}, {20, -8}, {40, 0}, {60, 0}};
  cfg.topology = topo;
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kTele;  // no Re-Tele: backtracking only
  return cfg;
}

TEST(Backtrack, FeedbackResumesAtUpstreamRelay) {
  // Kill node 3 (the only way to 4): whoever holds the packet backtracks to
  // the sink, which retries and ultimately reports failure — each step
  // observable through the stats counters.
  Network net(diamond_config(51));
  net.start();
  net.run_for(5_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());
  const PathCode code = net.node(4).tele()->addressing().code();
  net.node(3).kill();
  net.node(4).kill();

  bool failed = false;
  net.sink().tele()->on_delivery_failed = [&](std::uint32_t) { failed = true; };
  net.sink().tele()->send_control(4, code, 1);
  net.run_for(3_min);
  EXPECT_TRUE(failed);

  std::uint64_t backtracks = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    backtracks += net.node(i).tele()->forwarding().stats().backtracks;
  }
  EXPECT_GE(backtracks, 1u);
}

TEST(Backtrack, BudgetBoundsFeedbackRounds) {
  NetworkConfig cfg = diamond_config(52);
  cfg.tele.forwarding.max_backtracks = 2;
  cfg.tele.forwarding.forward_retries = 1;
  Network net(cfg);
  net.start();
  net.run_for(5_min);
  const PathCode code = net.node(4).tele()->addressing().code();
  ASSERT_FALSE(code.empty());
  net.node(3).kill();
  net.node(4).kill();
  net.sink().tele()->send_control(4, code, 1);
  net.run_for(5_min);

  // No node may exceed its per-packet budget.
  for (NodeId i = 0; i < net.size(); ++i) {
    EXPECT_LE(net.node(i).tele()->forwarding().stats().backtracks,
              std::uint64_t{cfg.tele.forwarding.max_backtracks} + 1)
        << "node " << i;
  }
}

TEST(Backtrack, DisabledMeansNoFeedback) {
  NetworkConfig cfg = diamond_config(53);
  cfg.tele.forwarding.backtracking = false;
  Network net(cfg);
  net.start();
  net.run_for(5_min);
  const PathCode code = net.node(4).tele()->addressing().code();
  ASSERT_FALSE(code.empty());
  net.node(3).kill();
  net.node(4).kill();
  net.sink().tele()->send_control(4, code, 1);
  net.run_for(3_min);
  for (NodeId i = 1; i < net.size(); ++i) {
    EXPECT_EQ(net.node(i).tele()->forwarding().stats().backtracks, 0u)
        << "node " << i;
  }
}

TEST(Backtrack, UnreachableMarksClearOnBeacon) {
  Network net(diamond_config(54));
  net.start();
  net.run_for(5_min);
  auto& neighbors = net.sink().tele()->addressing().neighbors();
  neighbors.mark_unreachable(1, net.sim().now());
  ASSERT_TRUE(neighbors.is_unreachable(1));
  // Node 1 keeps beaconing; the dispatcher's on_beacon_heard must clear it.
  net.run_for(3_min);
  EXPECT_FALSE(neighbors.is_unreachable(1));
}

}  // namespace
}  // namespace telea
