#include <gtest/gtest.h>

#include "core/flight_recorder.hpp"
#include "util/json.hpp"

namespace telea {
namespace {

TEST(FlightRecorder, RingKeepsNewestAndCountsDrops) {
  FlightRecorder rec(3);
  EXPECT_EQ(rec.capacity(), 3u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    rec.record(i, FlightEvent::kForwardDecision, i, 0);
  }
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Oldest-first, holding the newest three records.
  EXPECT_EQ(events.front().a, 2u);
  EXPECT_EQ(events.back().a, 4u);
}

TEST(FlightRecorder, CapacityFloorsAtOne) {
  FlightRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record(1, FlightEvent::kReboot, 0, 0);
  rec.record(2, FlightEvent::kBacktrack, 7, 3);
  ASSERT_EQ(rec.snapshot().size(), 1u);
  EXPECT_EQ(rec.snapshot().front().event, FlightEvent::kBacktrack);
}

TEST(FlightRecorder, EventNamesAreStable) {
  EXPECT_STREQ(flight_event_name(FlightEvent::kForwardDecision),
               "forward_decision");
  EXPECT_STREQ(flight_event_name(FlightEvent::kSuppress), "suppress");
  EXPECT_STREQ(flight_event_name(FlightEvent::kBacktrack), "backtrack");
  EXPECT_STREQ(flight_event_name(FlightEvent::kAckTimeout), "ack_timeout");
  EXPECT_STREQ(flight_event_name(FlightEvent::kGiveUp), "give_up");
  EXPECT_STREQ(flight_event_name(FlightEvent::kParentChange), "parent_change");
  EXPECT_STREQ(flight_event_name(FlightEvent::kCodeChange), "code_change");
  EXPECT_STREQ(flight_event_name(FlightEvent::kReboot), "reboot");
}

TEST(FlightRecorder, DumpRendersAsJsonAndText) {
  FlightRecorder rec(8);
  rec.record(1'000'000, FlightEvent::kAckTimeout, 42, 9);
  rec.record(2'500'000, FlightEvent::kGiveUp, 42, 3);

  FlightDump dump;
  dump.time = 3'000'000;
  dump.node = 17;
  dump.trigger = "command_give_up";
  dump.events = rec.snapshot();
  dump.dropped = rec.total_recorded() - dump.events.size();

  const std::string json = render_flight_dump_json(dump);
  const auto doc = JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value()) << json;
  EXPECT_DOUBLE_EQ(doc->number_or("node", 0), 17.0);
  EXPECT_EQ(doc->string_or("trigger", ""), "command_give_up");
  const JsonValue* events = doc->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->as_array().size(), 2u);
  EXPECT_EQ(events->as_array()[0].string_or("event", ""), "ack_timeout");
  EXPECT_DOUBLE_EQ(events->as_array()[1].number_or("a", 0), 42.0);

  const std::string text = render_flight_dump_text(dump);
  EXPECT_NE(text.find("command_give_up"), std::string::npos);
  EXPECT_NE(text.find("give_up"), std::string::npos);
  EXPECT_NE(text.find("node 17"), std::string::npos);
}

}  // namespace
}  // namespace telea
