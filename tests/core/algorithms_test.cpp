// Conformance tests for the paper's Algorithms 1-3 at the message level,
// driven by direct calls against nodes of a converged line network.
//
// Algorithm 1: initial position allocation (space sizing + unique positions
//              + double beacon broadcast).
// Algorithm 2: parent's interaction — confirm matching claims, reallocate
//              mismatches, allocate unknown children, extend full spaces.
// Algorithm 3: child's interaction — adopt allocated position, confirm,
//              request when absent, update on space extension.

#include <gtest/gtest.h>

#include "core/addressing.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

class Algorithms : public ::testing::Test {
 protected:
  void SetUp() override {
    NetworkConfig cfg;
    cfg.topology = make_line(4, 22.0);
    cfg.seed = 65;
    cfg.protocol = ControlProtocol::kTele;
    net_ = std::make_unique<Network>(cfg);
    net_->start();
    net_->run_for(4_min);
    ASSERT_TRUE(addressing(3).has_code());
  }

  Addressing& addressing(NodeId id) {
    return net_->node(id).tele()->addressing();
  }

  msg::CtpBeacon claim_beacon(NodeId parent, std::uint32_t position,
                              std::uint8_t code_len) {
    msg::CtpBeacon b;
    b.parent = parent;
    b.etx = 100;
    b.hops = 2;
    b.seqno = 99;
    b.has_position_claim = true;
    b.claimed_position = position;
    b.claimed_code_len = code_len;
    return b;
  }

  std::unique_ptr<Network> net_;
};

// --- Algorithm 1 -----------------------------------------------------------

TEST_F(Algorithms, Alg1PositionsAreUniqueAndInsideSpace) {
  for (NodeId parent = 0; parent < 3; ++parent) {
    const auto& table = addressing(parent).children();
    const std::uint8_t bits = addressing(parent).space_bits();
    std::set<std::uint32_t> seen;
    for (const auto& e : table.entries()) {
      EXPECT_TRUE(seen.insert(e.position).second) << "parent " << parent;
      EXPECT_GT(e.position, 0u);  // zero reserved
      EXPECT_LT(e.position, 1u << bits);
    }
  }
}

TEST_F(Algorithms, Alg1SpaceCoversChildrenPlusSlack) {
  const auto& a = addressing(0);
  const HeadroomPolicy policy{};
  const auto n = static_cast<std::uint32_t>(a.children().size());
  EXPECT_GE((1u << a.space_bits()) - 1, n) << "capacity below child count";
  (void)policy;
}

// --- Algorithm 2 -----------------------------------------------------------

TEST_F(Algorithms, Alg2MatchingClaimConfirms) {
  Addressing& parent = addressing(1);
  const auto* entry = parent.children().find(2);
  ASSERT_NE(entry, nullptr);
  // Simulate losing the confirmation: reset and re-hear the child's claim.
  parent.children().find(2);
  const auto claim = claim_beacon(
      /*parent=*/1, entry->position,
      static_cast<std::uint8_t>(addressing(2).code().size()));
  net_->node(1).on_beacon_heard(2, claim);
  EXPECT_TRUE(parent.children().find(2)->confirmed);
}

TEST_F(Algorithms, Alg2MismatchedClaimReallocates) {
  Addressing& parent = addressing(1);
  const auto* entry = parent.children().find(2);
  ASSERT_NE(entry, nullptr);
  const std::uint32_t wrong = entry->position + 1;
  const auto before_allocs = parent.stats().allocations;
  net_->node(1).on_beacon_heard(
      2, claim_beacon(1, wrong, static_cast<std::uint8_t>(
                                    addressing(2).code().size())));
  // Alg. 2 line 4-6: flag reset and an allocation acknowledgement sent.
  EXPECT_GT(parent.stats().allocations, before_allocs);
  EXPECT_FALSE(parent.children().find(2)->confirmed);
}

TEST_F(Algorithms, Alg2UnknownChildGetsAllocated) {
  Addressing& parent = addressing(1);
  const auto before = parent.children().size();
  net_->node(1).on_beacon_heard(77, claim_beacon(1, 5, 9));
  EXPECT_EQ(parent.children().size(), before + 1);
  EXPECT_NE(parent.children().find(77), nullptr);
}

TEST_F(Algorithms, Alg2ChildLeavingIsForgotten) {
  Addressing& parent = addressing(1);
  ASSERT_NE(parent.children().find(2), nullptr);
  // Node 2's beacon now claims a different parent.
  msg::CtpBeacon defect = claim_beacon(/*parent=*/0, 1, 5);
  net_->node(1).on_beacon_heard(2, defect);
  EXPECT_EQ(parent.children().find(2), nullptr);
}

TEST_F(Algorithms, Alg2FullSpaceExtends) {
  Addressing& parent = addressing(2);
  const std::uint8_t before_bits = parent.space_bits();
  ASSERT_GT(before_bits, 0);
  const std::uint32_t capacity = (1u << before_bits) - 1;
  const auto before_ext = parent.stats().space_extensions;
  for (std::uint32_t i = 0; i <= capacity; ++i) {
    parent.handle_position_request(static_cast<NodeId>(800 + i), true);
  }
  EXPECT_GT(parent.space_bits(), before_bits);
  EXPECT_GT(parent.stats().space_extensions, before_ext);
}

// --- Algorithm 3 -----------------------------------------------------------

TEST_F(Algorithms, Alg3ChildAdoptsAllocationFromTeleBeacon) {
  // Hand node 2 a TeleAdjusting beacon from its parent with a *new*
  // position; it must adopt the derived code and confirm.
  Addressing& child = addressing(2);
  Addressing& parent = addressing(1);
  const auto* entry = parent.children().find(2);
  ASSERT_NE(entry, nullptr);

  msg::TeleBeacon beacon;
  beacon.parent_code = parent.code();
  beacon.space_bits = parent.space_bits();
  const std::uint32_t new_pos = entry->position == 1 ? 2 : 1;
  beacon.entries.push_back(msg::AllocationEntry{2, new_pos, false});

  const auto before_confirms = child.stats().confirms_sent;
  child.handle_tele_beacon(1, beacon);
  EXPECT_EQ(child.position(), new_pos);
  EXPECT_EQ(child.code(),
            make_child_code(parent.code(), new_pos, parent.space_bits()));
  EXPECT_GT(child.stats().confirms_sent, before_confirms);
}

TEST_F(Algorithms, Alg3AbsentEntryTriggersPositionRequest) {
  Addressing& child = addressing(2);
  // Invalidate the child's position (as a parent change would), then show it
  // a parent beacon that allocated others but not it.
  net_->node(2).on_parent_changed(1, 1);
  msg::TeleBeacon beacon;
  beacon.parent_code = addressing(1).code();
  beacon.space_bits = addressing(1).space_bits();
  beacon.entries.push_back(msg::AllocationEntry{99, 3, false});
  const auto before = child.stats().requests_sent;
  child.handle_tele_beacon(1, beacon);
  EXPECT_GT(child.stats().requests_sent, before);
}

TEST_F(Algorithms, Alg3SpaceExtensionUpdatesOwnCodeAndChildren) {
  // Node 1 hears its parent's (sink's) beacon with a wider space: its code
  // re-derives and its own children get re-derived codes + a beacon.
  Addressing& child = addressing(1);
  Addressing& sink = addressing(0);
  const auto* entry = sink.children().find(1);
  ASSERT_NE(entry, nullptr);
  const PathCode old_code = child.code();

  msg::TeleBeacon beacon;
  beacon.parent_code = sink.code();
  beacon.space_bits = static_cast<std::uint8_t>(sink.space_bits() + 1);
  beacon.space_extended = true;
  beacon.entries.push_back(
      msg::AllocationEntry{1, entry->position, true});
  child.handle_tele_beacon(0, beacon);

  EXPECT_EQ(child.code().size(), sink.code().size() + sink.space_bits() + 1);
  EXPECT_NE(child.code(), old_code);
  EXPECT_EQ(child.old_code(), old_code);
  // Children entries re-derived under the new prefix.
  for (const auto& e : child.children().entries()) {
    EXPECT_TRUE(child.code().is_prefix_of(e.new_code));
  }
}

TEST_F(Algorithms, Alg3AllocationAckAdoptedOnlyFromCurrentParent) {
  Addressing& child = addressing(2);
  const PathCode before = child.code();
  msg::AllocationAck ack;
  ack.position = 3;
  ack.space_bits = 4;
  ack.parent_code = addressing(3).code();  // NOT the parent
  const auto decision = child.handle_allocation_ack(/*from=*/3,
                                                    /*link_dst=*/2, ack,
                                                    /*for_me=*/true);
  EXPECT_EQ(decision, AckDecision::kAcceptAndAck);  // link ack, content dropped
  EXPECT_EQ(child.code(), before);
}

TEST_F(Algorithms, OverheardAllocationAckPopulatesNeighborTable) {
  Addressing& observer = addressing(3);
  msg::AllocationAck ack;
  ack.position = 2;
  ack.space_bits = 3;
  ack.parent_code = addressing(2).code();
  observer.handle_allocation_ack(/*from=*/2, /*link_dst=*/55, ack,
                                 /*for_me=*/false);
  const auto* entry = observer.neighbors().find(55);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->new_code,
            make_child_code(addressing(2).code(), 2, 3));
}

}  // namespace
}  // namespace telea
