#include "core/path_code.hpp"

#include <gtest/gtest.h>

#include <set>

namespace telea {
namespace {

TEST(PathCode, SinkCodeIsSingleZeroBit) {
  const PathCode s = sink_code();
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.to_string(), "0");
}

TEST(PathCode, PaperFig2TwoChildrenGetTwoBitSpace) {
  // "S provides a two bits space (two bits space can accommodate up to 4
  // positions and is enough for the discovered two children nodes and the
  // potential hidden children nodes)".
  EXPECT_EQ(space_bits_for(2, HeadroomPolicy{}, /*reserve_zero=*/true), 2);
}

TEST(PathCode, SpaceGrowsWithChildren) {
  const HeadroomPolicy policy{};
  std::uint8_t prev = 0;
  for (std::uint32_t n = 1; n <= 40; ++n) {
    const std::uint8_t bits = space_bits_for(n, policy, true);
    EXPECT_GE(bits, prev);
    // Capacity must cover children + slack.
    EXPECT_GE((1u << bits) - 1, n + policy.slack(n));
    prev = bits;
  }
}

TEST(PathCode, HeadroomSaturatesAtMaxSlack) {
  HeadroomPolicy policy;
  policy.max_slack = 10;
  EXPECT_EQ(policy.slack(100), 10u);
  EXPECT_EQ(policy.slack(2), 1u);
  EXPECT_EQ(policy.slack(8), 4u);
}

TEST(PathCode, ZeroChildrenStillGetsOneBit) {
  EXPECT_GE(space_bits_for(0, HeadroomPolicy{}, true), 1);
}

TEST(PathCode, PaperFig3ThirdPositionInFiveBitSpace) {
  // Fig. 3: parent code "prefix", 5-bit space, position 2 -> prefix:00010.
  const PathCode prefix = BitString::from_string_unchecked("0110");
  const PathCode c = make_child_code(prefix, 2, 5);
  EXPECT_EQ(c.to_string(), "011000010");
}

TEST(PathCode, PaperFig2ChildCodes) {
  // S = "0" (1 valid bit), 2-bit space, children at positions 01 and 10:
  // A = 001, M = 010 (3 valid bits).
  const PathCode s = sink_code();
  EXPECT_EQ(make_child_code(s, 1, 2).to_string(), "001");
  EXPECT_EQ(make_child_code(s, 2, 2).to_string(), "010");
}

TEST(PathCode, ParentIsAlwaysPrefixOfChild) {
  const PathCode parent = BitString::from_string_unchecked("00101");
  for (std::uint32_t pos = 0; pos < 16; ++pos) {
    const PathCode child = make_child_code(parent, pos, 4);
    ASSERT_FALSE(child.empty());
    EXPECT_TRUE(parent.is_prefix_of(child));
    EXPECT_EQ(child.size(), parent.size() + 4);
  }
}

TEST(PathCode, PositionsYieldDistinctCodes) {
  const PathCode parent = BitString::from_string_unchecked("01");
  std::set<std::string> codes;
  for (std::uint32_t pos = 0; pos < 8; ++pos) {
    codes.insert(make_child_code(parent, pos, 3).to_string());
  }
  EXPECT_EQ(codes.size(), 8u);
}

TEST(PathCode, RejectsPositionOutsideSpace) {
  const PathCode parent = sink_code();
  EXPECT_TRUE(make_child_code(parent, 4, 2).empty());
  EXPECT_TRUE(make_child_code(parent, 1, 0).empty());
}

TEST(PathCode, RejectsCapacityOverflow) {
  PathCode deep;
  for (std::size_t i = 0; i < BitString::kCapacity - 2; ++i) {
    deep.push_back(false);
  }
  EXPECT_TRUE(make_child_code(deep, 1, 3).empty());   // capacity-2+3 overflows
  EXPECT_FALSE(make_child_code(deep, 1, 2).empty());  // capacity-2+2 fits
}

TEST(PathCode, DivergenceZeroForIdenticalCodes) {
  const PathCode a = BitString::from_string_unchecked("00101");
  EXPECT_EQ(code_divergence(a, a), 0u);
}

TEST(PathCode, DivergenceGrowsWithEarlierSplit) {
  const PathCode dest = BitString::from_string_unchecked("001011");
  const PathCode sibling = BitString::from_string_unchecked("001100");
  const PathCode far = BitString::from_string_unchecked("010000");
  EXPECT_GT(code_divergence(far, dest), code_divergence(sibling, dest));
}

TEST(PathCode, DivergenceCountsBothTails) {
  const PathCode a = BitString::from_string_unchecked("0011");
  const PathCode b = BitString::from_string_unchecked("0100000");
  // Common prefix "0" (1 bit): tails 3 + 6.
  EXPECT_EQ(code_divergence(a, b), 9u);
}

/// Property sweep: chained allocations always preserve the prefix invariant
/// (every ancestor's code prefixes every descendant's), the core guarantee
/// the forwarding plane relies on.
class PathCodeChain : public ::testing::TestWithParam<std::uint8_t> {};

TEST_P(PathCodeChain, AncestorPrefixInvariant) {
  const std::uint8_t space = GetParam();
  std::vector<PathCode> chain{sink_code()};
  for (int depth = 0; depth < 12; ++depth) {
    const std::uint32_t pos = (depth * 7 + 1) % (1u << space);
    const PathCode next = make_child_code(chain.back(), pos, space);
    if (next.empty()) break;  // capacity reached
    chain.push_back(next);
  }
  ASSERT_GE(chain.size(), 8u);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    for (std::size_t j = i; j < chain.size(); ++j) {
      EXPECT_TRUE(chain[i].is_prefix_of(chain[j]))
          << "depth " << i << " vs " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Spaces, PathCodeChain,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

}  // namespace
}  // namespace telea
