#include "core/tables.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

PathCode code(const char* s) { return BitString::from_string_unchecked(s); }

TEST(ChildTable, UpsertAndFind) {
  ChildTable t;
  t.upsert(5, 1, code("001"));
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(t.find(5)->position, 1u);
  EXPECT_EQ(t.find(5)->new_code.to_string(), "001");
  EXPECT_FALSE(t.find(5)->confirmed);
  EXPECT_EQ(t.find(99), nullptr);
}

TEST(ChildTable, UpsertPreservesOldCode) {
  ChildTable t;
  t.upsert(5, 1, code("001"));
  t.find(5)->confirmed = true;
  t.upsert(5, 2, code("010"));
  EXPECT_EQ(t.find(5)->old_code.to_string(), "001");
  EXPECT_EQ(t.find(5)->new_code.to_string(), "010");
  EXPECT_FALSE(t.find(5)->confirmed);  // reallocation needs re-confirmation
  EXPECT_EQ(t.size(), 1u);
}

TEST(ChildTable, PositionTaken) {
  ChildTable t;
  t.upsert(5, 3, code("0011"));
  EXPECT_TRUE(t.position_taken(3));
  EXPECT_FALSE(t.position_taken(4));
}

TEST(ChildTable, FreePositionScansFromFirst) {
  ChildTable t;
  t.upsert(1, 1, code("001"));
  t.upsert(2, 2, code("010"));
  auto free = t.free_position(2, 1);  // 2-bit space: positions 1..3
  ASSERT_TRUE(free.has_value());
  EXPECT_EQ(*free, 3u);
  t.upsert(3, 3, code("011"));
  EXPECT_FALSE(t.free_position(2, 1).has_value());
  // A wider space opens new slots.
  EXPECT_TRUE(t.free_position(3, 1).has_value());
}

TEST(ChildTable, RemoveErasesEntry) {
  ChildTable t;
  t.upsert(5, 1, code("001"));
  t.remove(5);
  EXPECT_EQ(t.find(5), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

TEST(ChildTable, RederiveCodesAfterPrefixChange) {
  ChildTable t;
  const PathCode old_parent = code("001");
  t.upsert(5, 1, make_child_code(old_parent, 1, 2));
  t.upsert(6, 2, make_child_code(old_parent, 2, 2));
  const PathCode new_parent = code("010");
  t.rederive_codes(new_parent, 2);
  EXPECT_EQ(t.find(5)->new_code.to_string(), "01001");
  EXPECT_EQ(t.find(5)->old_code.to_string(), "00101");
  EXPECT_EQ(t.find(6)->new_code.to_string(), "01010");
}

TEST(ChildTable, RederiveAfterSpaceExtensionKeepsPositions) {
  ChildTable t;
  const PathCode parent = code("0");
  t.upsert(5, 1, make_child_code(parent, 1, 2));
  t.rederive_codes(parent, 3);  // one-bit extension (Sec. III-B6)
  EXPECT_EQ(t.find(5)->position, 1u);
  EXPECT_EQ(t.find(5)->new_code.to_string(), "0001");
  EXPECT_EQ(t.find(5)->old_code.to_string(), "001");
}

TEST(NeighborCodeTable, ObserveStoresCode) {
  NeighborCodeTable t;
  t.observe(7, code("0010"), 100);
  ASSERT_NE(t.find(7), nullptr);
  EXPECT_EQ(t.find(7)->new_code.to_string(), "0010");
  EXPECT_TRUE(t.find(7)->old_code.empty());
}

TEST(NeighborCodeTable, ObserveIgnoresEmptyCode) {
  NeighborCodeTable t;
  t.observe(7, PathCode{}, 100);
  EXPECT_EQ(t.find(7), nullptr);
}

TEST(NeighborCodeTable, CodeChangeRetainsOld) {
  NeighborCodeTable t;
  t.observe(7, code("0010"), 100);
  t.observe(7, code("0110"), 200);
  EXPECT_EQ(t.find(7)->new_code.to_string(), "0110");
  EXPECT_EQ(t.find(7)->old_code.to_string(), "0010");
  EXPECT_EQ(t.find(7)->code_changed_at, 200u);
}

TEST(NeighborCodeTable, RepeatedSameCodeNoChurn) {
  NeighborCodeTable t;
  t.observe(7, code("0010"), 100);
  t.observe(7, code("0010"), 500);
  EXPECT_TRUE(t.find(7)->old_code.empty());
}

TEST(NeighborCodeTable, UnreachableLifecycle) {
  NeighborCodeTable t;
  t.observe(7, code("0010"), 100);
  EXPECT_FALSE(t.is_unreachable(7));
  t.mark_unreachable(7, 150);
  EXPECT_TRUE(t.is_unreachable(7));
  t.mark_reachable(7);  // routing beacon heard again (Sec. III-C3)
  EXPECT_FALSE(t.is_unreachable(7));
}

TEST(NeighborCodeTable, UnreachableExpiresByTimeout) {
  NeighborCodeTable t;
  t.mark_unreachable(7, 100);
  t.expire_unreachable(/*now=*/150, /*timeout=*/100);
  EXPECT_TRUE(t.is_unreachable(7));
  t.expire_unreachable(/*now=*/200, /*timeout=*/100);
  EXPECT_FALSE(t.is_unreachable(7));
}

TEST(NeighborCodeTable, MarkUnreachableWithoutCodeCreatesEntry) {
  NeighborCodeTable t;
  t.mark_unreachable(3, 10);
  EXPECT_TRUE(t.is_unreachable(3));
}

TEST(NeighborCodeTable, RemoveErases) {
  NeighborCodeTable t;
  t.observe(7, code("0010"), 100);
  t.remove(7);
  EXPECT_EQ(t.find(7), nullptr);
}

}  // namespace
}  // namespace telea
