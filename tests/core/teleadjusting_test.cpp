#include "core/teleadjusting.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_config(std::size_t nodes, std::uint64_t seed,
                          ControlProtocol proto = ControlProtocol::kReTele) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = proto;
  return cfg;
}

/// Diamond: 0 (sink) - {1,2} - 3. Two disjoint relays to the far node.
NetworkConfig diamond_config(std::uint64_t seed,
                             ControlProtocol proto = ControlProtocol::kReTele) {
  NetworkConfig cfg;
  Topology topo = make_line(2, 22.0);  // reuse radio params, replace layout
  topo.name = "Diamond";
  topo.positions = {{0, 0}, {20, 8}, {20, -8}, {40, 0}};
  cfg.topology = topo;
  cfg.seed = seed;
  cfg.protocol = proto;
  return cfg;
}

struct Delivery {
  bool delivered = false;
  bool direct = false;
  std::uint8_t hops = 0;
  SimTime at = 0;
};

Delivery send_and_wait(Network& net, NodeId dest, SimTime wait = 30_s) {
  Delivery result;
  net.node(dest).tele()->on_control_delivered =
      [&result, &net](const msg::ControlPacket& p, bool direct) {
        result.delivered = true;
        result.direct = direct;
        result.hops = p.hops_so_far;
        result.at = net.sim().now();
      };
  const auto& code = net.node(dest).tele()->addressing().code();
  EXPECT_TRUE(
      net.sink().tele()->send_control(dest, code, 0xBEEF).has_value());
  net.run_for(wait);
  return result;
}

TEST(TeleAdjusting, DeliversAlongEncodedPath) {
  Network net(line_config(5, 21));
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());
  const Delivery d = send_and_wait(net, 4);
  EXPECT_TRUE(d.delivered);
  EXPECT_FALSE(d.direct);
  // Four hops on a strict line; small slack for retries.
  EXPECT_GE(d.hops, 4u);
  EXPECT_LE(d.hops, 8u);
}

TEST(TeleAdjusting, DeliversToEveryNode) {
  Network net(line_config(5, 22));
  net.start();
  net.run_for(4_min);
  for (NodeId dest = 1; dest < 5; ++dest) {
    ASSERT_TRUE(net.node(dest).tele()->addressing().has_code())
        << "node " << dest;
    const Delivery d = send_and_wait(net, dest);
    EXPECT_TRUE(d.delivered) << "node " << dest;
  }
}

TEST(TeleAdjusting, EndToEndAckReachesSink) {
  Network net(line_config(4, 23));
  net.start();
  net.run_for(4_min);
  std::uint32_t acked_seqno = 0;
  NodeId acked_dest = kInvalidNode;
  net.sink().tele()->on_e2e_ack = [&](std::uint32_t seqno, NodeId dest) {
    acked_seqno = seqno;
    acked_dest = dest;
  };
  const auto& code = net.node(3).tele()->addressing().code();
  const auto seq = net.sink().tele()->send_control(3, code, 1);
  ASSERT_TRUE(seq.has_value());
  net.run_for(60_s);
  EXPECT_EQ(acked_seqno, *seq);
  EXPECT_EQ(acked_dest, 3);
}

TEST(TeleAdjusting, DuplicateDeliverySuppressed) {
  Network net(line_config(4, 24));
  net.start();
  net.run_for(4_min);
  int deliveries = 0;
  net.node(3).tele()->on_control_delivered =
      [&deliveries](const msg::ControlPacket&, bool) { ++deliveries; };
  const auto& code = net.node(3).tele()->addressing().code();
  net.sink().tele()->send_control(3, code, 1);
  net.run_for(60_s);
  EXPECT_EQ(deliveries, 1);
}

TEST(TeleAdjusting, SurvivesRelayFailureViaAlternatePath) {
  // Diamond: the encoded path goes through one of {1,2}; kill that relay
  // after code formation and the packet must still arrive (conditions 2/3,
  // backtracking, or Re-Tele).
  Network net(diamond_config(25));
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());
  const NodeId on_path = net.node(3).tele()->addressing().code_parent();
  ASSERT_TRUE(on_path == 1 || on_path == 2);
  net.node(on_path).kill();
  net.run_for(5_s);
  const Delivery d = send_and_wait(net, 3, 2_min);
  EXPECT_TRUE(d.delivered);
}

TEST(TeleAdjusting, StructuredOnlyModeStillDelivers) {
  // Ablation: opportunism off -> pure expected-relay forwarding.
  NetworkConfig cfg = line_config(4, 26, ControlProtocol::kTele);
  cfg.tele.forwarding.opportunistic = false;
  cfg.tele.forwarding.neighbor_assist = false;
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  const Delivery d = send_and_wait(net, 3, 60_s);
  EXPECT_TRUE(d.delivered);
}

TEST(TeleAdjusting, ReportsFailureWhenDestinationIsolated) {
  NetworkConfig cfg = line_config(4, 27, ControlProtocol::kTele);
  cfg.tele.forwarding.forward_retries = 2;  // fail fast for the test
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());
  const PathCode code = net.node(3).tele()->addressing().code();
  // Cut the line: node 2 is the only way to 3.
  net.node(2).kill();
  net.node(3).kill();
  bool failed = false;
  net.sink().tele()->on_delivery_failed = [&](std::uint32_t) { failed = true; };
  net.sink().tele()->send_control(3, code, 1);
  net.run_for(3_min);
  EXPECT_TRUE(failed);
}

TEST(TeleAdjusting, DetourDeliversWhenEncodedPathDies) {
  // Line 0-1-2-3 plus node 4 parked next to 3 but parented elsewhere is hard
  // to force deterministically; instead verify the detour machinery
  // directly: a manual detour send must arrive as a direct delivery.
  Network net(diamond_config(28));
  net.start();
  net.run_for(4_min);
  auto& dest_addr = net.node(3).tele()->addressing();
  ASSERT_TRUE(dest_addr.has_code());
  const NodeId via = dest_addr.code_parent() == 1 ? 2 : 1;
  ASSERT_TRUE(net.node(via).tele()->addressing().has_code());

  Delivery d;
  net.node(3).tele()->on_control_delivered =
      [&d](const msg::ControlPacket& p, bool direct) {
        d.delivered = true;
        d.direct = direct;
        d.hops = p.hops_so_far;
      };
  net.sink().tele()->forwarding().send_control_detour(
      3, dest_addr.code(), via, net.node(via).tele()->addressing().code(),
      0xABCD, /*seqno=*/991);
  net.run_for(60_s);
  EXPECT_TRUE(d.delivered);
  EXPECT_TRUE(d.direct);
}

TEST(TeleAdjusting, SuggestDetourPrefersDivergentCode) {
  Network net(diamond_config(29));
  net.start();
  net.run_for(4_min);
  const auto detour = net.suggest_detour(3);
  ASSERT_TRUE(detour.has_value());
  // The detour must be a neighbor of 3 other than its own code parent's
  // subtree when possible; in the diamond that's the opposite mid relay.
  EXPECT_TRUE(detour->via == 1 || detour->via == 2);
  EXPECT_FALSE(detour->via_code.empty());
}

TEST(TeleAdjusting, HopCountsRoughlyMatchDepth) {
  Network net(line_config(5, 30));
  net.start();
  net.run_for(4_min);
  // Downward (code-tree) depth equals CTP hops on a stable line.
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(net.code_tree_depth(i), net.node(i).ctp().hops()) << "node " << i;
  }
}

}  // namespace
}  // namespace telea
