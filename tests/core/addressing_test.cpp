#include "core/addressing.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);  // adjacent-only links
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kTele;
  return cfg;
}

class AddressingIntegration : public ::testing::Test {
 protected:
  void converge(Network& net, SimTime duration = 4_min) {
    net.start();
    net.run_for(duration);
  }
  Addressing& addressing(Network& net, NodeId id) {
    return net.node(id).tele()->addressing();
  }
};

TEST_F(AddressingIntegration, SinkSeedsSingleZeroBitCode) {
  Network net(line_config(2, 1));
  net.start();
  EXPECT_TRUE(addressing(net, 0).has_code());
  EXPECT_EQ(addressing(net, 0).code().to_string(), "0");
}

TEST_F(AddressingIntegration, WholeLineObtainsCodes) {
  Network net(line_config(5, 2));
  converge(net);
  EXPECT_DOUBLE_EQ(net.code_coverage(), 1.0);
}

TEST_F(AddressingIntegration, ParentCodePrefixesChildCode) {
  Network net(line_config(5, 3));
  converge(net);
  for (NodeId i = 1; i < 5; ++i) {
    const auto& child = addressing(net, i);
    const NodeId p = child.code_parent();
    ASSERT_NE(p, kInvalidNode) << "node " << i;
    const auto& parent = addressing(net, p);
    EXPECT_TRUE(parent.code().is_prefix_of(child.code()))
        << "node " << i << " parent " << p;
    EXPECT_GT(child.code().size(), parent.code().size());
  }
}

TEST_F(AddressingIntegration, CodeLengthGrowsWithDepth) {
  Network net(line_config(6, 4));
  converge(net, 6_min);
  std::size_t prev = addressing(net, 0).code().size();
  for (NodeId i = 1; i < 6; ++i) {
    ASSERT_TRUE(addressing(net, i).has_code()) << "node " << i;
    EXPECT_GT(addressing(net, i).code().size(), prev);
    prev = addressing(net, i).code().size();
  }
}

TEST_F(AddressingIntegration, CodesAreUniqueNetworkWide) {
  NetworkConfig cfg;
  cfg.topology = make_uniform_random(20, 80.0, 5);
  cfg.seed = 5;
  cfg.protocol = ControlProtocol::kTele;
  Network net(cfg);
  converge(net, 6_min);
  std::set<std::string> codes;
  std::size_t with_code = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    if (!addressing(net, i).has_code()) continue;
    ++with_code;
    codes.insert(addressing(net, i).code().to_string());
  }
  EXPECT_EQ(codes.size(), with_code);
  EXPECT_GE(with_code, net.size() - 2);  // allow stragglers
}

TEST_F(AddressingIntegration, ChildTableConfirmed) {
  Network net(line_config(3, 6));
  converge(net);
  const auto& table = addressing(net, 0).children();
  ASSERT_GE(table.size(), 1u);
  const auto* entry = table.find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->confirmed);
  EXPECT_EQ(entry->new_code.to_string(),
            addressing(net, 1).code().to_string());
}

TEST_F(AddressingIntegration, NeighborCodeTablePopulatedByOverhearing) {
  Network net(line_config(4, 7));
  converge(net);
  // Node 2 overhears node 1's TeleBeacons: knows 1's code (its parent) and
  // derives 2's own siblings from entries; at minimum the parent is known.
  const auto& neighbors = addressing(net, 2).neighbors();
  const auto* e = neighbors.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->new_code.to_string(), addressing(net, 1).code().to_string());
}

TEST_F(AddressingIntegration, BeaconPiggybackCarriesClaim) {
  Network net(line_config(3, 8));
  converge(net);
  msg::CtpBeacon beacon;
  net.node(1).tele()->addressing().fill_beacon(beacon);
  EXPECT_TRUE(beacon.has_position_claim);
  EXPECT_EQ(beacon.claimed_code_len, addressing(net, 1).code().size());
}

TEST_F(AddressingIntegration, ConvergenceTimesRecorded) {
  Network net(line_config(4, 9));
  converge(net);
  for (NodeId i = 1; i < 4; ++i) {
    ASSERT_TRUE(addressing(net, i).triggered_at().has_value());
    ASSERT_TRUE(addressing(net, i).code_assigned_at().has_value());
    EXPECT_GE(*addressing(net, i).code_assigned_at(),
              *addressing(net, i).triggered_at());
  }
}

TEST_F(AddressingIntegration, OnDemandAllocationForPositionRequest) {
  Network net(line_config(2, 10));
  converge(net, 2_min);
  Addressing& sink = addressing(net, 0);
  const std::size_t before = sink.children().size();
  // A (synthetic) new child asks for a position directly.
  const AckDecision d = sink.handle_position_request(77, /*for_me=*/true);
  EXPECT_EQ(d, AckDecision::kAcceptAndAck);
  EXPECT_EQ(sink.children().size(), before + 1);
  EXPECT_NE(sink.children().find(77), nullptr);
}

TEST_F(AddressingIntegration, SpaceExtendsWhenPositionsExhaust) {
  Network net(line_config(2, 11));
  converge(net, 2_min);
  Addressing& sink = addressing(net, 0);
  const std::uint8_t before_bits = sink.space_bits();
  ASSERT_GT(before_bits, 0);
  // Flood with synthetic children until the space must extend.
  const std::uint32_t capacity = (1u << before_bits) - 1;  // zero reserved
  for (std::uint32_t i = 0; i <= capacity + 1; ++i) {
    sink.handle_position_request(static_cast<NodeId>(500 + i), true);
  }
  EXPECT_GT(sink.space_bits(), before_bits);
  // Existing children keep their positions across the extension (III-B6).
  const auto* first = sink.children().find(1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->new_code.size(),
            sink.code().size() + sink.space_bits());
}

TEST_F(AddressingIntegration, ParentChangeTriggersNewPosition) {
  Network net(line_config(3, 12));
  converge(net);
  Addressing& a2 = addressing(net, 2);
  ASSERT_TRUE(a2.has_position());
  const PathCode old_code = a2.code();
  // Simulate CTP reparenting: position invalidated, then re-requested.
  net.node(2).on_parent_changed(1, 0);
  EXPECT_FALSE(a2.has_position());
  EXPECT_EQ(a2.code(), old_code);  // stale code stays operative meanwhile
}

}  // namespace
}  // namespace telea
