// Tests for the one-to-many extension (GroupControl): shared-segment
// forwarding, branch splitting, local delivery, duplicate handling and the
// unicast fallback.

#include "core/group_control.hpp"

#include <gtest/gtest.h>

#include <set>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kReTele;
  return cfg;
}

/// Y-shaped field: 0 - 1 - {2a-branch: 2,3} and {2b-branch: 4,5}.
NetworkConfig wye_config(std::uint64_t seed) {
  NetworkConfig cfg;
  Topology topo = make_line(2, 22.0);
  topo.name = "Wye";
  topo.positions = {{0, 0},  {22, 0},   {44, 10}, {66, 14},
                    {44, -10}, {66, -14}};
  cfg.topology = topo;
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kReTele;
  return cfg;
}

std::vector<msg::GroupDest> dests_for(Network& net,
                                      std::initializer_list<NodeId> ids) {
  std::vector<msg::GroupDest> out;
  for (NodeId id : ids) {
    const auto& a = net.node(id).tele()->addressing();
    out.push_back(msg::GroupDest{id, a.code()});
  }
  return out;
}

struct GroupSink {
  std::set<NodeId> group_deliveries;
  std::set<NodeId> unicast_deliveries;

  void attach(Network& net, NodeId id) {
    net.node(id).tele()->group_control().on_delivered =
        [this, id](std::uint16_t, std::uint32_t) {
          group_deliveries.insert(id);
        };
    net.node(id).tele()->on_control_delivered =
        [this, id](const msg::ControlPacket&, bool) {
          unicast_deliveries.insert(id);
        };
  }

  [[nodiscard]] std::size_t total() const {
    std::set<NodeId> all = group_deliveries;
    all.insert(unicast_deliveries.begin(), unicast_deliveries.end());
    return all.size();
  }
};

TEST(GroupControl, DeliversToAllDestsOnALine) {
  Network net(line_config(5, 71));
  net.start();
  net.run_for(4_min);
  GroupSink sink;
  for (NodeId id : {NodeId{2}, NodeId{3}, NodeId{4}}) sink.attach(net, id);
  net.sink().tele()->send_control_group(dests_for(net, {2, 3, 4}), 0xAB);
  net.run_for(1_min);
  EXPECT_EQ(sink.total(), 3u);
}

TEST(GroupControl, SharedSegmentIsPaidOnce) {
  // On a line, 3 destinations behind the same first hop must cost fewer
  // send operations than 3 independent unicasts (which pay the shared
  // segment three times).
  auto count_ops = [](Network& net) {
    std::uint64_t ops = 0;
    for (NodeId i = 0; i < net.size(); ++i) {
      ops += net.node(i).mac().send_ops();
    }
    return ops;
  };

  Network grp(line_config(5, 72));
  grp.start();
  grp.run_for(4_min);
  grp.reset_accounting();
  const auto before_g = count_ops(grp);
  grp.sink().tele()->send_control_group(dests_for(grp, {2, 3, 4}), 1);
  grp.run_for(90_s);
  const auto group_cost = count_ops(grp) - before_g;

  Network uni(line_config(5, 72));
  uni.start();
  uni.run_for(4_min);
  uni.reset_accounting();
  const auto before_u = count_ops(uni);
  for (NodeId d : {NodeId{2}, NodeId{3}, NodeId{4}}) {
    uni.sink().tele()->send_control(
        d, uni.node(d).tele()->addressing().code(), 1);
    uni.run_for(30_s);
  }
  const auto unicast_cost = count_ops(uni) - before_u;

  EXPECT_LT(group_cost, unicast_cost);
}

TEST(GroupControl, SplitsAtBranchDivergence) {
  Network net(wye_config(73));
  net.start();
  net.run_for(5_min);
  GroupSink sink;
  for (NodeId id : {NodeId{3}, NodeId{5}}) sink.attach(net, id);
  net.sink().tele()->send_control_group(dests_for(net, {3, 5}), 2);
  net.run_for(90_s);
  EXPECT_EQ(sink.total(), 2u);
  // Someone along the way split the group (possibly the sink itself).
  std::uint64_t splits = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    splits += net.node(i).tele()->group_control().stats().splits;
  }
  EXPECT_GE(splits, 1u);
}

TEST(GroupControl, SingleDestBehavesLikeUnicast) {
  Network net(line_config(4, 74));
  net.start();
  net.run_for(4_min);
  GroupSink sink;
  sink.attach(net, 3);
  net.sink().tele()->send_control_group(dests_for(net, {3}), 3);
  net.run_for(1_min);
  EXPECT_EQ(sink.total(), 1u);
}

TEST(GroupControl, EmptyCodesAreSkipped) {
  Network net(line_config(3, 75));
  net.start();  // no convergence: nobody has a code
  std::vector<msg::GroupDest> dests{{1, PathCode{}}, {2, PathCode{}}};
  const auto group = net.sink().tele()->send_control_group(dests, 4);
  EXPECT_GT(group, 0u);
  net.run_for(10_s);  // must not crash or send garbage
}

TEST(GroupControl, DuplicateSubPacketNotReprocessed) {
  Network net(line_config(3, 76));
  net.start();
  net.run_for(4_min);
  auto& gc = net.node(1).tele()->group_control();
  msg::GroupControlPacket packet;
  packet.group_seqno = 99;
  packet.command = 7;
  packet.dests.push_back(
      msg::GroupDest{2, net.node(2).tele()->addressing().code()});
  packet.expected_relay = 1;
  packet.expected_relay_code_len = static_cast<std::uint8_t>(
      net.node(1).tele()->addressing().code().size());
  EXPECT_EQ(gc.handle(0, packet, false), AckDecision::kAcceptAndAck);
  const auto claims = gc.stats().claims;
  // Same logical packet arriving as a *new* operation: ignored, not
  // re-claimed (literal copy retries are re-acked by the MAC, not here).
  EXPECT_EQ(gc.handle(0, packet, false), AckDecision::kIgnore);
  EXPECT_EQ(gc.stats().claims, claims);
}

TEST(GroupControl, StatsCountDeliveries) {
  Network net(line_config(3, 77));
  net.start();
  net.run_for(4_min);
  net.sink().tele()->send_control_group(dests_for(net, {1, 2}), 5);
  net.run_for(1_min);
  std::uint64_t deliveries = 0, fallbacks = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    deliveries += net.node(i).tele()->group_control().stats().deliveries;
    fallbacks += net.node(i).tele()->group_control().stats().unicast_fallbacks;
  }
  std::set<NodeId> unicast_hits;
  // Fallback deliveries land via the unicast plane; accept either route.
  EXPECT_GE(deliveries + fallbacks, 2u);
  EXPECT_EQ(net.sink().tele()->group_control().stats().groups_sent, 1u);
}

}  // namespace
}  // namespace telea
