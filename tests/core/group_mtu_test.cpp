// Group-control packets must respect the 127-byte 802.15.4 MPDU: oversized
// branches are chunked into multiple sub-packets.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(GroupMtu, LargeGroupsChunkedUnderMpduLimit) {
  NetworkConfig cfg;
  cfg.topology = make_connected_random(30, 80.0, 95);
  cfg.seed = 95;
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);

  // Watch every transmitted frame: none may exceed the MPDU.
  std::size_t max_seen = 0;
  std::size_t group_frames = 0;
  net.medium().add_transmit_hook(
      [&](NodeId, const Frame& frame, SimTime) {
        const std::size_t size = wire_size_bytes(frame);
        max_seen = std::max(max_seen, size);
        if (std::holds_alternative<msg::GroupControlPacket>(frame.payload)) {
          ++group_frames;
        }
      });

  net.start();
  net.run_for(8_min);

  std::vector<msg::GroupDest> dests;
  std::set<NodeId> hit;
  for (NodeId i = 1; i < net.size(); ++i) {
    const auto* tele = net.node(i).tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    dests.push_back(msg::GroupDest{i, tele->addressing().code()});
    net.node(i).tele()->group_control().on_delivered =
        [&hit, i](std::uint16_t, std::uint32_t) { hit.insert(i); };
    net.node(i).tele()->on_control_delivered =
        [&hit, i](const msg::ControlPacket&, bool) { hit.insert(i); };
  }
  ASSERT_GE(dests.size(), 20u);
  net.sink().tele()->send_control_group(dests, 1);
  net.run_for(5_min);

  EXPECT_GT(group_frames, 0u);
  EXPECT_LE(max_seen, 127u) << "a frame exceeded the 802.15.4 MPDU";
  // Large-group delivery still works (allow a couple of stragglers).
  EXPECT_GE(hit.size() + 3, dests.size());
}

}  // namespace
}  // namespace telea
