// Conformance tests for the paper's forwarding claim conditions
// (Sec. III-C): a node receives/relays a control packet iff
//   (1) it is the expected relay, or
//   (2) it is on the encoded path with a longer matched prefix than the
//       expected relay, or
//   (3) one of its (usable) neighbors satisfies (2).
// Exercised as a truth table by calling handle_control directly on nodes of
// a converged line network (codes: sink "0", then nested prefixes).

#include <gtest/gtest.h>

#include "core/teleadjusting.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

class ClaimConditions : public ::testing::Test {
 protected:
  void SetUp() override {
    NetworkConfig cfg;
    cfg.topology = make_line(5, 22.0);
    cfg.seed = 55;
    cfg.protocol = ControlProtocol::kTele;
    net_ = std::make_unique<Network>(cfg);
    net_->start();
    net_->run_for(4_min);
    for (NodeId i = 1; i < 5; ++i) {
      ASSERT_TRUE(addressing(i).has_code()) << "node " << i;
    }
  }

  Addressing& addressing(NodeId id) {
    return net_->node(id).tele()->addressing();
  }
  Forwarding& forwarding(NodeId id) {
    return net_->node(id).tele()->forwarding();
  }

  /// A control packet for `dest` as if transmitted by `relay_holder` with
  /// `expected` as expected relay.
  msg::ControlPacket packet_for(NodeId dest, NodeId expected,
                                std::uint32_t seqno) {
    msg::ControlPacket p;
    p.dest = dest;
    p.dest_code = addressing(dest).code();
    p.expected_relay = expected;
    p.expected_relay_code_len =
        static_cast<std::uint8_t>(addressing(expected).code().size());
    p.seqno = seqno;
    return p;
  }

  std::unique_ptr<Network> net_;
};

TEST_F(ClaimConditions, Condition1ExpectedRelayClaims) {
  // Node 2 is the expected relay for a packet to 4: it must claim.
  const auto p = packet_for(4, 2, 1001);
  EXPECT_EQ(forwarding(2).handle_control(1, p, false),
            AckDecision::kAcceptAndAck);
}

TEST_F(ClaimConditions, Condition2LongerPrefixClaims) {
  // Expected relay is node 1 (short prefix); node 3 is deeper on the same
  // encoded path toward 4: condition (2) says claim.
  const auto p = packet_for(4, 1, 1002);
  EXPECT_EQ(forwarding(3).handle_control(0, p, false),
            AckDecision::kAcceptAndAck);
}

TEST_F(ClaimConditions, EqualPrefixDoesNotClaim) {
  // The expected relay's own depth is NOT "much closer": a node whose match
  // equals the expected relay's length must stay silent (it is the expected
  // relay case only if the id matches).
  const auto p = packet_for(4, 2, 1003);
  // Node 2's own packet heard at... craft: tell node 2 the expected relay is
  // some other node with the same code length. There is none on a line, so
  // instead check that node 1 (shorter prefix) does not claim.
  EXPECT_EQ(forwarding(1).handle_control(0, p, false), AckDecision::kIgnore);
}

TEST_F(ClaimConditions, OffPathNodeWithUsableNeighborClaims) {
  // Condition (3): node 1 overhears a packet whose expected relay is node 1
  // itself... instead test the destination's parent: node 3 knows node 4
  // (its child) as a neighbor with a longer prefix than expected relay 2.
  const auto p = packet_for(4, 2, 1004);
  EXPECT_EQ(forwarding(3).handle_control(1, p, false),
            AckDecision::kAcceptAndAck);
}

TEST_F(ClaimConditions, DestinationAlwaysAccepts) {
  const auto p = packet_for(4, 3, 1005);
  EXPECT_EQ(forwarding(4).handle_control(3, p, false),
            AckDecision::kAcceptAndAck);
  // Duplicate deliveries re-ack but deliver once (covered elsewhere).
  EXPECT_EQ(forwarding(4).handle_control(3, p, false),
            AckDecision::kAcceptAndAck);
}

TEST_F(ClaimConditions, OpportunismOffOnlyExpectedRelayClaims) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 56;
  cfg.protocol = ControlProtocol::kTele;
  cfg.tele.forwarding.opportunistic = false;
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());

  msg::ControlPacket p;
  p.dest = 3;
  p.dest_code = net.node(3).tele()->addressing().code();
  p.expected_relay = 1;
  p.expected_relay_code_len = static_cast<std::uint8_t>(
      net.node(1).tele()->addressing().code().size());
  p.seqno = 1006;
  // Node 2 is deeper on the path but opportunism is disabled: no claim.
  EXPECT_EQ(net.node(2).tele()->forwarding().handle_control(0, p, false),
            AckDecision::kIgnore);
  // The expected relay still claims.
  EXPECT_EQ(net.node(1).tele()->forwarding().handle_control(0, p, false),
            AckDecision::kAcceptAndAck);
}

TEST_F(ClaimConditions, UnrelatedBranchIgnores) {
  // A packet for node 1's subtree heard by a node whose code diverges and
  // whose neighbors offer no progress: ignore. On a line every node is an
  // ancestor/descendant, so craft a fake destination code diverging at the
  // sink (position that no real node holds).
  msg::ControlPacket p;
  p.dest = 77;  // fictitious
  PathCode fake = addressing(1).code();
  // Flip the last bit: same length, different branch.
  fake.set_bit(fake.size() - 1, !fake.bit(fake.size() - 1));
  p.dest_code = fake;
  ASSERT_TRUE(p.dest_code.append_bits(0b01, 2));
  p.expected_relay = 88;  // unknown node
  p.expected_relay_code_len = static_cast<std::uint8_t>(fake.size());
  p.seqno = 1007;
  EXPECT_EQ(forwarding(2).handle_control(0, p, false), AckDecision::kIgnore);
  EXPECT_EQ(forwarding(4).handle_control(0, p, false), AckDecision::kIgnore);
}

TEST_F(ClaimConditions, FinishedSeqnoNeverReclaimed) {
  const auto p = packet_for(4, 2, 1008);
  forwarding(2).note_ack_overheard(1008);
  EXPECT_EQ(forwarding(2).handle_control(1, p, false), AckDecision::kIgnore);
}

TEST_F(ClaimConditions, UnreachableMarkExcludesRelayCandidates) {
  // pick_relay honors the backtracking plane's unreachable marks
  // (Sec. III-C3): node 3's only downstream candidate toward 4 is node 4.
  const PathCode& route = addressing(4).code();
  const std::size_t floor = addressing(3).code().size();
  const auto before = forwarding(3).pick_relay(route, floor);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->id, 4);

  addressing(3).neighbors().mark_unreachable(4, net_->sim().now());
  EXPECT_FALSE(forwarding(3).pick_relay(route, floor).has_value());

  // A routing beacon from the neighbor clears the mark (Sec. III-C3).
  forwarding(3).on_beacon_heard(4);
  EXPECT_TRUE(forwarding(3).pick_relay(route, floor).has_value());
}

TEST_F(ClaimConditions, Condition3GatedOnLinkQuality) {
  // Node 2 knows node 4's code from node 3's TeleAdjusting beacons, but it
  // has never heard node 4 on the air (44 m away): the link estimator gate
  // must keep condition (3) from claiming on that phantom neighbor.
  msg::ControlPacket p = packet_for(4, 3, 1009);
  p.expected_relay = 3;
  p.expected_relay_code_len =
      static_cast<std::uint8_t>(addressing(3).code().size());
  // Node 2's own match is shorter than the expected length and its only
  // longer-prefix "neighbor" (node 4) is unusable: ignore.
  EXPECT_EQ(forwarding(2).handle_control(0, p, false), AckDecision::kIgnore);
}

}  // namespace
}  // namespace telea
