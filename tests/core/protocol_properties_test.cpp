// Property-based sweeps over whole-network behaviour: the invariants that
// must hold for any topology/seed, not just the hand-picked unit scenarios.

#include <gtest/gtest.h>

#include <set>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

class NetworkProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static NetworkConfig config(std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.topology = make_connected_random(18, 70.0, seed);
    cfg.seed = seed;
    cfg.protocol = ControlProtocol::kReTele;
    return cfg;
  }
};

TEST_P(NetworkProperty, CodesAreUniqueAndPrefixClosed) {
  Network net(config(GetParam()));
  net.start();
  net.run_for(6_min);

  std::set<std::string> codes;
  std::size_t coded = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    const auto& a = net.node(i).tele()->addressing();
    if (!a.has_code()) continue;
    ++coded;
    // Uniqueness.
    EXPECT_TRUE(codes.insert(a.code().to_string()).second)
        << "duplicate code " << a.code().to_string();
    // Prefix closure along the allocator chain.
    const NodeId p = a.code_parent();
    if (p != kInvalidNode && net.node(p).tele()->addressing().has_code()) {
      const auto& parent_code = net.node(p).tele()->addressing().code();
      EXPECT_TRUE(parent_code.is_prefix_of(a.code()))
          << "node " << i << " under " << p;
    }
  }
  // Connected topology: nearly everyone must be addressable.
  EXPECT_GE(coded, net.size() - 2);
}

TEST_P(NetworkProperty, ControlReachesEveryCodedNode) {
  Network net(config(GetParam() ^ 0xA5A5));
  net.start();
  net.run_for(6_min);

  unsigned sent = 0, delivered = 0;
  for (NodeId dest = 1; dest < net.size(); ++dest) {
    const auto& a = net.node(dest).tele()->addressing();
    if (!a.has_code()) continue;
    bool got = false;
    net.node(dest).tele()->on_control_delivered =
        [&got](const msg::ControlPacket&, bool) { got = true; };
    net.sink().tele()->send_control(dest, a.code(), 1);
    ++sent;
    net.run_for(45_s);
    if (got) ++delivered;
  }
  ASSERT_GE(sent, 15u);
  // Re-Tele on a connected field: a recovery chain (backtrack + origin
  // retry + detour) occasionally overruns the per-packet window, so allow
  // a small number of unlucky misses — wholesale breakage still fails.
  EXPECT_GE(delivered + 2, sent);
}

TEST_P(NetworkProperty, AthxIsPositiveAndBounded) {
  Network net(config(GetParam() ^ 0x77));
  net.start();
  net.run_for(6_min);
  for (NodeId dest : {static_cast<NodeId>(net.size() - 1),
                      static_cast<NodeId>(net.size() / 2)}) {
    const auto& a = net.node(dest).tele()->addressing();
    if (!a.has_code()) continue;
    std::uint8_t hops = 0;
    bool got = false;
    net.node(dest).tele()->on_control_delivered =
        [&](const msg::ControlPacket& p, bool) {
          got = true;
          hops = p.hops_so_far;
        };
    net.sink().tele()->send_control(dest, a.code(), 1);
    net.run_for(45_s);
    if (got) {
      EXPECT_GE(hops, 1u);
      EXPECT_LE(hops, 25u);  // bounded by retries x depth, far below 255
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperty,
                         ::testing::Values(101, 202, 303, 404));

class FailureInjection : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureInjection, SurvivesRandomNodeDeaths) {
  NetworkConfig cfg;
  cfg.topology = make_connected_random(20, 60.0, GetParam());
  cfg.seed = GetParam();
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  net.start();
  net.run_for(6_min);

  // Kill three random non-sink nodes.
  Pcg32 rng(GetParam(), 5);
  std::set<NodeId> dead;
  while (dead.size() < 3) {
    dead.insert(static_cast<NodeId>(
        1 + rng.uniform(static_cast<std::uint32_t>(net.size() - 1))));
  }
  for (NodeId d : dead) net.node(d).kill();
  net.run_for(1_min);

  // The network keeps operating: no crashes, and commands to surviving,
  // coded nodes mostly still arrive.
  unsigned sent = 0, delivered = 0;
  for (NodeId dest = 1; dest < net.size(); ++dest) {
    if (dead.contains(dest)) continue;
    const auto& a = net.node(dest).tele()->addressing();
    if (!a.has_code()) continue;
    bool got = false;
    net.node(dest).tele()->on_control_delivered =
        [&got](const msg::ControlPacket&, bool) { got = true; };
    net.sink().tele()->send_control(dest, a.code(), 1);
    ++sent;
    net.run_for(30_s);
    if (got) ++delivered;
  }
  ASSERT_GT(sent, 0u);
  // Some destinations may be partitioned by the deaths; requiring >60%
  // catches wholesale breakage without flaking on unlucky partitions.
  EXPECT_GE(delivered * 10, sent * 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureInjection, ::testing::Values(7, 19));

class WireSizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireSizeProperty, AllFramesFitTheMpdu) {
  // Even with deep sparse-linear codes, every frame must fit 802.15.4.
  Pcg32 rng(GetParam(), 3);
  for (int iter = 0; iter < 100; ++iter) {
    BitString code;
    const std::size_t len = rng.uniform(200) + 1;
    for (std::size_t i = 0; i < len; ++i) code.push_back(rng.chance(0.5));

    msg::ControlPacket cp;
    cp.dest_code = code;
    cp.detour_via = rng.chance(0.5) ? static_cast<NodeId>(rng.uniform(100))
                                    : kInvalidNode;
    cp.detour_code = code;
    Frame f;
    f.payload = cp;
    EXPECT_LE(wire_size_bytes(f), 127u) << "code len " << len;

    msg::FeedbackPacket fb;
    fb.packet = cp;
    Frame g;
    g.payload = fb;
    EXPECT_LE(wire_size_bytes(g), 127u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireSizeProperty, ::testing::Values(1, 2));

}  // namespace
}  // namespace telea
