// Property/fuzz coverage for the path-code arithmetic under the trees the
// protocol can actually build: thousands of seeded random allocation trees
// (depth <= 8, fanout <= 16, randomized headroom policy), each checked for
//   - encode -> decode round-trip (extract_bits recovers every position),
//   - the parent/child prefix property (a child's code extends its parent's),
//   - the addr.code_bounds invariant (src/check): capacity, sink-rooted
//     first bit, positions inside [first_position, 2^space_bits).
// The generator mirrors Algorithms 1-2 (space_bits_for + make_child_code)
// without a simulator, so the whole sweep stays well under the 5 s budget.
#include "core/path_code.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace telea {
namespace {

struct TreeNode {
  std::size_t parent = 0;       // index into the tree (root points at itself)
  PathCode code;
  std::uint32_t position = 0;   // position within the parent's space
  std::uint8_t space_bits = 0;  // width of the field the position sits in
  std::size_t depth = 0;
};

struct RandomTree {
  std::vector<TreeNode> nodes;
  HeadroomPolicy policy;
  bool reserve_zero = false;
};

// Builds one random allocation tree the way a converged network would:
// every interior node sizes its bit space with Algorithm 1 for the number
// of children it ends up with, then hands out consecutive positions
// starting at first_position.
RandomTree make_random_tree(std::uint64_t seed) {
  Pcg32 rng(seed, 0xC0DEull);
  RandomTree tree;
  tree.policy.min_slack = 1 + rng.uniform(3);
  tree.policy.max_slack = tree.policy.min_slack + rng.uniform(12);
  tree.policy.divisor = 1 + rng.uniform(4);
  tree.reserve_zero = rng.uniform(2) == 0;

  TreeNode root;
  root.code = sink_code();
  tree.nodes.push_back(root);

  const std::size_t max_depth = 1 + rng.uniform(8);   // <= 8 levels of children
  const std::size_t node_cap = 16 + rng.uniform(48);  // keeps 10k trees cheap

  std::vector<std::size_t> frontier{0};
  const std::uint32_t first = tree.reserve_zero ? 1u : 0u;
  for (std::size_t depth = 1; depth <= max_depth && !frontier.empty();
       ++depth) {
    std::vector<std::size_t> next;
    for (std::size_t parent_index : frontier) {
      if (tree.nodes.size() >= node_cap) break;
      const std::uint32_t fanout = rng.uniform(17);  // 0..16 children
      if (fanout == 0) continue;
      const std::uint8_t bits =
          space_bits_for(fanout, tree.policy, tree.reserve_zero);
      for (std::uint32_t c = 0; c < fanout && tree.nodes.size() < node_cap;
           ++c) {
        TreeNode child;
        child.parent = parent_index;
        child.position = first + c;
        child.space_bits = bits;
        child.depth = depth;
        child.code = make_child_code(tree.nodes[parent_index].code,
                                     child.position, bits);
        if (child.code.empty()) continue;  // capacity overflow: skip subtree
        tree.nodes.push_back(child);
        next.push_back(tree.nodes.size() - 1);
      }
    }
    frontier = std::move(next);
  }
  return tree;
}

TEST(PathCodeProperty, RandomTreesRoundTripAndStayInBounds) {
  constexpr std::uint64_t kTrees = 10'000;
  std::size_t nodes_checked = 0;
  for (std::uint64_t t = 0; t < kTrees; ++t) {
    const RandomTree tree = make_random_tree(t);
    const std::uint32_t first = tree.reserve_zero ? 1u : 0u;
    for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
      const TreeNode& n = tree.nodes[i];
      const TreeNode& p = tree.nodes[n.parent];

      // addr.code_bounds: capacity, sink-rooted, position inside the space.
      ASSERT_LE(n.code.size(), BitString::kCapacity) << "tree " << t;
      ASSERT_FALSE(n.code.bit(0)) << "tree " << t << " node " << i;
      ASSERT_GE(n.position, first);
      ASSERT_LT(n.position, 1ULL << n.space_bits);
      // Algorithm 1 must have provided room for this child's position.
      ASSERT_GE((1ULL << n.space_bits) - (tree.reserve_zero ? 1u : 0u),
                static_cast<std::uint64_t>(n.position - first) + 1);

      // Prefix property: the child's code is the parent's code extended by
      // exactly its allocated field.
      ASSERT_TRUE(p.code.is_prefix_of(n.code)) << "tree " << t;
      ASSERT_EQ(n.code.size(), p.code.size() + n.space_bits);
      ASSERT_EQ(n.code.common_prefix_len(p.code), p.code.size());

      // Encode -> decode round-trip on the last field...
      ASSERT_EQ(n.code.extract_bits(p.code.size(), n.space_bits), n.position);
      ++nodes_checked;
    }
    // ...and a full decode walk from the sink: replaying every (space_bits,
    // position) pair down the path must reconstruct the stored code exactly.
    for (std::size_t i = 1; i < tree.nodes.size(); ++i) {
      std::vector<std::size_t> path;
      for (std::size_t j = i; j != 0; j = tree.nodes[j].parent) {
        path.push_back(j);
      }
      PathCode walk = sink_code();
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        const TreeNode& step = tree.nodes[*it];
        walk = make_child_code(walk, step.position, step.space_bits);
        ASSERT_FALSE(walk.empty());
      }
      ASSERT_EQ(walk, tree.nodes[i].code) << "tree " << t << " node " << i;
    }
  }
  // The sweep must actually exercise trees, not degenerate to empty ones.
  EXPECT_GT(nodes_checked, 100'000u);
}

TEST(PathCodeProperty, DivergenceMatchesSharedPrefixOnRandomPairs) {
  for (std::uint64_t t = 0; t < 200; ++t) {
    const RandomTree tree = make_random_tree(0x5EED'0000 + t);
    if (tree.nodes.size() < 3) continue;
    Pcg32 rng(t, 0xD1Full);
    for (int k = 0; k < 16; ++k) {
      const auto& a =
          tree.nodes[rng.uniform(static_cast<std::uint32_t>(
              tree.nodes.size()))].code;
      const auto& b =
          tree.nodes[rng.uniform(static_cast<std::uint32_t>(
              tree.nodes.size()))].code;
      const std::size_t shared = a.common_prefix_len(b);
      EXPECT_EQ(code_divergence(a, b), a.size() + b.size() - 2 * shared);
    }
  }
}

TEST(PathCodeProperty, CapacityOverflowYieldsEmptyNotTruncated) {
  // Chain 32-bit fields until the 256-bit capacity is hit: make_child_code
  // must return empty (the protocol's "cannot address" signal), never a
  // silently truncated code.
  PathCode code = sink_code();
  unsigned extended = 0;
  while (true) {
    const PathCode next = make_child_code(code, 1, 32);
    if (next.empty()) break;
    ASSERT_EQ(next.size(), code.size() + 32);
    code = next;
    ++extended;
    ASSERT_LT(extended, 64u) << "capacity limit never enforced";
  }
  ASSERT_GT(extended, 0u);
  ASSERT_GT(code.size() + 32, BitString::kCapacity);
}

TEST(PathCodeProperty, RejectsPositionsOutsideTheSpace) {
  const PathCode parent = sink_code();
  EXPECT_TRUE(make_child_code(parent, 1u << 4, 4).empty());
  EXPECT_TRUE(make_child_code(parent, 0, 0).empty());
  EXPECT_TRUE(make_child_code(parent, 0, 33).empty());
  EXPECT_FALSE(make_child_code(parent, (1u << 4) - 1, 4).empty());
}

}  // namespace
}  // namespace telea
