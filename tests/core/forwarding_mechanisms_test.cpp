// Tests for the forwarding engine's robustness machinery: claim deferral,
// yield on ignored re-acks, origin retry, feedback retries, and
// ack-overheard suppression.

#include <gtest/gtest.h>

#include "core/teleadjusting.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kTele;
  return cfg;
}

TEST(ForwardingMechanisms, NoteAckOverheardSuppressesState) {
  Network net(line_config(3, 41));
  net.start();
  net.run_for(4_min);
  auto& fwd = net.sink().tele()->forwarding();
  // Even for an unknown seqno this must create a finished tombstone.
  fwd.note_ack_overheard(777);
  // A later control frame for that seqno is ignored (no claim) at the node
  // that overheard the ack...
  msg::ControlPacket packet;
  packet.seqno = 777;
  packet.dest = 2;
  packet.dest_code = net.node(2).tele()->addressing().code();
  packet.expected_relay_code_len = 0;
  EXPECT_EQ(fwd.handle_control(1, packet, true), AckDecision::kIgnore);
  // ...while a node that did NOT hear the ack still claims normally.
  EXPECT_EQ(net.node(1).tele()->forwarding().handle_control(0, packet, true),
            AckDecision::kAcceptAndAck);
}

TEST(ForwardingMechanisms, OriginRetryRecoversFromTransientDeadEnd) {
  // Line 0-1-2: kill node 1 briefly-ish at send time is impossible (kill is
  // permanent), so instead verify the retry path fires: origin retry is
  // enabled by default and a send to a live network succeeds even when the
  // first candidate is marked unreachable.
  Network net(line_config(3, 42));
  net.start();
  net.run_for(4_min);
  // Poison the sink's view of its only child: first attempt will find no
  // candidate and schedule the origin retry, which clears the mark.
  net.sink().tele()->addressing().neighbors().mark_unreachable(
      1, net.sim().now());
  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto& code = net.node(2).tele()->addressing().code();
  net.sink().tele()->send_control(2, code, 1);
  net.run_for(30_s);
  EXPECT_TRUE(delivered);
}

TEST(ForwardingMechanisms, FailureReportedOnlyAfterOriginRetries) {
  NetworkConfig cfg = line_config(3, 43);
  cfg.tele.forwarding.forward_retries = 1;
  cfg.tele.forwarding.origin_retries = 1;
  cfg.tele.forwarding.origin_retry_delay = 2_s;
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  const PathCode code = net.node(2).tele()->addressing().code();
  net.node(1).kill();
  net.node(2).kill();
  bool failed = false;
  SimTime failed_at = 0;
  net.sink().tele()->on_delivery_failed = [&](std::uint32_t) {
    failed = true;
    failed_at = net.sim().now();
  };
  const SimTime sent_at = net.sim().now();
  net.sink().tele()->send_control(2, code, 1);
  net.run_for(2_min);
  ASSERT_TRUE(failed);
  // At least one full attempt + the retry delay + second attempt elapsed.
  EXPECT_GT(failed_at - sent_at, 2_s);
}

TEST(ForwardingMechanisms, ClaimDeferDelaysForward) {
  NetworkConfig slow = line_config(3, 44);
  slow.tele.forwarding.claim_defer = 400 * kMillisecond;
  Network net(slow);
  net.start();
  net.run_for(4_min);
  bool delivered = false;
  SimTime delivered_at = 0;
  net.node(2).tele()->on_control_delivered =
      [&](const msg::ControlPacket&, bool) {
        delivered = true;
        delivered_at = net.sim().now();
      };
  const auto& code = net.node(2).tele()->addressing().code();
  const SimTime t0 = net.sim().now();
  net.sink().tele()->send_control(2, code, 1);
  net.run_for(1_min);
  ASSERT_TRUE(delivered);
  // One intermediate claim: at least one defer period in the path.
  EXPECT_GE(delivered_at - t0, 400 * kMillisecond);
}

TEST(ForwardingMechanisms, AblationFlagsDisableMechanisms) {
  NetworkConfig cfg = line_config(3, 45);
  cfg.tele.forwarding.backtracking = false;
  cfg.tele.forwarding.origin_retries = 0;
  Network net(cfg);
  net.start();
  net.run_for(4_min);
  // Still delivers on a healthy network.
  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  net.sink().tele()->send_control(
      2, net.node(2).tele()->addressing().code(), 1);
  net.run_for(30_s);
  EXPECT_TRUE(delivered);
}

TEST(ForwardingMechanisms, SeqnosAdvancePerSend) {
  Network net(line_config(3, 46));
  net.start();
  net.run_for(4_min);
  const auto& code = net.node(2).tele()->addressing().code();
  const auto a = net.sink().tele()->send_control(2, code, 1);
  const auto b = net.sink().tele()->send_control(2, code, 2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(*a + 1, *b);
}

}  // namespace
}  // namespace telea
