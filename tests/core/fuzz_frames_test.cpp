// Adversarial-input hardening: every protocol handler must survive
// arbitrary garbage frames — corrupted codes, unknown ids, absurd positions,
// inconsistent route headers — without crashing or corrupting local state.
// (A real deployment decodes whatever the air delivers.)

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace telea {
namespace {

using namespace time_literals;

PathCode random_code(Pcg32& rng) {
  PathCode c;
  const std::size_t len = rng.uniform(80);
  for (std::size_t i = 0; i < len; ++i) c.push_back(rng.chance(0.5));
  return c;
}

class FuzzFrames : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzFrames, TeleHandlersSurviveGarbage) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = GetParam();
  cfg.protocol = ControlProtocol::kReTele;
  Network net(cfg);
  net.start();
  net.run_for(3_min);

  Pcg32 rng(GetParam(), 13);
  for (int iter = 0; iter < 400; ++iter) {
    const auto node = static_cast<NodeId>(rng.uniform(4));
    const auto from = static_cast<NodeId>(rng.uniform(200));
    const bool for_me = rng.chance(0.5);
    Frame frame;
    frame.src = from;
    frame.dst = for_me ? node : kBroadcastNode;

    switch (rng.uniform(6)) {
      case 0: {
        msg::ControlPacket p;
        p.dest = static_cast<NodeId>(rng.uniform(300));
        p.dest_code = random_code(rng);
        p.expected_relay = static_cast<NodeId>(rng.uniform(300));
        p.expected_relay_code_len = static_cast<std::uint8_t>(rng.uniform(255));
        // Out of the sink's live seqno range: a forged packet that reuses a
        // seqno the sink will assign later aliases with the real command
        // (seqno-only identity — a documented protocol limitation inherited
        // from the paper; see docs/PROTOCOL.md §7).
        p.seqno = 100000 + rng.uniform(50);
        p.mode = rng.chance(0.2) ? msg::ControlMode::kDirect
                                 : msg::ControlMode::kOpportunistic;
        p.detour_via = rng.chance(0.3)
                           ? static_cast<NodeId>(rng.uniform(300))
                           : kInvalidNode;
        p.detour_code = random_code(rng);
        frame.payload = p;
        break;
      }
      case 1: {
        msg::TeleBeacon b;
        b.parent_code = random_code(rng);
        b.space_bits = static_cast<std::uint8_t>(rng.uniform(64));
        for (std::uint32_t e = 0; e < rng.uniform(6); ++e) {
          b.entries.push_back(msg::AllocationEntry{
              static_cast<NodeId>(rng.uniform(300)), rng.uniform(1u << 16),
              rng.chance(0.5)});
        }
        frame.payload = b;
        break;
      }
      case 2: {
        msg::AllocationAck a;
        a.position = rng.next();
        a.space_bits = static_cast<std::uint8_t>(rng.uniform(64));
        a.parent_code = random_code(rng);
        frame.payload = a;
        break;
      }
      case 3: {
        msg::FeedbackPacket fb;
        fb.packet.dest = static_cast<NodeId>(rng.uniform(300));
        fb.packet.dest_code = random_code(rng);
        fb.packet.seqno = 100000 + rng.uniform(50);
        fb.packet.expected_relay_code_len =
            static_cast<std::uint8_t>(rng.uniform(255));
        frame.payload = fb;
        break;
      }
      case 4: {
        msg::GroupControlPacket g;
        g.group_seqno = rng.uniform(20);
        for (std::uint32_t d = 0; d < rng.uniform(5); ++d) {
          g.dests.push_back(msg::GroupDest{
              static_cast<NodeId>(rng.uniform(300)), random_code(rng)});
        }
        g.expected_relay_code_len =
            static_cast<std::uint8_t>(rng.uniform(255));
        frame.payload = g;
        break;
      }
      default: {
        msg::ConfirmFrame c;
        c.position = rng.next();
        frame.payload = c;
        break;
      }
    }
    // Must not crash, assert, or hang.
    (void)net.node(node).handle_frame(frame, for_me, -70.0);
  }
  // The network self-heals: forged AllocationAcks can poison codes, but
  // position maintenance (claims riding every routing beacon, Alg. 2)
  // repairs them. Give the repair machinery a few beacon rounds.
  net.run_for(6_min);
  bool delivered = false;
  net.node(3).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto& code = net.node(3).tele()->addressing().code();
  ASSERT_FALSE(code.empty());
  net.sink().tele()->send_control(3, code, 7);
  net.run_for(2_min);
  EXPECT_TRUE(delivered);
}

TEST_P(FuzzFrames, BaselineHandlersSurviveGarbage) {
  for (ControlProtocol proto :
       {ControlProtocol::kDrip, ControlProtocol::kRpl}) {
    NetworkConfig cfg;
    cfg.topology = make_line(3, 22.0);
    cfg.seed = GetParam() ^ 0xF00D;
    cfg.protocol = proto;
    Network net(cfg);
    net.start();
    net.run_for(2_min);
    Pcg32 rng(GetParam(), 17);
    for (int iter = 0; iter < 200; ++iter) {
      const auto node = static_cast<NodeId>(rng.uniform(3));
      Frame frame;
      frame.src = static_cast<NodeId>(rng.uniform(200));
      frame.dst = rng.chance(0.5) ? node : kBroadcastNode;
      if (rng.chance(0.33)) {
        msg::DripMsg m;
        m.version = rng.uniform(100);
        m.dest = static_cast<NodeId>(rng.uniform(300));
        frame.payload = m;
      } else if (rng.chance(0.5)) {
        msg::RplDao dao;
        dao.non_storing = rng.chance(0.5);
        dao.origin = static_cast<NodeId>(rng.uniform(300));
        dao.transit_parent = static_cast<NodeId>(rng.uniform(300));
        for (std::uint32_t t = 0; t < rng.uniform(8); ++t) {
          dao.targets.push_back(static_cast<NodeId>(rng.uniform(300)));
        }
        frame.payload = dao;
      } else {
        msg::RplData d;
        d.dest = static_cast<NodeId>(rng.uniform(300));
        d.seqno = rng.uniform(100);
        d.route_index = static_cast<std::uint8_t>(rng.uniform(255));
        for (std::uint32_t h = 0; h < rng.uniform(6); ++h) {
          d.source_route.push_back(static_cast<NodeId>(rng.uniform(300)));
        }
        frame.payload = d;
      }
      (void)net.node(node).handle_frame(frame, frame.dst == node, -70.0);
    }
    net.run_for(1_min);  // no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFrames, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace telea
