#include <gtest/gtest.h>

#include "radio/medium.hpp"
#include "radio/packet.hpp"

namespace telea {
namespace {

TEST(PacketGroup, SizeGrowsPerDestination) {
  msg::GroupControlPacket g;
  Frame empty;
  empty.payload = g;
  const std::size_t base = wire_size_bytes(empty);

  g.dests.push_back(
      msg::GroupDest{5, BitString::from_string_unchecked("00101")});
  Frame one;
  one.payload = g;
  // id(2) + length octet + 1 code byte.
  EXPECT_EQ(wire_size_bytes(one), base + 2 + 1 + 1);

  g.dests.push_back(
      msg::GroupDest{6, BitString::from_string_unchecked("001011")});
  Frame two;
  two.payload = g;
  EXPECT_GT(wire_size_bytes(two), wire_size_bytes(one));
}

TEST(PacketGroup, AnycastWantsAck) {
  // Group control packets are claimed with link acknowledgements even as
  // broadcasts — same anycast discipline as unicast control packets.
  msg::GroupControlPacket g;
  g.dests.push_back(msg::GroupDest{1, BitString::from_string_unchecked("01")});
  Frame f;
  f.dst = kBroadcastNode;
  f.payload = g;
  EXPECT_TRUE(RadioMedium::frame_wants_ack(f));
}

TEST(PacketGroup, ChunkOfEighteenShortCodesFitsMpdu) {
  // The group chunking limit (18 destinations of testbed-scale codes) must
  // actually fit a 127-byte MPDU.
  msg::GroupControlPacket g;
  for (int i = 0; i < 18; ++i) {
    g.dests.push_back(msg::GroupDest{
        static_cast<NodeId>(i), BitString::from_string_unchecked("00101010")});
  }
  Frame f;
  f.payload = g;
  EXPECT_LE(wire_size_bytes(f), 127u);
}

TEST(PacketGroup, RplSourceRouteCostsTwoBytesPerHop) {
  msg::RplData d;
  Frame plain;
  plain.payload = d;
  const std::size_t base = wire_size_bytes(plain);
  d.source_route = {1, 2, 3, 4};
  Frame routed;
  routed.payload = d;
  EXPECT_EQ(wire_size_bytes(routed), base + 1 + 4 * 2);
}

TEST(PacketGroup, NonStoringDaoCarriesTransitInfo) {
  msg::RplDao storing;
  storing.targets = {1, 2, 3};
  Frame a;
  a.payload = storing;
  msg::RplDao ns;
  ns.non_storing = true;
  ns.origin = 5;
  ns.transit_parent = 2;
  Frame b;
  b.payload = ns;
  EXPECT_GT(wire_size_bytes(a), 13u);
  EXPECT_GT(wire_size_bytes(b), 13u);
  EXPECT_LE(wire_size_bytes(b), 127u);
}

}  // namespace
}  // namespace telea
