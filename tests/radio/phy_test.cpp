#include "radio/phy.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(Cc2420Phy, AirtimeMatchesBitrate) {
  // 50-byte MPDU + 6-byte PHY header = 56 bytes = 448 bits at 250 kbps.
  EXPECT_EQ(Cc2420Phy::airtime(50), static_cast<SimTime>(448.0 / 250000.0 * 1e6));
}

TEST(Cc2420Phy, AckAirtime) {
  EXPECT_EQ(Cc2420Phy::ack_airtime(), Cc2420Phy::airtime(5));
  // 11 bytes * 32 us/byte = 352 us
  EXPECT_EQ(Cc2420Phy::ack_airtime(), 352u);
}

TEST(Cc2420Phy, TxPowerTableAnchors) {
  EXPECT_DOUBLE_EQ(Cc2420Phy::tx_power_dbm(31), 0.0);
  EXPECT_DOUBLE_EQ(Cc2420Phy::tx_power_dbm(27), -1.0);
  EXPECT_DOUBLE_EQ(Cc2420Phy::tx_power_dbm(3), -25.0);
}

TEST(Cc2420Phy, TxPowerInterpolatesAndClamps) {
  const double p2 = Cc2420Phy::tx_power_dbm(2);
  EXPECT_LT(p2, -25.0);  // below level 3
  EXPECT_GT(p2, -32.0);  // above level 0
  EXPECT_DOUBLE_EQ(Cc2420Phy::tx_power_dbm(-5), Cc2420Phy::tx_power_dbm(0));
  EXPECT_DOUBLE_EQ(Cc2420Phy::tx_power_dbm(99), 0.0);
  // Monotone non-decreasing across all levels.
  for (int l = 1; l <= 31; ++l) {
    EXPECT_GE(Cc2420Phy::tx_power_dbm(l), Cc2420Phy::tx_power_dbm(l - 1));
  }
}

TEST(Cc2420Phy, BerDecreasesWithSinr) {
  double prev = 1.0;
  for (double sinr = -10; sinr <= 10; sinr += 1) {
    const double ber = Cc2420Phy::bit_error_rate(sinr);
    EXPECT_LE(ber, prev);
    EXPECT_GE(ber, 0.0);
    EXPECT_LE(ber, 0.5);
    prev = ber;
  }
}

TEST(Cc2420Phy, BerNegligibleAtHighSinr) {
  EXPECT_LT(Cc2420Phy::bit_error_rate(10.0), 1e-9);
}

TEST(Cc2420Phy, BerSubstantialAtLowSinr) {
  EXPECT_GT(Cc2420Phy::bit_error_rate(-5.0), 0.05);
}

TEST(Cc2420Phy, PrrZeroBelowSensitivity) {
  EXPECT_DOUBLE_EQ(
      Cc2420Phy::packet_reception_ratio(30.0, Cc2420Phy::kSensitivityDbm - 1, 40),
      0.0);
}

TEST(Cc2420Phy, PrrNearOneWithStrongSignal) {
  EXPECT_GT(Cc2420Phy::packet_reception_ratio(20.0, -60.0, 40), 0.999);
}

TEST(Cc2420Phy, PrrDecreasesWithPacketLength) {
  const double sinr = 2.0;
  const double short_prr = Cc2420Phy::packet_reception_ratio(sinr, -80.0, 20);
  const double long_prr = Cc2420Phy::packet_reception_ratio(sinr, -80.0, 100);
  EXPECT_GT(short_prr, long_prr);
}

TEST(Cc2420Phy, PrrTransitionRegionIsSteep) {
  // The 802.15.4 DSSS curve has a narrow gray region: a few dB swing PRR
  // from near 0 to near 1.
  const double low = Cc2420Phy::packet_reception_ratio(-3.0, -80.0, 50);
  const double high = Cc2420Phy::packet_reception_ratio(4.0, -80.0, 50);
  EXPECT_LT(low, 0.1);
  EXPECT_GT(high, 0.9);
}

}  // namespace
}  // namespace telea
