#include "radio/interferer.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(WifiInterferer, DisabledIsSilent) {
  WifiInterfererConfig cfg;
  cfg.enabled = false;
  WifiInterferer wifi(cfg, 4, 1);
  for (SimTime t = 0; t < kSecond; t += 10 * kMillisecond) {
    EXPECT_LT(wifi.power_at(0, t), -110.0);
  }
}

TEST(WifiInterferer, ExpectedDutyMatchesConfig) {
  WifiInterfererConfig cfg;
  cfg.mean_on = 10 * kMillisecond;
  cfg.mean_off = 30 * kMillisecond;
  WifiInterferer wifi(cfg, 1, 1);
  EXPECT_NEAR(wifi.expected_duty(), 0.25, 1e-9);
  cfg.enabled = false;
  WifiInterferer off(cfg, 1, 1);
  EXPECT_DOUBLE_EQ(off.expected_duty(), 0.0);
}

TEST(WifiInterferer, EmpiricalDutyNearExpected) {
  WifiInterfererConfig cfg;
  cfg.mean_on = 4 * kMillisecond;
  cfg.mean_off = 12 * kMillisecond;
  WifiInterferer wifi(cfg, 1, 42);
  int on = 0, total = 0;
  for (SimTime t = 0; t < 120 * kSecond; t += kMillisecond) {
    if (wifi.power_at(0, t) > -110.0) ++on;
    ++total;
  }
  const double duty = static_cast<double>(on) / total;
  EXPECT_NEAR(duty, 0.25, 0.06);
}

TEST(WifiInterferer, BurstPowerNearConfigured) {
  WifiInterfererConfig cfg;
  cfg.base_power_dbm = -78.0;
  cfg.node_offset_sigma_db = 2.0;
  WifiInterferer wifi(cfg, 8, 3);
  bool saw_burst = false;
  for (SimTime t = 0; t < 10 * kSecond && !saw_burst; t += kMillisecond) {
    const double p = wifi.power_at(3, t);
    if (p > -110.0) {
      saw_burst = true;
      EXPECT_NEAR(p, -78.0, 10.0);
    }
  }
  EXPECT_TRUE(saw_burst);
}

TEST(WifiInterferer, PerNodeOffsetsDiffer) {
  WifiInterfererConfig cfg;
  cfg.node_offset_sigma_db = 4.0;
  WifiInterferer wifi(cfg, 16, 5);
  // Find an 'on' instant, then compare node powers at the same time.
  SimTime t = 0;
  while (wifi.power_at(0, t) < -110.0 && t < 10 * kSecond) t += kMillisecond;
  ASSERT_LT(t, 10 * kSecond);
  bool differ = false;
  const double p0 = wifi.power_at(0, t);
  for (NodeId n = 1; n < 16; ++n) {
    if (wifi.power_at(n, t) != p0) differ = true;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace telea
