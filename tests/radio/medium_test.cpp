#include "radio/medium.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "radio/phy.hpp"

namespace telea {
namespace {

/// A scripted MAC stand-in recording everything the medium reports.
class FakeListener final : public MediumListener {
 public:
  AckDecision decision = AckDecision::kAccept;
  std::vector<Frame> received;
  std::vector<double> rssi;
  int tx_done_count = 0;
  bool last_acked = false;
  NodeId last_acker = kInvalidNode;

  AckDecision on_frame(const Frame& frame, double rssi_dbm) override {
    received.push_back(frame);
    rssi.push_back(rssi_dbm);
    return decision;
  }
  void on_tx_done(bool acked, NodeId acker) override {
    ++tx_done_count;
    last_acked = acked;
    last_acker = acker;
  }
};

/// Quiet, flat noise floor so reception outcomes are deterministic.
CpmNoiseModel quiet_noise() {
  std::vector<std::int8_t> trace(200, -98);
  return CpmNoiseModel(trace, 2);
}

class MediumTest : public ::testing::Test {
 protected:
  /// Nodes on a line with `spacing` meters, no shadowing, 0 dBm tx.
  void build(int nodes, double spacing) {
    std::vector<Position> pos;
    for (int i = 0; i < nodes; ++i) pos.push_back({i * spacing, 0.0});
    PathLossConfig pl;
    pl.exponent = 4.0;
    pl.loss_at_reference_db = 40.0;
    pl.shadowing_sigma_db = 0.0;
    gains_ = std::make_unique<LinkGainTable>(pos, pl, 1);
    noise_ = std::make_unique<CpmNoiseModel>(quiet_noise());
    MediumConfig cfg;
    cfg.tx_power_dbm = 0.0;
    medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_, cfg, 7);
    listeners_.clear();
    for (int i = 0; i < nodes; ++i) {
      listeners_.push_back(std::make_unique<FakeListener>());
      medium_->attach(static_cast<NodeId>(i), *listeners_.back());
    }
  }

  Frame beacon_frame(NodeId src) {
    Frame f;
    f.src = src;
    f.dst = kBroadcastNode;
    f.link_seq = next_seq_++;
    f.payload = msg::CtpBeacon{};
    return f;
  }

  Frame data_frame(NodeId src, NodeId dst) {
    Frame f;
    f.src = src;
    f.dst = dst;
    f.link_seq = next_seq_++;
    f.payload = msg::CtpData{};
    return f;
  }

  Simulator sim_;
  std::unique_ptr<LinkGainTable> gains_;
  std::unique_ptr<CpmNoiseModel> noise_;
  std::unique_ptr<RadioMedium> medium_;
  std::vector<std::unique_ptr<FakeListener>> listeners_;
  std::uint32_t next_seq_ = 1;
};

TEST_F(MediumTest, BroadcastReachesListeningNeighbor) {
  build(2, 5.0);  // 5 m at 0 dBm: very strong link
  medium_->set_listening(1, true);
  medium_->transmit(0, beacon_frame(0));
  sim_.run();
  ASSERT_EQ(listeners_[1]->received.size(), 1u);
  EXPECT_EQ(listeners_[1]->received[0].src, 0);
  EXPECT_EQ(listeners_[0]->tx_done_count, 1);
  EXPECT_FALSE(listeners_[0]->last_acked);  // broadcasts are unacked
}

TEST_F(MediumTest, SleepingRadioMissesFrame) {
  build(2, 5.0);
  medium_->set_listening(1, false);
  medium_->transmit(0, beacon_frame(0));
  sim_.run();
  EXPECT_TRUE(listeners_[1]->received.empty());
}

TEST_F(MediumTest, WakingMidFrameMissesIt) {
  build(2, 5.0);
  medium_->set_listening(1, false);
  medium_->transmit(0, beacon_frame(0));
  // Wake 100 us into the transmission: the lock was taken at tx start.
  sim_.schedule_in(100, [this] { medium_->set_listening(1, true); });
  sim_.run();
  EXPECT_TRUE(listeners_[1]->received.empty());
}

TEST_F(MediumTest, SleepMidFrameAbortsReception) {
  build(2, 5.0);
  medium_->set_listening(1, true);
  medium_->transmit(0, beacon_frame(0));
  sim_.schedule_in(100, [this] { medium_->set_listening(1, false); });
  sim_.run();
  EXPECT_TRUE(listeners_[1]->received.empty());
}

TEST_F(MediumTest, UnicastAckedByReceiver) {
  build(2, 5.0);
  medium_->set_listening(1, true);
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  medium_->transmit(0, data_frame(0, 1));
  sim_.run();
  EXPECT_EQ(listeners_[0]->tx_done_count, 1);
  EXPECT_TRUE(listeners_[0]->last_acked);
  EXPECT_EQ(listeners_[0]->last_acker, 1);
}

TEST_F(MediumTest, UnicastWithoutAckDecisionReportsNoAck) {
  build(2, 5.0);
  medium_->set_listening(1, true);
  listeners_[1]->decision = AckDecision::kAccept;
  medium_->transmit(0, data_frame(0, 1));
  sim_.run();
  EXPECT_TRUE(listeners_[0]->tx_done_count == 1 && !listeners_[0]->last_acked);
}

TEST_F(MediumTest, AnycastControlPacketClaimedByNonAddressee) {
  build(3, 5.0);
  medium_->set_listening(1, true);
  medium_->set_listening(2, false);
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  Frame f;
  f.src = 0;
  f.dst = kBroadcastNode;  // anycast
  f.link_seq = next_seq_++;
  msg::ControlPacket cp;
  cp.mode = msg::ControlMode::kOpportunistic;
  f.payload = cp;
  EXPECT_TRUE(RadioMedium::frame_wants_ack(f));
  medium_->transmit(0, f);
  sim_.run();
  EXPECT_TRUE(listeners_[0]->last_acked);
  EXPECT_EQ(listeners_[0]->last_acker, 1);
}

TEST_F(MediumTest, DirectControlIsPlainUnicast) {
  Frame f;
  f.dst = 5;
  msg::ControlPacket cp;
  cp.mode = msg::ControlMode::kDirect;
  f.payload = cp;
  EXPECT_TRUE(RadioMedium::frame_wants_ack(f));
  f.dst = kBroadcastNode;
  cp.mode = msg::ControlMode::kDirect;
  f.payload = cp;
  EXPECT_FALSE(RadioMedium::frame_wants_ack(f));
}

TEST_F(MediumTest, OutOfRangeNodeNeverReceives) {
  build(2, 200.0);  // 200 m at exponent 4: far below sensitivity
  medium_->set_listening(1, true);
  for (int i = 0; i < 20; ++i) {
    medium_->transmit(0, beacon_frame(0));
    sim_.run();
  }
  EXPECT_TRUE(listeners_[1]->received.empty());
}

TEST_F(MediumTest, ChannelEnergyRisesDuringTransmission) {
  build(2, 5.0);
  medium_->set_listening(1, true);
  const double idle = medium_->channel_energy_dbm(1);
  EXPECT_LT(idle, -90.0);
  medium_->transmit(0, beacon_frame(0));
  // Signal at 5 m, exponent 4, PL0 40 dB: loss 68 dB -> about -68 dBm.
  const double busy = medium_->channel_energy_dbm(1);
  EXPECT_GT(busy, -70.0);
  sim_.run();
}

TEST_F(MediumTest, CollisionDegradesMiddleReceiver) {
  // Nodes 0 and 2 transmit simultaneously; node 1 sits between them at equal
  // distance, so SINR ~ 0 dB -> reception must essentially always fail.
  build(3, 5.0);
  medium_->set_listening(1, true);
  int received = 0;
  for (int i = 0; i < 50; ++i) {
    medium_->transmit(0, beacon_frame(0));
    medium_->transmit(2, beacon_frame(2));
    sim_.run();
    received += static_cast<int>(listeners_[1]->received.size());
    listeners_[1]->received.clear();
  }
  EXPECT_LE(received, 2);
}

TEST_F(MediumTest, CaptureWhenInterfererIsWeak) {
  // Interferer is 4x farther: SINR is high, reception should survive.
  std::vector<Position> pos{{0, 0}, {5, 0}, {25, 0}};
  PathLossConfig pl;
  pl.exponent = 4.0;
  pl.loss_at_reference_db = 40.0;
  pl.shadowing_sigma_db = 0.0;
  gains_ = std::make_unique<LinkGainTable>(pos, pl, 1);
  noise_ = std::make_unique<CpmNoiseModel>(quiet_noise());
  MediumConfig cfg;
  cfg.tx_power_dbm = 0.0;
  medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_, cfg, 7);
  listeners_.clear();
  for (int i = 0; i < 3; ++i) {
    listeners_.push_back(std::make_unique<FakeListener>());
    medium_->attach(static_cast<NodeId>(i), *listeners_.back());
  }
  medium_->set_listening(1, true);
  int received = 0;
  for (int i = 0; i < 20; ++i) {
    medium_->transmit(0, beacon_frame(0));
    medium_->transmit(2, beacon_frame(2));
    sim_.run();
    received += static_cast<int>(listeners_[1]->received.size());
    listeners_[1]->received.clear();
  }
  EXPECT_GE(received, 18);  // locked onto 0 first, 2 is 40 dB weaker
}

TEST_F(MediumTest, TransmitHookSeesEveryCopy) {
  build(2, 5.0);
  int copies = 0;
  medium_->set_transmit_hook(
      [&copies](NodeId, const Frame&, SimTime) { ++copies; });
  medium_->transmit(0, beacon_frame(0));
  sim_.run();
  medium_->transmit(0, beacon_frame(0));
  sim_.run();
  EXPECT_EQ(copies, 2);
  EXPECT_EQ(medium_->total_transmissions(), 2u);
}

TEST_F(MediumTest, TransmitterCannotReceiveWhileSending) {
  build(2, 5.0);
  medium_->set_listening(0, true);
  medium_->set_listening(1, true);
  medium_->transmit(0, beacon_frame(0));
  medium_->transmit(1, beacon_frame(1));
  sim_.run();
  // Both were transmitting through each other's frames: neither receives.
  EXPECT_TRUE(listeners_[0]->received.empty());
  EXPECT_TRUE(listeners_[1]->received.empty());
}

TEST_F(MediumTest, ReceivingStateIsVisible) {
  build(2, 5.0);
  medium_->set_listening(1, true);
  EXPECT_FALSE(medium_->receiving(1));
  medium_->transmit(0, beacon_frame(0));
  EXPECT_TRUE(medium_->receiving(1));
  sim_.run();
  EXPECT_FALSE(medium_->receiving(1));
}

}  // namespace
}  // namespace telea
