#include "radio/noise.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace telea {
namespace {

TEST(SyntheticTrace, LengthAndBounds) {
  SyntheticTraceConfig cfg;
  const auto trace = generate_heavy_noise_trace(cfg, 1);
  EXPECT_EQ(trace.size(), cfg.length);
  for (auto v : trace) {
    EXPECT_GE(v, static_cast<std::int8_t>(cfg.min_dbm));
    EXPECT_LE(v, static_cast<std::int8_t>(cfg.max_dbm));
  }
}

TEST(SyntheticTrace, HasQuietFloorAndBursts) {
  SyntheticTraceConfig cfg;
  const auto trace = generate_heavy_noise_trace(cfg, 2);
  int quiet = 0, loud = 0;
  for (auto v : trace) {
    if (v <= -94) ++quiet;
    if (v >= -85) ++loud;
  }
  // Most of the trace sits at the floor; a visible minority is bursty.
  EXPECT_GT(quiet, static_cast<int>(cfg.length / 2));
  EXPECT_GT(loud, static_cast<int>(cfg.length / 100));
  EXPECT_LT(loud, static_cast<int>(cfg.length / 3));
}

TEST(SyntheticTrace, DeterministicPerSeed) {
  SyntheticTraceConfig cfg;
  EXPECT_EQ(generate_heavy_noise_trace(cfg, 5), generate_heavy_noise_trace(cfg, 5));
  EXPECT_NE(generate_heavy_noise_trace(cfg, 5), generate_heavy_noise_trace(cfg, 6));
}

TEST(CpmNoiseModel, MarginalMeanNearFloor) {
  const auto trace = generate_heavy_noise_trace({}, 3);
  CpmNoiseModel model(trace, 3);
  EXPECT_GT(model.marginal_mean_dbm(), -101.0);
  EXPECT_LT(model.marginal_mean_dbm(), -90.0);
}

TEST(CpmNoiseModel, GeneratorsAreDeterministicPerSeedStream) {
  const auto trace = generate_heavy_noise_trace({}, 3);
  CpmNoiseModel model(trace, 3);
  auto a = model.make_generator(10, 1);
  auto b = model.make_generator(10, 1);
  auto c = model.make_generator(10, 2);
  bool all_same = true, any_diff_c = false;
  for (SimTime t = 0; t < 100 * kMillisecond; t += 2 * kMillisecond) {
    const double va = a.noise_dbm(t);
    const double vb = b.noise_dbm(t);
    if (va != vb) all_same = false;
    if (va != c.noise_dbm(t)) any_diff_c = true;
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_c);
}

TEST(CpmNoiseModel, OutputStaysInTraceRange) {
  SyntheticTraceConfig cfg;
  const auto trace = generate_heavy_noise_trace(cfg, 4);
  CpmNoiseModel model(trace, 3);
  auto gen = model.make_generator(1, 1);
  for (SimTime t = 0; t < 2 * kSecond; t += kMillisecond) {
    const double v = gen.noise_dbm(t);
    EXPECT_GE(v, cfg.min_dbm - 1);
    EXPECT_LE(v, cfg.max_dbm + 1);
  }
}

TEST(CpmNoiseModel, RepeatedQueriesAtSameTimeAreStable) {
  const auto trace = generate_heavy_noise_trace({}, 4);
  CpmNoiseModel model(trace, 3);
  auto gen = model.make_generator(2, 2);
  const double v1 = gen.noise_dbm(10 * kMillisecond);
  const double v2 = gen.noise_dbm(10 * kMillisecond);
  EXPECT_DOUBLE_EQ(v1, v2);
}

TEST(CpmNoiseModel, TemporalCorrelationExceedsShuffled) {
  // CPM's purpose: consecutive samples correlate. Compare lag-1
  // autocorrelation of the generated process against ~0 for white noise.
  const auto trace = generate_heavy_noise_trace({}, 5);
  CpmNoiseModel model(trace, 3);
  auto gen = model.make_generator(3, 3);
  std::vector<double> xs;
  for (SimTime t = 0; t < 20 * kSecond; t += 2 * kMillisecond) {
    xs.push_back(gen.noise_dbm(t));
  }
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double num = 0, den = 0;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    num += (xs[i] - mean) * (xs[i + 1] - mean);
  }
  for (double x : xs) den += (x - mean) * (x - mean);
  ASSERT_GT(den, 0.0);
  EXPECT_GT(num / den, 0.2);  // clearly positive lag-1 autocorrelation
}

TEST(CpmNoiseModel, FarApartQueriesDecorrelate) {
  const auto trace = generate_heavy_noise_trace({}, 6);
  CpmNoiseModel model(trace, 3);
  auto gen = model.make_generator(4, 4);
  // Jumping far ahead must not loop forever (bounded catch-up) and must
  // still return plausible values.
  const double v = gen.noise_dbm(0);
  const double w = gen.noise_dbm(3600 * kSecond);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(w));
}

}  // namespace
}  // namespace telea
