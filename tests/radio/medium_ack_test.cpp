// Acknowledgement arbitration details of the medium: capture among
// colliding ackers, reverse-link asymmetry, and the ack window timing.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "radio/medium.hpp"
#include "radio/phy.hpp"

namespace telea {
namespace {

class AckerListener final : public MediumListener {
 public:
  AckDecision decision = AckDecision::kIgnore;
  int received = 0;
  bool tx_done = false;
  bool acked = false;
  NodeId acker = kInvalidNode;

  AckDecision on_frame(const Frame&, double) override {
    ++received;
    return decision;
  }
  void on_tx_done(bool a, NodeId who) override {
    tx_done = true;
    acked = a;
    acker = who;
  }
};

CpmNoiseModel quiet_noise() {
  std::vector<std::int8_t> trace(200, -98);
  return CpmNoiseModel(trace, 2);
}

class MediumAckTest : public ::testing::Test {
 protected:
  void build(const std::vector<Position>& pos) {
    PathLossConfig pl;
    pl.exponent = 4.0;
    pl.loss_at_reference_db = 40.0;
    pl.shadowing_sigma_db = 0.0;
    gains_ = std::make_unique<LinkGainTable>(pos, pl, 1);
    noise_ = std::make_unique<CpmNoiseModel>(quiet_noise());
    MediumConfig cfg;
    cfg.tx_power_dbm = 0.0;
    medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_, cfg, 7);
    for (std::size_t i = 0; i < pos.size(); ++i) {
      listeners_.push_back(std::make_unique<AckerListener>());
      medium_->attach(static_cast<NodeId>(i), *listeners_.back());
      medium_->set_listening(static_cast<NodeId>(i), true);
    }
  }

  Frame anycast(std::uint32_t seq) {
    Frame f;
    f.src = 0;
    f.dst = kBroadcastNode;
    f.link_seq = seq;
    msg::ControlPacket cp;
    cp.mode = msg::ControlMode::kOpportunistic;
    f.payload = cp;
    return f;
  }

  Simulator sim_;
  std::unique_ptr<LinkGainTable> gains_;
  std::unique_ptr<CpmNoiseModel> noise_;
  std::unique_ptr<RadioMedium> medium_;
  std::vector<std::unique_ptr<AckerListener>> listeners_;
};

TEST_F(MediumAckTest, SingleAckerAlwaysCaptured) {
  build({{0, 0}, {5, 0}, {10, 0}});
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  listeners_[2]->decision = AckDecision::kAccept;  // receives, no ack
  medium_->transmit(0, anycast(1));
  sim_.run();
  EXPECT_TRUE(listeners_[0]->acked);
  EXPECT_EQ(listeners_[0]->acker, 1);
}

TEST_F(MediumAckTest, StrongerOfTwoAckersCaptures) {
  // Acker 1 at 4 m, acker 2 at 12 m: >3 dB margin, node 1 wins.
  build({{0, 0}, {4, 0}, {12, 0}});
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  listeners_[2]->decision = AckDecision::kAcceptAndAck;
  medium_->transmit(0, anycast(1));
  sim_.run();
  EXPECT_TRUE(listeners_[0]->acked);
  EXPECT_EQ(listeners_[0]->acker, 1);
}

TEST_F(MediumAckTest, EquidistantAckersCollide) {
  // Two ackers at identical distance: no capture margin, the ack is lost.
  build({{0, 0}, {5, 5}, {5, -5}});
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  listeners_[2]->decision = AckDecision::kAcceptAndAck;
  int acked = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    listeners_[0]->tx_done = false;
    medium_->transmit(0, anycast(100 + i));
    sim_.run();
    if (listeners_[0]->acked) ++acked;
  }
  EXPECT_EQ(acked, 0);
}

TEST_F(MediumAckTest, AckWindowDelaysTxDone) {
  build({{0, 0}, {5, 0}});
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  const SimTime start = sim_.now();
  medium_->transmit(0, anycast(1));
  sim_.run();
  // Unicast/anycast completion includes frame airtime + turnaround + ack.
  Frame probe = anycast(2);
  const SimTime min_duration = Cc2420Phy::airtime(wire_size_bytes(probe)) +
                               Cc2420Phy::kTurnaroundTime +
                               Cc2420Phy::ack_airtime();
  EXPECT_GE(sim_.now() - start, min_duration);
}

TEST_F(MediumAckTest, TransmitterBusyThroughAckWindow) {
  build({{0, 0}, {5, 0}});
  listeners_[1]->decision = AckDecision::kAcceptAndAck;
  medium_->transmit(0, anycast(1));
  EXPECT_TRUE(medium_->transmitting(0));
  // Step past the frame airtime but not the ack window: still busy.
  Frame probe = anycast(2);
  sim_.run_until(sim_.now() + Cc2420Phy::airtime(wire_size_bytes(probe)) + 50);
  EXPECT_TRUE(medium_->transmitting(0));
  sim_.run();
  EXPECT_FALSE(medium_->transmitting(0));
}

}  // namespace
}  // namespace telea
