#include "radio/propagation.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

std::vector<Position> line_positions(int n, double spacing) {
  std::vector<Position> p;
  for (int i = 0; i < n; ++i) p.push_back({i * spacing, 0.0});
  return p;
}

TEST(Propagation, Distance) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
}

TEST(LinkGainTable, LossIncreasesWithDistance) {
  PathLossConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  LinkGainTable table(line_positions(4, 10.0), cfg, 1);
  EXPECT_LT(table.loss_db(0, 1), table.loss_db(0, 2));
  EXPECT_LT(table.loss_db(0, 2), table.loss_db(0, 3));
}

TEST(LinkGainTable, LogDistanceFormula) {
  PathLossConfig cfg;
  cfg.exponent = 4.0;
  cfg.loss_at_reference_db = 55.0;
  cfg.shadowing_sigma_db = 0.0;
  LinkGainTable table(line_positions(2, 10.0), cfg, 1);
  // PL(10m) = 55 + 40*log10(10) = 95
  EXPECT_NEAR(table.loss_db(0, 1), 95.0, 1e-9);
}

TEST(LinkGainTable, SymmetricWithoutShadowing) {
  PathLossConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  LinkGainTable table(line_positions(3, 7.0), cfg, 1);
  EXPECT_DOUBLE_EQ(table.loss_db(0, 2), table.loss_db(2, 0));
}

TEST(LinkGainTable, AsymmetricShadowingByDefault) {
  PathLossConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  LinkGainTable table(line_positions(8, 9.0), cfg, 7);
  bool any_asymmetric = false;
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      if (i != j && table.loss_db(i, j) != table.loss_db(j, i)) {
        any_asymmetric = true;
      }
    }
  }
  EXPECT_TRUE(any_asymmetric);
}

TEST(LinkGainTable, SymmetricShadowingOption) {
  PathLossConfig cfg;
  cfg.shadowing_sigma_db = 6.0;
  cfg.symmetric_shadowing = true;
  LinkGainTable table(line_positions(6, 9.0), cfg, 7);
  for (NodeId i = 0; i < 6; ++i) {
    for (NodeId j = 0; j < 6; ++j) {
      if (i != j) EXPECT_DOUBLE_EQ(table.loss_db(i, j), table.loss_db(j, i));
    }
  }
}

TEST(LinkGainTable, DeterministicPerSeed) {
  PathLossConfig cfg;
  LinkGainTable a(line_positions(5, 8.0), cfg, 99);
  LinkGainTable b(line_positions(5, 8.0), cfg, 99);
  LinkGainTable c(line_positions(5, 8.0), cfg, 100);
  EXPECT_DOUBLE_EQ(a.loss_db(0, 4), b.loss_db(0, 4));
  EXPECT_NE(a.loss_db(0, 4), c.loss_db(0, 4));
}

TEST(LinkGainTable, RssiSubtractsLoss) {
  PathLossConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  LinkGainTable table(line_positions(2, 1.0), cfg, 1);
  EXPECT_NEAR(table.rssi_dbm(0, 1, 0.0), -cfg.loss_at_reference_db, 1e-9);
}

TEST(LinkGainTable, NeighborListsRespectCutoff) {
  PathLossConfig cfg;
  cfg.exponent = 4.0;
  cfg.loss_at_reference_db = 55.0;
  cfg.shadowing_sigma_db = 0.0;
  LinkGainTable table(line_positions(5, 10.0), cfg, 1);
  table.build_neighbor_lists(96.0);  // 10 m loss is 95: 1-hop neighbors only
  const auto& n0 = table.neighbors_within(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 1);
  const auto& n2 = table.neighbors_within(2);
  EXPECT_EQ(n2.size(), 2u);
}

TEST(LinkGainTable, MinimumDistanceClampedToReference) {
  PathLossConfig cfg;
  cfg.shadowing_sigma_db = 0.0;
  std::vector<Position> p{{0, 0}, {0.01, 0}};  // closer than d0 = 1 m
  LinkGainTable table(p, cfg, 1);
  EXPECT_NEAR(table.loss_db(0, 1), cfg.loss_at_reference_db, 1e-9);
}

}  // namespace
}  // namespace telea
