#include "radio/packet.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(Packet, BroadcastDetection) {
  Frame f;
  EXPECT_TRUE(f.is_broadcast());
  f.dst = 7;
  EXPECT_FALSE(f.is_broadcast());
}

TEST(Packet, BeaconSizeGrowsWithClaim) {
  Frame plain;
  plain.payload = msg::CtpBeacon{};
  Frame claiming;
  msg::CtpBeacon b;
  b.has_position_claim = true;
  claiming.payload = b;
  EXPECT_GT(wire_size_bytes(claiming), wire_size_bytes(plain));
}

TEST(Packet, TeleBeaconSizeGrowsWithEntries) {
  msg::TeleBeacon tb;
  tb.parent_code = BitString::from_string_unchecked("00101");
  Frame empty;
  empty.payload = tb;
  tb.entries.resize(4);
  Frame full;
  full.payload = tb;
  EXPECT_EQ(wire_size_bytes(full), wire_size_bytes(empty) + 4 * 5);
}

TEST(Packet, ControlPacketCodeLengthAffectsSize) {
  msg::ControlPacket small;
  small.dest_code = BitString::from_string_unchecked("0010");
  msg::ControlPacket large;
  large.dest_code = BitString::from_string_unchecked(std::string(40, '0'));
  Frame fs, fl;
  fs.payload = small;
  fl.payload = large;
  // 4 bits -> 1 byte, 40 bits -> 5 bytes of code.
  EXPECT_EQ(wire_size_bytes(fl), wire_size_bytes(fs) + 4);
}

TEST(Packet, DetourAddsBytes) {
  msg::ControlPacket p;
  p.dest_code = BitString::from_string_unchecked("0010");
  Frame without;
  without.payload = p;
  p.detour_via = 9;
  p.detour_code = BitString::from_string_unchecked("01101");
  Frame with;
  with.payload = p;
  EXPECT_GT(wire_size_bytes(with), wire_size_bytes(without));
}

TEST(Packet, FeedbackWrapsControl) {
  msg::ControlPacket p;
  p.dest_code = BitString::from_string_unchecked("0010");
  Frame control;
  control.payload = p;
  msg::FeedbackPacket fb;
  fb.packet = p;
  Frame feedback;
  feedback.payload = fb;
  EXPECT_EQ(wire_size_bytes(feedback), wire_size_bytes(control) + 2);
}

TEST(Packet, AllTypesHavePlausibleSizes) {
  // Every frame must fit a 127-byte 802.15.4 MPDU in typical configurations.
  std::vector<Frame> frames;
  frames.push_back({0, 1, 0, msg::CtpBeacon{}});
  frames.push_back({0, 1, 0, msg::CtpData{}});
  msg::TeleBeacon tb;
  tb.entries.resize(10);
  frames.push_back({0, 1, 0, tb});
  frames.push_back({0, 1, 0, msg::PositionRequest{}});
  frames.push_back({0, 1, 0, msg::AllocationAck{}});
  frames.push_back({0, 1, 0, msg::ConfirmFrame{}});
  frames.push_back({0, 1, 0, msg::ControlPacket{}});
  frames.push_back({0, 1, 0, msg::FeedbackPacket{}});
  frames.push_back({0, 1, 0, msg::DripMsg{}});
  msg::RplDao dao;
  dao.targets.resize(20);
  frames.push_back({0, 1, 0, dao});
  frames.push_back({0, 1, 0, msg::RplData{}});
  for (const auto& f : frames) {
    EXPECT_GE(wire_size_bytes(f), 13u);   // header + footer at least
    EXPECT_LE(wire_size_bytes(f), 127u);  // 802.15.4 MPDU limit
  }
}

TEST(Packet, CtpDataAckCarriageCostsBytes) {
  msg::CtpData plain;
  msg::CtpData ack;
  ack.is_control_ack = true;
  Frame fp, fa;
  fp.payload = plain;
  fa.payload = ack;
  EXPECT_EQ(wire_size_bytes(fa), wire_size_bytes(fp) + 4);
}

}  // namespace
}  // namespace telea
