#include "util/dbm.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(Dbm, RoundTrip) {
  for (double dbm = -110; dbm <= 10; dbm += 7.3) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Dbm, KnownValues) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-9);
  EXPECT_NEAR(dbm_to_mw(-30.0), 0.001, 1e-12);
}

TEST(Dbm, AdditionOfEqualPowersAddsThreeDb) {
  EXPECT_NEAR(dbm_add(-90.0, -90.0), -90.0 + 10.0 * std::log10(2.0), 1e-9);
}

TEST(Dbm, AdditionDominatedByStronger) {
  // A signal 30 dB above another barely moves the sum.
  EXPECT_NEAR(dbm_add(-60.0, -90.0), -60.0, 0.01);
}

TEST(Dbm, MwToDbmClampsAtFloor) {
  const double v = mw_to_dbm(0.0);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(v, -150.0);
}

TEST(Dbm, SinrIsDifference) {
  EXPECT_NEAR(sinr_db(-70.0, -95.0), 25.0, 1e-12);
}

TEST(Dbm, DbToLinear) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9953, 1e-3);
  EXPECT_NEAR(db_to_linear(-10.0), 0.1, 1e-9);
}

}  // namespace
}  // namespace telea
