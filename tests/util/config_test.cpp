#include "util/config.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace telea {
namespace {

Config args(std::initializer_list<const char*> tokens) {
  std::vector<const char*> v(tokens);
  return Config::from_args(static_cast<int>(v.size()), v.data());
}

TEST(Config, ParsesKeyValueTokens) {
  const Config c = args({"topology=indoor", "nodes=40", "wifi=true"});
  EXPECT_EQ(c.get_string("topology"), "indoor");
  EXPECT_EQ(c.get_int("nodes"), 40);
  EXPECT_TRUE(c.get_bool("wifi"));
}

TEST(Config, PositionalTokensCollected) {
  const Config c = args({"run", "k=v", "fast"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "run");
  EXPECT_EQ(c.positional()[1], "fast");
}

TEST(Config, LaterValuesOverride) {
  const Config c = args({"seed=1", "seed=2"});
  EXPECT_EQ(c.get_int("seed"), 1 + 1);
}

TEST(Config, DefaultsWhenAbsent) {
  const Config c = args({});
  EXPECT_EQ(c.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("missing", true));
  EXPECT_FALSE(c.has("missing"));
}

TEST(Config, CheckedGettersRejectGarbage) {
  const Config c = args({"n=12x", "d=abc", "b=maybe"});
  EXPECT_FALSE(c.get_int_checked("n").has_value());
  EXPECT_FALSE(c.get_double_checked("d").has_value());
  EXPECT_FALSE(c.get_bool_checked("b").has_value());
  // Unchecked getters fall back to defaults.
  EXPECT_EQ(c.get_int("n", 5), 5);
}

TEST(Config, BoolSynonyms) {
  const Config c = args({"a=YES", "b=off", "c=1", "d=False"});
  EXPECT_TRUE(c.get_bool("a"));
  EXPECT_FALSE(c.get_bool("b"));
  EXPECT_TRUE(c.get_bool("c"));
  EXPECT_FALSE(c.get_bool("d"));
}

TEST(Config, NumericFormats) {
  const Config c = args({"hex=0x10", "neg=-3", "f=2.5e2"});
  EXPECT_EQ(c.get_int("hex"), 16);
  EXPECT_EQ(c.get_int("neg"), -3);
  EXPECT_DOUBLE_EQ(c.get_double("f"), 250.0);
}

TEST(Config, MergeOtherWins) {
  Config a = args({"x=1", "y=1"});
  const Config b = args({"y=2", "z=2"});
  a.merge(b);
  EXPECT_EQ(a.get_int("x"), 1);
  EXPECT_EQ(a.get_int("y"), 2);
  EXPECT_EQ(a.get_int("z"), 2);
}

TEST(Config, FromFileParsesAndStripsComments) {
  const std::string path = "/tmp/telea_config_test.cfg";
  {
    std::ofstream f(path);
    f << "# scenario\n"
      << "topology = sparse   # the long field\n"
      << "\n"
      << "seed=9\n";
  }
  const auto c = Config::from_file(path);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->get_string("topology"), "sparse");
  EXPECT_EQ(c->get_int("seed"), 9);
  std::remove(path.c_str());
}

TEST(Config, FromFileRejectsMalformedLine) {
  const std::string path = "/tmp/telea_config_bad.cfg";
  {
    std::ofstream f(path);
    f << "just-a-word\n";
  }
  EXPECT_FALSE(Config::from_file(path).has_value());
  std::remove(path.c_str());
}

TEST(Config, FromFileMissingIsNullopt) {
  EXPECT_FALSE(Config::from_file("/nonexistent/telea.cfg").has_value());
}

TEST(Config, UnusedKeysTracksReads) {
  const Config c = args({"used=1", "typo=2"});
  (void)c.get_int("used");
  const auto unused = c.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Config, KeysSorted) {
  const Config c = args({"b=1", "a=2"});
  const auto k = c.keys();
  ASSERT_EQ(k.size(), 2u);
  EXPECT_EQ(k[0], "a");
  EXPECT_EQ(k[1], "b");
}

}  // namespace
}  // namespace telea
