#include "util/bloom.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(Bloom, InsertedIdsAlwaysContained) {
  OrplBloom b;
  for (NodeId id = 0; id < 40; ++id) {
    b.insert(id);
    EXPECT_TRUE(b.contains(id));
  }
  // No false negatives, ever.
  for (NodeId id = 0; id < 40; ++id) EXPECT_TRUE(b.contains(id));
}

TEST(Bloom, EmptyContainsNothing) {
  OrplBloom b;
  EXPECT_TRUE(b.empty());
  for (NodeId id = 0; id < 100; ++id) EXPECT_FALSE(b.contains(id));
}

TEST(Bloom, MergeIsUnion) {
  OrplBloom a, b;
  a.insert(1);
  a.insert(2);
  b.insert(3);
  a.merge(b);
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(2));
  EXPECT_TRUE(a.contains(3));
}

TEST(Bloom, ClearEmpties) {
  OrplBloom b;
  b.insert(7);
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.contains(7));
}

TEST(Bloom, FalsePositivesExistAtLoad) {
  // A 64-bit filter with 2 hashes and ~30 members must exhibit false
  // positives — the property the paper's ORPL critique rests on.
  OrplBloom b;
  for (NodeId id = 0; id < 30; ++id) b.insert(id);
  unsigned fp = 0;
  for (NodeId probe = 1000; probe < 2000; ++probe) {
    if (b.contains(probe)) ++fp;
  }
  EXPECT_GT(fp, 10u);    // clearly present...
  EXPECT_LT(fp, 900u);   // ...but not total saturation
}

TEST(Bloom, FalsePositiveRateGrowsWithLoad) {
  auto fp_rate = [](unsigned members) {
    OrplBloom b;
    for (NodeId id = 0; id < members; ++id) b.insert(id);
    unsigned fp = 0;
    for (NodeId probe = 5000; probe < 7000; ++probe) {
      if (b.contains(probe)) ++fp;
    }
    return fp;
  };
  EXPECT_LT(fp_rate(4), fp_rate(40));
}

TEST(Bloom, PopcountTracksLoad) {
  OrplBloom b;
  EXPECT_EQ(b.popcount(), 0u);
  b.insert(1);
  const unsigned one = b.popcount();
  EXPECT_GE(one, 1u);
  EXPECT_LE(one, 2u);  // <= Hashes bits
  for (NodeId id = 2; id < 20; ++id) b.insert(id);
  EXPECT_GT(b.popcount(), one);
}

TEST(Bloom, EqualityByContent) {
  OrplBloom a, b;
  a.insert(5);
  b.insert(5);
  EXPECT_TRUE(a == b);
  b.insert(6);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace telea
