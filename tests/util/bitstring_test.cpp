#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace telea {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.to_string(), "");
}

TEST(BitString, FromStringRoundTrips) {
  const std::string s = "0010100111";
  BitString b = BitString::from_string_unchecked(s);
  EXPECT_EQ(b.size(), s.size());
  EXPECT_EQ(b.to_string(), s);
}

TEST(BitString, FromStringRejectsBadChars) {
  BitString out;
  EXPECT_FALSE(BitString::from_string("01x1", out));
  EXPECT_FALSE(BitString::from_string("012", out));
  EXPECT_TRUE(BitString::from_string("", out));
  EXPECT_TRUE(out.empty());
}

TEST(BitString, FromStringRejectsOverCapacity) {
  const std::string too_long(BitString::kCapacity + 1, '0');
  BitString out;
  EXPECT_FALSE(BitString::from_string(too_long, out));
  const std::string max_len(BitString::kCapacity, '1');
  EXPECT_TRUE(BitString::from_string(max_len, out));
  EXPECT_EQ(out.size(), BitString::kCapacity);
}

TEST(BitString, PushBackAndBit) {
  BitString b;
  EXPECT_TRUE(b.push_back(true));
  EXPECT_TRUE(b.push_back(false));
  EXPECT_TRUE(b.push_back(true));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_TRUE(b.bit(0));
  EXPECT_FALSE(b.bit(1));
  EXPECT_TRUE(b.bit(2));
}

TEST(BitString, PushBackFailsAtCapacity) {
  BitString b;
  for (std::size_t i = 0; i < BitString::kCapacity; ++i) {
    ASSERT_TRUE(b.push_back(i % 2 == 0));
  }
  EXPECT_FALSE(b.push_back(true));
  EXPECT_EQ(b.size(), BitString::kCapacity);
}

TEST(BitString, SetBit) {
  BitString b = BitString::from_string_unchecked("0000");
  b.set_bit(2, true);
  EXPECT_EQ(b.to_string(), "0010");
  b.set_bit(2, false);
  EXPECT_EQ(b.to_string(), "0000");
}

TEST(BitString, AppendBitsMsbFirst) {
  BitString b = BitString::from_string_unchecked("01");
  ASSERT_TRUE(b.append_bits(0b10110, 5));
  EXPECT_EQ(b.to_string(), "0110110");
}

TEST(BitString, AppendBitsZeroWidthIsNoop) {
  BitString b = BitString::from_string_unchecked("11");
  EXPECT_TRUE(b.append_bits(0, 0));
  EXPECT_EQ(b.to_string(), "11");
}

TEST(BitString, AppendBitsRejectsOverflow) {
  BitString b;
  for (std::size_t i = 0; i < BitString::kCapacity / 64; ++i) {
    ASSERT_TRUE(b.append_bits(0, 64));
  }
  EXPECT_FALSE(b.append_bits(1, 1));
  EXPECT_FALSE(b.append_bits(0, 65));
}

TEST(BitString, AppendBitString) {
  BitString a = BitString::from_string_unchecked("001");
  BitString b = BitString::from_string_unchecked("11");
  ASSERT_TRUE(a.append(b));
  EXPECT_EQ(a.to_string(), "00111");
}

TEST(BitString, TruncateBackAndResizeFront) {
  BitString b = BitString::from_string_unchecked("101101");
  b.truncate_back(2);
  EXPECT_EQ(b.to_string(), "1011");
  b.resize_front(2);
  EXPECT_EQ(b.to_string(), "10");
}

TEST(BitString, ResizeClearsPaddingBitsForEquality) {
  BitString a = BitString::from_string_unchecked("1111");
  a.resize_front(2);
  BitString b = BitString::from_string_unchecked("11");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(BitString, PrefixExtraction) {
  BitString b = BitString::from_string_unchecked("0010101");
  EXPECT_EQ(b.prefix(3).to_string(), "001");
  EXPECT_EQ(b.prefix(0).to_string(), "");
  EXPECT_EQ(b.prefix(7).to_string(), "0010101");
}

TEST(BitString, ExtractBits) {
  BitString b = BitString::from_string_unchecked("00101101");
  EXPECT_EQ(b.extract_bits(2, 4), 0b1011u);
  EXPECT_EQ(b.extract_bits(0, 8), 0b00101101u);
  EXPECT_EQ(b.extract_bits(7, 1), 1u);
}

TEST(BitString, IsPrefixOf) {
  BitString parent = BitString::from_string_unchecked("001");
  BitString child = BitString::from_string_unchecked("00101");
  BitString other = BitString::from_string_unchecked("010");
  EXPECT_TRUE(parent.is_prefix_of(child));
  EXPECT_TRUE(parent.is_prefix_of(parent));
  EXPECT_FALSE(child.is_prefix_of(parent));
  EXPECT_FALSE(other.is_prefix_of(child));
  EXPECT_TRUE(BitString{}.is_prefix_of(child));
}

TEST(BitString, CommonPrefixLen) {
  BitString a = BitString::from_string_unchecked("0010110");
  BitString b = BitString::from_string_unchecked("0010011");
  EXPECT_EQ(a.common_prefix_len(b), 4u);
  EXPECT_EQ(b.common_prefix_len(a), 4u);
  EXPECT_EQ(a.common_prefix_len(a), 7u);
  EXPECT_EQ(a.common_prefix_len(BitString{}), 0u);
}

TEST(BitString, CommonPrefixAcrossWordBoundary) {
  std::string s(70, '1');
  BitString a = BitString::from_string_unchecked(s);
  std::string t = s;
  t[65] = '0';
  BitString b = BitString::from_string_unchecked(t);
  EXPECT_EQ(a.common_prefix_len(b), 65u);
}

TEST(BitString, LexicographicOrder) {
  BitString a = BitString::from_string_unchecked("001");
  BitString b = BitString::from_string_unchecked("010");
  BitString c = BitString::from_string_unchecked("0010");
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // equal bits, shorter first
  EXPECT_FALSE(b < a);
}

TEST(BitString, ToDisplayPadsWithDashes) {
  BitString b = BitString::from_string_unchecked("00101");
  EXPECT_EQ(b.to_display(8), "00101---");
  EXPECT_EQ(b.to_display(3), "00101");
}

TEST(BitString, HashDiffersByLength) {
  BitString a = BitString::from_string_unchecked("00");
  BitString b = BitString::from_string_unchecked("000");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a, b);
}

/// Property: for random strings, a prefix is always a prefix, and
/// common_prefix_len agrees with a naive reference implementation.
class BitStringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitStringProperty, PrefixAndCommonPrefixAgreeWithReference) {
  Pcg32 rng(GetParam(), 99);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t len = rng.uniform(100) + 1;
    std::string s;
    for (std::size_t i = 0; i < len; ++i) s.push_back(rng.chance(0.5) ? '1' : '0');
    BitString b = BitString::from_string_unchecked(s);

    const std::size_t cut = rng.uniform(static_cast<std::uint32_t>(len + 1));
    BitString p = b.prefix(cut);
    EXPECT_TRUE(p.is_prefix_of(b));
    EXPECT_EQ(p.common_prefix_len(b), cut);

    // Mutate one bit after the cut (when possible): prefix relation breaks
    // exactly when the mutated position is inside the prefix.
    if (len > 0) {
      std::string t = s;
      const std::size_t flip = rng.uniform(static_cast<std::uint32_t>(len));
      t[flip] = t[flip] == '0' ? '1' : '0';
      BitString m = BitString::from_string_unchecked(t);
      EXPECT_EQ(b.common_prefix_len(m), flip);
    }
  }
}

TEST_P(BitStringProperty, AppendBitsMatchesStringConcatenation) {
  Pcg32 rng(GetParam(), 123);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t base_len = rng.uniform(60);
    std::string s;
    for (std::size_t i = 0; i < base_len; ++i) {
      s.push_back(rng.chance(0.5) ? '1' : '0');
    }
    BitString b = BitString::from_string_unchecked(s);
    const std::size_t width = rng.uniform(16) + 1;
    const std::uint64_t value = rng.next() & ((1ULL << width) - 1);
    ASSERT_TRUE(b.append_bits(value, width));
    std::string expected = s;
    for (std::size_t i = 0; i < width; ++i) {
      expected.push_back(((value >> (width - 1 - i)) & 1) ? '1' : '0');
    }
    EXPECT_EQ(b.to_string(), expected);
    EXPECT_EQ(b.extract_bits(base_len, width), value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringProperty,
                         ::testing::Values(1, 2, 3, 17, 1234));

}  // namespace
}  // namespace telea
