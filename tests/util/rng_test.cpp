#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace telea {
namespace {

TEST(Pcg32, DeterministicForSameSeedAndStream) {
  Pcg32 a(42, 1), b(42, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, StreamsAreIndependent) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformBoundRespected) {
  Pcg32 rng(7, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_EQ(rng.uniform(0), 0u);
  EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Pcg32, UniformInInclusiveRange) {
  Pcg32 rng(7, 9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_in(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, Uniform01InHalfOpenInterval) {
  Pcg32 rng(11, 3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, NormalMomentsRoughlyCorrect) {
  Pcg32 rng(5, 5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.06);
}

TEST(Pcg32, NormalWithParams) {
  Pcg32 rng(5, 6);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(-90.0, 4.0);
  EXPECT_NEAR(sum / n, -90.0, 0.2);
}

TEST(Pcg32, ExponentialMean) {
  Pcg32 rng(8, 2);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(50.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(Pcg32, ChanceExtremes) {
  Pcg32 rng(3, 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Pcg32, WorksWithStdDistributionsInterface) {
  // Satisfies UniformRandomBitGenerator.
  static_assert(Pcg32::min() == 0);
  static_assert(Pcg32::max() == 0xFFFFFFFFu);
  Pcg32 rng;
  EXPECT_GE(rng(), Pcg32::min());
}

}  // namespace
}  // namespace telea
