// CTP beacon-plane details: the TeleAdjusting piggyback, the pull bit, and
// beacon-driven neighbor-route bookkeeping.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed,
                  ControlProtocol proto = ControlProtocol::kTele) {
  NetworkConfig c;
  c.topology = make_line(3, 22.0);
  c.seed = seed;
  c.protocol = proto;
  return c;
}

TEST(CtpBeaconPlane, PiggybackAppearsOnceCoded) {
  Network net(cfg(21));
  net.start();
  net.run_for(4_min);
  msg::CtpBeacon beacon;
  net.node(1).tele()->addressing().fill_beacon(beacon);
  ASSERT_TRUE(beacon.has_position_claim);
  const auto* entry =
      net.sink().tele()->addressing().children().find(1);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(beacon.claimed_position, entry->position);
}

TEST(CtpBeaconPlane, NoPiggybackBeforePosition) {
  Network net(cfg(22));
  net.start();  // not converged
  msg::CtpBeacon beacon;
  net.node(1).tele()->addressing().fill_beacon(beacon);
  EXPECT_FALSE(beacon.has_position_claim);
}

TEST(CtpBeaconPlane, PullOnlyAnsweredWithARoute) {
  Network net(cfg(23));
  net.start();
  net.run_for(2_min);
  // A pulled beacon from a route-less stranger must not reset a route-less
  // node's timer (anti-storm guard) but a routed node responds. Observable
  // consequence: a routed node's beacon cadence tightens after a pull.
  msg::CtpBeacon pull;
  pull.parent = kInvalidNode;
  pull.etx = 0xFFFF;
  pull.hops = 0xFF;
  pull.seqno = 1;
  pull.pull = true;
  const auto before_ops = net.node(1).mac().send_ops();
  net.node(1).ctp().handle_beacon(99, pull);
  net.run_for(10_s);
  EXPECT_GT(net.node(1).mac().send_ops(), before_ops);
}

TEST(CtpBeaconPlane, NeighborRouteReflectsAdvertisement) {
  Network net(cfg(24));
  net.start();
  net.run_for(2_min);
  msg::CtpBeacon b;
  b.parent = 0;
  b.etx = 55;
  b.hops = 3;
  b.seqno = 9;
  net.node(1).ctp().handle_beacon(42, b);
  const auto route = net.node(1).ctp().neighbor_route(42);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->etx10, 55);
  EXPECT_EQ(route->hops, 3);
  EXPECT_EQ(route->parent, 0);
}

TEST(CtpBeaconPlane, InvalidParentAdvertisementDropsRoute) {
  Network net(cfg(25));
  net.start();
  net.run_for(3_min);
  ASSERT_EQ(net.node(2).ctp().parent(), 1);
  // Node 1 suddenly advertises no-route: node 2 must not keep using it.
  msg::CtpBeacon dead;
  dead.parent = kInvalidNode;
  dead.etx = 0xFFFF;
  dead.hops = 0xFF;
  dead.seqno = 77;
  net.node(2).ctp().handle_beacon(1, dead);
  EXPECT_NE(net.node(2).ctp().parent(), 1);
}

TEST(CtpBeaconPlane, TeleObservesChildClaimsViaBeacons) {
  // The listener chain (mac -> dispatcher -> ctp -> tele) runs end to end:
  // sink discovers node 1 as a child purely from overheard beacons.
  Network net(cfg(26));
  net.start();
  net.run_for(4_min);
  EXPECT_GE(net.sink().tele()->addressing().discovered_children(), 1u);
  EXPECT_NE(net.sink().tele()->addressing().children().find(1), nullptr);
}

}  // namespace
}  // namespace telea
