#include "net/link_estimator.hpp"

#include <gtest/gtest.h>

namespace telea {
namespace {

TEST(LinkEstimator, UnknownNeighborIsMaxEtx) {
  LinkEstimator le;
  EXPECT_EQ(le.etx10(5), 1000);
  EXPECT_FALSE(le.knows(5));
}

TEST(LinkEstimator, KnownNeighborGetsOptimisticDefault) {
  LinkEstimator le;
  le.on_beacon(5, 1);
  EXPECT_TRUE(le.knows(5));
  EXPECT_EQ(le.etx10(5), 20);  // optimistic ETX 2.0 before the window fills
}

TEST(LinkEstimator, PerfectBeaconStreamYieldsEtxNearOne) {
  LinkEstimator le;
  for (std::uint8_t s = 1; s <= 20; ++s) le.on_beacon(7, s);
  EXPECT_LE(le.etx10(7), 12);  // 1/q² with q=1 -> 1.0 (10 in tenths)
  EXPECT_NEAR(le.inbound_quality(7), 1.0, 0.01);
}

TEST(LinkEstimator, LossyBeaconStreamRaisesEtx) {
  LinkEstimator le;
  // Every other beacon lost: gaps of 2.
  for (std::uint8_t s = 1; s <= 40; s += 2) le.on_beacon(9, s);
  const double q = le.inbound_quality(9);
  EXPECT_NEAR(q, 0.5, 0.1);
  EXPECT_GT(le.etx10(9), 25);  // ~1/0.25 = 4.0
}

TEST(LinkEstimator, DuplicateSeqnoIgnored) {
  LinkEstimator le;
  for (int i = 0; i < 10; ++i) le.on_beacon(3, 5);
  // Only the first counts; window hasn't filled, stays optimistic.
  EXPECT_EQ(le.etx10(3), 20);
}

TEST(LinkEstimator, SeqnoWraparoundHandled) {
  LinkEstimator le;
  le.on_beacon(4, 250);
  for (std::uint8_t s = 251; s != 10; ++s) le.on_beacon(4, s);
  EXPECT_NEAR(le.inbound_quality(4), 1.0, 0.01);
}

TEST(LinkEstimator, DataDrivenEtxOverridesBeacons) {
  LinkEstimator le;
  for (std::uint8_t s = 1; s <= 10; ++s) le.on_beacon(2, s);
  // 3 attempts per success -> ETX ~3.
  for (int i = 0; i < 12; ++i) {
    le.on_data_tx(2, false);
    le.on_data_tx(2, false);
    le.on_data_tx(2, true);
  }
  EXPECT_NEAR(le.etx10(2), 30, 6);
}

TEST(LinkEstimator, PerfectDataEtxIsOne) {
  LinkEstimator le;
  for (int i = 0; i < 10; ++i) le.on_data_tx(6, true);
  EXPECT_EQ(le.etx10(6), 10);
}

TEST(LinkEstimator, EvictRemovesNeighbor) {
  LinkEstimator le;
  le.on_beacon(8, 1);
  ASSERT_TRUE(le.knows(8));
  le.evict(8);
  EXPECT_FALSE(le.knows(8));
  EXPECT_EQ(le.etx10(8), 1000);
}

TEST(LinkEstimator, TableLimitEvictsWorst) {
  LinkEstimator::Config cfg;
  cfg.table_limit = 4;
  LinkEstimator le(cfg);
  // Fill with mediocre neighbors, then a heavily-used one.
  for (NodeId n = 1; n <= 4; ++n) le.on_beacon(n, 1);
  le.on_data_tx(1, true);  // neighbor 1 is in use
  le.on_beacon(99, 1);     // forces an eviction
  EXPECT_TRUE(le.knows(99));
  EXPECT_TRUE(le.knows(1));  // in-use neighbor survived
  EXPECT_EQ(le.neighbors().size(), 4u);
}

TEST(LinkEstimator, NeighborsListsAll) {
  LinkEstimator le;
  le.on_beacon(1, 1);
  le.on_beacon(2, 1);
  EXPECT_EQ(le.neighbors().size(), 2u);
}

}  // namespace
}  // namespace telea
