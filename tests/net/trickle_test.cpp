#include "net/trickle.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace telea {
namespace {

using namespace time_literals;

TrickleTimer::Config cfg(SimTime imin, SimTime imax, unsigned k) {
  return TrickleTimer::Config{imin, imax, k};
}

TEST(Trickle, FiresWithinFirstInterval) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 1_s, 0), 1);
  std::vector<SimTime> fires;
  t.set_callback([&] { fires.push_back(sim.now()); });
  t.start();
  sim.run_until(100_ms);
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_GE(fires[0], 50_ms);  // second half of the interval
  EXPECT_LE(fires[0], 100_ms);
}

TEST(Trickle, IntervalDoublesUpToImax) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 800_ms, 0), 2);
  t.set_callback([] {});
  t.start();
  EXPECT_EQ(t.current_interval(), 100_ms);
  sim.run_until(100_ms + 1);
  EXPECT_EQ(t.current_interval(), 200_ms);
  sim.run_until(300_ms + 1);
  EXPECT_EQ(t.current_interval(), 400_ms);
  sim.run_until(10_s);
  EXPECT_EQ(t.current_interval(), 800_ms);
}

TEST(Trickle, SteadyStateFiringRateDecays) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 6400_ms, 0), 3);
  int fires = 0;
  t.set_callback([&] { ++fires; });
  t.start();
  sim.run_until(30_s);
  // Intervals: 0.1,0.2,...,6.4 then 6.4 repeating: ~11-12 fires in 30 s.
  EXPECT_GE(fires, 8);
  EXPECT_LE(fires, 14);
}

TEST(Trickle, SuppressionWithK) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 100_ms, 1), 4);
  int fires = 0;
  t.set_callback([&] { ++fires; });
  t.start();
  // Feed one consistent message right at each interval start.
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<SimTime>(i) * 100_ms + 1,
                    [&t] { t.hear_consistent(); });
  }
  sim.run_until(2_s);
  EXPECT_EQ(fires, 0);
}

TEST(Trickle, NoSuppressionWhenKZero) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 100_ms, 0), 5);
  int fires = 0;
  t.set_callback([&] { ++fires; });
  t.start();
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(static_cast<SimTime>(i) * 100_ms + 1,
                    [&t] { t.hear_consistent(); });
  }
  sim.run_until(2_s);
  EXPECT_EQ(fires, 20);
}

TEST(Trickle, InconsistencyResetsToImin) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 10_s, 0), 6);
  t.set_callback([] {});
  t.start();
  sim.run_until(3_s);  // interval has grown
  EXPECT_GT(t.current_interval(), 100_ms);
  t.hear_inconsistent();
  EXPECT_EQ(t.current_interval(), 100_ms);
}

TEST(Trickle, InconsistentAtIminDoesNotRestartInterval) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 10_s, 1), 7);
  int fires = 0;
  t.set_callback([&] { ++fires; });
  t.start();
  // Spamming inconsistent at Imin must not postpone firing forever.
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(static_cast<SimTime>(i) * 10_ms, [&t] {
      t.hear_inconsistent();
    });
  }
  sim.run_until(1_s);
  EXPECT_GE(fires, 1);
}

TEST(Trickle, StopPreventsFiring) {
  Simulator sim;
  TrickleTimer t(sim, cfg(100_ms, 1_s, 0), 8);
  int fires = 0;
  t.set_callback([&] { ++fires; });
  t.start();
  t.stop();
  sim.run_until(5_s);
  EXPECT_EQ(fires, 0);
  EXPECT_FALSE(t.running());
}

TEST(Trickle, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim;
    TrickleTimer t(sim, TrickleTimer::Config{100 * kMillisecond, 10 * kSecond, 0},
                   seed);
    std::vector<SimTime> fires;
    t.set_callback([&] { fires.push_back(sim.now()); });
    t.start();
    sim.run_until(5 * kSecond);
    return fires;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace telea
