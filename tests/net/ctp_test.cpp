#include "net/ctp.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_config(std::size_t nodes, double spacing,
                          std::uint64_t seed,
                          ControlProtocol proto = ControlProtocol::kDrip) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, spacing);
  cfg.seed = seed;
  cfg.protocol = proto;  // Drip keeps the stack minimal for CTP-focused tests
  return cfg;
}

TEST(Ctp, RootHasImmediateRoute) {
  Network net(line_config(2, 10.0, 1));
  net.start();
  EXPECT_TRUE(net.sink().ctp().has_route());
  EXPECT_EQ(net.sink().ctp().hops(), 0);
  EXPECT_EQ(net.sink().ctp().path_etx10(), 0);
}

TEST(Ctp, TwoNodeRouteForms) {
  Network net(line_config(2, 10.0, 2));
  net.start();
  net.run_for(30_s);
  EXPECT_TRUE(net.node(1).ctp().has_route());
  EXPECT_EQ(net.node(1).ctp().parent(), 0);
  EXPECT_EQ(net.node(1).ctp().hops(), 1);
}

TEST(Ctp, LineConvergesWithIncreasingHops) {
  // Spacing chosen so only adjacent nodes hear each other.
  Network net(line_config(5, 22.0, 3));
  net.start();
  net.run_for(3_min);
  for (NodeId i = 1; i < 5; ++i) {
    ASSERT_TRUE(net.node(i).ctp().has_route()) << "node " << i;
    EXPECT_EQ(net.node(i).ctp().hops(), i) << "node " << i;
    EXPECT_EQ(net.node(i).ctp().parent(), i - 1) << "node " << i;
  }
}

TEST(Ctp, PathEtxMonotoneAlongLine) {
  Network net(line_config(5, 22.0, 4));
  net.start();
  net.run_for(3_min);
  std::uint16_t prev = 0;
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_GT(net.node(i).ctp().path_etx10(), prev);
    prev = net.node(i).ctp().path_etx10();
  }
}

TEST(Ctp, DataReachesSinkAcrossMultipleHops) {
  Network net(line_config(4, 22.0, 5));
  net.start();
  net.run_for(3_min);

  std::vector<msg::CtpData> delivered;
  net.sink().on_sink_data = [&](const msg::CtpData& d) {
    delivered.push_back(d);
  };
  EXPECT_TRUE(net.node(3).ctp().send_to_sink(msg::CtpData{}));
  net.run_for(30_s);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].origin, 3);
  EXPECT_EQ(delivered[0].thl, 2u);  // two forwards after origination
}

TEST(Ctp, SinkLocalSendDeliversDirectly) {
  Network net(line_config(2, 10.0, 6));
  net.start();
  int delivered = 0;
  net.sink().on_sink_data = [&](const msg::CtpData&) { ++delivered; };
  EXPECT_TRUE(net.sink().ctp().send_to_sink(msg::CtpData{}));
  EXPECT_EQ(delivered, 1);
}

TEST(Ctp, DuplicateOriginSeqnoNotDeliveredTwice) {
  Network net(line_config(2, 10.0, 7));
  net.start();
  net.run_for(30_s);
  int delivered = 0;
  net.sink().on_sink_data = [&](const msg::CtpData&) { ++delivered; };
  msg::CtpData d;
  d.origin = 1;
  d.origin_seqno = 42;
  d.etx = 10;
  // Hand the same logical packet to the sink twice at the frame level.
  EXPECT_EQ(net.sink().ctp().handle_data(1, d, true),
            AckDecision::kAcceptAndAck);
  EXPECT_EQ(net.sink().ctp().handle_data(1, d, true),
            AckDecision::kAcceptAndAck);
  EXPECT_EQ(delivered, 1);
}

TEST(Ctp, ReportParentTroubleForcesReselection) {
  Network net(line_config(3, 22.0, 8));
  net.start();
  net.run_for(3_min);
  ASSERT_EQ(net.node(2).ctp().parent(), 1);
  net.node(2).ctp().report_parent_trouble();
  // Parent dropped; reselection happens on subsequent beacons.
  EXPECT_NE(net.node(2).ctp().parent(), 1);
}

TEST(Ctp, NeighborRouteTracking) {
  Network net(line_config(3, 22.0, 9));
  net.start();
  net.run_for(2_min);
  const auto route = net.node(1).ctp().neighbor_route(0);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->etx10, 0);
  EXPECT_EQ(route->hops, 0);
  EXPECT_FALSE(net.node(1).ctp().neighbor_route(77).has_value());
}

TEST(Ctp, AllocateOriginSeqnoAdvances) {
  Network net(line_config(2, 10.0, 10));
  net.start();
  auto& ctp = net.node(1).ctp();
  const auto a = ctp.allocate_origin_seqno();
  const auto b = ctp.allocate_origin_seqno();
  EXPECT_EQ(static_cast<std::uint8_t>(a + 1), b);
}

TEST(Ctp, RouteFoundEventFiresOnce) {
  // Counted via TeleAdjusting's trigger timestamp (wired through NodeStack).
  NetworkConfig cfg = line_config(2, 10.0, 11, ControlProtocol::kTele);
  Network net(cfg);
  net.start();
  net.run_for(1_min);
  ASSERT_TRUE(net.node(1).tele() != nullptr);
  EXPECT_TRUE(net.node(1).tele()->addressing().triggered_at().has_value());
}

}  // namespace
}  // namespace telea
