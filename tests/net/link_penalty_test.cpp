#include <gtest/gtest.h>

#include "net/link_estimator.hpp"

namespace telea {
namespace {

TEST(LinkPenalty, PendingFailuresRaiseEtxBeforeAnySuccess) {
  LinkEstimator le;
  le.on_beacon(4, 1);  // known, optimistic ETX 2.0
  EXPECT_EQ(le.etx10(4), 20);
  le.on_data_tx(4, false);
  le.on_data_tx(4, false);
  EXPECT_EQ(le.etx10(4), 20);  // below the 3-failure evidence bar
  le.on_data_tx(4, false);
  EXPECT_GE(le.etx10(4), 30);  // a one-way link now *looks* bad
  for (int i = 0; i < 7; ++i) le.on_data_tx(4, false);
  EXPECT_GE(le.etx10(4), 100);
}

TEST(LinkPenalty, SuccessAfterFailuresFoldsIntoEstimate) {
  LinkEstimator le;
  for (int i = 0; i < 5; ++i) le.on_data_tx(9, false);
  EXPECT_GE(le.etx10(9), 50);
  le.on_data_tx(9, true);  // 6 attempts for the success
  // Pending-failure penalty gone; data-driven ETX reflects ~6 attempts.
  EXPECT_NEAR(le.etx10(9), 60, 15);
}

TEST(LinkPenalty, PenaltyDominatesStaleGoodEstimate) {
  LinkEstimator le;
  for (int i = 0; i < 10; ++i) le.on_data_tx(2, true);  // ETX ~1.0
  EXPECT_EQ(le.etx10(2), 10);
  for (int i = 0; i < 6; ++i) le.on_data_tx(2, false);
  EXPECT_GE(le.etx10(2), 60);  // the live run of failures wins
}

}  // namespace
}  // namespace telea
