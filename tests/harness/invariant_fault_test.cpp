// End-to-end invariant engine acceptance: a seeded network runs clean under
// checkpoints + claim audits, and a fault-injected memory corruption of
// addressing state trips the engine with a trace-linked invariant_violation
// carrying the right rule id and node.
#include <gtest/gtest.h>

#include "check/invariants.hpp"
#include "harness/faults.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line5_cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(5, 22.0);
  c.seed = seed;
  return c;
}

TEST(InvariantFaults, HealthyRunWithCommandsFiresNoViolation) {
  Network net(line5_cfg(31));
  net.enable_tracing();
  InvariantConfig icfg;
  icfg.checkpoint_interval = 15_s;
  InvariantEngine& inv = net.enable_invariants(icfg);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());

  // Push a few commands through so the claim/delivery audits actually run.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(net.sink()
                    .tele()
                    ->send_control(4, net.node(4).tele()->addressing().code(),
                                   0x42)
                    .has_value());
    net.run_for(1_min);
  }

  EXPECT_GT(inv.checkpoints_run(), 10u);
  EXPECT_GT(inv.claims_audited(), 0u);
  EXPECT_TRUE(inv.violations().empty()) << inv.render_report();
  EXPECT_EQ(net.tracer()->count(TraceEvent::kInvariantViolation), 0u);
}

TEST(InvariantFaults, CorruptedPathCodeTripsTheEngineWithTraceLink) {
  Network net(line5_cfg(32));
  net.enable_tracing();
  InvariantConfig icfg;
  icfg.checkpoint_interval = 15_s;
  InvariantEngine& inv = net.enable_invariants(icfg);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());
  ASSERT_TRUE(inv.violations().empty()) << inv.render_report();

  // Memory-corruption fault: silently flip the leading bit of node 4's code.
  // Every valid code extends the sink's "0", so the very next checkpoint must
  // flag addr.code_bounds at node 4.
  FaultPlan plan;
  plan.corrupt_path_code(net.sim().now() + 1_s, 4, /*bit=*/0);
  plan.apply(net);
  net.run_for(2 * icfg.checkpoint_interval);

  EXPECT_GE(inv.violation_count(InvariantRule::kAddrCodeBounds), 1u)
      << inv.render_report();
  const auto hits = [&inv] {
    std::vector<InvariantViolation> v;
    for (const auto& viol : inv.violations()) {
      if (viol.rule == InvariantRule::kAddrCodeBounds) v.push_back(viol);
    }
    return v;
  }();
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits.front().node, 4);

  // The violation is trace-linked: same node, rule id in operand `a`.
  const auto records = net.tracer()->by_event(TraceEvent::kInvariantViolation);
  ASSERT_FALSE(records.empty());
  bool linked = false;
  for (const auto& r : records) {
    if (r.node == 4 &&
        r.a == static_cast<std::uint64_t>(InvariantRule::kAddrCodeBounds)) {
      linked = true;
    }
  }
  EXPECT_TRUE(linked);
}

TEST(InvariantFaults, CorruptedChildPositionTripsTheAllocatorChecks) {
  Network net(line5_cfg(33));
  net.enable_tracing();
  InvariantConfig icfg;
  icfg.checkpoint_interval = 15_s;
  InvariantEngine& inv = net.enable_invariants(icfg);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());
  ASSERT_FALSE(net.node(3).tele()->addressing().children().entries().empty());
  ASSERT_TRUE(inv.violations().empty()) << inv.render_report();

  // Rewrite node 3's first child slot to the reserved position 0, leaving the
  // stored derived code stale: out of the [1, 2^bits) space (addr.code_bounds)
  // and no longer deriving the stored code (addr.parent_prefix).
  FaultPlan plan;
  plan.corrupt_child_position(net.sim().now() + 1_s, 3, /*slot=*/0,
                              /*position=*/0);
  plan.apply(net);
  net.run_for(2 * icfg.checkpoint_interval);

  EXPECT_GE(inv.violation_count(InvariantRule::kAddrCodeBounds), 1u)
      << inv.render_report();
  EXPECT_GE(inv.violation_count(InvariantRule::kAddrParentPrefix), 1u)
      << inv.render_report();
  bool at_corrupted_node = false;
  for (const auto& v : inv.violations()) {
    if (v.node == 3) at_corrupted_node = true;
  }
  EXPECT_TRUE(at_corrupted_node);
}

TEST(InvariantFaults, FailFastAbortsTheRunAtTheFirstViolation) {
  Network net(line5_cfg(34));
  InvariantConfig icfg;
  icfg.checkpoint_interval = 15_s;
  icfg.fail_fast = true;
  net.enable_invariants(icfg);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());

  FaultPlan plan;
  plan.corrupt_path_code(net.sim().now() + 1_s, 4, /*bit=*/0);
  plan.apply(net);
  EXPECT_THROW(net.run_for(2 * icfg.checkpoint_interval),
               InvariantViolationError);
}

}  // namespace
}  // namespace telea
