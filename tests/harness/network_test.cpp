#include "harness/network.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig small_config(ControlProtocol proto, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = seed;
  cfg.protocol = proto;
  return cfg;
}

TEST(Network, BuildsOnlyRequestedProtocol) {
  Network tele(small_config(ControlProtocol::kTele, 1));
  EXPECT_NE(tele.node(1).tele(), nullptr);
  EXPECT_EQ(tele.node(1).drip(), nullptr);
  EXPECT_EQ(tele.node(1).rpl(), nullptr);

  Network drip(small_config(ControlProtocol::kDrip, 1));
  EXPECT_EQ(drip.node(1).tele(), nullptr);
  EXPECT_NE(drip.node(1).drip(), nullptr);

  Network rpl(small_config(ControlProtocol::kRpl, 1));
  EXPECT_NE(rpl.node(1).rpl(), nullptr);
  EXPECT_EQ(rpl.node(1).tele(), nullptr);
}

TEST(Network, ProtocolNames) {
  EXPECT_STREQ(protocol_name(ControlProtocol::kTele), "Tele");
  EXPECT_STREQ(protocol_name(ControlProtocol::kReTele), "Re-Tele");
  EXPECT_STREQ(protocol_name(ControlProtocol::kDrip), "Drip");
  EXPECT_STREQ(protocol_name(ControlProtocol::kRpl), "RPL");
}

TEST(Network, CodeCoverageReachesOne) {
  Network net(small_config(ControlProtocol::kTele, 2));
  net.start();
  EXPECT_LT(net.code_coverage(), 1.0);
  net.run_for(4_min);
  EXPECT_DOUBLE_EQ(net.code_coverage(), 1.0);
}

TEST(Network, CodeTreeDepthMatchesLine) {
  Network net(small_config(ControlProtocol::kTele, 3));
  net.start();
  net.run_for(4_min);
  EXPECT_EQ(net.code_tree_depth(0), 0);
  EXPECT_EQ(net.code_tree_depth(1), 1);
  EXPECT_EQ(net.code_tree_depth(3), 3);
}

TEST(Network, CodeTreeDepthNegativeWithoutCode) {
  Network net(small_config(ControlProtocol::kTele, 4));
  net.start();  // no convergence time given
  EXPECT_EQ(net.code_tree_depth(3), -1);
}

TEST(Network, ResetAccountingZeroesDuty) {
  Network net(small_config(ControlProtocol::kTele, 5));
  net.start();
  net.run_for(1_min);
  EXPECT_GT(net.average_duty_cycle(), 0.0);
  net.reset_accounting();
  net.run_for(1_s);
  EXPECT_LT(net.average_duty_cycle(), 1.01);
}

TEST(Network, KilledNodeGoesSilent) {
  Network net(small_config(ControlProtocol::kTele, 6));
  net.start();
  net.run_for(1_min);
  net.node(2).kill();
  EXPECT_TRUE(net.node(2).killed());
  const auto ops = net.node(2).mac().send_ops();
  net.run_for(1_min);
  EXPECT_EQ(net.node(2).mac().send_ops(), ops);
}

TEST(Network, WifiInterferenceRaisesDutyCycle) {
  NetworkConfig quiet = small_config(ControlProtocol::kTele, 7);
  NetworkConfig noisy = small_config(ControlProtocol::kTele, 7);
  noisy.wifi_interference = true;

  Network a(quiet);
  a.start();
  a.run_for(2_min);
  a.reset_accounting();
  a.run_for(3_min);

  Network b(noisy);
  b.start();
  b.run_for(2_min);
  b.reset_accounting();
  b.run_for(3_min);

  // WiFi bursts trip the LPL CCA into false wakeups: duty must go up.
  EXPECT_GT(b.average_duty_cycle(), a.average_duty_cycle());
}

TEST(Network, DataCollectionReachesSink) {
  Network net(small_config(ControlProtocol::kTele, 8));
  net.start();
  net.run_for(3_min);
  int received = 0;
  net.sink().on_sink_data = [&](const msg::CtpData& d) {
    if (!d.is_control_ack) ++received;
  };
  net.start_data_collection(30_s);
  net.run_for(2_min);
  EXPECT_GE(received, 6);  // 3 nodes x ~4 rounds, some loss tolerated
}

TEST(Network, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    Network net(small_config(ControlProtocol::kTele, 99));
    net.start();
    net.run_for(2_min);
    std::uint64_t total_ops = 0;
    for (NodeId i = 0; i < net.size(); ++i) {
      total_ops += net.node(i).mac().send_ops();
    }
    return total_ops;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace telea
