// The determinism regression suite for the trial runner
// (docs/PARALLELISM.md): the same trial set must produce byte-identical
// serialized results at jobs=1, jobs=4, and oversubscribed, and under a
// shuffled work queue (the dispatch_order hook) — proving aggregation never
// depends on completion order. Plus the seed-sweep smoke (32 one-minute
// trials across 8 workers with unique derived seeds) and the artifact-path
// collision contract (two live trials must not share a sink).
#include "harness/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "harness/artifacts.hpp"
#include "harness/experiment.hpp"
#include "harness/network.hpp"
#include "stats/table.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(SeedDerivation, UniqueAcrossTrialIndices) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(seen.insert(derive_trial_seed(1, i)).second) << i;
  }
  // Different base seeds give different streams.
  EXPECT_NE(derive_trial_seed(1, 0), derive_trial_seed(2, 0));
  // The derivation is a pure function — same inputs, same seed.
  EXPECT_EQ(derive_trial_seed(42, 7), derive_trial_seed(42, 7));
}

TEST(SeedDerivation, MixerIsNotIdentity) {
  // A trial must never accidentally run on the raw base seed (that would
  // correlate trial 0 of every sweep with the single-run configuration).
  for (std::uint64_t base : {0ull, 1ull, 42ull, ~0ull}) {
    EXPECT_NE(derive_trial_seed(base, 0), base);
  }
}

TEST(ResolveJobs, ExplicitThenEnvThenHardware) {
  ::setenv("TELEA_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(5), 5u);  // explicit wins
  EXPECT_EQ(resolve_jobs(0), 3u);  // env next
  ::setenv("TELEA_JOBS", "0", 1);
  EXPECT_GE(resolve_jobs(0), 1u);  // non-positive env falls through
  ::setenv("TELEA_JOBS", "junk", 1);
  EXPECT_GE(resolve_jobs(0), 1u);
  ::unsetenv("TELEA_JOBS");
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware concurrency, at least 1
}

TEST(TrialArtifactPath, SuffixesBeforeTheFinalExtension) {
  EXPECT_EQ(trial_artifact_path("out/trace.jsonl", 3), "out/trace.trial3.jsonl");
  EXPECT_EQ(trial_artifact_path("snap.json", 0), "snap.trial0.json");
  EXPECT_EQ(trial_artifact_path("plaindir", 2), "plaindir.trial2");
  // A dot in a directory component is not an extension.
  EXPECT_EQ(trial_artifact_path("v1.0/dump", 1), "v1.0/dump.trial1");
}

TEST(TrialRunner, ResultsIndexedBySubmissionOrderForAnyJobs) {
  const auto square = [](std::size_t i) { return i * i; };
  std::vector<std::size_t> reference;
  for (std::size_t i = 0; i < 40; ++i) reference.push_back(square(i));
  for (unsigned jobs : {1u, 2u, 4u, 8u, 33u}) {  // 33 = oversubscribed
    TrialRunner runner(RunnerConfig{jobs, {}});
    EXPECT_EQ(runner.run_indexed(40, square), reference) << "jobs=" << jobs;
    EXPECT_EQ(runner.last_trials(), 40u);
  }
}

TEST(TrialRunner, ShuffledDispatchOrderDoesNotChangeResults) {
  const auto cube = [](std::size_t i) { return i * i * i + 1; };
  TrialRunner natural(RunnerConfig{4, {}});
  const auto reference = natural.run_indexed(64, cube);

  std::vector<std::size_t> order(64);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::reverse(order.begin(), order.end());
  TrialRunner reversed(RunnerConfig{4, order});
  EXPECT_EQ(reversed.run_indexed(64, cube), reference);

  // Deterministic shuffle (LCG permutation walk) — worst-case interleaving.
  std::vector<std::size_t> shuffled;
  std::size_t x = 17;
  for (std::size_t i = 0; i < 64; ++i) {
    shuffled.push_back(x);
    x = (x + 37) % 64;
  }
  TrialRunner scrambled(RunnerConfig{4, shuffled});
  EXPECT_EQ(scrambled.run_indexed(64, cube), reference);

  // A non-permutation must be ignored, not misdispatch trials.
  TrialRunner bogus(RunnerConfig{4, {0, 0, 1}});
  EXPECT_EQ(bogus.run_indexed(64, cube), reference);
}

TEST(TrialRunner, FirstTrialExceptionPropagates) {
  TrialRunner runner(RunnerConfig{4, {}});
  EXPECT_THROW(runner.run_indexed(16,
                                  [](std::size_t i) -> int {
                                    if (i == 7) {
                                      throw std::runtime_error("trial 7");
                                    }
                                    return static_cast<int>(i);
                                  }),
               std::runtime_error);
}

// --- the fig7-shaped determinism regression --------------------------------

ControlExperimentConfig small_trial(std::uint64_t seed) {
  ControlExperimentConfig cfg;
  cfg.network.topology = make_connected_random(12, 50.0, seed);
  cfg.network.seed = seed;
  cfg.network.protocol = ControlProtocol::kReTele;
  cfg.warmup = 6_min;
  cfg.duration = 8_min;
  cfg.control_interval = 30_s;
  cfg.data_ipi = 2_min;
  cfg.drain = 1_min;
  return cfg;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Runs a 4-trial PDR-by-hop sweep (the fig7 shape: derived seeds, merged
// result, hop-grouped table) under the given runner config and returns the
// serialized table JSON — the byte-compared artifact.
std::string fig7_shaped_table_bytes(const RunnerConfig& rc,
                                    const std::string& tag) {
  constexpr std::size_t kTrials = 4;
  std::vector<ControlExperimentConfig> trials;
  for (std::size_t t = 0; t < kTrials; ++t) {
    trials.push_back(small_trial(derive_trial_seed(9, t)));
  }
  TrialRunner runner(rc);
  const auto results =
      runner.run_indexed(kTrials, [&trials](std::size_t i) {
        return run_control_experiment(trials[i]);
      });
  const ControlExperimentResult merged = merge_results(results);
  TextTable table({"hop count", "pdr", "samples"});
  for (const auto& [hop, stats] : merged.pdr_by_hop.groups()) {
    table.row({std::to_string(hop), TextTable::fmt_pct(stats.mean(), 3),
               std::to_string(stats.count())});
  }
  const std::string path = "runner_fig7_" + tag + ".json";
  EXPECT_TRUE(table.write_json("runner_fig7", path));
  return read_file(path);
}

TEST(TrialRunnerDeterminism, Fig7ShapedTableByteIdenticalAcrossJobs) {
  const std::string at1 = fig7_shaped_table_bytes(RunnerConfig{1, {}}, "j1");
  const std::string at4 = fig7_shaped_table_bytes(RunnerConfig{4, {}}, "j4");
  ASSERT_FALSE(at1.empty());
  EXPECT_EQ(at1, at4) << "results depend on worker count";

  // Shuffled work queue: trials complete in a scrambled order, the
  // serialized table must not move a byte.
  const std::string scrambled =
      fig7_shaped_table_bytes(RunnerConfig{4, {2, 0, 3, 1}}, "shuffled");
  EXPECT_EQ(at1, scrambled) << "results depend on dispatch order";
}

// --- the seed-sweep smoke ---------------------------------------------------

TEST(TrialRunnerSeedSweep, ThirtyTwoTrialsAcrossEightWorkers) {
  constexpr std::size_t kTrials = 32;
  struct TrialOut {
    std::uint64_t seed = 0;
    std::uint64_t events = 0;
  };
  std::atomic<std::uint64_t> live_total{0};
  TrialRunner runner(RunnerConfig{8, {}});
  const auto results = runner.run_indexed(kTrials, [&](std::size_t i) {
    const std::uint64_t seed = derive_trial_seed(1234, i);
    NetworkConfig cfg;
    cfg.topology = make_connected_random(8, 60.0, seed);
    cfg.seed = seed;
    cfg.protocol = ControlProtocol::kReTele;
    Network net(cfg);
    net.start();
    const std::uint64_t events =
        net.sim().run_until(net.sim().now() + 1 * kMinute);
    live_total.fetch_add(events, std::memory_order_relaxed);
    return TrialOut{seed, events};
  });

  ASSERT_EQ(results.size(), kTrials);
  EXPECT_EQ(runner.jobs(), 8u);
  EXPECT_EQ(runner.last_trials(), kTrials);

  // Every derived seed is unique and every trial completed (a one-minute
  // run of a booted network always dispatches events).
  std::set<std::uint64_t> seeds;
  std::uint64_t sum = 0;
  for (const TrialOut& r : results) {
    EXPECT_TRUE(seeds.insert(r.seed).second) << "duplicate seed " << r.seed;
    EXPECT_GT(r.events, 0u);
    sum += r.events;
  }
  EXPECT_EQ(seeds.size(), kTrials);
  // Aggregate counter == sum of per-trial counters: nothing was dropped or
  // double-counted on the way through the pool.
  EXPECT_EQ(sum, live_total.load());
}

// --- artifact-path collisions ----------------------------------------------

TEST(ArtifactRegistry, ClaimReleaseCycle) {
  auto& reg = ArtifactRegistry::instance();
  const std::string path = "runner_test_claim.jsonl";
  reg.claim(path);
  EXPECT_TRUE(reg.claimed(path));
  EXPECT_THROW(reg.claim(path), ArtifactConflictError);
  reg.release(path);
  EXPECT_FALSE(reg.claimed(path));
  reg.claim(path);  // reusable after release
  reg.release(path);
  reg.claim("");  // empty paths are ignored, never conflict
  reg.claim("");
}

NetworkConfig tiny_net(std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kReTele;
  return cfg;
}

TEST(ArtifactRegistry, NetworkRejectsTimelineSinkOfALiveTrial) {
  const std::string path = "runner_test_timeline.jsonl";
  NetworkTimelineConfig tcfg;
  tcfg.jsonl = path;

  auto first = std::make_unique<Network>(tiny_net(1));
  first->enable_timeline(tcfg);

  // A second live trial pointed at the same stream must be rejected, not
  // silently interleaved.
  Network second(tiny_net(2));
  EXPECT_THROW(second.enable_timeline(tcfg), ArtifactConflictError);

  // Suffixing is the sanctioned way to run them concurrently...
  NetworkTimelineConfig suffixed;
  suffixed.jsonl = trial_artifact_path(path, 1);
  second.enable_timeline(suffixed);

  // ...and once the first trial is gone, its path is claimable again.
  first.reset();
  Network third(tiny_net(3));
  third.enable_timeline(tcfg);
}

TEST(ArtifactRegistry, NetworkRejectsHealthSinkOfALiveTrial) {
  const std::string path = "runner_test_health.jsonl";
  NetworkHealthConfig hcfg;
  hcfg.snapshot_jsonl = path;

  Network first(tiny_net(1));
  first.enable_health(hcfg);
  Network second(tiny_net(2));
  EXPECT_THROW(second.enable_health(hcfg), ArtifactConflictError);
}

}  // namespace
}  // namespace telea
