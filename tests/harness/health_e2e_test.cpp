// End-to-end acceptance for the in-band health telemetry + flight recorder
// subsystems (PR 6 tentpole):
//   - a 225-node tight grid with health on reaches >= 95% coverage with
//     staleness under two telemetry periods at steady state,
//   - telemetry adds bytes but zero extra packets (same-seed A/B run),
//   - flight dumps fire on state-loss reboot, on command give-up, and on a
//     fault-injected invariant violation.
#include <gtest/gtest.h>

#include <algorithm>

#include "harness/controller.hpp"
#include "harness/faults.hpp"
#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line_cfg(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(nodes, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

std::uint64_t total_data_originated(Network& net) {
  std::uint64_t total = 0;
  for (NodeId n = 1; n < static_cast<NodeId>(net.size()); ++n) {
    total += net.node(n).ctp().stats().data_originated;
  }
  return total;
}

// The ISSUE acceptance run: health=on in the paper's 225-node tight grid.
// Coverage counts only *fresh* entries (age < 2 telemetry periods), so the
// >= 95% bar is simultaneously the staleness bar.
TEST(HealthE2E, TightGridCoverageAtSteadyState) {
  NetworkConfig cfg;
  cfg.topology = make_tight_grid(1);
  cfg.seed = 1;
  Network net(cfg);
  // Telemetry rides the data traffic, so the period matches the IPI. The
  // IPI itself must stay within what 224 duty-cycled senders can funnel
  // into one sink — 120 s (~1.9 pkt/s aggregate) is sustainable where the
  // dense grid congests and drops at 30 s.
  NetworkHealthConfig hcfg;
  hcfg.period = 120_s;
  NetworkHealthModel& model = net.enable_health(hcfg);
  net.start();
  net.run_for(6_min);  // let CTP converge before offering traffic
  net.start_data_collection(120_s);
  net.run_for(12_min);  // several telemetry periods of steady state

  const SimTime now = net.sim().now();
  const double coverage = model.coverage(now);
  EXPECT_GE(coverage, 0.95) << "stale: " << model.stale_nodes(now).size()
                            << ", unseen: " << model.unseen_nodes().size()
                            << ", reports: " << model.stats().reports;
  EXPECT_EQ(model.expected_nodes(), net.size() - 1);
  // Every piggybacked byte the sink saw is 8 bytes per report, accepted or
  // dropped-as-stale — the exact in-band overhead the metrics export.
  EXPECT_EQ(model.stats().bytes,
            (model.stats().reports + model.stats().stale_dropped) *
                msg::kHealthReportBytes);
  EXPECT_GT(model.stats().reports, net.size());
}

// "Zero new packets": the same seeded run with health on originates exactly
// as many CTP data packets as with health off — telemetry rides existing
// traffic. Originations are timer-driven, so the counts must match exactly.
TEST(HealthE2E, ZeroExtraPacketsSameSeed) {
  std::uint64_t originated_off = 0;
  {
    Network net(line_cfg(8, 77));
    net.start();
    net.run_for(4_min);
    net.start_data_collection(30_s);
    net.run_for(6_min);
    originated_off = total_data_originated(net);
  }

  Network net(line_cfg(8, 77));
  NetworkHealthConfig hcfg;
  hcfg.period = 60_s;
  NetworkHealthModel& model = net.enable_health(hcfg);
  net.start();
  net.run_for(4_min);
  net.start_data_collection(30_s);
  net.run_for(6_min);

  EXPECT_EQ(total_data_originated(net), originated_off);
  EXPECT_GT(model.stats().reports, 0u);
  EXPECT_GT(model.stats().bytes, 0u);
}

TEST(HealthE2E, FlightDumpOnStateLossReboot) {
  Network net(line_cfg(5, 9));
  net.enable_flight_recorders();
  std::size_t callbacks = 0;
  net.on_flight_dump = [&callbacks](const FlightDump&) { ++callbacks; };
  net.start();
  net.run_for(5_min);
  net.start_data_collection(30_s);
  net.run_for(3_min);

  net.node(2).reboot_with_state_loss();
  ASSERT_FALSE(net.flight_dumps().empty());
  const FlightDump& dump = net.flight_dumps().back();
  EXPECT_EQ(dump.node, 2);
  EXPECT_EQ(dump.trigger, "reboot");
  EXPECT_FALSE(dump.events.empty())
      << "a live node must have recorded forwarding/parent events";
  EXPECT_EQ(callbacks, net.flight_dumps().size());
}

TEST(HealthE2E, FlightDumpOnCommandGiveUp) {
  Network net(line_cfg(4, 8));
  net.enable_flight_recorders();
  ControllerRetryConfig retry;
  retry.ack_timeout = 10_s;
  retry.max_backoff = 20_s;
  retry.max_retries = 2;
  retry.escalate_after = 1;
  Controller controller(net, retry);
  net.start();
  net.run_for(4_min);
  net.node(3).kill();
  ASSERT_TRUE(controller.send_command(3, 0x44).has_value());
  net.run_for(4_min);

  const auto& dumps = net.flight_dumps();
  const bool give_up_dump =
      std::any_of(dumps.begin(), dumps.end(), [](const FlightDump& d) {
        return d.node == 3 && d.trigger == "command_give_up";
      });
  EXPECT_TRUE(give_up_dump) << dumps.size() << " dumps, none for the give-up";
}

// A fault-injected addressing corruption trips the invariant engine; the
// wired-up trigger must snapshot the offending node's ring.
TEST(HealthE2E, FlightDumpOnInvariantViolation) {
  Network net(line_cfg(5, 32));
  InvariantConfig icfg;
  icfg.checkpoint_interval = 15_s;
  net.enable_invariants(icfg);
  net.enable_flight_recorders();
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());

  FaultPlan plan;
  plan.corrupt_path_code(net.sim().now() + 1_s, 4, /*bit=*/0);
  plan.apply(net);
  net.run_for(2 * icfg.checkpoint_interval);

  const auto& dumps = net.flight_dumps();
  const bool invariant_dump =
      std::any_of(dumps.begin(), dumps.end(), [](const FlightDump& d) {
        return d.node == 4 && d.trigger.rfind("invariant:", 0) == 0;
      });
  EXPECT_TRUE(invariant_dump) << dumps.size() << " dumps, none invariant";
}

// Re-Tele detour selection consults the health model when one is live: a
// suggestion must still come back on a healthy converged network (the bias
// must never make detours impossible).
TEST(HealthE2E, DetourSuggestionStillWorksWithHealthBias) {
  Network net(line_cfg(5, 21));
  net.enable_health();
  net.start();
  net.run_for(5_min);
  net.start_data_collection(30_s);
  net.run_for(5_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());
  EXPECT_TRUE(net.suggest_detour(4).has_value());
}

}  // namespace
}  // namespace telea
