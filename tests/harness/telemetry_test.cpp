// The per-node protocol telemetry (Forwarding::Stats, Addressing::Stats)
// that a deployment would export over serial: counters must move when the
// corresponding machinery runs and stay zero when it does not.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(4, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

TEST(Telemetry, AddressingCountersMoveDuringConvergence) {
  Network net(cfg(61));
  net.start();
  net.run_for(4_min);
  const auto& sink_stats = net.sink().tele()->addressing().stats();
  // At least one allocation-table broadcast from the sink (the double
  // broadcast applies to the stability-window path; on-demand allocation
  // coalesces into one), and more across the network.
  EXPECT_GE(sink_stats.tele_beacons_sent, 1u);
  std::uint64_t total_beacons = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    total_beacons += net.node(i).tele()->addressing().stats().tele_beacons_sent;
  }
  EXPECT_GE(total_beacons, 2u);
  EXPECT_GE(sink_stats.code_changes, 1u);  // sink's own "0"
  const auto& mid = net.node(1).tele()->addressing().stats();
  EXPECT_GE(mid.confirms_sent, 1u);
  EXPECT_GE(mid.code_changes, 1u);
  const auto& sink_confirms = sink_stats.confirms_received;
  EXPECT_GE(sink_confirms, 1u);
}

TEST(Telemetry, ForwardingCountersTrackOneDelivery) {
  Network net(cfg(62));
  net.start();
  net.run_for(4_min);
  net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 1);
  net.run_for(1_min);

  // Origin forwarded at least once; intermediates claimed + forwarded;
  // the destination counted a delivery.
  EXPECT_GE(net.sink().tele()->forwarding().stats().forwards, 1u);
  std::uint64_t claims = 0;
  for (NodeId i = 1; i < 3; ++i) {
    claims += net.node(i).tele()->forwarding().stats().claims;
  }
  EXPECT_GE(claims, 1u);
  EXPECT_EQ(net.node(3).tele()->forwarding().stats().deliveries, 1u);
}

TEST(Telemetry, QuietNetworkHasQuietControlPlane) {
  Network net(cfg(63));
  net.start();
  net.run_for(6_min);  // convergence only, no control traffic
  for (NodeId i = 0; i < net.size(); ++i) {
    const auto& f = net.node(i).tele()->forwarding().stats();
    EXPECT_EQ(f.claims, 0u) << "node " << i;
    EXPECT_EQ(f.deliveries, 0u) << "node " << i;
    EXPECT_EQ(f.backtracks, 0u) << "node " << i;
  }
}

TEST(Telemetry, RequestsCountedWhenPositionMissing) {
  Network net(cfg(64));
  net.start();
  net.run_for(4_min);
  const auto before =
      net.node(2).tele()->addressing().stats().requests_sent;
  // Invalidate node 2's position: the periodic request machinery kicks in.
  net.node(2).on_parent_changed(1, 1);
  net.run_for(30_s);
  EXPECT_GT(net.node(2).tele()->addressing().stats().requests_sent, before);
}

}  // namespace
}  // namespace telea
