// The robustness acceptance soak (labeled "soak" in ctest): one randomized
// churn + link-fault scenario run twice — with the controller's
// retry/backoff/escalation machinery and fire-and-forget — asserting that
// reliability recovers >= 95% of commands while the seed behavior loses
// more, and exporting the comparison as bench_results/robustness_churn.json.
#include "harness/soak.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace telea {
namespace {

TEST(ChurnSoak, RetriesDeliverAtLeast95PercentAndBeatFireAndForget) {
  ChurnSoakConfig cfg;
  cfg.nodes = 20;
  cfg.side_m = 80.0;
  cfg.seed = 3;
  // Harsher than the bench defaults so the with/without gap is decisive:
  // more outages, each long enough to straddle several command intervals.
  cfg.outages = 8;
  cfg.outage_downtime = 4 * kMinute;
  cfg.blackout_duration = 6 * kMinute;

  // Both arms via the trial runner (the path the churn bench ships): same
  // seed and fault schedule, run concurrently on two workers.
  const ChurnSoakPair pair = run_churn_soak_pair(cfg, 2);
  const ChurnSoakResult& with_retries = pair.with_retries;
  const ChurnSoakResult& without = pair.without;

  // The scenario must actually be hostile: >= 10 mixed faults (node
  // outages, parent-link blackouts, a noise burst, a state-loss reboot)
  // and a meaningful command load.
  EXPECT_GE(with_retries.faults_injected, 10u);
  EXPECT_GE(with_retries.commands, 20u);
  EXPECT_EQ(with_retries.unresolved, 0u);

  // The soak runs under the invariant engine (cfg.invariants defaults on):
  // faults may lose packets, but they must never corrupt protocol state.
  EXPECT_GT(with_retries.invariant_checkpoints, 0u);
  EXPECT_GT(with_retries.claims_audited, 0u);
  EXPECT_EQ(with_retries.invariant_violations, 0u);
  EXPECT_EQ(without.invariant_violations, 0u);

  // Span reconciliation must hold under churn too: every delivered command
  // span's latency decomposition tiles its end-to-end latency exactly, no
  // matter how many backtracks/detours/retries the faults provoked.
  EXPECT_GT(with_retries.command_spans, 0u);
  EXPECT_EQ(with_retries.span_reconcile_failures, 0u);
  EXPECT_EQ(without.span_reconcile_failures, 0u);

  EXPECT_GE(with_retries.delivery_ratio(), 0.95)
      << with_retries.acked << "/" << with_retries.commands << " acked, "
      << with_retries.gave_up << " gave up";
  EXPECT_LT(without.delivery_ratio(), with_retries.delivery_ratio())
      << "fire-and-forget delivered " << without.acked << "/"
      << without.commands
      << " — expected strictly less than the reliable controller";

  const char* dir = std::getenv("TELEA_RESULTS_DIR");
  const std::filesystem::path out_dir = dir != nullptr ? dir : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  EXPECT_TRUE(write_churn_soak_json((out_dir / "robustness_churn.json").string(),
                                    cfg, with_retries, without));
}

// Satellite to the health-telemetry tentpole: the sink's health model must
// keep most of a churning deployment fresh. Outage windows close well before
// the drain, so by the end every node has had several telemetry periods to
// report back in — coverage materially below 1.0 would mean staleness
// tracking (or the piggyback path) breaks under faults.
TEST(ChurnSoak, HealthCoverageSurvivesChurn) {
  ChurnSoakConfig cfg;
  cfg.nodes = 20;
  cfg.side_m = 80.0;
  cfg.seed = 7;
  cfg.warmup = 10 * kMinute;
  cfg.duration = 20 * kMinute;
  cfg.spans = false;  // keep this arm lean; spans are covered above
  cfg.health = true;
  cfg.health_period = 60 * kSecond;

  const ChurnSoakResult result = run_churn_soak(cfg);

  EXPECT_GE(result.faults_injected, 8u);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_EQ(result.health_tracked, cfg.nodes - 1)
      << "every non-sink node must have reported at least once";
  EXPECT_GE(result.health_coverage, 0.85)
      << result.health_tracked << " tracked, coverage "
      << result.health_coverage;
  EXPECT_GT(result.health_reports, result.health_tracked)
      << "steady-state reporting, not just one boot-time report each";
  // In-band accounting: every report that reached the sink cost exactly the
  // 8-byte piggyback, never a packet of its own.
  EXPECT_GE(result.health_bytes, result.health_reports * 8);
}

// Timeline-tentpole acceptance: the same rule set watching the soak must
// stay silent on a clean deployment and fire (then resolve) under the fault
// mix — an alert pipeline that pages on a healthy network, or sleeps through
// a blackout-induced retry storm, is worse than none. Sampling overhead is
// gated at < 5 % of the soak's wall-clock.
TEST(ChurnSoak, TimelineAlertsFireUnderFaultsAndStayQuietClean) {
  // The controller's e2e retry rate at the sink separates the two arms:
  // ~zero without faults, a sustained storm during outages/blackouts, and
  // quiet again by the end of the drain.
  const auto rules = parse_alert_rules(
      "retry_storm: rate(telea_controller_retries_total) > 0.01 for 2\n"
      "coverage_low: value(telea_health_coverage{side=\"sink\","
      "sub=\"health\"}) < 0.5 for 2\n");
  ASSERT_TRUE(rules.has_value());

  // Full observability stack on purpose: the overhead gate below compares
  // sampling wall-clock against a soak doing representative work (spans,
  // invariants, health, faults), not a stripped-down fast path.
  ChurnSoakConfig cfg;
  cfg.nodes = 24;
  cfg.side_m = 90.0;
  cfg.seed = 13;  // scanned: clean arm has zero retries, fault arm a real storm
  cfg.warmup = 10 * kMinute;
  cfg.duration = 30 * kMinute;
  cfg.health = true;
  cfg.timeline = true;
  // 20 s cadence: still >100 samples over the 36-minute window, and the
  // sampling overhead stays well inside the < 5 % wall-clock budget below.
  cfg.timeline_interval = 20 * kSecond;
  cfg.timeline_rules = *rules;

  const char* dir = std::getenv("TELEA_RESULTS_DIR");
  const std::filesystem::path out_dir = dir != nullptr ? dir : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  // .jsonl on purpose: bench_results/*.json is reserved for TextTable JSON
  // documents (json_lint / bench_compare walk that glob).
  cfg.timeline_jsonl = (out_dir / "churn_soak.timeline.jsonl").string();
  cfg.flight_jsonl = (out_dir / "churn_soak.flight.jsonl").string();
  std::filesystem::remove(cfg.timeline_jsonl, ec);
  std::filesystem::remove(cfg.flight_jsonl, ec);

  const ChurnSoakResult faulty = run_churn_soak(cfg);
  EXPECT_GE(faulty.faults_injected, 8u);
  EXPECT_GT(faulty.timeline_samples, 100u);
  EXPECT_GT(faulty.timeline_series, 0u);
  EXPECT_GE(faulty.alerts_fired, 1u)
      << "the fault mix must trip at least one rule";
  EXPECT_GE(faulty.alerts_resolved, 1u)
      << "and the drain must let at least one alert resolve";
  // The state-loss reboot resets that node's counters mid-run; the sampler
  // must observe it as a clamped delta, not a negative spike.
  EXPECT_GE(faulty.counter_resets, 1u);
  EXPECT_LT(faulty.timeline_wall_fraction, 0.05)
      << "timeline sampling cost " << faulty.timeline_wall_fraction * 100.0
      << "% of the soak wall-clock";
  EXPECT_TRUE(std::filesystem::exists(cfg.timeline_jsonl));

  // Clean arm: identical deployment and rule set, zero injected faults.
  ChurnSoakConfig clean = cfg;
  clean.outages = 0;
  clean.link_blackouts = 0;
  clean.noise_burst = false;
  clean.state_loss_reboot = false;
  clean.timeline_jsonl.clear();
  clean.flight_jsonl.clear();
  const ChurnSoakResult baseline = run_churn_soak(clean);
  EXPECT_EQ(baseline.faults_injected, 0u);
  EXPECT_GT(baseline.timeline_samples, 100u);
  EXPECT_EQ(baseline.alerts_fired, 0u)
      << "a clean run must not page anyone";
  // No wall-fraction gate here: a fault-free soak finishes in ~1 s of host
  // time, so the fixed per-sample cost dwarfs the denominator. The < 5 %
  // overhead budget is asserted on the fault arm above, whose wall-clock is
  // representative of real soak runs.
}

}  // namespace
}  // namespace telea
