// The robustness acceptance soak (labeled "soak" in ctest): one randomized
// churn + link-fault scenario run twice — with the controller's
// retry/backoff/escalation machinery and fire-and-forget — asserting that
// reliability recovers >= 95% of commands while the seed behavior loses
// more, and exporting the comparison as bench_results/robustness_churn.json.
#include "harness/soak.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace telea {
namespace {

TEST(ChurnSoak, RetriesDeliverAtLeast95PercentAndBeatFireAndForget) {
  ChurnSoakConfig cfg;
  cfg.nodes = 20;
  cfg.side_m = 80.0;
  cfg.seed = 3;
  // Harsher than the bench defaults so the with/without gap is decisive:
  // more outages, each long enough to straddle several command intervals.
  cfg.outages = 8;
  cfg.outage_downtime = 4 * kMinute;
  cfg.blackout_duration = 6 * kMinute;

  const ChurnSoakResult with_retries = run_churn_soak(cfg);

  ChurnSoakConfig fire_and_forget = cfg;
  fire_and_forget.reliable = false;
  const ChurnSoakResult without = run_churn_soak(fire_and_forget);

  // The scenario must actually be hostile: >= 10 mixed faults (node
  // outages, parent-link blackouts, a noise burst, a state-loss reboot)
  // and a meaningful command load.
  EXPECT_GE(with_retries.faults_injected, 10u);
  EXPECT_GE(with_retries.commands, 20u);
  EXPECT_EQ(with_retries.unresolved, 0u);

  // The soak runs under the invariant engine (cfg.invariants defaults on):
  // faults may lose packets, but they must never corrupt protocol state.
  EXPECT_GT(with_retries.invariant_checkpoints, 0u);
  EXPECT_GT(with_retries.claims_audited, 0u);
  EXPECT_EQ(with_retries.invariant_violations, 0u);
  EXPECT_EQ(without.invariant_violations, 0u);

  // Span reconciliation must hold under churn too: every delivered command
  // span's latency decomposition tiles its end-to-end latency exactly, no
  // matter how many backtracks/detours/retries the faults provoked.
  EXPECT_GT(with_retries.command_spans, 0u);
  EXPECT_EQ(with_retries.span_reconcile_failures, 0u);
  EXPECT_EQ(without.span_reconcile_failures, 0u);

  EXPECT_GE(with_retries.delivery_ratio(), 0.95)
      << with_retries.acked << "/" << with_retries.commands << " acked, "
      << with_retries.gave_up << " gave up";
  EXPECT_LT(without.delivery_ratio(), with_retries.delivery_ratio())
      << "fire-and-forget delivered " << without.acked << "/"
      << without.commands
      << " — expected strictly less than the reliable controller";

  const char* dir = std::getenv("TELEA_RESULTS_DIR");
  const std::filesystem::path out_dir = dir != nullptr ? dir : "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  EXPECT_TRUE(write_churn_soak_json((out_dir / "robustness_churn.json").string(),
                                    cfg, with_retries, without));
}

// Satellite to the health-telemetry tentpole: the sink's health model must
// keep most of a churning deployment fresh. Outage windows close well before
// the drain, so by the end every node has had several telemetry periods to
// report back in — coverage materially below 1.0 would mean staleness
// tracking (or the piggyback path) breaks under faults.
TEST(ChurnSoak, HealthCoverageSurvivesChurn) {
  ChurnSoakConfig cfg;
  cfg.nodes = 20;
  cfg.side_m = 80.0;
  cfg.seed = 7;
  cfg.warmup = 10 * kMinute;
  cfg.duration = 20 * kMinute;
  cfg.spans = false;  // keep this arm lean; spans are covered above
  cfg.health = true;
  cfg.health_period = 60 * kSecond;

  const ChurnSoakResult result = run_churn_soak(cfg);

  EXPECT_GE(result.faults_injected, 8u);
  EXPECT_EQ(result.invariant_violations, 0u);
  EXPECT_EQ(result.health_tracked, cfg.nodes - 1)
      << "every non-sink node must have reported at least once";
  EXPECT_GE(result.health_coverage, 0.85)
      << result.health_tracked << " tracked, coverage "
      << result.health_coverage;
  EXPECT_GT(result.health_reports, result.health_tracked)
      << "steady-state reporting, not just one boot-time report each";
  // In-band accounting: every report that reached the sink cost exactly the
  // 8-byte piggyback, never a packet of its own.
  EXPECT_GE(result.health_bytes, result.health_reports * 8);
}

}  // namespace
}  // namespace telea
