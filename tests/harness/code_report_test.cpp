// In-band code reporting (paper Sec. III-A: "such code will be reported to
// the remote controller"): collection traffic carries each node's path code
// to the sink, and the controller can address commands purely from those
// reports — no out-of-band knowledge.

#include <gtest/gtest.h>

#include "harness/controller.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(4, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

TEST(CodeReport, RegistryFillsFromCollectionTraffic) {
  Network net(cfg(1));
  Controller controller(net);
  net.start();
  net.run_for(4_min);
  EXPECT_FALSE(controller.reported_code(1).has_value());  // no data yet
  net.start_data_collection(1_min);
  net.run_for(4_min);
  for (NodeId i = 1; i < 4; ++i) {
    const auto code = controller.reported_code(i);
    ASSERT_TRUE(code.has_value()) << "node " << i;
    EXPECT_EQ(code->to_string(),
              net.node(i).tele()->addressing().code().to_string());
  }
}

TEST(CodeReport, CommandAddressedPurelyFromReports) {
  Network net(cfg(2));
  Controller controller(net);
  controller.set_use_reported_codes(true);
  net.start();
  net.run_for(4_min);
  // Before any report: the controller genuinely does not know the code.
  EXPECT_FALSE(controller.send_command(3, 1).has_value());

  net.start_data_collection(1_min);
  net.run_for(4_min);
  bool delivered = false;
  net.node(3).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto seq = controller.send_command(3, 0x42);
  ASSERT_TRUE(seq.has_value());
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

TEST(CodeReport, StaleReportedCodeStillDelivers) {
  // The controller addresses by the code it last heard; if the node has
  // since re-coded, old-code matching along the path (Sec. III-B6) and the
  // destination's own old code keep the command deliverable.
  Network net(cfg(3));
  Controller controller(net);
  controller.set_use_reported_codes(true);
  net.start();
  net.run_for(4_min);
  net.start_data_collection(1_min);
  net.run_for(3_min);
  const auto reported = controller.reported_code(2);
  ASSERT_TRUE(reported.has_value());

  // Force a re-coding of node 2 (new position under the same parent).
  auto& parent = net.node(1).tele()->addressing();
  const auto* entry = parent.children().find(2);
  ASSERT_NE(entry, nullptr);
  msg::TeleBeacon beacon;
  beacon.parent_code = parent.code();
  beacon.space_bits = parent.space_bits();
  beacon.entries.push_back(msg::AllocationEntry{
      2, entry->position == 1 ? 2u : 1u, false});
  net.node(2).tele()->addressing().handle_tele_beacon(1, beacon);
  ASSERT_NE(net.node(2).tele()->addressing().code().to_string(),
            reported->to_string());

  // Command addressed by the stale report still arrives.
  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  net.sink().tele()->send_control(2, *reported, 7);
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

TEST(CodeReport, DataFramesGrowOnlyWhenReporting) {
  msg::CtpData plain;
  msg::CtpData reporting;
  reporting.has_code_report = true;
  reporting.reported_code = BitString::from_string_unchecked("00101");
  Frame a, b;
  a.payload = plain;
  b.payload = reporting;
  EXPECT_GT(wire_size_bytes(b), wire_size_bytes(a));
  EXPECT_LE(wire_size_bytes(b), 127u);
}

}  // namespace
}  // namespace telea
