#include "harness/faults.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(4, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

TEST(FaultPlan, KillAndReviveFireOnSchedule) {
  Network net(cfg(1));
  FaultPlan plan;
  plan.outage(2_min, 1_min, 2);
  plan.apply(net);
  net.start();
  net.run_for(90_s);
  EXPECT_FALSE(net.node(2).killed());
  net.run_for(60_s);  // t = 2.5 min: inside the outage
  EXPECT_TRUE(net.node(2).killed());
  net.run_for(60_s);  // t = 3.5 min: revived
  EXPECT_FALSE(net.node(2).killed());
}

TEST(FaultPlan, OutOfRangeNodesIgnored) {
  Network net(cfg(2));
  FaultPlan plan;
  plan.kill_at(10_s, 99);  // nonexistent
  plan.apply(net);
  net.start();
  net.run_for(30_s);  // must not crash
  for (NodeId i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).killed());
  }
}

TEST(FaultPlan, RandomChurnIsDeterministicAndBounded) {
  const auto a = FaultPlan::random_churn(20, 5, 1_min, 10_min, 2_min, 7);
  const auto b = FaultPlan::random_churn(20, 5, 1_min, 10_min, 2_min, 7);
  const auto c = FaultPlan::random_churn(20, 5, 1_min, 10_min, 2_min, 8);
  ASSERT_EQ(a.events().size(), 10u);  // 5 outages = 5 kills + 5 revives
  EXPECT_EQ(a.events().size(), b.events().size());
  bool identical = true;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    if (a.events()[i].at != b.events()[i].at ||
        a.events()[i].node != b.events()[i].node) {
      identical = false;
    }
  }
  EXPECT_TRUE(identical);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.events().size(), c.events().size());
       ++i) {
    if (a.events()[i].at != c.events()[i].at ||
        a.events()[i].node != c.events()[i].node) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
  for (const auto& e : a.events()) {
    EXPECT_GE(e.node, 1);
    EXPECT_LT(e.node, 20);
  }
}

TEST(FaultPlan, PastEventsClampToNowInsteadOfVanishing) {
  Network net(cfg(6));
  net.start();
  net.run_for(2_min);
  FaultPlan plan;
  plan.kill_at(10_s, 2);  // scheduled time already passed
  plan.apply(net);
  net.run_for(1_s);  // clamped to "now": still fires
  EXPECT_TRUE(net.node(2).killed());
}

TEST(FaultPlan, RandomChurnSerializesPerNodeOutages) {
  // Only one eligible node (ids 1..1): all outages land on node 1 and the
  // generator must place them without overlap, or a revive from outage A
  // would resurrect the node in the middle of outage B.
  const auto plan = FaultPlan::random_churn(2, 4, 0, 30_min, 2_min, 5);
  ASSERT_EQ(plan.events().size(), 8u);
  std::vector<std::pair<SimTime, SimTime>> windows;
  for (std::size_t i = 0; i + 1 < plan.events().size(); i += 2) {
    ASSERT_EQ(plan.events()[i].action, FaultPlan::Action::kKill);
    ASSERT_EQ(plan.events()[i + 1].action, FaultPlan::Action::kRevive);
    EXPECT_EQ(plan.events()[i].node, 1);
    windows.emplace_back(plan.events()[i].at, plan.events()[i + 1].at);
  }
  for (std::size_t i = 0; i < windows.size(); ++i) {
    for (std::size_t j = i + 1; j < windows.size(); ++j) {
      const bool overlap = windows[i].first <= windows[j].second &&
                           windows[j].first <= windows[i].second;
      EXPECT_FALSE(overlap)
          << "outage " << i << " overlaps outage " << j << " on node 1";
    }
  }
}

TEST(FaultPlan, BlackoutLinkAddsAndRemovesSymmetricLoss) {
  Network net(cfg(7));
  FaultPlan plan;
  plan.blackout_link(1_min, 1_min, 1, 2);
  plan.apply(net);
  net.start();
  net.run_for(90_s);  // inside the blackout
  EXPECT_DOUBLE_EQ(net.medium().link_loss_offset_db(1, 2),
                   RadioMedium::kBlackoutLossDb);
  EXPECT_DOUBLE_EQ(net.medium().link_loss_offset_db(2, 1),
                   RadioMedium::kBlackoutLossDb);
  net.run_for(60_s);  // past the restore event
  EXPECT_DOUBLE_EQ(net.medium().link_loss_offset_db(1, 2), 0.0);
}

TEST(FaultPlan, NoiseBurstRaisesAndRestoresNoiseFloor) {
  Network net(cfg(8));
  net.start();
  net.run_for(10_s);
  const double before = net.medium().noise_dbm(2);
  FaultPlan plan;
  plan.noise_burst(net.sim().now() + 10_s, 30_s, {2}, -60.0);
  plan.apply(net);
  net.run_for(20_s);  // inside the burst
  EXPECT_GE(net.medium().noise_dbm(2), -61.0);
  net.run_for(30_s);  // burst over
  EXPECT_LT(net.medium().noise_dbm(2), before + 3.0);
}

TEST(FaultPlan, PartitionBlacksOutEveryCrossingLink) {
  FaultPlan plan;
  plan.partition(1_min, 2_min, {2, 3}, 5);
  // Crossing pairs: {2,3} x {0,1,4} = 6 links, 2 events (on/off) each.
  ASSERT_EQ(plan.events().size(), 12u);
  for (const auto& e : plan.events()) {
    EXPECT_EQ(e.action, FaultPlan::Action::kLinkLoss);
    const bool node_inside = e.node == 2 || e.node == 3;
    const bool peer_inside = e.peer == 2 || e.peer == 3;
    EXPECT_NE(node_inside, peer_inside);  // strictly crossing
  }
}

TEST(FaultPlan, StateLossRebootWipesProtocolStateThenRecovers) {
  Network net(cfg(9));
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code());
  ASSERT_NE(net.node(3).ctp().parent(), kInvalidNode);
  // Direct call: the wipe is synchronous, so assert it before the protocol
  // machinery gets a chance to re-attach (CTP pull beacons re-acquire a
  // parent within about a second — any timed window would race that).
  net.node(3).reboot_with_state_loss();
  EXPECT_FALSE(net.node(3).killed());  // up, but amnesiac
  EXPECT_FALSE(net.node(3).tele()->addressing().has_code());
  EXPECT_EQ(net.node(3).ctp().parent(), kInvalidNode);
  // Same fault via a scheduled plan, then let the node fully re-join.
  FaultPlan plan;
  plan.reboot_with_state_loss_at(net.sim().now() + 1_min, 3);
  plan.apply(net);
  net.run_for(8_min);
  EXPECT_FALSE(net.node(3).killed());
  EXPECT_TRUE(net.node(3).tele()->addressing().has_code());
}

TEST(FaultPlan, NetworkSurvivesChurnUnderLoad) {
  Network net(cfg(3));
  FaultPlan::random_churn(net.size(), 3, 4_min, 8_min, 1_min, 11).apply(net);
  net.start();
  net.run_for(4_min);
  net.start_data_collection(1_min);
  net.run_for(6_min);  // churn happens under traffic: no crashes/asserts
  net.run_for(4_min);  // recovery window
  // After churn ends the network still functions end to end.
  bool delivered = false;
  for (NodeId d = 3; d >= 1; --d) {
    if (net.node(d).killed()) continue;
    const auto& code = net.node(d).tele()->addressing().code();
    if (code.empty()) continue;
    net.node(d).tele()->on_control_delivered =
        [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
    net.sink().tele()->send_control(d, code, 1);
    net.run_for(1_min);
    break;
  }
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace telea
