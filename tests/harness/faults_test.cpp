#include "harness/faults.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(4, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

TEST(FaultPlan, KillAndReviveFireOnSchedule) {
  Network net(cfg(1));
  FaultPlan plan;
  plan.outage(2_min, 1_min, 2);
  plan.apply(net);
  net.start();
  net.run_for(90_s);
  EXPECT_FALSE(net.node(2).killed());
  net.run_for(60_s);  // t = 2.5 min: inside the outage
  EXPECT_TRUE(net.node(2).killed());
  net.run_for(60_s);  // t = 3.5 min: revived
  EXPECT_FALSE(net.node(2).killed());
}

TEST(FaultPlan, OutOfRangeNodesIgnored) {
  Network net(cfg(2));
  FaultPlan plan;
  plan.kill_at(10_s, 99);  // nonexistent
  plan.apply(net);
  net.start();
  net.run_for(30_s);  // must not crash
  for (NodeId i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.node(i).killed());
  }
}

TEST(FaultPlan, RandomChurnIsDeterministicAndBounded) {
  const auto a = FaultPlan::random_churn(20, 5, 1_min, 10_min, 2_min, 7);
  const auto b = FaultPlan::random_churn(20, 5, 1_min, 10_min, 2_min, 7);
  const auto c = FaultPlan::random_churn(20, 5, 1_min, 10_min, 2_min, 8);
  ASSERT_EQ(a.events().size(), 10u);  // 5 outages = 5 kills + 5 revives
  EXPECT_EQ(a.events().size(), b.events().size());
  bool identical = true;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    if (a.events()[i].at != b.events()[i].at ||
        a.events()[i].node != b.events()[i].node) {
      identical = false;
    }
  }
  EXPECT_TRUE(identical);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.events().size(), c.events().size());
       ++i) {
    if (a.events()[i].at != c.events()[i].at ||
        a.events()[i].node != c.events()[i].node) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
  for (const auto& e : a.events()) {
    EXPECT_GE(e.node, 1);
    EXPECT_LT(e.node, 20);
  }
}

TEST(FaultPlan, NetworkSurvivesChurnUnderLoad) {
  Network net(cfg(3));
  FaultPlan::random_churn(net.size(), 3, 4_min, 8_min, 1_min, 11).apply(net);
  net.start();
  net.run_for(4_min);
  net.start_data_collection(1_min);
  net.run_for(6_min);  // churn happens under traffic: no crashes/asserts
  net.run_for(4_min);  // recovery window
  // After churn ends the network still functions end to end.
  bool delivered = false;
  for (NodeId d = 3; d >= 1; --d) {
    if (net.node(d).killed()) continue;
    const auto& code = net.node(d).tele()->addressing().code();
    if (code.empty()) continue;
    net.node(d).tele()->on_control_delivered =
        [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
    net.sink().tele()->send_control(d, code, 1);
    net.run_for(1_min);
    break;
  }
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace telea
