#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

ControlExperimentConfig tiny(ControlProtocol proto, std::uint64_t seed) {
  ControlExperimentConfig cfg;
  cfg.network.topology = make_connected_random(12, 50.0, seed);
  cfg.network.seed = seed;
  cfg.network.protocol = proto;
  cfg.warmup = 8_min;
  cfg.duration = 10_min;
  cfg.control_interval = 30_s;
  cfg.data_ipi = 2_min;
  cfg.drain = 1_min;
  return cfg;
}

TEST(Experiment, TeleRunProducesSaneMetrics) {
  const auto r = run_control_experiment(tiny(ControlProtocol::kReTele, 1));
  EXPECT_GE(r.sent, 15u);
  EXPECT_GE(r.pdr(), 0.8);
  EXPECT_GT(r.tx_per_control, 0.0);
  EXPECT_LT(r.tx_per_control, 30.0);
  EXPECT_GT(r.duty_cycle, 0.0);
  EXPECT_LT(r.duty_cycle, 0.5);
  EXPECT_FALSE(r.pdr_by_hop.empty());
}

TEST(Experiment, DripRunFloodsEverything) {
  const auto r = run_control_experiment(tiny(ControlProtocol::kDrip, 2));
  EXPECT_GE(r.pdr(), 0.9);
  // Flooding: transmissions per control packet approach network size.
  EXPECT_GT(r.tx_per_control, 5.0);
}

TEST(Experiment, RplRunDeliversMost) {
  const auto r = run_control_experiment(tiny(ControlProtocol::kRpl, 3));
  EXPECT_GE(r.pdr(), 0.6);
  EXPECT_GT(r.tx_per_control, 0.0);
}

TEST(Experiment, MergeAveragesRuns) {
  ControlExperimentResult a, b;
  a.sent = 10;
  a.delivered = 9;
  a.tx_per_control = 4.0;
  a.duty_cycle = 0.02;
  a.pdr_by_hop.add(1, 1.0);
  b.sent = 10;
  b.delivered = 10;
  b.tx_per_control = 6.0;
  b.duty_cycle = 0.04;
  b.pdr_by_hop.add(1, 0.0);
  const auto m = merge_results({a, b});
  EXPECT_EQ(m.sent, 20u);
  EXPECT_EQ(m.delivered, 19u);
  EXPECT_DOUBLE_EQ(m.tx_per_control, 5.0);
  EXPECT_DOUBLE_EQ(m.duty_cycle, 0.03);
  EXPECT_DOUBLE_EQ(m.pdr_by_hop.groups().at(1).mean(), 0.5);
}

TEST(Experiment, DeterministicPerSeed) {
  const auto a = run_control_experiment(tiny(ControlProtocol::kTele, 5));
  const auto b = run_control_experiment(tiny(ControlProtocol::kTele, 5));
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.tx_per_control, b.tx_per_control);
}

}  // namespace
}  // namespace telea
