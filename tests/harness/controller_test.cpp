#include "harness/controller.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(4, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

TEST(Controller, CountsReportsPerOrigin) {
  Network net(cfg(1));
  Controller controller(net);
  net.start();
  net.run_for(3_min);
  net.start_data_collection(30_s);
  net.run_for(3_min);
  EXPECT_GE(controller.reports_from(1), 3u);
  EXPECT_GE(controller.reports_from(3), 2u);
  EXPECT_EQ(controller.reports_from(99), 0u);
}

TEST(Controller, DetectsQuietNode) {
  Network net(cfg(2));
  Controller controller(net);
  net.start();
  net.run_for(3_min);
  net.start_data_collection(30_s);
  net.run_for(4_min);
  controller.begin_window();
  net.node(3).kill();
  net.run_for(4_min);
  const auto quiet = controller.quiet_nodes(/*expected=*/3, /*floor=*/1);
  ASSERT_EQ(quiet.size(), 1u);
  EXPECT_EQ(quiet[0], 3);
}

TEST(Controller, SendsCommandAndSeesAck) {
  Network net(cfg(3));
  Controller controller(net);
  net.start();
  net.run_for(4_min);
  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto seq = controller.send_command(2, 0x77);
  ASSERT_TRUE(seq.has_value());
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
  ASSERT_EQ(controller.acked().size(), 1u);
  EXPECT_EQ(controller.acked()[0], *seq);
}

TEST(Controller, RejectsUncodedOrUnknownTargets) {
  Network net(cfg(4));
  Controller controller(net);
  net.start();  // no convergence: nobody has codes yet
  EXPECT_FALSE(controller.send_command(2, 1).has_value());
  EXPECT_FALSE(controller.send_command(99, 1).has_value());
}

TEST(Controller, GroupCommandReachesAll) {
  Network net(cfg(5));
  Controller controller(net);
  net.start();
  net.run_for(4_min);
  int hits = 0;
  for (NodeId id : {NodeId{1}, NodeId{3}}) {
    net.node(id).tele()->group_control().on_delivered =
        [&hits](std::uint16_t, std::uint32_t) { ++hits; };
    net.node(id).tele()->on_control_delivered =
        [&hits](const msg::ControlPacket&, bool) { ++hits; };
  }
  const auto group = controller.send_command_group({1, 3}, 0x55);
  ASSERT_TRUE(group.has_value());
  net.run_for(90_s);
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace telea
