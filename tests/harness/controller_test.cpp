#include "harness/controller.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(4, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kReTele;
  return c;
}

TEST(Controller, CountsReportsPerOrigin) {
  Network net(cfg(1));
  Controller controller(net);
  net.start();
  net.run_for(3_min);
  net.start_data_collection(30_s);
  net.run_for(3_min);
  EXPECT_GE(controller.reports_from(1), 3u);
  EXPECT_GE(controller.reports_from(3), 2u);
  EXPECT_EQ(controller.reports_from(99), 0u);
}

TEST(Controller, DetectsQuietNode) {
  Network net(cfg(2));
  Controller controller(net);
  net.start();
  net.run_for(3_min);
  net.start_data_collection(30_s);
  net.run_for(4_min);
  controller.begin_window();
  net.node(3).kill();
  net.run_for(4_min);
  const auto quiet = controller.quiet_nodes(/*expected=*/3, /*floor=*/1);
  ASSERT_EQ(quiet.size(), 1u);
  EXPECT_EQ(quiet[0], 3);
}

TEST(Controller, SendsCommandAndSeesAck) {
  Network net(cfg(3));
  Controller controller(net);
  net.start();
  net.run_for(4_min);
  bool delivered = false;
  net.node(2).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  const auto seq = controller.send_command(2, 0x77);
  ASSERT_TRUE(seq.has_value());
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
  ASSERT_EQ(controller.acked().size(), 1u);
  EXPECT_EQ(controller.acked()[0], *seq);
}

TEST(Controller, RejectsUncodedOrUnknownTargets) {
  Network net(cfg(4));
  Controller controller(net);
  net.start();  // no convergence: nobody has codes yet
  EXPECT_FALSE(controller.send_command(2, 1).has_value());
  EXPECT_FALSE(controller.send_command(99, 1).has_value());
}

TEST(Controller, ResolvesAckedCommandThroughCallback) {
  Network net(cfg(6));
  Controller controller(net);
  net.start();
  net.run_for(4_min);
  std::vector<CommandResolution> resolutions;
  controller.on_command_resolved =
      [&resolutions](const CommandResolution& res) {
        resolutions.push_back(res);
      };
  const auto seq = controller.send_command(2, 0x42);
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(controller.pending_commands(), 1u);
  net.run_for(1_min);
  ASSERT_EQ(resolutions.size(), 1u);
  EXPECT_EQ(resolutions[0].outcome, CommandOutcome::kAcked);
  EXPECT_EQ(resolutions[0].dest, 2);
  EXPECT_EQ(resolutions[0].first_seqno, *seq);
  EXPECT_EQ(resolutions[0].attempts, 1u);
  EXPECT_GT(resolutions[0].resolved_at, resolutions[0].issued_at);
  EXPECT_EQ(controller.pending_commands(), 0u);
  EXPECT_EQ(controller.resolved_acked(), 1u);
}

TEST(Controller, RetriesUntilDestinationRevives) {
  NetworkConfig c = cfg(7);
  // Short unreachable lease: relays must forget the dead node on the same
  // timescale the controller retries, or post-revive attempts keep skipping
  // the healed path for minutes.
  c.tele.forwarding.unreachable_timeout = 30_s;
  Network net(c);
  ControllerRetryConfig retry;
  retry.ack_timeout = 15_s;
  retry.max_retries = 6;
  Controller controller(net, retry);
  net.start();
  net.run_for(4_min);
  net.node(3).kill();
  std::optional<CommandResolution> resolution;
  controller.on_command_resolved =
      [&resolution](const CommandResolution& res) { resolution = res; };
  const auto seq = controller.send_command(3, 0x43);
  ASSERT_TRUE(seq.has_value());
  net.run_for(40_s);
  EXPECT_FALSE(resolution.has_value());  // still down, still retrying
  EXPECT_GE(controller.retries(), 1u);
  net.node(3).revive();
  net.run_for(3_min);
  ASSERT_TRUE(resolution.has_value());
  EXPECT_EQ(resolution->outcome, CommandOutcome::kAcked);
  EXPECT_GE(resolution->attempts, 2u);
  EXPECT_EQ(controller.pending_commands(), 0u);
}

TEST(Controller, GivesUpAfterRetryBudget) {
  Network net(cfg(8));
  ControllerRetryConfig retry;
  retry.ack_timeout = 10_s;
  retry.max_backoff = 20_s;
  retry.max_retries = 2;
  retry.escalate_after = 1;
  Controller controller(net, retry);
  net.start();
  net.run_for(4_min);
  net.node(3).kill();
  std::optional<CommandResolution> resolution;
  controller.on_command_resolved =
      [&resolution](const CommandResolution& res) { resolution = res; };
  const auto seq = controller.send_command(3, 0x44);
  ASSERT_TRUE(seq.has_value());
  net.run_for(4_min);
  ASSERT_TRUE(resolution.has_value());
  EXPECT_EQ(resolution->outcome, CommandOutcome::kGaveUp);
  EXPECT_EQ(resolution->attempts, 3u);  // initial + 2 retries
  EXPECT_EQ(controller.gave_up(), 1u);
  EXPECT_EQ(controller.retries(), 2u);
  EXPECT_EQ(controller.pending_commands(), 0u);
}

TEST(Controller, EscalatesToReTeleDetourAfterPlainRetries) {
  Network net(cfg(9));
  net.enable_tracing();
  ControllerRetryConfig retry;
  retry.ack_timeout = 10_s;
  retry.max_backoff = 15_s;
  retry.max_retries = 4;
  retry.escalate_after = 1;
  Controller controller(net, retry);
  net.start();
  net.run_for(4_min);
  net.node(3).kill();
  ASSERT_TRUE(controller.send_command(3, 0x45).has_value());
  net.run_for(4_min);
  // After the first plain retry the controller goes through the Re-Tele
  // detour path (node 3's code is known; node 2 is its detour neighbor).
  EXPECT_GE(controller.escalations(), 1u);
  bool saw_escalated_retry = false;
  for (const auto& rec : net.tracer()->snapshot()) {
    if (rec.event == TraceEvent::kCommandRetry &&
        rec.reason == TraceReason::kEscalated && rec.b == 3) {
      saw_escalated_retry = true;
    }
  }
  EXPECT_TRUE(saw_escalated_retry);
}

TEST(Controller, NoCodeResolvesImmediately) {
  Network net(cfg(10));
  Controller controller(net);
  std::vector<CommandResolution> resolutions;
  controller.on_command_resolved =
      [&resolutions](const CommandResolution& res) {
        resolutions.push_back(res);
      };
  net.start();  // no convergence: nobody has codes yet
  EXPECT_FALSE(controller.send_command(2, 1).has_value());
  ASSERT_EQ(resolutions.size(), 1u);
  EXPECT_EQ(resolutions[0].outcome, CommandOutcome::kNoCode);
  EXPECT_EQ(resolutions[0].dest, 2);
  EXPECT_EQ(controller.no_code(), 1u);
  EXPECT_EQ(controller.pending_commands(), 0u);
}

TEST(Controller, DisabledRetryKeepsFireAndForget) {
  Network net(cfg(11));
  ControllerRetryConfig retry;
  retry.enabled = false;
  Controller controller(net, retry);
  net.start();
  net.run_for(4_min);
  net.node(3).kill();
  ASSERT_TRUE(controller.send_command(3, 0x46).has_value());
  net.run_for(3_min);
  EXPECT_TRUE(controller.acked().empty());
  EXPECT_EQ(controller.pending_commands(), 0u);
  EXPECT_EQ(controller.retries(), 0u);
  EXPECT_EQ(controller.gave_up(), 0u);
}

TEST(Controller, ExportsLifecycleMetrics) {
  Network net(cfg(12));
  ControllerRetryConfig retry;
  retry.ack_timeout = 10_s;
  retry.max_retries = 1;
  Controller controller(net, retry);
  net.start();
  net.run_for(4_min);
  net.node(3).kill();
  controller.send_command(3, 0x47);
  controller.send_command(2, 0x48);
  net.run_for(3_min);
  MetricsRegistry registry;
  controller.collect_metrics(registry);
  EXPECT_EQ(registry.counter("telea_controller_retries_total").value(),
            controller.retries());
  EXPECT_EQ(registry.counter("telea_controller_gave_up_total").value(), 1u);
  EXPECT_EQ(registry.counter("telea_controller_acked_total").value(), 1u);
  EXPECT_EQ(registry.gauge("telea_controller_pending").value(), 0.0);
}

TEST(Controller, GroupCommandReachesAll) {
  Network net(cfg(5));
  Controller controller(net);
  net.start();
  net.run_for(4_min);
  int hits = 0;
  for (NodeId id : {NodeId{1}, NodeId{3}}) {
    net.node(id).tele()->group_control().on_delivered =
        [&hits](std::uint16_t, std::uint32_t) { ++hits; };
    net.node(id).tele()->on_control_delivered =
        [&hits](const msg::ControlPacket&, bool) { ++hits; };
  }
  const auto group = controller.send_command_group({1, 3}, 0x55);
  ASSERT_TRUE(group.has_value());
  net.run_for(90_s);
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace telea
