#include "harness/topology_export.hpp"

#include <gtest/gtest.h>

#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(TopologyExport, RendersNodesEdgesAndCodes) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 5;
  cfg.protocol = ControlProtocol::kTele;
  Network net(cfg);
  net.start();
  net.run_for(4_min);

  const std::string dot = render_topology_dot(net);
  EXPECT_NE(dot.find("digraph wsn"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);  // the sink
  EXPECT_NE(dot.find("n1 -> n0"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n1"), std::string::npos);
  // Codes appear as labels.
  const auto& code = net.node(1).tele()->addressing().code();
  ASSERT_FALSE(code.empty());
  EXPECT_NE(dot.find(code.to_string()), std::string::npos);
}

TEST(TopologyExport, KilledNodesGrayedOut) {
  NetworkConfig cfg;
  cfg.topology = make_line(3, 22.0);
  cfg.seed = 6;
  cfg.protocol = ControlProtocol::kTele;
  Network net(cfg);
  net.start();
  net.run_for(1_min);
  net.node(2).kill();
  EXPECT_NE(render_topology_dot(net).find("fillcolor=gray"),
            std::string::npos);
}

TEST(TopologyExport, WritesFile) {
  NetworkConfig cfg;
  cfg.topology = make_line(2, 22.0);
  cfg.seed = 7;
  cfg.protocol = ControlProtocol::kTele;
  Network net(cfg);
  net.start();
  const std::string path = "/tmp/telea_topo_test.dot";
  EXPECT_TRUE(write_topology_dot(net, path));
  std::remove(path.c_str());
  EXPECT_FALSE(write_topology_dot(net, "/nonexistent/dir/x.dot"));
}

}  // namespace
}  // namespace telea
