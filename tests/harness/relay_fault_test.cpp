// Forwarding-plane exhaustion behavior under a killed-relay fault plan:
// the max_backtracks budget must bound feedback ping-pong, and stale
// unreachable marks must expire via unreachable_timeout even when the dead
// neighbor's own beacons never return (satellite of the robustness PR).
#include <gtest/gtest.h>

#include "harness/controller.hpp"
#include "harness/faults.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig line5_cfg(std::uint64_t seed) {
  NetworkConfig c;
  c.topology = make_line(5, 22.0);
  c.seed = seed;
  c.protocol = ControlProtocol::kTele;  // no Re-Tele: pure backtracking
  return c;
}

TEST(RelayFaults, MaxBacktracksBoundsFeedbackRoundsAndFailsCleanly) {
  NetworkConfig c = line5_cfg(21);
  c.tele.forwarding.max_backtracks = 1;
  Network net(c);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());

  FaultPlan plan;
  plan.kill_at(net.sim().now() + 1_s, 3);  // the relay in front of node 4
  plan.apply(net);
  net.run_for(5_s);

  bool failed = false;
  net.sink().tele()->on_delivery_failed = [&failed](std::uint32_t) {
    failed = true;
  };
  const auto seq = net.sink().tele()->send_control(
      4, net.node(4).tele()->addressing().code(), 0x99);
  ASSERT_TRUE(seq.has_value());
  net.run_for(3_min);

  // The origin must learn of the failure (no silent loss)...
  EXPECT_TRUE(failed);
  EXPECT_GE(net.sink().tele()->forwarding().stats().origin_failures, 1u);
  // ...and no relay may exceed its per-packet feedback budget. One control
  // packet was injected, so per-node cumulative backtracks are per-packet
  // rounds here (origin retries re-run the forward path, not the budget).
  for (NodeId n = 0; n < static_cast<NodeId>(net.size()); ++n) {
    const auto& stats = net.node(n).tele()->forwarding().stats();
    EXPECT_LE(stats.backtracks,
              static_cast<std::uint64_t>(c.tele.forwarding.max_backtracks) *
                  (1 + c.tele.forwarding.origin_retries))
        << "node " << n << " exceeded its backtrack budget";
  }
}

TEST(RelayFaults, UnreachableMarksExpireWithoutTheDeadNeighborsBeacon) {
  NetworkConfig c = line5_cfg(22);
  c.tele.forwarding.unreachable_timeout = 15_s;
  Network net(c);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(4).tele()->addressing().has_code());

  FaultPlan plan;
  plan.kill_at(net.sim().now() + 1_s, 3);
  plan.apply(net);
  net.run_for(5_s);

  const auto seq = net.sink().tele()->send_control(
      4, net.node(4).tele()->addressing().code(), 0x9A);
  ASSERT_TRUE(seq.has_value());
  net.run_for(1_min);

  // Node 2 tried to hand the packet to its dead downstream relay and marked
  // it unreachable.
  auto& neighbors = net.node(2).tele()->addressing().neighbors();
  ASSERT_TRUE(neighbors.is_unreachable(3));

  // Node 3 stays dead, so its own beacons can never clear the mark. Any
  // *other* neighbor's beacon triggers the expiry sweep once the timeout
  // has passed (the safety valve of Sec. III-C3).
  net.run_for(30_s);  // > unreachable_timeout since the mark was set
  net.node(1).ctp().send_beacon(false);
  net.run_for(5_s);
  EXPECT_FALSE(neighbors.is_unreachable(3));
}

}  // namespace
}  // namespace telea
