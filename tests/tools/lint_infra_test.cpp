// Tests for telea_lint's production infrastructure: fingerprint stability,
// the baseline accept/diff workflow, SARIF rendering, the incremental cache
// and the mechanical --fix insertions.
#include "telea_lint/lint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace telea::lint {
namespace {

namespace fs = std::filesystem;

class LintInfraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("telea_lint_infra_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
    opts_.root = root_;
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << text;
  }

  std::string read(const std::string& rel) {
    std::ifstream in(root_ / rel);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path root_;
  Options opts_;
};

// --- fingerprints -----------------------------------------------------------

TEST_F(LintInfraTest, FingerprintSurvivesWhitespaceOnlyEdits) {
  write("src/net/use.cpp",
        "void f() {\n"
        "  BitString code;\n"
        "  code.append_bits(3u, 2u);\n"
        "}\n");
  auto before = check_code_arith(opts_);
  annotate_fingerprints(opts_.root, before);
  ASSERT_EQ(before.size(), 1u);

  // Reindent the offending line and push it down two lines: the finding
  // moves but its identity must not.
  write("src/net/use.cpp",
        "\n\n"
        "void f() {\n"
        "  BitString code;\n"
        "      code.append_bits(3u,   2u);\n"
        "}\n");
  auto after = check_code_arith(opts_);
  annotate_fingerprints(opts_.root, after);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_NE(before[0].line, after[0].line);
  EXPECT_EQ(before[0].fingerprint, after[0].fingerprint);
}

TEST_F(LintInfraTest, FingerprintDistinguishesRuleFileAndContent) {
  Finding a{"src/a.cpp", 0, "layering", "msg"};
  Finding b{"src/b.cpp", 0, "layering", "msg"};
  Finding c{"src/a.cpp", 0, "wire-format", "msg"};
  std::vector<Finding> v{a, b, c};
  annotate_fingerprints(root_, v);
  EXPECT_NE(v[0].fingerprint, v[1].fingerprint);
  EXPECT_NE(v[0].fingerprint, v[2].fingerprint);
  EXPECT_EQ(v[0].fingerprint.size(), 16u);
}

// --- baseline ---------------------------------------------------------------

TEST_F(LintInfraTest, BaselineRoundTripSuppressesAndReportsStale) {
  std::vector<Finding> findings{
      {"src/a.cpp", 1, "layering", "edge one"},
      {"src/b.cpp", 2, "wire-format", "mismatch two"},
  };
  annotate_fingerprints(root_, findings);
  const fs::path baseline = root_ / "lint_baseline.txt";
  ASSERT_TRUE(write_baseline(baseline, findings));

  const auto loaded = load_baseline(baseline);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);

  // Same findings: all suppressed, nothing active, nothing stale.
  BaselineDiff same = apply_baseline(findings, *loaded);
  EXPECT_TRUE(same.active.empty());
  EXPECT_EQ(same.suppressed, 2u);
  EXPECT_TRUE(same.stale.empty());

  // One fixed, one new: the fixed entry goes stale, the new one is active.
  std::vector<Finding> next{findings[0],
                            {"src/c.cpp", 3, "code-arith", "fresh"}};
  annotate_fingerprints(root_, next);
  BaselineDiff diff = apply_baseline(next, *loaded);
  ASSERT_EQ(diff.active.size(), 1u);
  EXPECT_EQ(diff.active[0].file, "src/c.cpp");
  EXPECT_EQ(diff.suppressed, 1u);
  ASSERT_EQ(diff.stale.size(), 1u);
  EXPECT_EQ(diff.stale[0], findings[1].fingerprint);
}

TEST_F(LintInfraTest, BaselineLoaderSkipsCommentsAndMissingFileIsError) {
  write("b.txt", "# comment\n\nabc123 layering src/a.cpp msg\n");
  const auto loaded = load_baseline(root_ / "b.txt");
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0], "abc123");
  EXPECT_FALSE(load_baseline(root_ / "missing.txt").has_value());
}

// --- SARIF ------------------------------------------------------------------

TEST_F(LintInfraTest, SarifCarriesRuleIdLocationAndFingerprint) {
  std::vector<Finding> findings{
      {"src/a.cpp", 7, "layering", "a \"quoted\" message"}};
  annotate_fingerprints(root_, findings);
  const std::string sarif = render_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"layering\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 7"), std::string::npos);
  EXPECT_NE(sarif.find("a \\\"quoted\\\" message"), std::string::npos);
  EXPECT_NE(sarif.find(findings[0].fingerprint), std::string::npos);
  // Every registered rule is described in the driver block.
  for (const RuleInfo& r : rule_registry()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(r.name) + "\""),
              std::string::npos);
  }
}

// --- incremental cache ------------------------------------------------------

TEST_F(LintInfraTest, CacheHitsOnUnchangedTreeAndInvalidatesOnEdit) {
  write("src/net/use.cpp",
        "void f() {\n"
        "  BitString code;\n"
        "  code.append_bits(3u, 2u);\n"
        "}\n");
  const fs::path cache = root_ / "lint_cache.txt";

  CacheResult first = run_all_cached(opts_, cache);
  EXPECT_FALSE(first.hit);

  CacheResult second = run_all_cached(opts_, cache);
  EXPECT_TRUE(second.hit);
  ASSERT_EQ(second.findings.size(), first.findings.size());
  for (std::size_t i = 0; i < first.findings.size(); ++i) {
    EXPECT_EQ(second.findings[i].rule, first.findings[i].rule);
    EXPECT_EQ(second.findings[i].file, first.findings[i].file);
    EXPECT_EQ(second.findings[i].message, first.findings[i].message);
    EXPECT_EQ(second.findings[i].fingerprint, first.findings[i].fingerprint);
  }

  // A content edit (different size, so no mtime-granularity dependence)
  // must invalidate the cached run.
  write("src/net/use.cpp",
        "void f() {\n"
        "  BitString code;\n"
        "  bool ok = code.append_bits(3u, 2u);\n"
        "  (void)ok;\n"
        "}\n");
  CacheResult third = run_all_cached(opts_, cache);
  EXPECT_FALSE(third.hit);
  EXPECT_LT(third.findings.size(), first.findings.size());
}

// --- mechanical fixes -------------------------------------------------------

TEST_F(LintInfraTest, FixInsertsMissingEnumCase) {
  write("src/color.hpp",
        "enum class Color : std::uint8_t {\n"
        "  kRed,\n"
        "  kBlueGreen,\n"
        "};\n");
  write("src/color.cpp",
        "const char* color_name(Color c) {\n"
        "  switch (c) {\n"
        "    case Color::kRed: return \"red\";\n"
        "  }\n"
        "  return \"?\";\n"
        "}\n");
  opts_.enums = {{"Color", "src/color.hpp", "src/color.cpp", "color_name", ""}};
  auto findings = check_enum_strings(opts_);
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_EQ(findings[0].fix_kind, "insert-enum-case");

  EXPECT_EQ(apply_fixes(opts_.root, findings), 1u);
  EXPECT_NE(read("src/color.cpp")
                .find("case Color::kBlueGreen: return \"blue_green\";"),
            std::string::npos);
  EXPECT_TRUE(check_enum_strings(opts_).empty());
}

TEST_F(LintInfraTest, FixAppendsTraceDocRowAndMetricBullet) {
  write("src/stats/trace.hpp", "enum class TraceEvent { kPing };\n");
  write("src/stats/trace.cpp",
        "const char* trace_event_name(TraceEvent e) {\n"
        "  switch (e) {\n"
        "    case TraceEvent::kPing: return \"ping\";\n"
        "  }\n"
        "  return \"?\";\n"
        "}\n");
  write("src/stats/metrics.cpp",
        "void reg(MetricsRegistry& m) { m.counter(\"telea_ping_total\"); }\n");
  write("docs/OBSERVABILITY.md",
        "# Observability\n"
        "\n"
        "| event | a | b | emitted by |\n"
        "|---|---|---|---|\n"
        "\n"
        "Exported names:\n"
        "\n"
        "- `telea_other_total` — something else\n");
  opts_.enums.clear();

  auto findings = run_all(opts_);
  std::vector<Finding> fixable;
  for (const Finding& f : findings) {
    if (!f.fix_kind.empty()) fixable.push_back(f);
  }
  ASSERT_EQ(fixable.size(), 2u);
  EXPECT_EQ(apply_fixes(opts_.root, fixable), 2u);

  const std::string doc = read("docs/OBSERVABILITY.md");
  EXPECT_NE(doc.find("| `ping` |"), std::string::npos);
  EXPECT_NE(doc.find("- `telea_ping_total`"), std::string::npos);
  EXPECT_TRUE(check_trace_docs(opts_).empty());
  EXPECT_TRUE(check_metric_docs(opts_).empty());
}

}  // namespace
}  // namespace telea::lint
