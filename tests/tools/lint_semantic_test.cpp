// Tests for telea_lint's semantic rule families (layering, wire-format,
// code-arith) and the shared index underneath them. Each rule gets a seeded
// mini-tree where it must fire (right file, right rule) and a clean variant
// where it must stay quiet.
#include "telea_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>

namespace telea::lint {
namespace {

namespace fs = std::filesystem;

class LintSemanticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test case (cases may run in parallel processes).
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("telea_lint_sem_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
    opts_.root = root_;
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << text;
  }

  static std::size_t count_rule(const std::vector<Finding>& findings,
                                const std::string& rule) {
    return static_cast<std::size_t>(
        std::count_if(findings.begin(), findings.end(),
                      [&rule](const Finding& f) { return f.rule == rule; }));
  }

  fs::path root_;
  Options opts_;
};

// --- index ------------------------------------------------------------------

TEST(IndexTest, TokenizerTracksLinesAndKeepsRawStrings) {
  const auto toks = tokenize("int a = 3;\nconst char* s = \"x\\\"y\";\n");
  ASSERT_GE(toks.size(), 5u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1u);
  bool found_string = false;
  for (const Token& t : toks) {
    if (t.kind == Token::Kind::kString) {
      found_string = true;
      EXPECT_EQ(t.text, "x\\\"y");  // raw escapes preserved
      EXPECT_EQ(t.line, 2u);
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(IndexTest, EvaluatesConstantsIncludingDerivedOnes) {
  const FileIndex idx = build_file_index(
      "x.hpp",
      "inline constexpr std::size_t kA = 127;\n"
      "inline constexpr std::size_t kB = 11 + 2;\n"
      "inline constexpr std::size_t kC = kA - kB;\n");
  ASSERT_NE(idx.find_constant("kC"), nullptr);
  EXPECT_EQ(idx.find_constant("kC")->value, 114);
}

TEST(IndexTest, IndexesStructFieldsNotEnumerators) {
  const FileIndex idx = build_file_index(
      "x.hpp",
      "enum class Mode : std::uint8_t { kA, kB };\n"
      "struct Wire {\n"
      "  std::uint8_t a = 0;\n"
      "  std::uint16_t b = 0;\n"
      "  bool flag = false;\n"
      "  void method();\n"
      "};\n");
  const StructDecl* s = idx.find_struct("Wire");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->fields.size(), 3u);
  EXPECT_EQ(s->fields[1].name, "b");
  EXPECT_EQ(idx.find_struct("Mode"), nullptr);
}

TEST(IndexTest, RecordsFunctionBodySpans) {
  const FileIndex idx = build_file_index(
      "x.cpp",
      "int helper(int v) { return v + 1; }\n"
      "void render(std::string& out) {\n"
      "  out += \"{\\\"key\\\":1}\";\n"
      "}\n");
  ASSERT_NE(idx.find_function("helper"), nullptr);
  ASSERT_NE(idx.find_function("render"), nullptr);
  EXPECT_EQ(idx.find_function("render")->line, 2u);
}

// --- layering ---------------------------------------------------------------

TEST_F(LintSemanticTest, LayeringFlagsIllegalEdgeWithIncludeChain) {
  write("src/util/helper.hpp", "#pragma once\n#include \"net/thing.hpp\"\n");
  write("src/net/thing.hpp", "#pragma once\n");
  const auto findings = check_layering(opts_);
  ASSERT_EQ(count_rule(findings, "layering"), 1u);
  EXPECT_EQ(findings[0].file, "src/util/helper.hpp");
  EXPECT_NE(findings[0].message.find("src/net/thing.hpp"), std::string::npos);
}

TEST_F(LintSemanticTest, LayeringFlagsIncludeCycleOnce) {
  // A deliberate two-file cycle inside one layer: legal edges, still broken.
  write("src/net/a.hpp", "#pragma once\n#include \"net/b.hpp\"\n");
  write("src/net/b.hpp", "#pragma once\n#include \"net/a.hpp\"\n");
  const auto findings = check_layering(opts_);
  ASSERT_EQ(count_rule(findings, "layering"), 1u);
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/net/a.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/net/b.hpp"), std::string::npos);
}

TEST_F(LintSemanticTest, LayeringForbidsSrcDependingOnTools) {
  write("src/core/x.cpp", "#include \"telea_lint/lint.hpp\"\n");
  write("tools/telea_lint/lint.hpp", "#pragma once\n");
  const auto findings = check_layering(opts_);
  ASSERT_EQ(count_rule(findings, "layering"), 1u);
  EXPECT_NE(findings[0].message.find("tools"), std::string::npos);
}

TEST_F(LintSemanticTest, LayeringQuietOnLegalEdgesAndSystemIncludes) {
  write("src/util/ids.hpp", "#pragma once\n#include <cstdint>\n");
  write("src/radio/medium.hpp", "#pragma once\n#include \"util/ids.hpp\"\n");
  write("src/net/ctp.hpp", "#pragma once\n#include \"radio/medium.hpp\"\n");
  EXPECT_TRUE(check_layering(opts_).empty());
}

TEST_F(LintSemanticTest, LayeringFlagsDirectoryAbsentFromSpec) {
  write("src/newlayer/x.hpp", "#pragma once\n");
  const auto findings = check_layering(opts_);
  ASSERT_EQ(count_rule(findings, "layering"), 1u);
  EXPECT_NE(findings[0].message.find("newlayer"), std::string::npos);
}

// --- wire-format ------------------------------------------------------------

TEST_F(LintSemanticTest, WireFormatFlagsSizePinMismatch) {
  write("src/radio/packet.hpp",
        "#pragma once\n"
        "inline constexpr std::size_t kPingBytes = 4;\n"
        "struct Ping {\n"
        "  std::uint8_t a = 0;\n"
        "  std::uint16_t b = 0;\n"  // 3 bytes declared, 4 documented
        "};\n");
  opts_.serde.clear();
  const auto findings = check_wire_format(opts_);
  ASSERT_EQ(count_rule(findings, "wire-format"), 1u);
  EXPECT_NE(findings[0].message.find("kPingBytes"), std::string::npos);
}

TEST_F(LintSemanticTest, WireFormatQuietWhenPinMatches) {
  write("src/radio/packet.hpp",
        "#pragma once\n"
        "inline constexpr std::size_t kPingBytes = 3;\n"
        "struct Ping {\n"
        "  std::uint8_t a = 0;\n"
        "  std::uint16_t b = 0;\n"
        "};\n");
  opts_.serde.clear();
  EXPECT_TRUE(check_wire_format(opts_).empty());
}

TEST_F(LintSemanticTest, WireFormatFlagsPayloadBudgetOverflow) {
  write("src/radio/packet.hpp",
        "#pragma once\n"
        "inline constexpr std::size_t kMaxPayloadBytes = 10;\n"
        "struct Fat {\n"
        "  std::uint64_t a = 0;\n"
        "  std::uint64_t b = 0;\n"  // 16 > 10
        "};\n");
  opts_.serde.clear();
  const auto findings = check_wire_format(opts_);
  ASSERT_EQ(count_rule(findings, "wire-format"), 1u);
  EXPECT_NE(findings[0].message.find("kMaxPayloadBytes"), std::string::npos);
}

TEST_F(LintSemanticTest, WireFormatFlagsReaderKeyNeverWritten) {
  write("src/stats/codec.cpp",
        "void render(std::string& out) {\n"
        "  out += \"{\\\"t\\\":1,\\\"node\\\":2}\";\n"
        "}\n"
        "void parse(const JsonValue& v) {\n"
        "  (void)v.number_or(\"t\", 0);\n"
        "  (void)v.number_or(\"seq\", 0);\n"  // never written
        "}\n");
  opts_.serde = {{"pair", "src/stats/codec.cpp", "render",
                  "src/stats/codec.cpp", "parse", /*strict=*/false}};
  const auto findings = check_wire_format(opts_);
  ASSERT_EQ(count_rule(findings, "wire-format"), 1u);
  EXPECT_NE(findings[0].message.find("\"seq\""), std::string::npos);
}

TEST_F(LintSemanticTest, WireFormatStrictPairRequiresEveryKeyReadBack) {
  write("src/stats/codec.cpp",
        "void render(std::string& out) {\n"
        "  out += \"{\\\"t\\\":1,\\\"node\\\":2}\";\n"
        "}\n"
        "void parse(const JsonValue& v) {\n"
        "  (void)v.number_or(\"t\", 0);\n"  // "node" written, never read
        "}\n");
  opts_.serde = {{"pair", "src/stats/codec.cpp", "render",
                  "src/stats/codec.cpp", "parse", /*strict=*/true}};
  const auto findings = check_wire_format(opts_);
  ASSERT_EQ(count_rule(findings, "wire-format"), 1u);
  EXPECT_NE(findings[0].message.find("\"node\""), std::string::npos);
}

TEST_F(LintSemanticTest, WireFormatQuietOnSymmetricStrictPair) {
  write("src/stats/codec.cpp",
        "void render(std::string& out) {\n"
        "  out += \"{\\\"t\\\":1,\\\"node\\\":2}\";\n"
        "}\n"
        "void parse(const JsonValue& v) {\n"
        "  (void)v.number_or(\"t\", 0);\n"
        "  (void)v.number_or(\"node\", 0);\n"
        "}\n");
  opts_.serde = {{"pair", "src/stats/codec.cpp", "render",
                  "src/stats/codec.cpp", "parse", /*strict=*/true}};
  EXPECT_TRUE(check_wire_format(opts_).empty());
}

// --- code-arith -------------------------------------------------------------

TEST_F(LintSemanticTest, CodeArithFlagsDiscardedAppendOutsidePathCode) {
  write("src/net/use.cpp",
        "void f() {\n"
        "  BitString code;\n"
        "  code.append_bits(3u, 2u);\n"  // unguarded
        "}\n");
  const auto findings = check_code_arith(opts_);
  ASSERT_EQ(count_rule(findings, "code-arith"), 1u);
  EXPECT_EQ(findings[0].file, "src/net/use.cpp");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST_F(LintSemanticTest, CodeArithQuietWhenResultConsumed) {
  write("src/net/use.cpp",
        "void f() {\n"
        "  BitString code;\n"
        "  bool ok = code.append_bits(3u, 2u);\n"
        "  if (!code.push_back(true)) return;\n"
        "  (void)ok;\n"
        "}\n");
  EXPECT_TRUE(check_code_arith(opts_).empty());
}

TEST_F(LintSemanticTest, CodeArithIgnoresExemptFilesAndOtherTypes) {
  // path_code.cpp owns the arithmetic: exempt even when discarding.
  write("src/core/path_code.cpp",
        "void g() {\n"
        "  BitString code;\n"
        "  code.append_bits(1u, 1u);\n"
        "}\n");
  // std::vector push_back is not a BitString: no finding.
  write("src/net/other.cpp",
        "void h() {\n"
        "  std::vector<int> q;\n"
        "  q.push_back(1);\n"
        "}\n");
  EXPECT_TRUE(check_code_arith(opts_).empty());
}

TEST_F(LintSemanticTest, CodeArithTracksBitStringStructFields) {
  write("src/radio/packet.hpp",
        "#pragma once\n"
        "struct ControlPacket {\n"
        "  BitString dest_code;\n"
        "};\n");
  write("src/net/use.cpp",
        "void f(ControlPacket& p) {\n"
        "  p.dest_code.append_bits(3u, 2u);\n"
        "}\n");
  const auto findings = check_code_arith(opts_);
  ASSERT_EQ(count_rule(findings, "code-arith"), 1u);
  EXPECT_EQ(findings[0].file, "src/net/use.cpp");
}

// --- registry / dispatch ----------------------------------------------------

TEST(RuleRegistryTest, CoversAllEightRulesAndDispatches) {
  const auto& rules = rule_registry();
  ASSERT_EQ(rules.size(), 8u);
  Options opts;
  opts.root = ::testing::TempDir();
  for (const RuleInfo& r : rules) {
    EXPECT_TRUE(run_rule(r.name, opts).has_value()) << r.name;
  }
  EXPECT_FALSE(run_rule("no-such-rule", opts).has_value());
}

}  // namespace
}  // namespace telea::lint
