#include <gtest/gtest.h>

#include "bench_compare/compare.hpp"

namespace telea::benchcmp {
namespace {

// A minimal TextTable::render_json document, the format the bench binaries
// emit into bench_results/.
constexpr const char* kBaselineJson = R"({
  "name": "fig10_latency",
  "headers": ["protocol", "median latency s", "p90 s", "delivery"],
  "rows": [
    {"protocol": "tele", "median latency s": 2.0, "p90 s": 4.0,
     "delivery": 0.99},
    {"protocol": "re-tele", "median latency s": 2.5, "p90 s": 5.0,
     "delivery": 0.98}
  ]
})";

Table parse_or_die(const char* text) {
  const auto table = parse_table_json(text);
  EXPECT_TRUE(table.has_value()) << text;
  return table.value_or(Table{});
}

TEST(BenchCompare, ParsesTableJson) {
  const Table t = parse_or_die(kBaselineJson);
  EXPECT_EQ(t.name, "fig10_latency");
  ASSERT_EQ(t.headers.size(), 4u);
  ASSERT_EQ(t.row_labels.size(), 2u);
  EXPECT_EQ(t.row_labels[0], "tele");
  EXPECT_EQ(t.row_labels[1], "re-tele");
  EXPECT_DOUBLE_EQ(t.values[0][1], 2.0);
  EXPECT_DOUBLE_EQ(t.values[1][2], 5.0);

  EXPECT_FALSE(parse_table_json("not json").has_value());
  EXPECT_FALSE(parse_table_json("{\"name\": \"x\"}").has_value());
}

TEST(BenchCompare, LowerIsBetterMatchesGateColumns) {
  EXPECT_TRUE(lower_is_better("median latency s"));
  EXPECT_TRUE(lower_is_better("P90 s"));
  EXPECT_TRUE(lower_is_better("duty %"));
  EXPECT_TRUE(lower_is_better("tx per command"));
  EXPECT_FALSE(lower_is_better("delivery"));
  EXPECT_FALSE(lower_is_better("protocol"));
}

TEST(BenchCompare, FlagsRegressionsBeyondTolerance) {
  const Table baseline = parse_or_die(kBaselineJson);
  Table current = baseline;
  current.values[0][1] = 2.5;   // +25% median latency: regression
  current.values[1][2] = 5.3;   // +6% p90: inside the 10% tolerance
  current.values[0][3] = 0.50;  // delivery is not lower-is-better: ignored

  CompareReport report;
  compare_tables(baseline, current, "fig10_latency", CompareOptions{}, report);
  EXPECT_TRUE(report.errors.empty());
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].row, "tele");
  EXPECT_EQ(report.regressions[0].column, "median latency s");
  EXPECT_NEAR(report.regressions[0].change, 0.25, 1e-9);
  EXPECT_FALSE(report.ok());

  const std::string rendered = render_report(report, CompareOptions{});
  EXPECT_NE(rendered.find("REGRESSION"), std::string::npos);
  EXPECT_NE(rendered.find("median latency s"), std::string::npos);
}

TEST(BenchCompare, ReportsImprovementsWithoutFailing) {
  const Table baseline = parse_or_die(kBaselineJson);
  Table current = baseline;
  current.values[0][1] = 1.0;  // -50% latency

  CompareReport report;
  compare_tables(baseline, current, "f", CompareOptions{}, report);
  EXPECT_TRUE(report.regressions.empty());
  ASSERT_EQ(report.improvements.size(), 1u);
  EXPECT_TRUE(report.ok());
}

TEST(BenchCompare, MissingRowOrColumnIsAnError) {
  const Table baseline = parse_or_die(kBaselineJson);

  Table dropped_row = baseline;
  dropped_row.row_labels.pop_back();
  dropped_row.values.pop_back();
  CompareReport report;
  compare_tables(baseline, dropped_row, "f", CompareOptions{}, report);
  EXPECT_FALSE(report.errors.empty());
  EXPECT_FALSE(report.ok());

  Table renamed_col = baseline;
  renamed_col.headers[1] = "median latency ms";
  CompareReport report2;
  compare_tables(baseline, renamed_col, "f", CompareOptions{}, report2);
  // Removing a gated column is one table-level error, not one per row.
  ASSERT_EQ(report2.errors.size(), 1u);
  EXPECT_NE(report2.errors[0].find("gated column 'median latency s'"),
            std::string::npos);
}

TEST(BenchCompare, AddedColumnsAreNotesNotErrors) {
  const Table baseline = parse_or_die(kBaselineJson);
  Table current = baseline;
  current.headers.push_back("alerts fired");  // non-gated addition
  current.headers.push_back("p99 s");         // gated-once-baselined addition
  for (auto& row : current.values) {
    row.push_back(1.0);
    row.push_back(9.0);
  }

  CompareReport report;
  compare_tables(baseline, current, "f", CompareOptions{}, report);
  EXPECT_TRUE(report.ok()) << render_report(report, CompareOptions{});
  ASSERT_EQ(report.notes.size(), 2u);
  EXPECT_NE(report.notes[0].find("new column 'alerts fired'"),
            std::string::npos);
  EXPECT_NE(report.notes[1].find("refresh baselines"), std::string::npos);

  const std::string rendered = render_report(report, CompareOptions{});
  EXPECT_NE(rendered.find("note       f: new column"), std::string::npos);
  EXPECT_NE(rendered.find("2 note(s)"), std::string::npos);
}

TEST(BenchCompare, RemovedNonGatedColumnIsANote) {
  Table baseline = parse_or_die(kBaselineJson);
  Table current = baseline;
  // Drop the non-gated "delivery" column from the current results.
  current.headers.pop_back();
  for (auto& row : current.values) row.pop_back();

  CompareReport report;
  compare_tables(baseline, current, "f", CompareOptions{}, report);
  EXPECT_TRUE(report.ok()) << render_report(report, CompareOptions{});
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("column 'delivery' removed"),
            std::string::npos);
}

TEST(BenchCompare, WiderToleranceAcceptsTheSameDelta) {
  const Table baseline = parse_or_die(kBaselineJson);
  Table current = baseline;
  current.values[0][1] = 2.5;  // +25%

  CompareOptions wide;
  wide.tolerance = 0.30;
  CompareReport report;
  compare_tables(baseline, current, "f", wide, report);
  EXPECT_TRUE(report.ok()) << render_report(report, wide);
}

}  // namespace
}  // namespace telea::benchcmp
