// Unit tests for telea_lint (tools/telea_lint): the stripper and enum parser
// on tricky inputs, then each rule family against a fabricated mini-tree —
// once seeded with a violation (rule fires, right file/line) and once clean.
#include "telea_lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace telea::lint {
namespace {

namespace fs = std::filesystem;

class LintTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One directory per test case: ctest runs each discovered case as its
    // own process, possibly in parallel — a shared tree would let one case
    // remove_all another's files mid-scan.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) /
            (std::string("telea_lint_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << text;
  }

  fs::path root_;
};

// --- stripper ---------------------------------------------------------------

TEST(StripTest, RemovesCommentsAndLiteralContentsKeepsNewlines) {
  const std::string src =
      "int a; // rand()\n"
      "/* time(\n"
      "   nullptr) */ int b;\n"
      "const char* s = \"rand()\";\n"
      "char c = 'r';\n";
  const std::string out = strip_comments_and_strings(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Quote characters survive (only contents are blanked) so string
  // boundaries remain visible to downstream scans.
  EXPECT_NE(out.find('"'), std::string::npos);
}

TEST(StripTest, HandlesEscapedQuotesInsideLiterals) {
  const std::string out =
      strip_comments_and_strings("auto s = \"a\\\"rand()\\\"b\"; int x;");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
}

// --- enum parser ------------------------------------------------------------

TEST(ParseEnumeratorsTest, CollectsNamesSkipsInitializersAndComments) {
  const std::string header =
      "enum class Color : std::uint8_t {\n"
      "  kRed,            // warm\n"
      "  kGreen = 4,\n"
      "  kBlue,\n"
      "};\n"
      "enum class Other { kOther };\n";
  const auto names = parse_enumerators(header, "Color");
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "kRed");
  EXPECT_EQ(names[1], "kGreen");
  EXPECT_EQ(names[2], "kBlue");
  EXPECT_TRUE(parse_enumerators(header, "Missing").empty());
  const auto other = parse_enumerators(header, "Other");
  ASSERT_EQ(other.size(), 1u);
  EXPECT_EQ(other[0], "kOther");
}

// --- enum-string rule -------------------------------------------------------

namespace {

const char* kColorHeader =
    "enum class Color : std::uint8_t {\n"
    "  kRed,\n"
    "  kGreen,\n"
    "  kBlue,\n"
    "};\n";

std::string color_source(bool case_for_blue, const std::string& loop_bound) {
  std::string src =
      "const char* color_name(Color c) {\n"
      "  switch (c) {\n"
      "    case Color::kRed: return \"red\";\n"
      "    case Color::kGreen: return \"green\";\n";
  if (case_for_blue) src += "    case Color::kBlue: return \"blue\";\n";
  src +=
      "  }\n"
      "  return \"?\";\n"
      "}\n"
      "std::optional<Color> color_from_name(std::string_view n) {\n"
      "  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(" +
      loop_bound +
      "); ++i) {\n"
      "    if (n == color_name(static_cast<Color>(i))) return "
      "static_cast<Color>(i);\n"
      "  }\n"
      "  return std::nullopt;\n"
      "}\n";
  return src;
}

}  // namespace

TEST_F(LintTreeTest, EnumStringRuleFiresOnMissingCaseAndStaleLoopBound) {
  Options opts;
  opts.root = root_;
  opts.enums = {{"Color", "src/color.hpp", "src/color.cpp", "color_name",
                 "color_from_name"}};
  write("src/color.hpp", kColorHeader);

  write("src/color.cpp", color_source(true, "Color::kBlue"));
  EXPECT_TRUE(check_enum_strings(opts).empty());

  // Missing switch case for the newest enumerator.
  write("src/color.cpp", color_source(false, "Color::kBlue"));
  auto findings = check_enum_strings(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "enum-string");
  EXPECT_EQ(findings[0].file, "src/color.cpp");
  EXPECT_NE(findings[0].message.find("kBlue"), std::string::npos);

  // Probe loop still bounded on the old last enumerator.
  write("src/color.cpp", color_source(true, "Color::kGreen"));
  findings = check_enum_strings(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("color_from_name"), std::string::npos);
}

TEST_F(LintTreeTest, EnumWithoutFromNameFnSkipsTheLoopCheck) {
  Options opts;
  opts.root = root_;
  opts.enums = {{"Color", "src/color.hpp", "src/color.cpp", "color_name",
                 /*from_name_fn=*/""}};
  write("src/color.hpp", kColorHeader);
  write("src/color.cpp",
        "const char* color_name(Color c) {\n"
        "  switch (c) {\n"
        "    case Color::kRed: return \"red\";\n"
        "    case Color::kGreen: return \"green\";\n"
        "    case Color::kBlue: return \"blue\";\n"
        "  }\n"
        "  return \"?\";\n"
        "}\n");
  EXPECT_TRUE(check_enum_strings(opts).empty());
}

// --- metric-docs rule -------------------------------------------------------

TEST_F(LintTreeTest, MetricDocsRuleFiresOnUndocumentedMetric) {
  Options opts;
  opts.root = root_;
  opts.enums.clear();
  write("src/stats.cpp",
        "void f(R& r) {\n"
        "  r.describe(\"telea_documented_total\", \"...\");\n"
        "  r.counter(\"telea_undocumented_total\", {});\n"
        "}\n");
  write("docs/OBSERVABILITY.md", "- `telea_documented_total` — a counter\n");

  const auto findings = check_metric_docs(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-docs");
  EXPECT_EQ(findings[0].file, "src/stats.cpp");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("telea_undocumented_total"),
            std::string::npos);

  write("docs/OBSERVABILITY.md",
        "- `telea_documented_total` — a counter\n"
        "- `telea_undocumented_total` — now documented\n");
  EXPECT_TRUE(check_metric_docs(opts).empty());
}

// --- trace-docs rule --------------------------------------------------------

namespace {

const char* kTraceHeader =
    "enum class TraceEvent : std::uint8_t {\n"
    "  kTransmit,\n"
    "  kKill,\n"
    "  kRevive,\n"
    "};\n";

const char* kTraceSource =
    "const char* trace_event_name(TraceEvent e) {\n"
    "  switch (e) {\n"
    "    case TraceEvent::kTransmit: return \"transmit\";\n"
    "    case TraceEvent::kKill: return \"kill\";\n"
    "    case TraceEvent::kRevive: return \"revive\";\n"
    "  }\n"
    "  return \"?\";\n"
    "}\n";

const char* kTraceDocClean =
    "Event taxonomy:\n"
    "\n"
    "| event             | `a` | emitted by |\n"
    "|-------------------|-----|------------|\n"
    "| `transmit`        | x   | phy        |\n"
    "| `kill` / `revive` | —   | faults     |\n";

}  // namespace

TEST_F(LintTreeTest, TraceDocsRuleAcceptsAMatchingTable) {
  Options opts;
  opts.root = root_;
  write("src/stats/trace.hpp", kTraceHeader);
  write("src/stats/trace.cpp", kTraceSource);
  write("docs/OBSERVABILITY.md", kTraceDocClean);
  EXPECT_TRUE(check_trace_docs(opts).empty());
}

TEST_F(LintTreeTest, TraceDocsRuleFiresOnUndocumentedEvent) {
  Options opts;
  opts.root = root_;
  // A new enumerator + name string ships without a doc table row.
  write("src/stats/trace.hpp",
        "enum class TraceEvent : std::uint8_t {\n"
        "  kTransmit,\n"
        "  kKill,\n"
        "  kRevive,\n"
        "  kReboot,\n"
        "};\n");
  write("src/stats/trace.cpp",
        std::string(kTraceSource) +
            "// appended name mapping\n"
            "const char* extra(TraceEvent e) {\n"
            "  switch (e) {\n"
            "    case TraceEvent::kReboot: return \"reboot\";\n"
            "  }\n"
            "  return \"?\";\n"
            "}\n");
  write("docs/OBSERVABILITY.md", kTraceDocClean);

  const auto findings = check_trace_docs(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "trace-docs");
  EXPECT_EQ(findings[0].file, "src/stats/trace.hpp");
  EXPECT_EQ(findings[0].line, 5u);  // kReboot's declaration line
  EXPECT_NE(findings[0].message.find("reboot"), std::string::npos);
}

TEST_F(LintTreeTest, TraceDocsRuleFiresOnStaleDocRow) {
  Options opts;
  opts.root = root_;
  write("src/stats/trace.hpp", kTraceHeader);
  write("src/stats/trace.cpp", kTraceSource);
  write("docs/OBSERVABILITY.md",
        std::string(kTraceDocClean) + "| `vanished_event`  | —   | nobody |\n");

  const auto findings = check_trace_docs(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "trace-docs");
  EXPECT_EQ(findings[0].file, "docs/OBSERVABILITY.md");
  EXPECT_EQ(findings[0].line, 7u);  // the appended row
  EXPECT_NE(findings[0].message.find("vanished_event"), std::string::npos);
  EXPECT_NE(findings[0].message.find("stale"), std::string::npos);
}

TEST_F(LintTreeTest, TraceDocsRuleReportsAMissingTable) {
  Options opts;
  opts.root = root_;
  write("src/stats/trace.hpp", kTraceHeader);
  write("src/stats/trace.cpp", kTraceSource);
  write("docs/OBSERVABILITY.md", "No table here.\n");
  const auto findings = check_trace_docs(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("event table"), std::string::npos);
}

// --- rng rule ---------------------------------------------------------------

TEST_F(LintTreeTest, RngRuleBansUnseededEntropyOutsideTheExemptFiles) {
  Options opts;
  opts.root = root_;
  opts.enums.clear();
  write("src/util/rng.cpp", "std::random_device rd;  // the one sanctioned use\n");
  write("src/bad.cpp",
        "int f() {\n"
        "  return rand() % 7;\n"
        "}\n");

  const auto findings = check_rng_discipline(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng");
  EXPECT_EQ(findings[0].file, "src/bad.cpp");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST_F(LintTreeTest, RngRuleIgnoresMembersCommentsAndNonCalls) {
  Options opts;
  opts.root = root_;
  opts.enums.clear();
  write("src/ok.cpp",
        "// rand() in a comment is fine\n"
        "const char* s = \"time(nullptr)\";\n"
        "void g(Clock& c) { c.time(); }        // member access\n"
        "int run_time(int t) { return t; }     // substring, not the token\n"
        "int x = my::rand();                   // qualified elsewhere\n");
  EXPECT_TRUE(check_rng_discipline(opts).empty());
}

// --- field-width rule -------------------------------------------------------

TEST_F(LintTreeTest, FieldWidthRuleFlagsRawNarrowingCastsInPacketCode) {
  Options opts;
  opts.root = root_;
  opts.enums.clear();
  write("src/proto/bad.cpp",
        "void f(Packet& p, std::size_t n) {\n"
        "  p.hops = static_cast<std::uint8_t>(n);\n"
        "}\n");
  // Outside the packet-facing dirs the cast is allowed.
  write("src/harness/ok.cpp",
        "int g(std::size_t n) { return static_cast<std::uint8_t>(n); }\n");

  const auto findings = check_field_widths(opts);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "field-width");
  EXPECT_EQ(findings[0].file, "src/proto/bad.cpp");
  EXPECT_EQ(findings[0].line, 2u);

  write("src/proto/bad.cpp",
        "void f(Packet& p, std::size_t n) {\n"
        "  p.hops = field::u8(n);\n"
        "}\n");
  EXPECT_TRUE(check_field_widths(opts).empty());
}

// --- run_all against the real repository ------------------------------------

TEST(LintRepoTest, CommittedTreeIsClean) {
  // The build runs from <root>/build; the driver sets TELEA_LINT_ROOT when
  // the layout differs.
  const char* env = std::getenv("TELEA_LINT_ROOT");
  Options opts;
  opts.root = env != nullptr ? fs::path(env) : fs::path(TELEA_SOURCE_ROOT);
  if (!fs::exists(opts.root / "src" / "stats" / "trace.hpp")) {
    GTEST_SKIP() << "repository root not found";
  }
  const auto findings = run_all(opts);
  for (const auto& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace telea::lint
