// Parameter sweeps over the LPL wake interval: the protocol stack must work
// across duty-cycling regimes, with idle duty scaling inversely with the
// interval and unicast latency scaling with it.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

class WakeIntervalSweep : public ::testing::TestWithParam<SimTime> {};

TEST_P(WakeIntervalSweep, StackConvergesAndDelivers) {
  NetworkConfig cfg;
  cfg.topology = make_line(4, 22.0);
  cfg.seed = 7;
  cfg.protocol = ControlProtocol::kReTele;
  cfg.lpl.wake_interval = GetParam();
  Network net(cfg);
  net.start();
  net.run_for(6_min);
  ASSERT_TRUE(net.node(3).tele()->addressing().has_code())
      << "wake " << to_millis(GetParam()) << " ms";

  bool delivered = false;
  net.node(3).tele()->on_control_delivered =
      [&delivered](const msg::ControlPacket&, bool) { delivered = true; };
  net.sink().tele()->send_control(
      3, net.node(3).tele()->addressing().code(), 1);
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

TEST_P(WakeIntervalSweep, IdleDutyScalesInversely) {
  NetworkConfig cfg;
  cfg.topology = make_line(2, 500.0);  // out of range: pure idle listening
  cfg.seed = 8;
  cfg.protocol = ControlProtocol::kDrip;
  cfg.lpl.wake_interval = GetParam();
  Network net(cfg);
  net.start();
  net.run_for(2_min);
  net.reset_accounting();
  net.run_for(5_min);
  const double duty = net.average_duty_cycle();
  const double expected =
      to_millis(cfg.lpl.cca_window) / to_millis(GetParam());
  // The wake window plus the multi-sample sleep check: within ~2.5x of the
  // ideal CCA/interval ratio, and always below 20%.
  EXPECT_GT(duty, expected * 0.8);
  EXPECT_LT(duty, expected * 2.5 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Intervals, WakeIntervalSweep,
                         ::testing::Values(256 * kMillisecond,
                                           512 * kMillisecond,
                                           1024 * kMillisecond));

TEST(WakeIntervalEffect, LatencyGrowsWithInterval) {
  auto latency_for = [](SimTime wake) {
    NetworkConfig cfg;
    cfg.topology = make_line(4, 22.0);
    cfg.seed = 9;
    cfg.protocol = ControlProtocol::kReTele;
    cfg.lpl.wake_interval = wake;
    Network net(cfg);
    net.start();
    net.run_for(8_min);
    SimTime sum = 0;
    int got = 0;
    for (int i = 0; i < 5; ++i) {
      SimTime at = 0;
      bool ok = false;
      net.node(3).tele()->on_control_delivered =
          [&](const msg::ControlPacket&, bool) {
            ok = true;
            at = net.sim().now();
          };
      const SimTime t0 = net.sim().now();
      net.sink().tele()->send_control(
          3, net.node(3).tele()->addressing().code(), 1);
      net.run_for(30_s);
      if (ok) {
        sum += at - t0;
        ++got;
      }
    }
    return got > 0 ? sum / static_cast<SimTime>(got) : SimTime{0};
  };
  const SimTime fast = latency_for(128 * kMillisecond);
  const SimTime slow = latency_for(1024 * kMillisecond);
  ASSERT_GT(fast, 0u);
  ASSERT_GT(slow, 0u);
  EXPECT_GT(slow, fast);  // per-hop rendezvous scales with the interval
}

}  // namespace
}  // namespace telea
