#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/lpl.hpp"

namespace telea {
namespace {

using namespace time_literals;

class RecordingHandler final : public FrameHandler {
 public:
  AckDecision decision = AckDecision::kAcceptAndAck;
  int delivered = 0;
  int duplicates = 0;

  AckDecision handle_frame(const Frame&, bool for_me, double) override {
    ++delivered;
    return for_me ? decision : AckDecision::kIgnore;
  }
  void on_duplicate_frame(const Frame&, bool) override { ++duplicates; }
};

CpmNoiseModel quiet_noise() {
  std::vector<std::int8_t> trace(200, -98);
  return CpmNoiseModel(trace, 2);
}

class LplCancelTest : public ::testing::Test {
 protected:
  void build(int nodes, double spacing) {
    std::vector<Position> pos;
    for (int i = 0; i < nodes; ++i) pos.push_back({i * spacing, 0.0});
    PathLossConfig pl;
    pl.exponent = 4.0;
    pl.loss_at_reference_db = 40.0;
    pl.shadowing_sigma_db = 0.0;
    gains_ = std::make_unique<LinkGainTable>(pos, pl, 1);
    noise_ = std::make_unique<CpmNoiseModel>(quiet_noise());
    MediumConfig cfg;
    cfg.tx_power_dbm = 0.0;
    medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_, cfg, 7);
    for (int i = 0; i < nodes; ++i) {
      handlers_.push_back(std::make_unique<RecordingHandler>());
      macs_.push_back(std::make_unique<LplMac>(
          sim_, *medium_, static_cast<NodeId>(i), LplConfig{}, 900 + i));
      macs_.back()->set_handler(*handlers_.back());
      macs_.back()->start();
    }
  }

  Frame data_to(NodeId dst) {
    Frame f;
    f.dst = dst;
    f.payload = msg::CtpData{};
    return f;
  }

  Simulator sim_;
  std::unique_ptr<LinkGainTable> gains_;
  std::unique_ptr<CpmNoiseModel> noise_;
  std::unique_ptr<RadioMedium> medium_;
  std::vector<std::unique_ptr<RecordingHandler>> handlers_;
  std::vector<std::unique_ptr<LplMac>> macs_;
};

TEST_F(LplCancelTest, CancelQueuedSendDropsIt) {
  build(2, 5.0);
  int done_count = 0;
  bool first_success = false;
  macs_[0]->send(data_to(1), [&](const SendResult& r) {
    ++done_count;
    first_success = r.success;
  });
  const auto token = macs_[0]->send_cancellable(
      data_to(1), [&](const SendResult& r) {
        ++done_count;
        EXPECT_FALSE(r.success);  // cancelled while queued
      });
  ASSERT_TRUE(token.has_value());
  macs_[0]->cancel_send(*token);
  sim_.run_until(3_s);
  EXPECT_EQ(done_count, 2);
  EXPECT_TRUE(first_success);
  // Only the first frame was ever delivered.
  EXPECT_EQ(handlers_[1]->delivered, 1);
}

TEST_F(LplCancelTest, CancelInFlightStopsCopies) {
  build(2, 500.0);  // receiver out of range: op would run a full sweep
  bool reported = false;
  const auto token = macs_[0]->send_cancellable(
      data_to(1), [&](const SendResult& r) {
        reported = true;
        EXPECT_FALSE(r.success);
      });
  ASSERT_TRUE(token.has_value());
  sim_.schedule_in(50 * kMillisecond, [&] { macs_[0]->cancel_send(*token); });
  sim_.run_until(2_s);
  EXPECT_TRUE(reported);
  // Far fewer copies than the ~240 a full sweep would take.
  EXPECT_LT(macs_[0]->copies_sent(), 40u);
}

TEST_F(LplCancelTest, CancelUnknownTokenIsNoop) {
  build(2, 5.0);
  macs_[0]->cancel_send(12345);
  bool ok = false;
  macs_[0]->send(data_to(1), [&](const SendResult& r) { ok = r.success; });
  sim_.run_until(3_s);
  EXPECT_TRUE(ok);
}

TEST_F(LplCancelTest, DuplicateHookFiresOnRepeatedCopies) {
  build(2, 5.0);
  // Receiver accepts but never acks -> sender repeats through the whole
  // window -> receiver sees many duplicates.
  handlers_[1]->decision = AckDecision::kAccept;
  Frame f;
  f.dst = kBroadcastNode;
  msg::ControlPacket cp;
  cp.mode = msg::ControlMode::kOpportunistic;  // anycast: wants ack
  f.payload = cp;
  macs_[0]->send(std::move(f), nullptr);
  sim_.run_until(2_s);
  EXPECT_EQ(handlers_[1]->delivered, 1);
  EXPECT_GT(handlers_[1]->duplicates, 5);
}

TEST_F(LplCancelTest, StoppedMacRejectsSends) {
  build(2, 5.0);
  macs_[0]->stop();
  EXPECT_FALSE(macs_[0]->send_cancellable(data_to(1), nullptr).has_value());
}

}  // namespace
}  // namespace telea
