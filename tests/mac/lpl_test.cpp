#include "mac/lpl.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace telea {
namespace {

using namespace time_literals;

/// Scripted upper layer.
class FakeHandler final : public FrameHandler {
 public:
  AckDecision decision_for_me = AckDecision::kAcceptAndAck;
  AckDecision decision_overheard = AckDecision::kIgnore;
  std::vector<Frame> delivered;
  std::vector<bool> for_me_flags;

  AckDecision handle_frame(const Frame& frame, bool for_me,
                           double /*rssi*/) override {
    delivered.push_back(frame);
    for_me_flags.push_back(for_me);
    return for_me ? decision_for_me : decision_overheard;
  }
};

CpmNoiseModel quiet_noise() {
  std::vector<std::int8_t> trace(200, -98);
  return CpmNoiseModel(trace, 2);
}

class LplTest : public ::testing::Test {
 protected:
  void build(int nodes, double spacing, LplConfig lpl = {}) {
    std::vector<Position> pos;
    for (int i = 0; i < nodes; ++i) pos.push_back({i * spacing, 0.0});
    PathLossConfig pl;
    pl.exponent = 4.0;
    pl.loss_at_reference_db = 40.0;
    pl.shadowing_sigma_db = 0.0;
    gains_ = std::make_unique<LinkGainTable>(pos, pl, 1);
    noise_ = std::make_unique<CpmNoiseModel>(quiet_noise());
    MediumConfig cfg;
    cfg.tx_power_dbm = 0.0;
    medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_, cfg, 7);
    for (int i = 0; i < nodes; ++i) {
      handlers_.push_back(std::make_unique<FakeHandler>());
      macs_.push_back(std::make_unique<LplMac>(
          sim_, *medium_, static_cast<NodeId>(i), lpl, 1000 + i));
      macs_.back()->set_handler(*handlers_.back());
      macs_.back()->start();
    }
  }

  Frame data_to(NodeId dst) {
    Frame f;
    f.dst = dst;
    f.payload = msg::CtpData{};
    return f;
  }

  Frame broadcast() {
    Frame f;
    f.dst = kBroadcastNode;
    f.payload = msg::CtpBeacon{};
    return f;
  }

  Simulator sim_;
  std::unique_ptr<LinkGainTable> gains_;
  std::unique_ptr<CpmNoiseModel> noise_;
  std::unique_ptr<RadioMedium> medium_;
  std::vector<std::unique_ptr<FakeHandler>> handlers_;
  std::vector<std::unique_ptr<LplMac>> macs_;
};

TEST_F(LplTest, UnicastDeliveredAcrossSleepSchedule) {
  build(2, 5.0);
  bool done = false;
  SendResult result;
  macs_[0]->send(data_to(1), [&](const SendResult& r) {
    done = true;
    result = r;
  });
  sim_.run_until(3_s);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.acker, 1);
  EXPECT_GE(result.copies, 1u);
  ASSERT_EQ(handlers_[1]->delivered.size(), 1u);
  EXPECT_TRUE(handlers_[1]->for_me_flags[0]);
}

TEST_F(LplTest, UnicastCopiesBoundedByWakeInterval) {
  build(2, 5.0);
  SendResult result;
  macs_[0]->send(data_to(1), [&](const SendResult& r) { result = r; });
  sim_.run_until(3_s);
  // The receiver wakes within one interval; the sender must never need much
  // more than a full interval's worth of copies (~512ms / ~2.5ms each).
  EXPECT_LE(result.copies, 260u);
}

TEST_F(LplTest, UnicastToDeadNodeFails) {
  build(2, 500.0);  // out of range
  bool done = false;
  SendResult result;
  macs_[0]->send(data_to(1), [&](const SendResult& r) {
    done = true;
    result = r;
  });
  sim_.run_until(3_s);
  ASSERT_TRUE(done);
  EXPECT_FALSE(result.success);
  EXPECT_GT(result.copies, 100u);  // kept trying for a full sweep
}

TEST_F(LplTest, BroadcastReachesAllNeighbors) {
  build(4, 4.0);
  bool done = false;
  macs_[0]->send(broadcast(), [&](const SendResult& r) {
    done = true;
    EXPECT_TRUE(r.success);
  });
  sim_.run_until(3_s);
  EXPECT_TRUE(done);
  // Every node wakes at least once during the full-interval broadcast and
  // hears a copy; the MAC delivers exactly one per node.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(handlers_[static_cast<size_t>(i)]->delivered.size(), 1u)
        << "node " << i;
  }
}

TEST_F(LplTest, DuplicateCopiesSuppressedButReAcked) {
  build(2, 5.0);
  // Two sends of distinct frames: receiver sees exactly two deliveries even
  // though dozens of copies were transmitted.
  int completed = 0;
  macs_[0]->send(data_to(1), [&](const SendResult&) { ++completed; });
  macs_[0]->send(data_to(1), [&](const SendResult&) { ++completed; });
  sim_.run_until(5_s);
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(handlers_[1]->delivered.size(), 2u);
}

TEST_F(LplTest, QueueLimitRejectsExcess) {
  LplConfig lpl;
  lpl.send_queue_limit = 2;
  build(2, 5.0, lpl);
  EXPECT_TRUE(macs_[0]->send(data_to(1), nullptr));
  EXPECT_TRUE(macs_[0]->send(data_to(1), nullptr));
  EXPECT_FALSE(macs_[0]->send(data_to(1), nullptr));
}

TEST_F(LplTest, BaselineDutyCycleIsLow) {
  build(2, 5.0);
  // No traffic: duty cycle is just the periodic CCA window.
  sim_.run_until(60_s);
  const double duty = macs_[1]->duty_cycle();
  EXPECT_GT(duty, 0.005);
  EXPECT_LT(duty, 0.08);
}

TEST_F(LplTest, DutyCycleRisesWithTraffic) {
  build(2, 5.0);
  sim_.run_until(10_s);
  const double idle_duty = macs_[1]->duty_cycle();
  for (int i = 0; i < 20; ++i) {
    macs_[0]->send(data_to(1), nullptr);
  }
  sim_.run_until(30_s);
  EXPECT_GT(macs_[0]->duty_cycle(), idle_duty);
}

TEST_F(LplTest, ResetAccountingZeroesCounters) {
  build(2, 5.0);
  macs_[0]->send(data_to(1), nullptr);
  sim_.run_until(2_s);
  EXPECT_GT(macs_[0]->copies_sent(), 0u);
  macs_[0]->reset_accounting();
  EXPECT_EQ(macs_[0]->copies_sent(), 0u);
  EXPECT_EQ(macs_[0]->send_ops(), 0u);
  // Duty cycle restarts from ~0 over a short horizon.
  sim_.run_until(sim_.now() + 10_ms);
  EXPECT_LT(macs_[0]->duty_cycle(), 1.01);
}

TEST_F(LplTest, OverhearingDeliversWithForMeFalse) {
  build(3, 4.0);  // 0 -> 1 unicast; 2 overhears
  macs_[0]->send(data_to(1), nullptr);
  sim_.run_until(3_s);
  bool overheard = false;
  for (std::size_t i = 0; i < handlers_[2]->delivered.size(); ++i) {
    if (!handlers_[2]->for_me_flags[i]) overheard = true;
  }
  EXPECT_TRUE(overheard);
}

TEST_F(LplTest, AnycastClaimedByOverhearer) {
  build(3, 4.0);
  // Handler at node 2 claims anycast control packets even though the frame
  // is link-broadcast.
  handlers_[2]->decision_overheard = AckDecision::kAcceptAndAck;
  handlers_[1]->decision_overheard = AckDecision::kIgnore;
  // Make node 1 never claim (it's asleep-agnostic: just ignore overheard).
  Frame f;
  f.dst = kBroadcastNode;
  msg::ControlPacket cp;
  cp.mode = msg::ControlMode::kOpportunistic;
  f.payload = cp;
  SendResult result;
  bool done = false;
  macs_[0]->send(std::move(f), [&](const SendResult& r) {
    done = true;
    result = r;
  });
  sim_.run_until(3_s);
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.acker, 2);
}

TEST_F(LplTest, SendOpsCounted) {
  build(2, 5.0);
  macs_[0]->send(data_to(1), nullptr);
  macs_[0]->send(broadcast(), nullptr);
  sim_.run_until(5_s);
  EXPECT_EQ(macs_[0]->send_ops(), 2u);
}

TEST_F(LplTest, RadioOnTimeAdvancesWhileAwake) {
  build(1, 1.0);
  sim_.run_until(10_s);
  const SimTime on = macs_[0]->radio_on_time();
  EXPECT_GT(on, 0u);
  EXPECT_LT(on, 10_s);
}

}  // namespace
}  // namespace telea
