// Unit tests for the runtime invariant engine (src/check): every rule in the
// catalog is exercised with fabricated InvariantNodeView snapshots — a
// corrupted path code, a double-allocated sibling position, a forged relay
// claim — and a structurally clean network fires nothing.
#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace telea {
namespace {

PathCode code(const char* bits) {
  return BitString::from_string_unchecked(bits);
}

/// A consistent 4-node snapshot: sink "0" with children 1 ("001") and
/// 2 ("010") in a 2-bit space, node 3 ("00101") a child of 1 (3-bit space).
std::vector<InvariantNodeView> clean_views() {
  std::vector<InvariantNodeView> views(4);

  views[0].id = 0;
  views[0].has_addressing = true;
  views[0].code = code("0");
  views[0].space_bits = 2;
  views[0].children = {{1, 1, code("001"), {}, true},
                       {2, 2, code("010"), {}, true}};
  views[0].ctp_parent = kInvalidNode;

  views[1].id = 1;
  views[1].has_addressing = true;
  views[1].code = code("001");
  views[1].code_parent = 0;
  views[1].space_bits = 3;
  views[1].children = {{3, 1, code("001001"), {}, true}};
  views[1].neighbors = {{0, code("0"), {}, false, 0},
                        {2, code("010"), {}, false, 0}};
  views[1].ctp_parent = 0;

  views[2].id = 2;
  views[2].has_addressing = true;
  views[2].code = code("010");
  views[2].code_parent = 0;
  views[2].ctp_parent = 0;

  views[3].id = 3;
  views[3].has_addressing = true;
  views[3].code = code("001001");
  views[3].code_parent = 1;
  views[3].ctp_parent = 1;

  return views;
}

class InvariantEngineTest : public ::testing::Test {
 protected:
  Simulator sim_;
  InvariantConfig cfg_;
};

TEST_F(InvariantEngineTest, CleanSnapshotFiresNothing) {
  InvariantEngine engine(sim_, cfg_);
  EXPECT_EQ(engine.run_checkpoint(clean_views()), 0u);
  EXPECT_EQ(engine.run_checkpoint(clean_views()), 0u);  // and stays clean
  EXPECT_TRUE(engine.violations().empty());
  EXPECT_EQ(engine.checkpoints_run(), 2u);
}

TEST_F(InvariantEngineTest, CorruptedChildPositionBreaksParentPrefix) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  // Bit-flip corruption on the parent side: the stored position no longer
  // derives the stored code.
  views[0].children[0].position = 3;
  EXPECT_EQ(engine.run_checkpoint(views), 1u);
  ASSERT_EQ(engine.violations().size(), 1u);
  const InvariantViolation& v = engine.violations()[0];
  EXPECT_EQ(v.rule, InvariantRule::kAddrParentPrefix);
  EXPECT_EQ(v.node, 0);
  EXPECT_EQ(v.aux, 1u);  // names the affected child
}

TEST_F(InvariantEngineTest, DoubleAllocatedSiblingPositionIsCaught) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[0].children[1].position = 1;  // collides with child 1
  views[0].children[1].new_code = code("001");
  engine.run_checkpoint(views);
  EXPECT_EQ(engine.violation_count(InvariantRule::kAddrSiblingUnique), 1u);
  EXPECT_EQ(engine.violations()[0].node, 0);
}

TEST_F(InvariantEngineTest, PositionOutsideSpaceViolatesBounds) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[0].children[1].position = 7;  // 2-bit space holds [1, 4)
  engine.run_checkpoint(views);
  EXPECT_GE(engine.violation_count(InvariantRule::kAddrCodeBounds), 1u);
}

TEST_F(InvariantEngineTest, CodeNotExtendingSinkViolatesBounds) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[3].code = code("101");  // first bit must be the sink's 0
  engine.run_checkpoint(views);
  EXPECT_EQ(engine.violation_count(InvariantRule::kAddrCodeBounds), 1u);
  EXPECT_EQ(engine.violations()[0].node, 3);
}

TEST_F(InvariantEngineTest, ChildCodeMismatchGatesOnPersistence) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  // Child-side corruption: node 3's own code matches neither the new nor the
  // old code its allocator holds for it.
  views[3].code = code("001111");
  // First checkpoint: could be an AllocationAck in flight — no violation yet.
  EXPECT_EQ(engine.run_checkpoint(views), 0u);
  // Second consecutive checkpoint with the identical mismatch: corruption.
  EXPECT_EQ(engine.run_checkpoint(views), 1u);
  EXPECT_EQ(engine.violations()[0].rule, InvariantRule::kAddrParentPrefix);
  EXPECT_EQ(engine.violations()[0].node, 3);
}

TEST_F(InvariantEngineTest, RepairedMismatchNeverFires) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[3].code = code("001111");
  engine.run_checkpoint(views);          // transient mismatch...
  engine.run_checkpoint(clean_views());  // ...repaired before the next one
  EXPECT_TRUE(engine.violations().empty());
}

TEST_F(InvariantEngineTest, DeadAllocatorVouchesForNothing) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[3].code = code("001111");  // stale vs node 1's table...
  views[1].alive = false;          // ...but node 1 is down (Sec. III-B6)
  engine.run_checkpoint(views);
  engine.run_checkpoint(views);
  EXPECT_TRUE(engine.violations().empty());
}

TEST_F(InvariantEngineTest, UnreachableLeaseMovingBackwardsIsCaught) {
  InvariantEngine engine(sim_, cfg_);
  sim_.run_until(100 * kSecond);
  auto views = clean_views();
  views[1].neighbors[1].unreachable = true;
  views[1].neighbors[1].unreachable_since = 50 * kSecond;
  EXPECT_EQ(engine.run_checkpoint(views), 0u);
  views[1].neighbors[1].unreachable_since = 20 * kSecond;  // went backwards
  EXPECT_EQ(engine.run_checkpoint(views), 1u);
  EXPECT_EQ(engine.violations()[0].rule, InvariantRule::kTblLeaseMonotone);
  EXPECT_EQ(engine.violations()[0].node, 1);
}

TEST_F(InvariantEngineTest, FutureLeaseTimestampIsCaught) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[1].neighbors[1].unreachable = true;
  views[1].neighbors[1].unreachable_since = 10 * kSecond;  // now is 0
  engine.run_checkpoint(views);
  EXPECT_EQ(engine.violation_count(InvariantRule::kTblLeaseMonotone), 1u);
}

TEST_F(InvariantEngineTest, PersistentCtpLoopIsCaughtTransientIsNot) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[1].ctp_parent = 3;  // 1 -> 3 -> 1
  views[3].ctp_parent = 1;
  EXPECT_EQ(engine.run_checkpoint(views), 0u);  // CTP may be mid-repair
  EXPECT_EQ(engine.run_checkpoint(views), 1u);  // same cycle persisted
  EXPECT_EQ(engine.violations()[0].rule, InvariantRule::kCtpNoLoop);

  engine.clear();
  views[1].ctp_parent = 0;  // repaired: back to the tree
  engine.run_checkpoint(views);
  EXPECT_TRUE(engine.violations().empty());
}

TEST_F(InvariantEngineTest, FrozenLoopFromLinkFaultIsNotAnActiveLoop) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[1].ctp_parent = 3;  // 1 <-> 3, but the pointers are frozen:
  views[3].ctp_parent = 1;  // neither node has heard the other recently
  views[1].ctp_parent_heard = 0;
  views[3].ctp_parent_heard = 0;
  sim_.run_until(30 * kSecond);
  engine.run_checkpoint(views);  // baseline: edges heard at 0 still count
  sim_.run_until(60 * kSecond);
  // Second checkpoint: nothing heard since the previous one (t=30) — the
  // "loop" is stale state frozen by a link fault, not an active route.
  engine.run_checkpoint(views);
  EXPECT_TRUE(engine.violations().empty());

  // Same cycle with beacons actually flowing is a real violation.
  views[1].ctp_parent_heard = sim_.now();
  views[3].ctp_parent_heard = sim_.now();
  engine.run_checkpoint(views);
  views[1].ctp_parent_heard = sim_.now();
  views[3].ctp_parent_heard = sim_.now();
  engine.run_checkpoint(views);
  EXPECT_EQ(engine.violation_count(InvariantRule::kCtpNoLoop), 1u);
}

TEST_F(InvariantEngineTest, CountToInfinityLoopInRepairIsNotStuck) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[1].ctp_parent = 3;
  views[3].ctp_parent = 1;
  // The costs climb between checkpoints: count-to-infinity is tearing the
  // cycle down (each round trips the trickle inconsistency reset until a
  // member crosses max_path_etx10). That is repair in motion, not a bug.
  std::uint16_t c = 100;
  for (int i = 0; i < 4; ++i) {
    views[1].ctp_cost = c;
    views[3].ctp_cost = static_cast<std::uint16_t>(c + 30);
    engine.run_checkpoint(views);
    c = static_cast<std::uint16_t>(c + 60);
  }
  EXPECT_TRUE(engine.violations().empty()) << engine.render_report();

  // The moment the costs freeze, the loop is stuck: two checkpoints later
  // it is a violation.
  engine.run_checkpoint(views);
  engine.run_checkpoint(views);
  EXPECT_EQ(engine.violation_count(InvariantRule::kCtpNoLoop), 1u);
}

TEST_F(InvariantEngineTest, OverflowedAllocatorEntryVouchesForNothing) {
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  // Allocator 1 could not derive a code for child 3 (capacity exhausted):
  // the entry exists but holds empty codes. The child's own (stale) code
  // matching neither is expected, not corruption.
  views[1].children[0].new_code = PathCode{};
  views[1].children[0].old_code = PathCode{};
  engine.run_checkpoint(views);
  engine.run_checkpoint(views);
  EXPECT_EQ(
      engine.violation_count(InvariantRule::kAddrParentPrefix) +
          engine.violation_count(InvariantRule::kAddrSiblingUnique),
      0u)
      << engine.render_report();
}

// --- forwarding claim audit --------------------------------------------------

msg::ControlPacket packet_to(NodeId dest, const char* dest_code,
                             NodeId expected_relay, std::uint8_t expected_len) {
  msg::ControlPacket p;
  p.dest = dest;
  p.dest_code = code(dest_code);
  p.expected_relay = expected_relay;
  p.expected_relay_code_len = expected_len;
  p.seqno = 7;
  return p;
}

TEST_F(InvariantEngineTest, JustifiedClaimsPassTheAudit) {
  InvariantEngine engine(sim_, cfg_);
  engine.start([] { return clean_views(); });
  // Destination 3 ("001001"); sink announced expected relay 1 at len 1.
  const auto p = packet_to(3, "001001", 1, 1);
  // Condition (1): node 1 IS the expected relay.
  engine.on_claim(1, p, TraceReason::kExpectedRelay, false);
  // Condition (2) would be a longer own prefix; condition (3): node 1 also
  // knows child 3 outright. Either way the audit must accept.
  EXPECT_EQ(engine.claims_audited(), 1u);
  EXPECT_TRUE(engine.violations().empty());
}

TEST_F(InvariantEngineTest, ForgedClaimIsUnjustified) {
  InvariantEngine engine(sim_, cfg_);
  engine.start([] { return clean_views(); });
  // Node 2 ("010") is off-path for "001001", has no on-path neighbors and is
  // not the expected relay — claiming is a protocol violation.
  const auto p = packet_to(3, "001001", 1, 3);
  engine.on_claim(2, p, TraceReason::kLongerPrefix, false);
  ASSERT_EQ(engine.violations().size(), 1u);
  const InvariantViolation& v = engine.violations()[0];
  EXPECT_EQ(v.rule, InvariantRule::kFwdClaimJustified);
  EXPECT_EQ(v.node, 2);
  EXPECT_EQ(v.aux, 7u);  // the control seqno
}

TEST_F(InvariantEngineTest, RescueClaimMayMeetTheBarPlainMayNot) {
  InvariantEngine engine(sim_, cfg_);
  // Node 1's own progress toward "001001" is exactly 3 — equal to the bar.
  // Strip its tables so neither condition (1) nor (3) can mask the check.
  auto views = clean_views();
  views[1].children.clear();
  views[1].neighbors.clear();
  engine.start([views] { return views; });
  auto p = packet_to(3, "001001", 9, 3);
  engine.on_claim(1, p, TraceReason::kLongerPrefix, /*rescue=*/true);
  EXPECT_TRUE(engine.violations().empty()) << "rescue uses >=, not >";
  engine.on_claim(1, p, TraceReason::kLongerPrefix, /*rescue=*/false);
  EXPECT_EQ(engine.violation_count(InvariantRule::kFwdClaimJustified), 1u);
  EXPECT_EQ(engine.claims_audited(), 2u);
}

TEST_F(InvariantEngineTest, FailFastThrowsOnFirstViolation) {
  cfg_.fail_fast = true;
  InvariantEngine engine(sim_, cfg_);
  auto views = clean_views();
  views[0].children[1].position = 1;
  views[0].children[1].new_code = code("001");
  EXPECT_THROW(engine.run_checkpoint(views), InvariantViolationError);
  try {
    engine.clear();
    engine.run_checkpoint(views);
  } catch (const InvariantViolationError& e) {
    EXPECT_EQ(e.violation().rule, InvariantRule::kAddrSiblingUnique);
    EXPECT_NE(std::string(e.what()).find("addr.sibling_unique"),
              std::string::npos);
  }
}

// --- delivery dedup + verdict conservation ----------------------------------

TEST_F(InvariantEngineTest, DuplicateFinalDeliveryIsCaught) {
  InvariantEngine engine(sim_, cfg_);
  auto p = packet_to(3, "001001", 1, 1);
  engine.on_final_delivery(3, p, false);
  EXPECT_TRUE(engine.violations().empty());
  engine.on_final_delivery(3, p, false);  // same seqno, no state loss
  EXPECT_EQ(engine.violation_count(InvariantRule::kFwdUniqueDelivery), 1u);
}

TEST_F(InvariantEngineTest, RedeliveryAfterStateLossRebootIsLegal) {
  InvariantEngine engine(sim_, cfg_);
  auto p = packet_to(3, "001001", 1, 1);
  engine.on_final_delivery(3, p, false);
  engine.note_node_reset(3);  // dedup state wiped with the reboot
  engine.on_final_delivery(3, p, false);
  EXPECT_TRUE(engine.violations().empty());
  engine.on_final_delivery(3, p, false);  // but only once per reboot
  EXPECT_EQ(engine.violation_count(InvariantRule::kFwdUniqueDelivery), 1u);
}

TEST_F(InvariantEngineTest, DeliveryAtWrongNodeIsCaught) {
  InvariantEngine engine(sim_, cfg_);
  const auto p = packet_to(3, "001001", 1, 1);
  engine.on_final_delivery(2, p, false);
  ASSERT_EQ(engine.violation_count(InvariantRule::kFwdUniqueDelivery), 1u);
  EXPECT_EQ(engine.violations()[0].node, 2);
}

TEST_F(InvariantEngineTest, CommandLifecycleClosesExactlyOnce) {
  InvariantEngine engine(sim_, cfg_);
  engine.note_command_issued(11);
  engine.note_command_resolved(11);
  EXPECT_TRUE(engine.violations().empty());
  engine.note_command_resolved(11);  // double verdict
  EXPECT_EQ(engine.violation_count(InvariantRule::kFwdVerdictConservation),
            1u);
  engine.note_command_resolved(99);  // verdict without an issue
  EXPECT_EQ(engine.violation_count(InvariantRule::kFwdVerdictConservation),
            2u);
}

TEST_F(InvariantEngineTest, FinalAuditFlagsPendingOnlyWhenAsked) {
  InvariantEngine lax(sim_, cfg_);
  lax.note_command_issued(5);
  EXPECT_EQ(lax.final_audit(), 0u);  // expect_all_resolved defaults off

  cfg_.expect_all_resolved = true;
  InvariantEngine strict(sim_, cfg_);
  strict.note_command_issued(5);
  EXPECT_EQ(strict.final_audit(), 1u);
  EXPECT_EQ(strict.violations()[0].rule,
            InvariantRule::kFwdVerdictConservation);
}

TEST_F(InvariantEngineTest, PeriodicCheckpointsRunOnTheSimClock) {
  cfg_.checkpoint_interval = 30 * kSecond;
  InvariantEngine engine(sim_, cfg_);
  engine.start([] { return clean_views(); });
  sim_.run_until(95 * kSecond);
  EXPECT_EQ(engine.checkpoints_run(), 3u);
  engine.stop();
  sim_.run_until(200 * kSecond);
  EXPECT_EQ(engine.checkpoints_run(), 3u);
}

TEST_F(InvariantEngineTest, RuleNamesRoundTripAndHaveSections) {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(InvariantRule::kCtpNoLoop); ++i) {
    const auto rule = static_cast<InvariantRule>(i);
    const char* name = invariant_rule_name(rule);
    ASSERT_STRNE(name, "?");
    EXPECT_STRNE(invariant_rule_section(rule), "?");
    const auto back = invariant_rule_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, rule);
  }
  EXPECT_FALSE(invariant_rule_from_name("no_such_rule").has_value());
}

TEST_F(InvariantEngineTest, ViolationsAreTraceLinked) {
  Tracer tracer(64);
  tracer.set_enabled(true);
  InvariantEngine engine(sim_, cfg_);
  engine.set_tracer(&tracer);
  auto views = clean_views();
  views[0].children[0].position = 3;
  engine.run_checkpoint(views);
  const auto records = tracer.by_event(TraceEvent::kInvariantViolation);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].node, 0);
  EXPECT_EQ(records[0].a,
            static_cast<std::uint64_t>(InvariantRule::kAddrParentPrefix));
  EXPECT_EQ(records[0].b, 1u);  // the affected child
}

}  // namespace
}  // namespace telea
