#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace telea {
namespace {

using namespace time_literals;

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_in(100, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.now(), 100u);
}

TEST(Simulator, ScheduleAtPastClampsToNow) {
  Simulator sim;
  sim.schedule_in(50, [&] {
    // From t=50, schedule into the past; must fire immediately-next.
    sim.schedule_at(10, [&] { EXPECT_EQ(sim.now(), 50u); });
  });
  sim.run();
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(10, [&] { ++fired; });
  sim.schedule_in(20, [&] { ++fired; });
  sim.schedule_in(30, [&] { ++fired; });
  const auto executed = sim.run_until(20);
  EXPECT_EQ(executed, 2u);  // events at 10 and exactly 20 fire
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(5 * kSecond);
  EXPECT_EQ(sim.now(), 5 * kSecond);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_in(10, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, CancelStopsEvent) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.schedule_in(10, [&] { fired = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ResetClearsClockAndQueue) {
  Simulator sim;
  sim.schedule_in(10, [] {});
  sim.run();
  EXPECT_EQ(sim.now(), 10u);
  sim.schedule_in(10, [] {});
  sim.reset();
  EXPECT_EQ(sim.now(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, StepExecutesSingleEvent) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1, [&] { ++fired; });
  sim.schedule_in(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step(10));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step(10));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step(10));
}

TEST(Simulator, TimeLiteralsAndConversions) {
  EXPECT_EQ(1_s, 1000 * 1_ms);
  EXPECT_EQ(1_min, 60 * 1_s);
  EXPECT_EQ(1_h, 60 * 1_min);
  EXPECT_DOUBLE_EQ(to_seconds(1500_ms), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(2_s), 2000.0);
  EXPECT_EQ(from_seconds(2.5), 2500 * kMillisecond);
}

}  // namespace
}  // namespace telea
