#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace telea {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsHead) {
  EventQueue q;
  q.schedule(42, [] {});
  q.schedule(7, [] {});
  EXPECT_EQ(q.next_time(), 7u);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(10, [&] { fired = true; });
  q.cancel(h);
  EXPECT_FALSE(h.valid());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUpdatesNextTime) {
  EventQueue q;
  EventHandle h = q.schedule(5, [] {});
  q.schedule(10, [] {});
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 10u);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(1, [] {});
  q.pop().callback();
  EXPECT_TRUE(q.empty());
  q.cancel(h);  // must not corrupt state
  EXPECT_TRUE(q.empty());
  bool fired = false;
  q.schedule(2, [&] { fired = true; });
  EXPECT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelInvalidHandleIsNoop) {
  EventQueue q;
  EventHandle h;
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsNoop) {
  EventQueue q;
  EventHandle h = q.schedule(10, [] {});
  EventHandle copy = h;
  q.cancel(h);
  q.cancel(copy);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  EventHandle a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1, [] {});
  q.schedule(2, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopReturnsTimeAndCallback) {
  EventQueue q;
  int value = 0;
  q.schedule(99, [&] { value = 7; });
  auto fired = q.pop();
  EXPECT_EQ(fired.time, 99u);
  fired.callback();
  EXPECT_EQ(value, 7);
}

TEST(EventQueue, ManyInterleavedScheduleCancel) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
  }
  for (size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  EXPECT_EQ(q.size(), 50u);
  SimTime last = 0;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    EXPECT_EQ(fired.time % 2, 1u);  // even-indexed were cancelled
    last = fired.time;
  }
}

}  // namespace
}  // namespace telea
