// Whole-system determinism: the foundational property that makes every
// experiment in this repository reproducible. Two networks built from the
// same (config, seed) must evolve identically event for event — verified
// through transmit traces, protocol counters and timing.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

struct Fingerprint {
  std::uint64_t transmissions = 0;
  std::uint64_t control_txs = 0;
  std::uint64_t parent_changes = 0;
  std::vector<std::uint64_t> per_node_ops;
  SimTime last_tx_time = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.transmissions == b.transmissions &&
           a.control_txs == b.control_txs &&
           a.parent_changes == b.parent_changes &&
           a.per_node_ops == b.per_node_ops &&
           a.last_tx_time == b.last_tx_time;
  }
};

Fingerprint run_once(ControlProtocol proto, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_connected_random(12, 50.0, seed);
  cfg.seed = seed;
  cfg.protocol = proto;
  Network net(cfg);
  Tracer& tracer = net.enable_tracing(1 << 18);
  net.start();
  net.run_for(6_min);
  net.start_data_collection(1_min);
  if (proto == ControlProtocol::kReTele) {
    for (NodeId d = 1; d < 4; ++d) {
      const auto* tele = net.node(d).tele();
      if (tele != nullptr && tele->addressing().has_code()) {
        net.sink().tele()->send_control(d, tele->addressing().code(), 1);
      }
      net.run_for(30_s);
    }
  }
  net.run_for(2_min);

  Fingerprint fp;
  fp.transmissions = tracer.count(TraceEvent::kTransmit);
  fp.control_txs = tracer.count(TraceEvent::kControlTx);
  fp.parent_changes = tracer.count(TraceEvent::kParentChange);
  for (NodeId i = 0; i < net.size(); ++i) {
    fp.per_node_ops.push_back(net.node(i).mac().send_ops());
  }
  for (const auto& r : tracer.snapshot()) {
    if (r.event == TraceEvent::kTransmit) fp.last_tx_time = r.time;
  }
  return fp;
}

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, IdenticalRunsAreBitIdentical) {
  const auto a = run_once(ControlProtocol::kReTele, GetParam());
  const auto b = run_once(ControlProtocol::kReTele, GetParam());
  EXPECT_TRUE(a == b);
  EXPECT_GT(a.transmissions, 100u);  // the run actually did something
}

TEST_P(Determinism, DifferentSeedsDiverge) {
  const auto a = run_once(ControlProtocol::kReTele, GetParam());
  const auto b = run_once(ControlProtocol::kReTele, GetParam() + 1);
  EXPECT_FALSE(a == b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Values(11, 22));

TEST(DeterminismAcrossProtocols, DripAndRplAlsoDeterministic) {
  for (ControlProtocol proto :
       {ControlProtocol::kDrip, ControlProtocol::kRpl}) {
    const auto a = run_once(proto, 33);
    const auto b = run_once(proto, 33);
    EXPECT_TRUE(a == b) << protocol_name(proto);
  }
}

}  // namespace
}  // namespace telea
