#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace telea {
namespace {

TEST(Timer, OneShotFiresOnce) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.set_callback([&] { ++fired; });
  t.start_one_shot(100);
  EXPECT_TRUE(t.running());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.running());
}

TEST(Timer, PeriodicFiresRepeatedly) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.set_callback([&] { ++fired; });
  t.start_periodic(10);
  sim.run_until(55);
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(t.running());
}

TEST(Timer, PeriodicWithInitialDelay) {
  Simulator sim;
  Timer t(sim);
  std::vector<SimTime> at;
  t.set_callback([&] { at.push_back(sim.now()); });
  t.start_periodic_at(3, 10);
  sim.run_until(35);
  ASSERT_EQ(at.size(), 4u);
  EXPECT_EQ(at[0], 3u);
  EXPECT_EQ(at[1], 13u);
  EXPECT_EQ(at[3], 33u);
}

TEST(Timer, StopPreventsFiring) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.set_callback([&] { ++fired; });
  t.start_one_shot(10);
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, RestartRearms) {
  Simulator sim;
  Timer t(sim);
  std::vector<SimTime> at;
  t.set_callback([&] { at.push_back(sim.now()); });
  t.start_one_shot(100);
  sim.run_until(50);
  t.start_one_shot(100);  // re-arm from t=50
  sim.run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 150u);
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    Timer t(sim);
    t.set_callback([&] { ++fired; });
    t.start_one_shot(10);
  }
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CallbackMayRestartItself) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.set_callback([&] {
    if (++fired < 3) t.start_one_shot(10);
  });
  t.start_one_shot(10);
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Timer, StopInsideCallbackStopsPeriodic) {
  Simulator sim;
  Timer t(sim);
  int fired = 0;
  t.set_callback([&] {
    if (++fired == 2) t.stop();
  });
  t.start_periodic(10);
  sim.run_until(100);
  EXPECT_EQ(fired, 2);
}

}  // namespace
}  // namespace telea
