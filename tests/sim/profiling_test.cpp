#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace telea {
namespace {

TEST(SimProfiling, OffByDefaultAndCostsNothing) {
  Simulator sim;
  sim.schedule_in(10, [] {}, "work");
  sim.run();
  EXPECT_FALSE(sim.profiling());
  EXPECT_EQ(sim.profile().events_dispatched, 0u);
  EXPECT_TRUE(sim.profile().by_kind.empty());
}

TEST(SimProfiling, CountsEventsByTag) {
  Simulator sim;
  sim.set_profiling(true);
  for (int i = 0; i < 3; ++i) sim.schedule_in(10 + i, [] {}, "alpha");
  sim.schedule_in(5, [] {}, "beta");
  sim.schedule_in(7, [] {});  // untagged
  sim.run();

  const SimProfile& p = sim.profile();
  EXPECT_EQ(p.events_dispatched, 5u);
  ASSERT_TRUE(p.by_kind.contains("alpha"));
  EXPECT_EQ(p.by_kind.at("alpha").count, 3u);
  EXPECT_EQ(p.by_kind.at("beta").count, 1u);
  EXPECT_EQ(p.by_kind.at("(untagged)").count, 1u);
  EXPECT_GE(p.by_kind.at("alpha").wall_seconds, 0.0);
}

TEST(SimProfiling, TracksMaxQueueDepth) {
  Simulator sim;
  sim.set_profiling(true);
  for (int i = 0; i < 8; ++i) sim.schedule_in(10 + i, [] {}, "w");
  sim.run();
  // Depth is sampled before each pop: the first pop sees all 8 pending.
  EXPECT_EQ(sim.profile().max_queue_depth, 8u);
}

TEST(SimProfiling, CancelledEventsDoNotCount) {
  Simulator sim;
  sim.set_profiling(true);
  auto h = sim.schedule_in(10, [] {}, "doomed");
  sim.schedule_in(20, [] {}, "kept");
  sim.cancel(h);
  sim.run();
  EXPECT_EQ(sim.profile().events_dispatched, 1u);
  EXPECT_FALSE(sim.profile().by_kind.contains("doomed"));
}

TEST(SimProfiling, TimersCarryTheirTag) {
  Simulator sim;
  sim.set_profiling(true);
  int fired = 0;
  Timer t(sim);
  t.set_tag("test.timer");
  t.set_callback([&fired] { ++fired; });
  t.start_one_shot(50);
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(sim.profile().by_kind.contains("test.timer"));
  EXPECT_EQ(sim.profile().by_kind.at("test.timer").count, 1u);
}

TEST(SimProfiling, RenderAndClear) {
  Simulator sim;
  sim.set_profiling(true);
  sim.schedule_in(1, [] {}, "phase.a");
  sim.run();
  const std::string text = sim.profile().render();
  EXPECT_NE(text.find("phase.a"), std::string::npos);
  EXPECT_NE(text.find("1 event"), std::string::npos);

  sim.clear_profile();
  EXPECT_EQ(sim.profile().events_dispatched, 0u);
  EXPECT_TRUE(sim.profile().by_kind.empty());

  sim.reset();  // reset() also clears the profile
  sim.set_profiling(true);
  sim.schedule_in(1, [] {}, "x");
  sim.run();
  EXPECT_EQ(sim.profile().events_dispatched, 1u);
}

}  // namespace
}  // namespace telea
