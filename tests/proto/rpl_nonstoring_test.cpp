// RPL non-storing mode (RFC 6550 §9.7): root-only topology, source-routed
// downward packets.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "proto/rpl.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig ns_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kRpl;
  cfg.rpl.mode = RplMode::kNonStoring;
  return cfg;
}

TEST(RplNonStoring, RelaysStoreNothing) {
  Network net(ns_config(4, 81));
  net.start();
  net.run_for(4_min);
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_EQ(net.node(i).rpl()->route_count(), 0u) << "node " << i;
  }
}

TEST(RplNonStoring, RootComputesSourceRoutes) {
  Network net(ns_config(4, 82));
  net.start();
  net.run_for(4_min);
  const auto route = net.sink().rpl()->compute_source_route(3);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0], 1);
  EXPECT_EQ(route[1], 2);
  EXPECT_EQ(route[2], 3);
  EXPECT_TRUE(net.sink().rpl()->has_route_to(3));
}

TEST(RplNonStoring, SourceRoutedDeliveryAcrossHops) {
  Network net(ns_config(4, 83));
  net.start();
  net.run_for(4_min);
  bool delivered = false;
  net.node(3).rpl()->on_delivered = [&](const msg::RplData& d) {
    delivered = true;
    EXPECT_EQ(d.command, 66);
    EXPECT_EQ(d.hops_so_far, 3u);
    ASSERT_EQ(d.source_route.size(), 3u);
  };
  ASSERT_TRUE(net.sink().rpl()->send_downward(3, 66, 1));
  net.run_for(30_s);
  EXPECT_TRUE(delivered);
}

TEST(RplNonStoring, NoRouteWithoutDaos) {
  Network net(ns_config(3, 84));
  net.start();
  EXPECT_FALSE(net.sink().rpl()->send_downward(2, 1, 1));
  EXPECT_TRUE(net.sink().rpl()->compute_source_route(2).empty());
}

TEST(RplNonStoring, BrokenChainYieldsNoRoute) {
  Network net(ns_config(5, 85));
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.sink().rpl()->has_route_to(4));
  // Kill an intermediate node; after its parent link expires the root can
  // no longer assemble the route. (Lifetime is long, so emulate expiry by
  // checking the *forwarding* outcome instead: the packet dies at the gap.)
  net.node(2).kill();
  bool delivered = false;
  net.node(4).rpl()->on_delivered = [&](const msg::RplData&) {
    delivered = true;
  };
  net.sink().rpl()->send_downward(4, 1, 7);
  net.run_for(2_min);
  EXPECT_FALSE(delivered);
}

TEST(RplNonStoring, MisroutedPacketIsDropped) {
  Network net(ns_config(4, 86));
  net.start();
  net.run_for(4_min);
  // Hand node 2 a source-routed packet whose header does not contain it.
  msg::RplData data;
  data.dest = 3;
  data.seqno = 42;
  data.source_route = {1, 3};
  data.route_index = 0;
  int drops = 0;
  net.node(2).rpl()->on_drop = [&](std::uint32_t) { ++drops; };
  net.node(2).rpl()->handle_data(0, data, true);
  EXPECT_EQ(drops, 1);
}

TEST(RplNonStoring, DirectChildUsesOneHopRoute) {
  Network net(ns_config(2, 87));
  net.start();
  net.run_for(3_min);
  const auto route = net.sink().rpl()->compute_source_route(1);
  ASSERT_EQ(route.size(), 1u);
  EXPECT_EQ(route[0], 1);
  bool delivered = false;
  net.node(1).rpl()->on_delivered = [&](const msg::RplData& d) {
    delivered = true;
    EXPECT_EQ(d.hops_so_far, 1u);
  };
  net.sink().rpl()->send_downward(1, 5, 9);
  net.run_for(30_s);
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace telea
