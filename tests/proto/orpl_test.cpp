// ORPL-lite behaviour: filter propagation up the DODAG, anycast downward
// delivery, and the Bloom false-positive failure mode the paper critiques.

#include "proto/orpl.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig orpl_cfg(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kOrpl;
  return cfg;
}

TEST(Orpl, FiltersPropagateUpTheLine) {
  Network net(orpl_cfg(4, 71));
  net.start();
  net.run_for(4_min);
  // Every node's member set contains its whole subtree.
  EXPECT_TRUE(net.node(1).orpl()->members().contains(2));
  EXPECT_TRUE(net.node(1).orpl()->members().contains(3));
  EXPECT_TRUE(net.node(2).orpl()->members().contains(3));
  // And the sink believes everyone is reachable downward.
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_TRUE(net.sink().orpl()->believes_reachable(i)) << "node " << i;
  }
}

TEST(Orpl, DownwardDeliveryAcrossHops) {
  Network net(orpl_cfg(4, 72));
  net.start();
  net.run_for(4_min);
  bool delivered = false;
  net.node(3).orpl()->on_delivered = [&](const msg::OrplData& d) {
    delivered = true;
    EXPECT_EQ(d.command, 9);
  };
  ASSERT_TRUE(net.sink().orpl()->send_downward(3, 9, 1));
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

TEST(Orpl, SendFailsBeforeAnnouncements) {
  Network net(orpl_cfg(3, 73));
  net.start();
  EXPECT_FALSE(net.sink().orpl()->send_downward(2, 1, 1));
}

TEST(Orpl, SequentialCommandsAllDelivered) {
  Network net(orpl_cfg(4, 74));
  net.start();
  net.run_for(4_min);
  int got = 0;
  net.node(2).orpl()->on_delivered = [&](const msg::OrplData&) { ++got; };
  for (std::uint32_t s = 1; s <= 3; ++s) {
    net.sink().orpl()->send_downward(2, 0, s);
    net.run_for(30_s);
  }
  EXPECT_EQ(got, 3);
}

TEST(Orpl, DeadSubtreeBurnsRetriesAndDrops) {
  // Kill the destination's whole branch: the sender's (stale) filter still
  // claims reachability, transmissions burn out, the packet drops — the
  // "ineffectual transmissions" the paper attributes to ORPL.
  Network net(orpl_cfg(4, 75));
  net.start();
  net.run_for(4_min);
  net.node(2).kill();
  net.node(3).kill();
  bool delivered = false;
  int drops = 0;
  net.node(3).orpl()->on_delivered = [&](const msg::OrplData&) {
    delivered = true;
  };
  for (NodeId i = 0; i < net.size(); ++i) {
    net.node(i).orpl()->on_drop = [&drops](std::uint32_t) { ++drops; };
  }
  ASSERT_TRUE(net.sink().orpl()->send_downward(3, 1, 5));
  net.run_for(2_min);
  EXPECT_FALSE(delivered);
  EXPECT_GE(drops, 1);
}

TEST(Orpl, StatsCountActivity) {
  Network net(orpl_cfg(3, 76));
  net.start();
  net.run_for(4_min);
  EXPECT_GT(net.node(1).orpl()->stats().announces_sent, 2u);
  net.sink().orpl()->send_downward(2, 1, 1);
  net.run_for(1_min);
  EXPECT_EQ(net.node(2).orpl()->stats().deliveries, 1u);
  EXPECT_GE(net.node(1).orpl()->stats().claims, 1u);
}

}  // namespace
}  // namespace telea
