// Drip ↔ Trickle interaction details: suppression economy, redissemination
// to late joiners, and hop accounting.

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig drip_cfg(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kDrip;
  return cfg;
}

TEST(DripTrickle, SteadyStateIsQuiet) {
  Network net(drip_cfg(4, 31));
  net.start();
  net.run_for(2_min);
  net.sink().drip()->disseminate(3, 1);
  net.run_for(3_min);  // flood settles
  net.reset_accounting();
  net.run_for(5_min);  // steady state: only Imax-paced advertisements
  std::uint64_t ops = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    ops += net.node(i).mac().send_ops();
  }
  // A handful of trickle firings + CTP beacons; nowhere near flood volume.
  EXPECT_LT(ops, 40u);
}

TEST(DripTrickle, LateJoinerCatchesUp) {
  Network net(drip_cfg(4, 32));
  net.start();
  net.run_for(2_min);
  net.node(3).kill();
  bool delivered = false;
  net.node(3).drip()->on_delivered = [&](const msg::DripMsg&) {
    delivered = true;
  };
  net.sink().drip()->disseminate(3, 9);
  net.run_for(2_min);
  EXPECT_FALSE(delivered);  // it was dead during the flood
  net.node(3).revive();
  // Its stale (empty) advertisements trigger neighbors to re-disseminate.
  net.run_for(3_min);
  EXPECT_TRUE(delivered);
}

TEST(DripTrickle, HopsAccumulateAlongTheLine) {
  Network net(drip_cfg(5, 33));
  net.start();
  net.run_for(2_min);
  std::uint8_t hops_at_4 = 0;
  net.node(4).drip()->on_delivered = [&](const msg::DripMsg& m) {
    hops_at_4 = m.hops_so_far;
  };
  net.sink().drip()->disseminate(4, 1);
  net.run_for(3_min);
  ASSERT_GT(hops_at_4, 0);
  // At least the 4 line hops; suppression may add a detour or two.
  EXPECT_GE(hops_at_4, 4);
  EXPECT_LE(hops_at_4, 8);
}

TEST(DripTrickle, NewerVersionSupersedesMidFlood) {
  Network net(drip_cfg(4, 34));
  net.start();
  net.run_for(2_min);
  int v1_deliveries = 0, v2_deliveries = 0;
  net.node(3).drip()->on_delivered = [&](const msg::DripMsg& m) {
    if (m.version == 1) ++v1_deliveries;
    if (m.version == 2) ++v2_deliveries;
  };
  net.sink().drip()->disseminate(3, 1);
  net.run_for(2_s);  // barely started
  net.sink().drip()->disseminate(3, 2);
  net.run_for(3_min);
  // Version 2 must arrive; version 1 may or may not have beaten it out.
  EXPECT_EQ(v2_deliveries, 1);
}

}  // namespace
}  // namespace telea
