#include "proto/rpl.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig rpl_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kRpl;
  return cfg;
}

TEST(Rpl, DaosPopulateRootRoutingTable) {
  Network net(rpl_config(4, 1));
  net.start();
  net.run_for(4_min);
  for (NodeId i = 1; i < 4; ++i) {
    EXPECT_TRUE(net.sink().rpl()->has_route_to(i)) << "node " << i;
  }
}

TEST(Rpl, IntermediateNodesStoreDescendantsOnly) {
  Network net(rpl_config(4, 2));
  net.start();
  net.run_for(4_min);
  // Node 1's stored routes cover 2 and 3 (its subtree), not the sink.
  EXPECT_TRUE(net.node(1).rpl()->has_route_to(2));
  EXPECT_TRUE(net.node(1).rpl()->has_route_to(3));
  EXPECT_FALSE(net.node(1).rpl()->has_route_to(0));
  // Leaf stores nothing.
  EXPECT_EQ(net.node(3).rpl()->route_count(), 0u);
}

TEST(Rpl, DownwardDeliveryAcrossHops) {
  Network net(rpl_config(4, 3));
  net.start();
  net.run_for(4_min);
  bool delivered = false;
  net.node(3).rpl()->on_delivered = [&](const msg::RplData& d) {
    delivered = true;
    EXPECT_EQ(d.command, 55);
    EXPECT_EQ(d.hops_so_far, 3u);
  };
  ASSERT_TRUE(net.sink().rpl()->send_downward(3, 55, 1));
  net.run_for(30_s);
  EXPECT_TRUE(delivered);
}

TEST(Rpl, SendFailsWithoutStoredRoute) {
  Network net(rpl_config(3, 4));
  net.start();
  // Before any DAO arrives there is no downward state.
  EXPECT_FALSE(net.sink().rpl()->send_downward(2, 1, 1));
}

TEST(Rpl, DeterministicForwardingDropsWhenRelayDies) {
  Network net(rpl_config(4, 5));
  net.start();
  net.run_for(4_min);
  ASSERT_TRUE(net.sink().rpl()->has_route_to(3));
  // Kill the only relay: storing-mode RPL has no alternative.
  net.node(1).kill();
  bool delivered = false;
  net.node(3).rpl()->on_delivered = [&](const msg::RplData&) {
    delivered = true;
  };
  net.sink().rpl()->send_downward(3, 1, 9);
  net.run_for(2_min);
  EXPECT_FALSE(delivered);
}

TEST(Rpl, RoutesExpireWithoutRefresh) {
  NetworkConfig cfg = rpl_config(3, 6);
  cfg.rpl.route_lifetime = 30_s;
  cfg.rpl.dao_interval = 10 * kMinute;  // no refresh within the test
  Network net(cfg);
  net.start();
  net.run_for(3_min);
  // The initial triggered DAOs installed routes, but they have long expired
  // relative to the 30 s lifetime by now (expiry checked lazily on use).
  EXPECT_FALSE(net.sink().rpl()->send_downward(2, 1, 1));
}

TEST(Rpl, RelayHookFires) {
  Network net(rpl_config(4, 7));
  net.start();
  net.run_for(4_min);
  int relays = 0;
  for (NodeId i = 1; i < 4; ++i) {
    net.node(i).rpl()->on_relayed = [&relays](const msg::RplData&) {
      ++relays;
    };
  }
  net.sink().rpl()->send_downward(3, 1, 2);
  net.run_for(30_s);
  EXPECT_EQ(relays, 2);  // nodes 1 and 2 relayed; 3 consumed
}

TEST(Rpl, SequentialCommandsAllDelivered) {
  Network net(rpl_config(3, 8));
  net.start();
  net.run_for(4_min);
  int deliveries = 0;
  net.node(2).rpl()->on_delivered = [&](const msg::RplData&) {
    ++deliveries;
  };
  for (std::uint32_t s = 1; s <= 3; ++s) {
    net.sink().rpl()->send_downward(2, 0, s);
    net.run_for(30_s);
  }
  EXPECT_EQ(deliveries, 3);
}

}  // namespace
}  // namespace telea
