#include "proto/drip.hpp"

#include <gtest/gtest.h>

#include "harness/network.hpp"
#include "topo/topology.hpp"

namespace telea {
namespace {

using namespace time_literals;

NetworkConfig drip_config(std::size_t nodes, std::uint64_t seed) {
  NetworkConfig cfg;
  cfg.topology = make_line(nodes, 22.0);
  cfg.seed = seed;
  cfg.protocol = ControlProtocol::kDrip;
  return cfg;
}

TEST(Drip, VersionAdvancesPerDissemination) {
  Network net(drip_config(2, 1));
  net.start();
  EXPECT_EQ(net.sink().drip()->disseminate(1, 10), 1u);
  EXPECT_EQ(net.sink().drip()->disseminate(1, 11), 2u);
}

TEST(Drip, FloodsAcrossMultipleHops) {
  Network net(drip_config(5, 2));
  net.start();
  net.run_for(1_min);
  bool delivered = false;
  net.node(4).drip()->on_delivered = [&](const msg::DripMsg& m) {
    delivered = true;
    EXPECT_EQ(m.command, 77);
  };
  net.sink().drip()->disseminate(4, 77);
  net.run_for(1_min);
  EXPECT_TRUE(delivered);
}

TEST(Drip, EveryNodeAdoptsTheValue) {
  Network net(drip_config(5, 3));
  net.start();
  net.run_for(1_min);
  int adopters = 0;
  for (NodeId i = 1; i < 5; ++i) {
    net.node(i).drip()->on_adopted = [&adopters](const msg::DripMsg&) {
      ++adopters;
    };
  }
  net.sink().drip()->disseminate(2, 5);
  net.run_for(1_min);
  EXPECT_EQ(adopters, 4);  // the flood reaches everyone, not just the dest
}

TEST(Drip, OnlyAddressedDestinationConsumes) {
  Network net(drip_config(4, 4));
  net.start();
  net.run_for(1_min);
  int delivered_wrong = 0;
  bool delivered_right = false;
  net.node(1).drip()->on_delivered = [&](const msg::DripMsg&) {
    ++delivered_wrong;
  };
  net.node(2).drip()->on_delivered = [&](const msg::DripMsg&) {
    delivered_right = true;
  };
  net.sink().drip()->disseminate(2, 9);
  net.run_for(1_min);
  EXPECT_TRUE(delivered_right);
  EXPECT_EQ(delivered_wrong, 0);
}

TEST(Drip, StaleVersionNotReadopted) {
  Network net(drip_config(3, 5));
  net.start();
  net.run_for(1_min);
  int deliveries = 0;
  net.node(2).drip()->on_delivered = [&](const msg::DripMsg&) {
    ++deliveries;
  };
  net.sink().drip()->disseminate(2, 1);
  net.run_for(1_min);
  // Re-inject the same (old) version directly: must be ignored.
  msg::DripMsg stale;
  stale.key = 1;
  stale.version = 1;
  stale.dest = 2;
  stale.command = 1;
  net.node(2).drip()->handle_msg(1, stale);
  net.run_for(10_s);
  EXPECT_EQ(deliveries, 1);
}

TEST(Drip, SequentialDisseminationsAllDelivered) {
  Network net(drip_config(4, 6));
  net.start();
  net.run_for(1_min);
  int deliveries = 0;
  net.node(3).drip()->on_delivered = [&](const msg::DripMsg&) {
    ++deliveries;
  };
  for (int i = 0; i < 3; ++i) {
    net.sink().drip()->disseminate(3, static_cast<std::uint16_t>(i));
    net.run_for(1_min);
  }
  EXPECT_EQ(deliveries, 3);
}

TEST(Drip, FloodCostsManyTransmissions) {
  // The core of Table III: one control packet via Drip costs on the order
  // of the network size in transmissions, not the path length.
  Network net(drip_config(5, 7));
  net.start();
  net.run_for(1_min);
  std::uint64_t ops_before = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    ops_before += net.node(i).mac().send_ops();
  }
  net.sink().drip()->disseminate(4, 1);
  net.run_for(1_min);
  std::uint64_t ops_after = 0;
  for (NodeId i = 0; i < net.size(); ++i) {
    ops_after += net.node(i).mac().send_ops();
  }
  EXPECT_GE(ops_after - ops_before, net.size());
}

}  // namespace
}  // namespace telea
