// telea_timeline — renders, summarizes, and diffs the timeline JSONL that
// `telea_sim timeline=FILE` (or the churn soak's timeline arm) streams: one
// meta line describing the tier layout, one {"t","v":{series:value}} line
// per sample, and one {"t","alert",...} line per alert transition.
//
// The tool rebuilds the engine's multi-resolution series (src/stats/
// timeline.*) from the stream — same fold config, same buckets — so what it
// renders is exactly what the in-sim engine held.
//
//   $ ./telea_timeline timeline=run.timeline.jsonl
//   $ ./telea_timeline timeline=run.timeline.jsonl series=telea_duty_cycle
//   $ ./telea_timeline timeline=a.jsonl diff=b.jsonl tolerance=0.01
//
// Options (key=value):
//   timeline=FILE    the timeline JSONL to read (required)
//   series=NAME      render one series: exact sample name, or a substring
//                    matching exactly one series
//   tier=raw         raw | mid | coarse — which resolution to render
//   format=table     table | csv | json
//   spark=true       table format: append an ASCII sparkline line
//   limit=0          summary: list only the first N series (0 = all)
//   diff=FILE2       point-by-point comparison against a second timeline;
//                    prints per-series divergences and alert deltas
//   tolerance=0      diff: relative tolerance before a value counts as
//                    different (0 = exact)
//
// Exit codes: 0 ok / timelines identical; 1 no data or differences found;
// 2 usage error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "stats/table.hpp"
#include "stats/timeline.hpp"
#include "util/config.hpp"
#include "util/json.hpp"

namespace {

using telea::AlertRule;
using telea::JsonValue;
using telea::MetricSeries;
using telea::SimTime;
using telea::TextTable;
using telea::TimelineBucket;
using telea::TimelineConfig;
using telea::TimelinePoint;
using telea::kSecond;

int usage() {
  std::fprintf(
      stderr,
      "usage: telea_timeline timeline=FILE [series=NAME] [tier=raw|mid|coarse]\n"
      "                      [format=table|csv|json] [spark=BOOL] [limit=N]\n"
      "       telea_timeline timeline=FILE diff=FILE2 [tolerance=X]\n");
  return 2;
}

struct AlertEvent {
  double t = 0.0;
  std::string name;
  std::string state;  // "fired" | "resolved"
  double signal = 0.0;
};

/// One parsed timeline stream: the meta config plus every sample appended
/// into rebuilt MetricSeries (same fold layout the in-sim engine used).
struct Timeline {
  TimelineConfig config;
  std::map<std::string, MetricSeries> series;
  std::vector<std::string> rules;  // rendered rule lines from the meta
  std::vector<AlertEvent> alerts;
  std::size_t samples = 0;
};

void apply_meta(const JsonValue& meta, Timeline* tl) {
  tl->config.interval =
      static_cast<SimTime>(meta.number_or("interval_us", 10.0 * kSecond));
  tl->config.raw_capacity =
      static_cast<std::size_t>(meta.number_or("raw_capacity", 720.0));
  if (const JsonValue* mid = meta.find("mid")) {
    tl->config.mid.capacity =
        static_cast<std::size_t>(mid->number_or("capacity", 240.0));
    tl->config.mid.fold = static_cast<std::size_t>(mid->number_or("fold", 6.0));
  }
  if (const JsonValue* coarse = meta.find("coarse")) {
    tl->config.coarse.capacity =
        static_cast<std::size_t>(coarse->number_or("capacity", 288.0));
    tl->config.coarse.fold =
        static_cast<std::size_t>(coarse->number_or("fold", 10.0));
  }
  tl->config.window = static_cast<std::size_t>(meta.number_or("window", 6.0));
  tl->config.quantile_window =
      static_cast<std::size_t>(meta.number_or("quantile_window", 30.0));
  tl->config.ewma_alpha = meta.number_or("ewma_alpha", 0.3);
  if (const JsonValue* rules = meta.find("rules");
      rules != nullptr && rules->type() == JsonValue::Type::kArray) {
    for (const JsonValue& r : rules->as_array()) {
      if (r.type() == JsonValue::Type::kString) {
        tl->rules.push_back(r.as_string());
      }
    }
  }
}

std::optional<Timeline> load_timeline(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Timeline tl;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto v = JsonValue::parse(line);
    if (!v.has_value() || v->type() != JsonValue::Type::kObject) continue;
    if (const JsonValue* meta = v->find("meta")) {
      apply_meta(*meta, &tl);
      continue;
    }
    if (v->find("alert") != nullptr) {
      AlertEvent ev;
      ev.t = v->number_or("t", 0.0);
      ev.name = v->string_or("alert", "?");
      ev.state = v->string_or("state", "?");
      ev.signal = v->number_or("signal", 0.0);
      tl.alerts.push_back(std::move(ev));
      continue;
    }
    const JsonValue* values = v->find("v");
    if (values == nullptr || values->type() != JsonValue::Type::kObject) {
      continue;
    }
    const auto t =
        static_cast<SimTime>(v->number_or("t", 0.0) * static_cast<double>(kSecond));
    ++tl.samples;
    for (const auto& [name, value] : values->as_object()) {
      if (value.type() != JsonValue::Type::kNumber) continue;
      auto it = tl.series.find(name);
      if (it == tl.series.end()) {
        // The stream stores counters already delta-encoded, so rebuilt
        // series are all appended as-is; cumulative=false keeps append
        // semantics identical to what the engine stored.
        it = tl.series.emplace(name, MetricSeries(tl.config, false)).first;
      }
      it->second.append(t, value.as_number());
    }
  }
  return tl;
}

std::vector<double> raw_values(const MetricSeries& s) {
  std::vector<double> out;
  out.reserve(s.raw().size());
  for (const TimelinePoint& p : s.raw()) out.push_back(p.value);
  return out;
}

/// series= resolution: exact name first, then unique substring.
const MetricSeries* resolve_series(const Timeline& tl, const std::string& key,
                                   std::string* resolved) {
  if (const auto it = tl.series.find(key); it != tl.series.end()) {
    *resolved = it->first;
    return &it->second;
  }
  const MetricSeries* match = nullptr;
  std::size_t matches = 0;
  for (const auto& [name, s] : tl.series) {
    if (name.find(key) == std::string::npos) continue;
    ++matches;
    if (match == nullptr) {
      match = &s;
      *resolved = name;
    }
  }
  if (matches == 1) return match;
  if (matches > 1) {
    std::fprintf(stderr,
                 "telea_timeline: '%s' matches %zu series; candidates:\n",
                 key.c_str(), matches);
    for (const auto& [name, s] : tl.series) {
      (void)s;
      if (name.find(key) != std::string::npos) {
        std::fprintf(stderr, "  %s\n", name.c_str());
      }
    }
  }
  return nullptr;
}

double to_s(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

int render_series(const std::string& name, const MetricSeries& s,
                  const std::string& tier, const std::string& format,
                  bool spark) {
  const bool raw = tier == "raw";
  const std::deque<TimelineBucket>& buckets =
      tier == "mid" ? s.mid() : s.coarse();
  if ((raw && s.raw().empty()) || (!raw && buckets.empty())) {
    std::fprintf(stderr, "telea_timeline: no %s-tier data for %s\n",
                 tier.c_str(), name.c_str());
    return 1;
  }

  if (format == "json") {
    std::ostringstream out;
    out << "{\"series\":\"" << JsonValue::escape(name) << "\",\"tier\":\""
        << tier << "\",\"points\":[";
    bool first = true;
    if (raw) {
      for (const TimelinePoint& p : s.raw()) {
        out << (first ? "" : ",") << "{\"t\":" << to_s(p.time)
            << ",\"value\":" << p.value << "}";
        first = false;
      }
    } else {
      for (const TimelineBucket& b : buckets) {
        out << (first ? "" : ",") << "{\"t\":" << to_s(b.start)
            << ",\"min\":" << b.min << ",\"mean\":" << b.mean()
            << ",\"max\":" << b.max << ",\"sum\":" << b.sum
            << ",\"count\":" << b.count << "}";
        first = false;
      }
    }
    out << "]}";
    std::printf("%s\n", out.str().c_str());
    return 0;
  }

  TextTable table(raw ? std::vector<std::string>{"t s", "value"}
                      : std::vector<std::string>{"t s", "min", "mean", "max",
                                                 "sum", "count"});
  if (raw) {
    for (const TimelinePoint& p : s.raw()) {
      table.row({TextTable::fmt(to_s(p.time), 0), TextTable::fmt(p.value, 4)});
    }
  } else {
    for (const TimelineBucket& b : buckets) {
      table.row({TextTable::fmt(to_s(b.start), 0), TextTable::fmt(b.min, 4),
                 TextTable::fmt(b.mean(), 4), TextTable::fmt(b.max, 4),
                 TextTable::fmt(b.sum, 4),
                 TextTable::fmt(static_cast<double>(b.count), 0)});
    }
  }
  if (format == "csv") {
    std::printf("%s", table.render_csv().c_str());
    return 0;
  }
  std::printf("%s (%s tier)\n%s", name.c_str(), tier.c_str(),
              table.render().c_str());
  if (spark && raw) {
    std::printf("spark: %s  (last %s, ewma %s)\n",
                telea::sparkline(raw_values(s), 60).c_str(),
                TextTable::fmt(s.last(), 4).c_str(),
                TextTable::fmt(s.ewma(), 4).c_str());
  }
  return 0;
}

int render_summary(const Timeline& tl, const std::string& path,
                   std::size_t limit) {
  std::printf("%s: %zu samples every %.0f s, %zu series, %zu alert "
              "transition(s)\n",
              path.c_str(), tl.samples, to_s(tl.config.interval),
              tl.series.size(), tl.alerts.size());
  for (const std::string& rule : tl.rules) {
    std::printf("rule: %s\n", rule.c_str());
  }
  for (const AlertEvent& ev : tl.alerts) {
    std::printf("alert: t=%.0fs %s %s (signal %s)\n", ev.t, ev.name.c_str(),
                ev.state.c_str(), TextTable::fmt(ev.signal, 4).c_str());
  }
  if (tl.series.empty()) {
    std::fprintf(stderr, "telea_timeline: no samples in %s\n", path.c_str());
    return 1;
  }
  TextTable table({"series", "points", "last", "ewma", "spark"});
  std::size_t shown = 0;
  for (const auto& [name, s] : tl.series) {
    if (limit > 0 && shown >= limit) break;
    ++shown;
    table.row({name, std::to_string(s.total_points()),
               TextTable::fmt(s.last(), 4), TextTable::fmt(s.ewma(), 4),
               telea::sparkline(raw_values(s), 24)});
  }
  table.print();
  if (limit > 0 && tl.series.size() > limit) {
    std::printf("(%zu more series; series=NAME to inspect one)\n",
                tl.series.size() - shown);
  }
  return 0;
}

/// Point-by-point regression hunt between two runs' timelines.
int diff_timelines(const Timeline& a, const Timeline& b, double tolerance) {
  std::size_t differing_series = 0;
  std::size_t reported = 0;
  constexpr std::size_t kMaxReports = 20;

  const auto report = [&reported](const char* fmt, const std::string& name,
                                  const std::string& detail) {
    if (reported < kMaxReports) std::printf(fmt, name.c_str(), detail.c_str());
    ++reported;
  };

  for (const auto& [name, sa] : a.series) {
    const auto itb = b.series.find(name);
    if (itb == b.series.end()) {
      report("- %s: only in first timeline%s\n", name, "");
      ++differing_series;
      continue;
    }
    const auto& ra = sa.raw();
    const auto& rb = itb->second.raw();
    const std::size_t n = std::min(ra.size(), rb.size());
    bool differs = ra.size() != rb.size();
    std::string detail;
    if (differs) {
      detail = ": " + std::to_string(ra.size()) + " vs " +
               std::to_string(rb.size()) + " points";
    }
    for (std::size_t i = 0; i < n; ++i) {
      const double va = ra[i].value;
      const double vb = rb[i].value;
      const double scale = std::max(std::fabs(va), std::fabs(vb));
      if (ra[i].time != rb[i].time ||
          std::fabs(va - vb) > tolerance * scale + 1e-12) {
        differs = true;
        detail = ": first divergence at t=" +
                 TextTable::fmt(to_s(ra[i].time), 0) + "s (" +
                 TextTable::fmt(va, 6) + " vs " + TextTable::fmt(vb, 6) + ")";
        break;
      }
    }
    if (differs) {
      report("~ %s%s\n", name, detail);
      ++differing_series;
    }
  }
  for (const auto& [name, sb] : b.series) {
    (void)sb;
    if (!a.series.contains(name)) {
      report("+ %s: only in second timeline%s\n", name, "");
      ++differing_series;
    }
  }
  if (reported > kMaxReports) {
    std::printf("... %zu more differing series\n", reported - kMaxReports);
  }

  // Alert transitions compare as ordered (name, state) sequences.
  const auto alert_key = [](const AlertEvent& ev) {
    return ev.name + "/" + ev.state;
  };
  bool alerts_differ = a.alerts.size() != b.alerts.size();
  for (std::size_t i = 0; !alerts_differ && i < a.alerts.size(); ++i) {
    alerts_differ = alert_key(a.alerts[i]) != alert_key(b.alerts[i]);
  }
  if (alerts_differ) {
    std::printf("~ alert transitions differ: %zu vs %zu\n", a.alerts.size(),
                b.alerts.size());
  }

  if (differing_series == 0 && !alerts_differ) {
    std::printf("timelines identical: %zu series, %zu samples\n",
                a.series.size(), a.samples);
    return 0;
  }
  std::printf("%zu of %zu series differ%s\n", differing_series,
              std::max(a.series.size(), b.series.size()),
              alerts_differ ? " (and alert transitions differ)" : "");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const telea::Config cfg = telea::Config::from_args(argc - 1, argv + 1);
  if (!cfg.positional().empty()) {
    std::fprintf(stderr, "telea_timeline: unexpected argument '%s'\n",
                 cfg.positional().front().c_str());
    return usage();
  }
  const std::string timeline_path = cfg.get_string("timeline");
  const std::string series_key = cfg.get_string("series");
  const std::string tier = cfg.get_string("tier", "raw");
  const std::string format = cfg.get_string("format", "table");
  const bool spark = cfg.get_bool("spark", true);
  const auto limit = static_cast<std::size_t>(cfg.get_int("limit", 0));
  const std::string diff_path = cfg.get_string("diff");
  const double tolerance = cfg.get_double("tolerance", 0.0);
  if (!cfg.unused_keys().empty() || timeline_path.empty()) {
    for (const auto& key : cfg.unused_keys()) {
      std::fprintf(stderr, "telea_timeline: unknown option '%s'\n",
                   key.c_str());
    }
    return usage();
  }
  if (tier != "raw" && tier != "mid" && tier != "coarse") {
    std::fprintf(stderr, "telea_timeline: unknown tier '%s'\n", tier.c_str());
    return usage();
  }
  if (format != "table" && format != "csv" && format != "json") {
    std::fprintf(stderr, "telea_timeline: unknown format '%s'\n",
                 format.c_str());
    return usage();
  }

  const auto tl = load_timeline(timeline_path);
  if (!tl.has_value()) {
    std::fprintf(stderr, "telea_timeline: cannot read %s\n",
                 timeline_path.c_str());
    return 2;
  }

  if (!diff_path.empty()) {
    const auto other = load_timeline(diff_path);
    if (!other.has_value()) {
      std::fprintf(stderr, "telea_timeline: cannot read %s\n",
                   diff_path.c_str());
      return 2;
    }
    return diff_timelines(*tl, *other, tolerance);
  }

  if (!series_key.empty()) {
    std::string resolved;
    const MetricSeries* s = resolve_series(*tl, series_key, &resolved);
    if (s == nullptr) {
      std::fprintf(stderr, "telea_timeline: no series matches '%s'\n",
                   series_key.c_str());
      return 1;
    }
    return render_series(resolved, *s, tier, format, spark);
  }

  return render_summary(*tl, timeline_path, limit);
}
