// telea_top — operator's view of the network's in-band health telemetry.
// Consumes the snapshot JSONL that `telea_sim health=FILE` (or
// Network::append_health_snapshot) appends one line per period, renders the
// *latest* snapshot as a per-node table plus aggregate summary, and can
// follow a growing file. Also renders flight-recorder dump JSONL
// (`telea_sim flightrec=FILE`) for post-mortem reading.
//
//   $ ./telea_top health=run.health.jsonl
//   $ ./telea_top health=run.health.jsonl watch=true interval=2
//   $ ./telea_top health=run.health.jsonl timeline=run.timeline.jsonl
//   $ ./telea_top flightrec=run.flight.jsonl
//
// Options (key=value):
//   health=FILE       health snapshot JSONL; the last parsable line is shown
//   flightrec=FILE    flight dump JSONL; every dump is rendered in order
//   timeline=FILE     timeline JSONL (telea_sim timeline=FILE): adds a
//                     per-node sparkline column of `spark_metric`'s history
//   spark_metric=NAME metric family for the sparkline column
//                     (default telea_duty_cycle)
//   watch=false       health only: poll FILE and re-render when it grows
//   interval=2        watch poll interval in seconds
//   limit=0           show only the N stalest nodes (0 = all, sorted by id)
//
// Exit codes: 0 ok; 1 no parsable snapshot/dump in the input; 2 usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "stats/table.hpp"
#include "util/config.hpp"
#include "util/json.hpp"

namespace {

using telea::JsonValue;
using telea::TextTable;

int usage() {
  std::fprintf(stderr,
               "usage: telea_top health=FILE [watch=BOOL] [interval=S] "
               "[limit=N]\n"
               "                 [timeline=FILE] [spark_metric=NAME]\n"
               "       telea_top flightrec=FILE\n");
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Last parsable JSON object line of a JSONL file — the newest snapshot.
std::optional<JsonValue> last_json_line(const std::string& text) {
  std::optional<JsonValue> last;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    if (!line.empty()) {
      if (auto v = JsonValue::parse(line);
          v.has_value() && v->type() == JsonValue::Type::kObject) {
        last = std::move(v);
      }
    }
    start = end + 1;
  }
  return last;
}

/// Per-node value history of one metric family, keyed by node id, pulled
/// from the timeline JSONL's sample lines. A series contributes when its
/// name contains `metric` and carries a `node="N"` label.
std::map<double, std::vector<double>> load_sparks(const std::string& text,
                                                  const std::string& metric) {
  std::map<double, std::vector<double>> by_node;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const auto v = JsonValue::parse(line);
    if (!v.has_value() || v->type() != JsonValue::Type::kObject) continue;
    const JsonValue* values = v->find("v");
    if (values == nullptr || values->type() != JsonValue::Type::kObject) {
      continue;
    }
    for (const auto& [name, value] : values->as_object()) {
      if (value.type() != JsonValue::Type::kNumber) continue;
      if (name.find(metric) == std::string::npos) continue;
      const std::size_t label = name.find("node=\"");
      if (label == std::string::npos) continue;
      char* parsed_end = nullptr;
      const double id = std::strtod(name.c_str() + label + 6, &parsed_end);
      if (parsed_end == name.c_str() + label + 6) continue;
      by_node[id].push_back(value.as_number());
    }
  }
  return by_node;
}

void render_snapshot(const JsonValue& snap, std::size_t limit,
                     const std::map<double, std::vector<double>>& sparks,
                     const std::string& spark_metric) {
  const double now_s = snap.number_or("t", 0.0);
  const double period_s = snap.number_or("period_s", 0.0);
  const double stale_after_s = snap.number_or("stale_after_s", 0.0);
  std::printf("t=%.0fs  period=%.0fs  stale-after=%.0fs\n", now_s, period_s,
              stale_after_s);
  std::printf(
      "coverage %s  fresh %.0f / tracked %.0f / expected %.0f   "
      "reports %.0f (%.0f stale-dropped)  in-band bytes %.0f\n",
      TextTable::fmt_pct(snap.number_or("coverage", 0.0), 1).c_str(),
      snap.number_or("fresh", 0.0), snap.number_or("tracked", 0.0),
      snap.number_or("expected", 0.0), snap.number_or("reports", 0.0),
      snap.number_or("stale_dropped", 0.0), snap.number_or("bytes", 0.0));

  const JsonValue* nodes = snap.find("nodes");
  if (nodes == nullptr || nodes->type() != JsonValue::Type::kArray) return;
  std::vector<const JsonValue*> rows;
  rows.reserve(nodes->as_array().size());
  for (const JsonValue& n : nodes->as_array()) {
    if (n.type() == JsonValue::Type::kObject) rows.push_back(&n);
  }
  if (limit > 0 && rows.size() > limit) {
    // Operator triage: the stalest nodes are the interesting ones.
    std::stable_sort(rows.begin(), rows.end(),
                     [](const JsonValue* a, const JsonValue* b) {
                       return a->number_or("age_s", 0.0) >
                              b->number_or("age_s", 0.0);
                     });
    rows.resize(limit);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const JsonValue* a, const JsonValue* b) {
                       return a->number_or("id", 0.0) < b->number_or("id", 0.0);
                     });
  }

  std::vector<std::string> headers{"node", "age s", "state", "duty", "etx",
                                   "code len", "txq hwm", "fwdq hwm",
                                   "parent epoch", "energy mJ", "updates"};
  if (!sparks.empty()) headers.push_back(spark_metric);
  TextTable table(std::move(headers));
  for (const JsonValue* n : rows) {
    const double age = n->number_or("age_s", 0.0);
    const bool fresh = stale_after_s <= 0.0 || age <= stale_after_s;
    std::vector<std::string> cells{
        TextTable::fmt(n->number_or("id", 0.0), 0), TextTable::fmt(age, 0),
        fresh ? "fresh" : "STALE",
        TextTable::fmt_pct(n->number_or("duty", 0.0), 1),
        TextTable::fmt(n->number_or("etx10", 0.0) / 10.0, 1),
        TextTable::fmt(n->number_or("code_len", 0.0), 0),
        TextTable::fmt(n->number_or("txq_hwm", 0.0), 0),
        TextTable::fmt(n->number_or("fwdq_hwm", 0.0), 0),
        TextTable::fmt(n->number_or("parent_epoch", 0.0), 0),
        TextTable::fmt(n->number_or("energy_mj", 0.0), 0),
        TextTable::fmt(n->number_or("updates", 0.0), 0)};
    if (!sparks.empty()) {
      const auto it = sparks.find(n->number_or("id", -1.0));
      cells.push_back(it == sparks.end()
                          ? std::string{}
                          : telea::sparkline(it->second, 24));
    }
    table.row(std::move(cells));
  }
  table.print();
}

int render_flight_file(const std::string& text) {
  std::size_t dumps = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const auto v = JsonValue::parse(line);
    if (!v.has_value() || v->type() != JsonValue::Type::kObject) continue;
    ++dumps;
    std::printf("flight dump #%zu: node %.0f at t=%.3fs trigger=%s "
                "(%.0f earlier events dropped)\n",
                dumps, v->number_or("node", 0.0), v->number_or("t", 0.0),
                v->string_or("trigger", "?").c_str(),
                v->number_or("dropped", 0.0));
    const JsonValue* events = v->find("events");
    if (events == nullptr || events->type() != JsonValue::Type::kArray) {
      continue;
    }
    for (const JsonValue& e : events->as_array()) {
      std::printf("  %10.3fs  %-16s a=%-6.0f b=%.0f\n",
                  e.number_or("t", 0.0),
                  e.string_or("event", "?").c_str(), e.number_or("a", 0.0),
                  e.number_or("b", 0.0));
    }
  }
  if (dumps == 0) {
    std::fprintf(stderr, "telea_top: no parsable flight dumps\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const telea::Config cfg = telea::Config::from_args(argc - 1, argv + 1);
  if (!cfg.positional().empty()) {
    std::fprintf(stderr, "telea_top: unexpected argument '%s'\n",
                 cfg.positional().front().c_str());
    return usage();
  }
  const std::string health_path = cfg.get_string("health");
  const std::string flight_path = cfg.get_string("flightrec");
  const std::string timeline_path = cfg.get_string("timeline");
  const std::string spark_metric =
      cfg.get_string("spark_metric", "telea_duty_cycle");
  const bool watch = cfg.get_bool("watch", false);
  const double interval_s = cfg.get_double("interval", 2.0);
  const auto limit = static_cast<std::size_t>(cfg.get_int("limit", 0));
  if (!cfg.unused_keys().empty() ||
      (health_path.empty() && flight_path.empty())) {
    for (const auto& key : cfg.unused_keys()) {
      std::fprintf(stderr, "telea_top: unknown option '%s'\n", key.c_str());
    }
    return usage();
  }

  if (!flight_path.empty()) {
    const auto text = read_file(flight_path);
    if (!text.has_value()) {
      std::fprintf(stderr, "telea_top: cannot read %s\n", flight_path.c_str());
      return 2;
    }
    const int rc = render_flight_file(*text);
    if (rc != 0 || health_path.empty()) return rc;
    std::printf("\n");
  }

  auto render_once = [&]() -> int {
    const auto text = read_file(health_path);
    if (!text.has_value()) {
      std::fprintf(stderr, "telea_top: cannot read %s\n", health_path.c_str());
      return 2;
    }
    const auto snap = last_json_line(*text);
    if (!snap.has_value()) {
      std::fprintf(stderr, "telea_top: no parsable snapshot in %s\n",
                   health_path.c_str());
      return 1;
    }
    std::map<double, std::vector<double>> sparks;
    if (!timeline_path.empty()) {
      const auto timeline_text = read_file(timeline_path);
      if (!timeline_text.has_value()) {
        std::fprintf(stderr, "telea_top: cannot read %s\n",
                     timeline_path.c_str());
        return 2;
      }
      sparks = load_sparks(*timeline_text, spark_metric);
      if (sparks.empty()) {
        std::fprintf(stderr,
                     "telea_top: no node-labeled '%s' series in %s\n",
                     spark_metric.c_str(), timeline_path.c_str());
      }
    }
    render_snapshot(*snap, limit, sparks, spark_metric);
    return 0;
  };

  int rc = render_once();
  if (!watch || rc == 2) return rc;

  // Follow mode: re-render whenever the file grows. Uses file size, not
  // wall-clock content timestamps, so it stays within the repo's
  // no-wall-clock-entropy lint discipline.
  std::error_code ec;
  auto last_size = std::filesystem::file_size(health_path, ec);
  for (;;) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(interval_s * 1000.0)));
    const auto size = std::filesystem::file_size(health_path, ec);
    if (ec || size == last_size) continue;
    last_size = size;
    std::printf("\n");
    rc = render_once();
    if (rc == 2) return rc;
  }
}
