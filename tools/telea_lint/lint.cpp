#include "telea_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace telea::lint {

namespace fs = std::filesystem;

namespace {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// Every .cpp/.hpp under root/<dir> for each scan dir, root-relative, sorted
/// for deterministic output. Skips anything under a directory named "build".
std::vector<std::string> collect_sources(const fs::path& root,
                                         const std::vector<std::string>& dirs) {
  std::vector<std::string> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && it->path().filename() == "build") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !has_cxx_extension(it->path())) continue;
      files.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool exempt(const std::string& file, const std::vector<std::string>& list) {
  return std::find(list.begin(), list.end(), file) != list.end();
}

/// First occurrence of `word` in `text` at word boundaries, from `from`.
std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from = 0) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_word(text[after]);
    if (left_ok && right_ok) return pos;
  }
  return std::string_view::npos;
}

}  // namespace

std::vector<EnumSpec> default_enum_specs() {
  return {
      {"TraceEvent", "src/stats/trace.hpp", "src/stats/trace.cpp",
       "trace_event_name", "trace_event_from_name"},
      {"TraceReason", "src/stats/trace.hpp", "src/stats/trace.cpp",
       "trace_reason_name", "trace_reason_from_name"},
      {"InvariantRule", "src/check/invariants.hpp", "src/check/invariants.cpp",
       "invariant_rule_name", "invariant_rule_from_name"},
      {"CommandOutcome", "src/harness/controller.hpp",
       "src/harness/controller.cpp", "command_outcome_name", ""},
      {"FlightEvent", "src/core/flight_recorder.hpp",
       "src/core/flight_recorder.cpp", "flight_event_name", ""},
  };
}

std::vector<LayerSpec> default_layer_specs() {
  // The realized architecture (docs/STATIC_ANALYSIS.md carries the diagram):
  // util and sim are foundations; radio sits on them; stats (trace/metrics)
  // is observability plumbing below every protocol layer; mac, then net,
  // then the TeleAdjusting core and the baseline protos; check audits core
  // state; harness composes everything. tools/tests/examples/bench may
  // depend on anything — nothing in src/ may depend on them.
  return {
      {"util", {}},
      {"sim", {"util"}},
      {"radio", {"util", "sim"}},
      {"topo", {"util", "sim", "radio"}},
      {"stats", {"util", "sim", "radio"}},
      {"mac", {"util", "sim", "radio", "stats"}},
      {"net", {"util", "sim", "radio", "stats", "mac"}},
      {"proto", {"util", "sim", "radio", "stats", "mac", "net"}},
      {"core", {"util", "sim", "radio", "stats", "mac", "net"}},
      {"check", {"util", "sim", "radio", "stats", "mac", "net", "core"}},
      {"harness",
       {"util", "sim", "radio", "stats", "mac", "net", "proto", "core",
        "check", "topo"}},
  };
}

std::vector<SerdeSpec> default_serde_specs() {
  return {
      // The trace stream is a full round-trip codec: telea_report and the
      // span engine reload exactly what the tracer wrote.
      {"trace-jsonl", "src/stats/trace.cpp", "render_jsonl",
       "src/stats/trace.cpp", "parse_trace_jsonl", /*strict=*/true},
      // Snapshot/report renderers feed readers that may ignore informational
      // keys, but must never read a key the writer does not emit.
      {"health-snapshot", "src/stats/health.cpp", "render_snapshot_json",
       "tools/telea_top.cpp", "render_snapshot", /*strict=*/false},
      {"flight-dump", "src/core/flight_recorder.cpp",
       "render_flight_dump_json", "tools/telea_top.cpp", "render_flight_file",
       /*strict=*/false},
      {"bench-table", "src/stats/table.cpp", "render_json",
       "tools/bench_compare/compare.cpp", "parse_table_json",
       /*strict=*/false},
  };
}

std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
  } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;  // keep the quote: call shapes survive
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < out.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> parse_enumerators(std::string_view header_text,
                                           std::string_view enum_name) {
  const std::string stripped = strip_comments_and_strings(header_text);
  const std::string needle = "enum class " + std::string(enum_name);
  std::size_t pos = find_word(stripped, needle);
  if (pos == std::string::npos) return {};
  const std::size_t open = stripped.find('{', pos);
  const std::size_t close = stripped.find('}', open);
  if (open == std::string::npos || close == std::string::npos) return {};

  std::vector<std::string> names;
  std::size_t i = open + 1;
  while (i < close) {
    // Each enumerator: identifier [ = initializer ] up to ',' or '}'.
    while (i < close && !is_word(stripped[i])) ++i;
    std::size_t start = i;
    while (i < close && is_word(stripped[i])) ++i;
    if (i > start) names.emplace_back(stripped.substr(start, i - start));
    // Skip any initializer expression to the enumerator separator.
    while (i < close && stripped[i] != ',') ++i;
    ++i;
  }
  return names;
}

std::vector<Finding> check_enum_strings(const Options& opts) {
  std::vector<Finding> findings;
  for (const EnumSpec& spec : opts.enums) {
    const std::string header = read_file(opts.root / spec.header);
    if (header.empty()) {
      findings.push_back({spec.header, 0, "enum-string",
                          "cannot read header declaring enum " +
                              spec.enum_name});
      continue;
    }
    const std::vector<std::string> names =
        parse_enumerators(header, spec.enum_name);
    if (names.empty()) {
      findings.push_back({spec.header, 0, "enum-string",
                          "enum " + spec.enum_name + " not found"});
      continue;
    }
    const std::string source_raw = read_file(opts.root / spec.source);
    const std::string source = strip_comments_and_strings(source_raw);
    const std::size_t fn_pos = find_word(source, spec.name_fn);
    if (fn_pos == std::string::npos) {
      findings.push_back({spec.source, 0, "enum-string",
                          "mapping function " + spec.name_fn + " not found"});
      continue;
    }
    for (const std::string& name : names) {
      const std::string case_label =
          "case " + spec.enum_name + "::" + name + ":";
      if (source.find(case_label) == std::string::npos) {
        Finding f{spec.source, line_of(source, fn_pos), "enum-string",
                  spec.enum_name + "::" + name + " has no case in " +
                      spec.name_fn + "() — its string mapping is missing"};
        f.fix_kind = "insert-enum-case";
        f.fix_args = {spec.source, spec.enum_name, name, spec.name_fn};
        findings.push_back(std::move(f));
      }
    }
    if (!spec.from_name_fn.empty()) {
      // The probe loop must be bounded on the LAST enumerator; anything else
      // means values appended later silently fail to round-trip by name.
      const std::size_t from_pos = find_word(source, spec.from_name_fn);
      if (from_pos == std::string::npos) {
        findings.push_back({spec.source, 0, "enum-string",
                            "probe function " + spec.from_name_fn +
                                " not found"});
        continue;
      }
      const std::size_t body_end = source.find("\n}", from_pos);
      const std::string_view body =
          std::string_view(source).substr(from_pos,
                                          body_end == std::string::npos
                                              ? std::string::npos
                                              : body_end - from_pos);
      const std::string bound = spec.enum_name + "::" + names.back();
      if (body.find(bound) == std::string_view::npos) {
        findings.push_back(
            {spec.source, line_of(source, from_pos), "enum-string",
             spec.from_name_fn + "() loop bound does not name the last " +
                 spec.enum_name + " enumerator (" + bound +
                 ") — newly appended values will not round-trip"});
      }
    }
  }
  return findings;
}

std::vector<Finding> check_metric_docs(const Options& opts) {
  std::vector<Finding> findings;
  const std::string doc = read_file(opts.root / opts.metrics_doc);
  if (doc.empty()) {
    findings.push_back(
        {opts.metrics_doc, 0, "metric-docs", "metrics document missing"});
    return findings;
  }
  // First registered occurrence of every metric literal, for the report.
  std::set<std::string> reported;
  static const char* kCalls[] = {".describe(", ".counter(", ".gauge(",
                                 ".histogram("};
  for (const std::string& file :
       collect_sources(opts.root, opts.metric_scan_dirs)) {
    const std::string raw = read_file(opts.root / file);
    for (const char* call : kCalls) {
      for (std::size_t pos = raw.find(call); pos != std::string::npos;
           pos = raw.find(call, pos + 1)) {
        std::size_t i = pos + std::string_view(call).size();
        while (i < raw.size() &&
               std::isspace(static_cast<unsigned char>(raw[i])) != 0) {
          ++i;
        }
        if (i >= raw.size() || raw[i] != '"') continue;  // non-literal name
        const std::size_t end = raw.find('"', i + 1);
        if (end == std::string::npos) continue;
        const std::string name = raw.substr(i + 1, end - i - 1);
        if (name.rfind("telea_", 0) != 0) continue;
        if (!reported.insert(name).second) continue;
        if (doc.find(name) == std::string::npos) {
          Finding f{file, line_of(raw, pos), "metric-docs",
                    "metric " + name + " is not documented in " +
                        opts.metrics_doc};
          f.fix_kind = "insert-metric-doc";
          f.fix_args = {opts.metrics_doc, name};
          findings.push_back(std::move(f));
        }
      }
    }
  }
  return findings;
}

std::vector<Finding> check_trace_docs(const Options& opts) {
  std::vector<Finding> findings;
  const std::string header = read_file(opts.root / opts.trace_header);
  const std::vector<std::string> enumerators =
      parse_enumerators(header, "TraceEvent");
  if (enumerators.empty()) {
    findings.push_back({opts.trace_header, 0, "trace-docs",
                        "enum TraceEvent not found"});
    return findings;
  }
  // Name strings come from the *raw* source: the case labels survive
  // stripping but the returned literals do not.
  const std::string source = read_file(opts.root / opts.trace_source);
  std::vector<std::pair<std::string, std::string>> events;  // enumerator,name
  for (const std::string& e : enumerators) {
    const std::string label = "case TraceEvent::" + e + ":";
    const std::size_t pos = source.find(label);
    if (pos == std::string::npos) continue;  // enum-string reports this
    const std::size_t open = source.find('"', pos);
    const std::size_t close =
        open == std::string::npos ? open : source.find('"', open + 1);
    if (close == std::string::npos) continue;
    events.emplace_back(e, source.substr(open + 1, close - open - 1));
  }

  const std::string doc = read_file(opts.root / opts.trace_doc);
  if (doc.empty()) {
    findings.push_back(
        {opts.trace_doc, 0, "trace-docs", "trace document missing"});
    return findings;
  }
  // The event table: starts at the markdown header row "| event ..."; rows
  // are every following line beginning with '|'. Documented names are the
  // backticked tokens of each row's first column (a cell may hold several,
  // e.g. `kill` / `revive`).
  std::set<std::string> documented;
  std::map<std::string, std::size_t> documented_line;
  const std::size_t table = doc.find("\n| event");
  if (table == std::string::npos) {
    findings.push_back({opts.trace_doc, 0, "trace-docs",
                        "event table (header row '| event ...') not found"});
    return findings;
  }
  std::size_t pos = doc.find('\n', table + 1);
  while (pos != std::string::npos && pos + 1 < doc.size() &&
         doc[pos + 1] == '|') {
    const std::size_t eol = doc.find('\n', pos + 1);
    const std::string_view line =
        std::string_view(doc).substr(pos + 1, eol == std::string::npos
                                                  ? std::string::npos
                                                  : eol - pos - 1);
    const std::size_t cell_end = line.find('|', 1);
    const std::string_view cell =
        line.substr(1, cell_end == std::string_view::npos ? std::string_view::npos
                                                          : cell_end - 1);
    for (std::size_t tick = cell.find('`'); tick != std::string_view::npos;
         tick = cell.find('`', tick + 1)) {
      const std::size_t end = cell.find('`', tick + 1);
      if (end == std::string_view::npos) break;
      const std::string token(cell.substr(tick + 1, end - tick - 1));
      if (!token.empty()) {
        documented.insert(token);
        documented_line.emplace(token, line_of(doc, pos + 1));
      }
      tick = end;
    }
    pos = eol;
  }

  for (const auto& [enumerator, name] : events) {
    if (!documented.contains(name)) {
      const std::size_t at = find_word(header, enumerator);
      Finding f{opts.trace_header,
                at == std::string::npos ? 0 : line_of(header, at),
                "trace-docs",
                "TraceEvent::" + enumerator + " (\"" + name +
                    "\") is missing from the event table in " +
                    opts.trace_doc};
      f.fix_kind = "insert-doc-row";
      f.fix_args = {opts.trace_doc, name};
      findings.push_back(std::move(f));
    }
  }
  std::set<std::string> known;
  for (const auto& [enumerator, name] : events) {
    (void)enumerator;
    known.insert(name);
  }
  for (const std::string& token : documented) {
    if (!known.contains(token)) {
      findings.push_back(
          {opts.trace_doc, documented_line[token], "trace-docs",
           "event table lists `" + token +
               "` which is not a TraceEvent name string — stale doc row?"});
    }
  }
  return findings;
}

std::vector<Finding> check_rng_discipline(const Options& opts) {
  std::vector<Finding> findings;
  static const struct {
    const char* token;
    const char* why;
  } kBans[] = {
      {"std::random_device", "non-deterministic entropy source"},
      {"random_device", "non-deterministic entropy source"},
      {"rand", "unseeded C RNG"},
      {"srand", "unseeded C RNG"},
      {"time", "wall-clock entropy"},
  };
  for (const std::string& file :
       collect_sources(opts.root, opts.rng_scan_dirs)) {
    if (exempt(file, opts.rng_exempt)) continue;
    const std::string text =
        strip_comments_and_strings(read_file(opts.root / file));
    for (const auto& ban : kBans) {
      const std::string_view token = ban.token;
      for (std::size_t pos = find_word(text, token);
           pos != std::string::npos; pos = find_word(text, token, pos + 1)) {
        // Only *calls* are entropy: require an open paren after the token
        // (so SimTime fields named `time` and the like stay legal).
        std::size_t i = pos + token.size();
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])) != 0) {
          ++i;
        }
        if (i >= text.size() || text[i] != '(') continue;
        // Qualified names other than std:: (e.g. sim.time(...)) are member
        // calls on our own types, not libc.
        if (pos >= 1 && (text[pos - 1] == '.' || text[pos - 1] == '>')) {
          continue;
        }
        if (pos >= 2 && text[pos - 1] == ':' && text[pos - 2] == ':') {
          const std::size_t qual_end = pos - 2;
          const std::size_t qual_start = [&] {
            std::size_t s = qual_end;
            while (s > 0 && is_word(text[s - 1])) --s;
            return s;
          }();
          if (text.substr(qual_start, qual_end - qual_start) != "std") {
            continue;
          }
        }
        findings.push_back(
            {file, line_of(text, pos), "rng",
             std::string(token) + "() is banned (" + ban.why +
                 "); derive randomness from the seeded sim RNG "
                 "(src/util/rng.hpp) instead"});
      }
    }
  }
  return findings;
}

std::vector<Finding> check_field_widths(const Options& opts) {
  std::vector<Finding> findings;
  static const char* kCasts[] = {"static_cast<std::uint8_t>",
                                 "static_cast<std::uint16_t>",
                                 "static_cast<uint8_t>",
                                 "static_cast<uint16_t>"};
  for (const std::string& file :
       collect_sources(opts.root, opts.field_scan_dirs)) {
    if (exempt(file, opts.field_exempt)) continue;
    const std::string text =
        strip_comments_and_strings(read_file(opts.root / file));
    for (const char* cast : kCasts) {
      for (std::size_t pos = text.find(cast); pos != std::string::npos;
           pos = text.find(cast, pos + 1)) {
        findings.push_back(
            {file, line_of(text, pos), "field-width",
             std::string(cast) + " narrows a packet field unchecked; use "
                                 "telea::field::u8/u16 (saturating) or "
                                 "wrap_u8/wrap_u16 (modular) from "
                                 "util/field.hpp"});
      }
    }
  }
  return findings;
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"enum-string", true,
       "name-mapped enums: every enumerator has a *_name() case; the "
       "*_from_name() probe loop is bounded on the last enumerator"},
      {"metric-docs", true,
       "every telea_* metric registered in src/ is documented in "
       "docs/OBSERVABILITY.md"},
      {"trace-docs", true,
       "TraceEvent name strings match the docs/OBSERVABILITY.md event table "
       "in both directions"},
      {"rng", false,
       "no unseeded entropy (rand/srand/time/std::random_device) outside "
       "src/util/rng.*"},
      {"field-width", false,
       "packet-field narrowing uses util/field.hpp helpers, never raw "
       "static_cast<uint8_t|uint16_t>"},
      {"layering", false,
       "the src/ include graph matches the intended layer DAG: no cycles, "
       "no illegal edges, nothing depends on tools/tests"},
      {"wire-format", false,
       "size-pinned wire structs sum to their k<Name>Bytes constant, fixed "
       "headers fit kMaxPayloadBytes, serialize/parse pairs agree on keys"},
      {"code-arith", false,
       "BitString/path-code capacity mutators outside path_code/addressing "
       "must consume their overflow result (static addr.code_bounds)"},
  };
  return kRules;
}

SourceIndex build_semantic_index(const Options& opts) {
  return build_source_index(opts.root, {"src", "tools", "examples", "bench"});
}

std::optional<std::vector<Finding>> run_rule(std::string_view rule,
                                             const Options& opts) {
  if (rule == "enum-string") return check_enum_strings(opts);
  if (rule == "metric-docs") return check_metric_docs(opts);
  if (rule == "trace-docs") return check_trace_docs(opts);
  if (rule == "rng") return check_rng_discipline(opts);
  if (rule == "field-width") return check_field_widths(opts);
  if (rule == "layering") return check_layering(opts);
  if (rule == "wire-format") return check_wire_format(opts);
  if (rule == "code-arith") return check_code_arith(opts);
  return std::nullopt;
}

std::vector<Finding> run_all(const Options& opts) {
  std::vector<Finding> all = check_enum_strings(opts);
  for (auto&& f : check_metric_docs(opts)) all.push_back(std::move(f));
  for (auto&& f : check_trace_docs(opts)) all.push_back(std::move(f));
  for (auto&& f : check_rng_discipline(opts)) all.push_back(std::move(f));
  for (auto&& f : check_field_widths(opts)) all.push_back(std::move(f));
  // The semantic families share one index build.
  const SourceIndex index = build_semantic_index(opts);
  for (auto&& f : check_layering(opts, index)) all.push_back(std::move(f));
  for (auto&& f : check_wire_format(opts, index)) all.push_back(std::move(f));
  for (auto&& f : check_code_arith(opts, index)) all.push_back(std::move(f));
  annotate_fingerprints(opts.root, all);
  return all;
}

}  // namespace telea::lint
