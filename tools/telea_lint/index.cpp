#include "telea_lint/index.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace telea::lint {

namespace fs = std::filesystem;

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool has_cxx_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

/// A preprocessor directive occupies its logical line; the tokenizer handles
/// `#include` and `#pragma pack` itself and skips the rest.
struct Directive {
  std::string_view name;   // "include", "pragma", ...
  std::string_view rest;   // everything after the name, trimmed left
};

std::string_view ltrim(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  return s.substr(i);
}

}  // namespace

const StructDecl* FileIndex::find_struct(std::string_view name) const {
  for (const auto& s : structs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const ConstDecl* FileIndex::find_constant(std::string_view name) const {
  for (const auto& c : constants) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const FunctionDecl* FileIndex::find_function(std::string_view name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FileIndex* SourceIndex::file(std::string_view path) const {
  const auto it = files.find(std::string(path));
  return it == files.end() ? nullptr : &it->second;
}

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    if (c == '/' && next == '/') {  // line comment
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {  // block comment
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    if (c == '"') {  // string literal; token text = raw content, escapes kept
      const std::size_t start_line = line;
      std::string content;
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) {
          content.push_back(text[i]);
          content.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '\n') {
          ++line;  // unterminated — bail at EOL, keep what we have
          break;
        }
        content.push_back(text[i]);
        ++i;
      }
      if (i < n && text[i] == '"') ++i;
      out.push_back({Token::Kind::kString, std::move(content), start_line});
      continue;
    }
    if (c == '\'') {  // char literal
      const std::size_t start_line = line;
      std::string content;
      ++i;
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) {
          content.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        content.push_back(text[i]);
        ++i;
      }
      if (i < n && text[i] == '\'') ++i;
      out.push_back({Token::Kind::kChar, std::move(content), start_line});
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t j = i;
      while (j < n && is_ident(text[j])) ++j;
      out.push_back(
          {Token::Kind::kIdent, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      // Number: digits, hex prefix, suffixes, '.', exponent signs, and '
      std::size_t j = i;
      while (j < n && (is_ident(text[j]) || text[j] == '.' || text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.push_back(
          {Token::Kind::kNumber, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Punctuator: single character (multi-char operators stay split; the
    // rules only ever look for single-char shapes plus "::" as two colons).
    out.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

namespace {

/// Evaluates the constant-expression tokens [begin, end): integer literals,
/// previously evaluated constants, + - * / and parentheses. Returns nullopt
/// on anything else (the constant is then simply not indexed).
class ConstEval {
 public:
  ConstEval(const std::vector<Token>& toks, std::size_t begin, std::size_t end,
            const std::vector<ConstDecl>& known)
      : toks_(toks), pos_(begin), end_(end), known_(known) {}

  std::optional<long long> eval() {
    const auto v = expr();
    if (!v.has_value() || pos_ != end_) return std::nullopt;
    return v;
  }

 private:
  std::optional<long long> expr() {
    auto lhs = term();
    while (lhs.has_value() && pos_ < end_ && toks_[pos_].kind == Token::Kind::kPunct &&
           (toks_[pos_].text == "+" || toks_[pos_].text == "-")) {
      const bool add = toks_[pos_].text == "+";
      ++pos_;
      const auto rhs = term();
      if (!rhs.has_value()) return std::nullopt;
      lhs = add ? *lhs + *rhs : *lhs - *rhs;
    }
    return lhs;
  }

  std::optional<long long> term() {
    auto lhs = atom();
    while (lhs.has_value() && pos_ < end_ && toks_[pos_].kind == Token::Kind::kPunct &&
           (toks_[pos_].text == "*" || toks_[pos_].text == "/")) {
      const bool mul = toks_[pos_].text == "*";
      ++pos_;
      const auto rhs = atom();
      if (!rhs.has_value() || (!mul && *rhs == 0)) return std::nullopt;
      lhs = mul ? *lhs * *rhs : *lhs / *rhs;
    }
    return lhs;
  }

  std::optional<long long> atom() {
    if (pos_ >= end_) return std::nullopt;
    const Token& t = toks_[pos_];
    if (t.kind == Token::Kind::kPunct && t.text == "(") {
      ++pos_;
      const auto v = expr();
      if (!v.has_value() || pos_ >= end_ || toks_[pos_].text != ")") {
        return std::nullopt;
      }
      ++pos_;
      return v;
    }
    if (t.kind == Token::Kind::kNumber) {
      // Strip digit separators and integer suffixes; reject floats.
      std::string digits;
      for (const char c : t.text) {
        if (c == '\'') continue;
        if (c == '.') return std::nullopt;
        digits.push_back(c);
      }
      while (!digits.empty()) {
        const char back = static_cast<char>(
            std::tolower(static_cast<unsigned char>(digits.back())));
        if (back == 'u' || back == 'l' || back == 'z') {
          digits.pop_back();
        } else {
          break;
        }
      }
      char* stop = nullptr;
      const long long v = std::strtoll(digits.c_str(), &stop, 0);
      if (stop == nullptr || *stop != '\0') return std::nullopt;
      ++pos_;
      return v;
    }
    if (t.kind == Token::Kind::kIdent) {
      for (const auto& k : known_) {
        if (k.name == t.text) {
          ++pos_;
          return k.value;
        }
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  const std::vector<Token>& toks_;
  std::size_t pos_;
  const std::size_t end_;
  const std::vector<ConstDecl>& known_;
};

bool tok_is(const Token& t, std::string_view punct) {
  return t.kind == Token::Kind::kPunct && t.text == punct;
}

bool tok_ident(const Token& t, std::string_view name) {
  return t.kind == Token::Kind::kIdent && t.text == name;
}

/// Index of the token after the matching close for the open bracket at
/// `open` (which must be '{', '(' or '['). Returns toks.size() when
/// unbalanced.
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const char close = o == "{" ? '}' : (o == "(" ? ')' : ']');
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct || toks[i].text.size() != 1) {
      continue;
    }
    const char c = toks[i].text[0];
    if (c == o[0]) ++depth;
    if (c == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// Normalized type spelling of tokens [begin, end): identifiers joined,
/// "::" collapsed, template arguments kept ("std::vector<NodeId>").
std::string render_type(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kIdent || t.kind == Token::Kind::kNumber) {
      if (!out.empty() && (is_ident(out.back()) || out.back() == '>')) {
        out += ' ';
      }
      out += t.text;
    } else {
      out += t.text;
    }
  }
  return out;
}

/// Parses the fields of the struct body starting at the '{' token `open`.
/// Returns the fields and sets `end` to one past the closing '}'.
std::vector<FieldDecl> parse_struct_fields(const std::vector<Token>& toks,
                                           std::size_t open,
                                           std::size_t* end) {
  std::vector<FieldDecl> fields;
  const std::size_t close = skip_balanced(toks, open) - 1;  // the '}' itself
  *end = close + 1;
  std::size_t i = open + 1;
  while (i < close) {
    const std::size_t stmt_begin = i;
    // Collect one member declaration: up to ';' at this depth, skipping any
    // nested braces/parens/brackets (default initializers, methods, nested
    // types).
    bool saw_paren = false;      // a '(' before '=' / ';' => method, not field
    bool saw_equals = false;
    bool skip_stmt = false;      // using/static/constexpr/enum/struct/friend
    std::size_t name_tok = 0;    // last plain identifier before '=' / '[' / ';'
    std::size_t type_end = 0;    // token index where the declarator name sits
    while (i < close) {
      const Token& t = toks[i];
      if (tok_is(t, ";")) {
        ++i;
        break;
      }
      if (tok_is(t, "{") || tok_is(t, "(") || tok_is(t, "[")) {
        if (tok_is(t, "(") && !saw_equals) saw_paren = true;
        i = skip_balanced(toks, i);
        // A method body at member depth ends the statement without ';'.
        if (tok_is(t, "{") && !saw_equals) {
          skip_stmt = true;
          break;
        }
        continue;
      }
      if (t.kind == Token::Kind::kIdent) {
        if (t.text == "using" || t.text == "static" || t.text == "constexpr" ||
            t.text == "friend" || t.text == "typedef" || t.text == "enum" ||
            t.text == "struct" || t.text == "class" || t.text == "template" ||
            t.text == "public" || t.text == "private" ||
            t.text == "protected") {
          skip_stmt = true;
        }
        if (!saw_equals) {
          name_tok = i;
          type_end = i;
        }
      }
      if (tok_is(t, "=")) saw_equals = true;
      ++i;
    }
    if (skip_stmt || saw_paren || name_tok == 0 || type_end <= stmt_begin) {
      continue;
    }
    FieldDecl f;
    f.name = toks[name_tok].text;
    f.line = toks[name_tok].line;
    f.type = render_type(toks, stmt_begin, type_end);
    if (!f.type.empty()) fields.push_back(std::move(f));
  }
  return fields;
}

}  // namespace

FileIndex build_file_index(std::string path, std::string_view text) {
  FileIndex idx;
  idx.path = std::move(path);

  // Pass 1 — preprocessor lines (the tokenizer proper never sees them).
  // Scan raw text line by line for #include / #pragma pack.
  {
    std::size_t line_no = 1;
    std::size_t pos = 0;
    std::size_t pack = 0;
    std::vector<std::size_t> pack_stack;
    std::string body;  // directive lines blanked out of the token stream
    body.reserve(text.size());
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string_view::npos) eol = text.size();
      std::string_view linev = text.substr(pos, eol - pos);
      const std::string_view trimmed = ltrim(linev);
      if (!trimmed.empty() && trimmed.front() == '#') {
        const std::string_view after = ltrim(trimmed.substr(1));
        if (after.rfind("include", 0) == 0) {
          std::string_view rest = ltrim(after.substr(7));
          if (!rest.empty() && (rest.front() == '"' || rest.front() == '<')) {
            const char closec = rest.front() == '"' ? '"' : '>';
            const std::size_t endq = rest.find(closec, 1);
            if (endq != std::string_view::npos) {
              idx.includes.push_back({std::string(rest.substr(1, endq - 1)),
                                      line_no, closec == '>'});
            }
          }
        } else if (after.rfind("pragma", 0) == 0) {
          const std::string_view rest = ltrim(after.substr(6));
          if (rest.rfind("pack", 0) == 0) {
            // pack(push, N) | pack(N) | pack(pop) | pack()
            const std::size_t open = rest.find('(');
            const std::size_t closep = rest.find(')');
            if (open != std::string_view::npos &&
                closep != std::string_view::npos && closep > open) {
              const std::string args(rest.substr(open + 1, closep - open - 1));
              if (args.find("pop") != std::string::npos) {
                pack = pack_stack.empty() ? 0 : pack_stack.back();
                if (!pack_stack.empty()) pack_stack.pop_back();
              } else {
                if (args.find("push") != std::string::npos) {
                  pack_stack.push_back(pack);
                }
                std::size_t digit = args.find_first_of("0123456789");
                pack = digit == std::string::npos
                           ? 0
                           : static_cast<std::size_t>(
                                 std::strtoul(args.c_str() + digit, nullptr,
                                              10));
              }
            }
          }
        }
        // Blank the directive (and its continuations) from the token body.
        while (eol < text.size() && !linev.empty() && linev.back() == '\\') {
          body.append(linev.size(), ' ');
          body.push_back('\n');
          pos = eol + 1;
          ++line_no;
          eol = text.find('\n', pos);
          if (eol == std::string_view::npos) eol = text.size();
          linev = text.substr(pos, eol - pos);
        }
        body.append(linev.size(), ' ');
      } else {
        body.append(linev);
      }
      if (eol < text.size()) body.push_back('\n');
      pos = eol + 1;
      ++line_no;
      // Remember the pack value per line? Structs read the value in effect
      // at their declaration; we approximate by stamping the *current* pack
      // in pass 2 via a line->pack map built here.
      (void)pack;
    }
    idx.tokens = tokenize(body);

    // Rebuild the line -> pack-in-effect map for struct stamping.
    // (Second cheap raw scan; pack pragmas are rare.)
    // Stored sparsely: list of (line, pack-after-this-line).
    // For simplicity pass 2 recomputes from idx via this lambda-free copy:
    // we stash transitions in a local static-free vector below.
  }

  // Pack transitions for struct stamping.
  std::vector<std::pair<std::size_t, std::size_t>> pack_at;  // line, value
  {
    std::size_t line_no = 1;
    std::size_t pos = 0;
    std::size_t pack = 0;
    std::vector<std::size_t> pack_stack;
    while (pos < text.size()) {
      std::size_t eol = text.find('\n', pos);
      if (eol == std::string_view::npos) eol = text.size();
      const std::string_view trimmed = ltrim(text.substr(pos, eol - pos));
      if (!trimmed.empty() && trimmed.front() == '#') {
        const std::string_view after = ltrim(trimmed.substr(1));
        if (after.rfind("pragma", 0) == 0 &&
            ltrim(after.substr(6)).rfind("pack", 0) == 0) {
          const std::string_view rest = ltrim(after.substr(6));
          const std::size_t open = rest.find('(');
          const std::size_t closep = rest.find(')');
          if (open != std::string_view::npos &&
              closep != std::string_view::npos && closep > open) {
            const std::string args(rest.substr(open + 1, closep - open - 1));
            if (args.find("pop") != std::string::npos) {
              pack = pack_stack.empty() ? 0 : pack_stack.back();
              if (!pack_stack.empty()) pack_stack.pop_back();
            } else {
              if (args.find("push") != std::string::npos) {
                pack_stack.push_back(pack);
              }
              const std::size_t digit = args.find_first_of("0123456789");
              pack = digit == std::string::npos
                         ? 0
                         : static_cast<std::size_t>(std::strtoul(
                               args.c_str() + digit, nullptr, 10));
            }
            pack_at.emplace_back(line_no, pack);
          }
        }
      }
      pos = eol + 1;
      ++line_no;
    }
  }
  const auto pack_for_line = [&pack_at](std::size_t line) {
    std::size_t pack = 0;
    for (const auto& [l, v] : pack_at) {
      if (l <= line) pack = v;
    }
    return pack;
  };

  const std::vector<Token>& toks = idx.tokens;

  // Pass 2 — structs and constants.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kIdent) continue;

    if ((t.text == "struct" || t.text == "class") && i + 1 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kIdent &&
        // `enum class X` is an enum, not a class; enumerators are not fields.
        (i == 0 || !tok_ident(toks[i - 1], "enum"))) {
      // Find '{' before any ';' (else it is a forward declaration). Base
      // clauses ("struct X : Y {") are skipped over.
      std::size_t j = i + 2;
      while (j < toks.size() && !tok_is(toks[j], "{") && !tok_is(toks[j], ";")) {
        ++j;
      }
      if (j < toks.size() && tok_is(toks[j], "{")) {
        StructDecl s;
        s.name = toks[i + 1].text;
        s.line = toks[i + 1].line;
        s.pack = pack_for_line(s.line);
        std::size_t end = j + 1;
        s.fields = parse_struct_fields(toks, j, &end);
        idx.structs.push_back(std::move(s));
        // Do not skip the body: nested structs / constants inside classes
        // (rare here) still get indexed by the outer loop.
      }
      continue;
    }

    if (t.text == "constexpr") {
      // [inline] [static] constexpr <type...> kName = <expr> ;
      std::size_t j = i + 1;
      std::size_t name_tok = 0;
      while (j < toks.size() && !tok_is(toks[j], "=") && !tok_is(toks[j], ";") &&
             !tok_is(toks[j], "{") && !tok_is(toks[j], "(")) {
        if (toks[j].kind == Token::Kind::kIdent) name_tok = j;
        ++j;
      }
      if (j >= toks.size() || !tok_is(toks[j], "=") || name_tok == 0) continue;
      std::size_t expr_end = j + 1;
      while (expr_end < toks.size() && !tok_is(toks[expr_end], ";")) {
        ++expr_end;
      }
      // The initializer may carry casts we cannot evaluate — try the plain
      // expression first, then retry with a leading cast-like prefix
      // stripped ("static_cast<std::size_t>(...)" keeps only (...)).
      ConstEval ev(toks, j + 1, expr_end, idx.constants);
      auto v = ev.eval();
      if (!v.has_value() && j + 1 < expr_end &&
          toks[j + 1].kind == Token::Kind::kIdent) {
        std::size_t k = j + 1;
        while (k < expr_end && !tok_is(toks[k], "(")) ++k;
        if (k < expr_end) {
          ConstEval ev2(toks, k, expr_end, idx.constants);
          v = ev2.eval();
        }
      }
      if (v.has_value()) {
        idx.constants.push_back({toks[name_tok].text, *v,
                                 toks[name_tok].line});
      }
      i = expr_end;
      continue;
    }
  }

  // Pass 3 — function body spans. A '{' is a function body when the token
  // chain before it reads ")" [const|noexcept|override|final|mutable|->type]*
  // and we are not already inside a recorded function.
  std::size_t inside_until = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (i < inside_until || !tok_is(toks[i], "{")) continue;
    // Walk back over trailing specifiers to the ')'.
    std::size_t j = i;
    while (j > 0) {
      const Token& p = toks[j - 1];
      if (p.kind == Token::Kind::kIdent &&
          (p.text == "const" || p.text == "noexcept" || p.text == "override" ||
           p.text == "final" || p.text == "mutable" || p.text == "try")) {
        --j;
        continue;
      }
      // Trailing return type "-> T": skip "T" idents, '>', '-', ':' etc.
      // Kept minimal: this repo's serde functions use leading return types.
      break;
    }
    if (j == 0 || !tok_is(toks[j - 1], ")")) continue;
    // Find the matching '(' backwards.
    int depth = 0;
    std::size_t k = j - 1;
    while (true) {
      const Token& p = toks[k];
      if (tok_is(p, ")")) ++depth;
      if (tok_is(p, "(") && --depth == 0) break;
      if (k == 0) break;
      --k;
    }
    if (depth != 0 || k == 0) continue;
    const Token& name = toks[k - 1];
    if (name.kind != Token::Kind::kIdent) continue;
    // Control-flow headers are not functions.
    if (name.text == "if" || name.text == "for" || name.text == "while" ||
        name.text == "switch" || name.text == "catch") {
      continue;
    }
    FunctionDecl f;
    f.name = name.text;
    f.line = name.line;
    f.tok_begin = i;
    f.tok_end = skip_balanced(toks, i);
    idx.functions.push_back(f);
    inside_until = f.tok_end;
  }

  return idx;
}

SourceIndex build_source_index(const fs::path& root,
                               const std::vector<std::string>& dirs) {
  SourceIndex index;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (fs::is_regular_file(base, ec)) {
      const std::string rel = fs::path(dir).generic_string();
      index.files.emplace(rel, build_file_index(rel, read_file(base)));
      continue;
    }
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && it->path().filename() == "build") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file() || !has_cxx_extension(it->path())) continue;
      const std::string rel =
          fs::relative(it->path(), root).generic_string();
      index.files.emplace(rel, build_file_index(rel, read_file(it->path())));
    }
  }
  return index;
}

}  // namespace telea::lint
