#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// The per-file semantic index behind telea_lint's semantic rule families
/// (docs/STATIC_ANALYSIS.md). A lightweight C++ tokenizer feeds one
/// `FileIndex` per translation unit: include directives, struct field lists
/// (with wire byte widths), `constexpr` integer constants (evaluated), and
/// function body spans. All semantic rules — `layering`, `wire-format`,
/// `code-arith` — share this index instead of re-scanning text with
/// per-rule regexes, which is what makes cross-file reasoning (include
/// graphs, serialize/parse pairing, struct-vs-constant conformance)
/// possible in a compile-independent tool.
///
/// Deliberately NOT a C++ parser: no preprocessing, no templates, no
/// overload resolution. It understands exactly the shapes this repository
/// uses for wire structs, name-mapped enums and JSONL codecs, and degrades
/// to "not indexed" (never a crash, never a false parse) on anything else.
namespace telea::lint {

struct Token {
  enum class Kind : std::uint8_t {
    kIdent,   // identifier or keyword
    kNumber,  // integer / float literal (text preserved verbatim)
    kString,  // string literal; text is the *raw* content between the quotes
    kChar,    // character literal content
    kPunct,   // one operator / punctuator per token ("::" stays two tokens)
  };
  Kind kind = Kind::kPunct;
  std::string text;
  std::size_t line = 0;
};

/// One `#include` directive.
struct IncludeDecl {
  std::string target;  // as written between the delimiters
  std::size_t line = 0;
  bool angled = false;  // <...> (system) vs "..." (project)
};

/// One data member of an indexed struct.
struct FieldDecl {
  std::string type;  // normalized spelling, e.g. "std::uint16_t"
  std::string name;
  std::size_t line = 0;
};

/// One struct/class definition with its instance fields in declaration
/// order. `pack` records the innermost `#pragma pack(N)` in effect at the
/// definition (0 = natural alignment).
struct StructDecl {
  std::string name;
  std::size_t line = 0;
  std::size_t pack = 0;
  std::vector<FieldDecl> fields;
};

/// One evaluated `constexpr` integral constant (`kHealthReportBytes = 8`,
/// including constants derived from earlier ones in the same file).
struct ConstDecl {
  std::string name;
  long long value = 0;
  std::size_t line = 0;
};

/// One function (or method) definition: name plus the token span of its
/// body, used for call-site and string-key extraction.
struct FunctionDecl {
  std::string name;        // unqualified: "parse_trace_jsonl", "render_jsonl"
  std::size_t line = 0;
  std::size_t tok_begin = 0;  // index of the body's opening '{'
  std::size_t tok_end = 0;    // index one past the matching '}'
};

struct FileIndex {
  std::string path;  // repo-root-relative
  std::vector<Token> tokens;
  std::vector<IncludeDecl> includes;
  std::vector<StructDecl> structs;
  std::vector<ConstDecl> constants;
  std::vector<FunctionDecl> functions;

  [[nodiscard]] const StructDecl* find_struct(std::string_view name) const;
  [[nodiscard]] const ConstDecl* find_constant(std::string_view name) const;
  [[nodiscard]] const FunctionDecl* find_function(std::string_view name) const;
};

/// Tokenizes `text` (comments skipped, newlines counted for line numbers).
[[nodiscard]] std::vector<Token> tokenize(std::string_view text);

/// Builds the full index for one file's text.
[[nodiscard]] FileIndex build_file_index(std::string path,
                                         std::string_view text);

/// The multi-file index the semantic rules run against.
struct SourceIndex {
  // root-relative path -> index, ordered (deterministic findings).
  std::map<std::string, FileIndex> files;

  [[nodiscard]] const FileIndex* file(std::string_view path) const;
};

/// Indexes every .cpp/.hpp under root/<dir> for each scan dir. Missing
/// directories are skipped; unreadable files yield empty indexes.
[[nodiscard]] SourceIndex build_source_index(
    const std::filesystem::path& root, const std::vector<std::string>& dirs);

}  // namespace telea::lint
