#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "telea_lint/lint.hpp"

/// Finding identity, baseline workflow, SARIF rendering and the mtime+hash
/// incremental cache.
namespace telea::lint {

namespace fs = std::filesystem;

namespace {

std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t seed = 1469598103934665603ULL) {
  std::uint64_t h = seed;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

/// The finding's source line with all whitespace removed, so fingerprints
/// survive reformatting. Empty when the finding has no line (line == 0).
std::string normalized_line(const fs::path& root, const Finding& f) {
  if (f.line == 0) return {};
  std::ifstream in(root / f.file);
  if (!in) return {};
  std::string line;
  for (std::size_t n = 0; n < f.line && std::getline(in, line); ++n) {
  }
  std::string out;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) out += c;
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void annotate_fingerprints(const fs::path& root,
                           std::vector<Finding>& findings) {
  for (Finding& f : findings) {
    std::uint64_t h = fnv1a64(f.rule);
    h = fnv1a64(f.file, h);
    h = fnv1a64(normalized_line(root, f), h);
    h = fnv1a64(f.message, h);
    f.fingerprint = hex64(h);
  }
}

std::optional<std::vector<std::string>> load_baseline(const fs::path& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::vector<std::string> fingerprints;
  std::string line;
  while (std::getline(in, line)) {
    // First whitespace-delimited field is the fingerprint; the rest of the
    // line is human context and may drift without invalidating the entry.
    std::size_t start = 0;
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])) != 0) {
      ++start;
    }
    if (start == line.size() || line[start] == '#') continue;
    std::size_t end = start;
    while (end < line.size() &&
           std::isspace(static_cast<unsigned char>(line[end])) == 0) {
      ++end;
    }
    fingerprints.push_back(line.substr(start, end - start));
  }
  return fingerprints;
}

bool write_baseline(const fs::path& path,
                    const std::vector<Finding>& findings) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# telea_lint baseline — accepted findings, one per line.\n"
      << "# <fingerprint> <rule> <file> <message>\n"
      << "# Regenerate with: telea_lint --write-baseline " << path.filename()
      << "\n";
  for (const Finding& f : findings) {
    out << f.fingerprint << ' ' << f.rule << ' ' << f.file << ' ' << f.message
        << '\n';
  }
  return static_cast<bool>(out);
}

BaselineDiff apply_baseline(const std::vector<Finding>& findings,
                            const std::vector<std::string>& baseline) {
  BaselineDiff diff;
  const std::set<std::string> accepted(baseline.begin(), baseline.end());
  std::set<std::string> seen;
  for (const Finding& f : findings) {
    if (accepted.contains(f.fingerprint)) {
      ++diff.suppressed;
      seen.insert(f.fingerprint);
    } else {
      diff.active.push_back(f);
    }
  }
  for (const std::string& fp : baseline) {
    if (!seen.contains(fp)) diff.stale.push_back(fp);
  }
  return diff;
}

std::string render_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"telea_lint\",\n"
      << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo>& rules = rule_registry();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out << "            {\"id\": \"" << rules[i].name
        << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rules[i].description) << "\"}}"
        << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  out << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"error\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": "
        << (f.line == 0 ? 1 : f.line) << "}}}],\n"
        << "          \"partialFingerprints\": {\"teleaLint/v1\": \""
        << f.fingerprint << "\"}\n"
        << "        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// incremental cache
// ---------------------------------------------------------------------------

namespace {

struct CacheEntry {
  long long mtime = 0;
  long long size = 0;
  std::string hash;
};

/// v1 cache layout, line-oriented:
///   telea-lint-cache v1
///   tree <digest>
///   file <mtime> <size> <hash> <path>      (repeated)
///   finding <fp>\t<rule>\t<line>\t<file>\t<message>   (repeated)
constexpr std::string_view kCacheMagic = "telea-lint-cache v1";

std::vector<std::string> lint_files(const Options& opts) {
  static const char* kDirs[] = {"src", "tools", "examples", "bench", "tests",
                                "docs"};
  std::vector<std::string> files;
  for (const char* dir : kDirs) {
    const fs::path base = opts.root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
          ext == ".md") {
        files.push_back(
            fs::relative(it->path(), opts.root).generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string content_hash(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return "0";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string s = buf.str();
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return hex64(h);
}

long long mtime_of(const fs::path& p) {
  std::error_code ec;
  const auto t = fs::last_write_time(p, ec);
  if (ec) return 0;
  return static_cast<long long>(t.time_since_epoch().count());
}

long long size_of(const fs::path& p) {
  std::error_code ec;
  const auto s = fs::file_size(p, ec);
  return ec ? 0 : static_cast<long long>(s);
}

}  // namespace

CacheResult run_all_cached(const Options& opts, const fs::path& cache) {
  // Load the previous run, if any.
  std::map<std::string, CacheEntry> old_entries;
  std::string old_tree;
  std::vector<Finding> old_findings;
  {
    std::ifstream in(cache);
    std::string line;
    if (in && std::getline(in, line) && line == kCacheMagic) {
      while (std::getline(in, line)) {
        std::istringstream row(line);
        std::string tag;
        row >> tag;
        if (tag == "tree") {
          row >> old_tree;
        } else if (tag == "file") {
          CacheEntry e;
          std::string path;
          row >> e.mtime >> e.size >> e.hash;
          std::getline(row, path);
          if (!path.empty() && path.front() == ' ') path.erase(0, 1);
          old_entries[path] = e;
        } else if (tag == "finding") {
          std::string rest = line.substr(tag.size());
          if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
          Finding f;
          std::size_t pos = 0;
          const auto next_field = [&rest, &pos]() {
            const std::size_t tab = rest.find('\t', pos);
            std::string field = rest.substr(
                pos, tab == std::string::npos ? std::string::npos : tab - pos);
            pos = tab == std::string::npos ? rest.size() : tab + 1;
            return field;
          };
          f.fingerprint = next_field();
          f.rule = next_field();
          try {
            f.line = std::stoul(next_field());
          } catch (...) {
            f.line = 0;
          }
          f.file = next_field();
          f.message = rest.substr(pos);
          old_findings.push_back(std::move(f));
        }
      }
    }
  }

  // Stat every lint-visible file; reuse the content hash when (mtime, size)
  // match the cached entry, re-hash otherwise.
  const std::vector<std::string> files = lint_files(opts);
  std::map<std::string, CacheEntry> entries;
  std::uint64_t tree_hash = 1469598103934665603ULL;
  for (const std::string& rel : files) {
    const fs::path p = opts.root / rel;
    CacheEntry e;
    e.mtime = mtime_of(p);
    e.size = size_of(p);
    const auto old = old_entries.find(rel);
    if (old != old_entries.end() && old->second.mtime == e.mtime &&
        old->second.size == e.size) {
      e.hash = old->second.hash;
    } else {
      e.hash = content_hash(p);
    }
    entries[rel] = e;
    tree_hash = fnv1a64(rel, tree_hash);
    tree_hash = fnv1a64(e.hash, tree_hash);
  }
  const std::string tree = hex64(tree_hash);

  if (tree == old_tree && !old_tree.empty()) {
    return {true, std::move(old_findings)};
  }

  CacheResult result;
  result.hit = false;
  result.findings = run_all(opts);

  std::ofstream out(cache);
  if (out) {
    out << kCacheMagic << "\n" << "tree " << tree << "\n";
    for (const auto& [rel, e] : entries) {
      out << "file " << e.mtime << ' ' << e.size << ' ' << e.hash << ' '
          << rel << "\n";
    }
    for (const Finding& f : result.findings) {
      out << "finding " << f.fingerprint << '\t' << f.rule << '\t' << f.line
          << '\t' << f.file << '\t' << f.message << "\n";
    }
  }
  return result;
}

}  // namespace telea::lint
