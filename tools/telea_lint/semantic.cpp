#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

#include "telea_lint/lint.hpp"

/// The semantic (index-driven) rule families: layering, wire-format,
/// code-arith. See docs/STATIC_ANALYSIS.md for the contracts each encodes.
namespace telea::lint {

namespace fs = std::filesystem;

namespace {

bool is_exempt(const std::string& file, const std::vector<std::string>& list) {
  return std::find(list.begin(), list.end(), file) != list.end();
}

/// The top-level directory component of a root-relative path ("src/net/x.hpp"
/// -> "src", "net"). Empty when the path has no such component.
std::string first_component(std::string_view path) {
  const std::size_t slash = path.find('/');
  return std::string(slash == std::string_view::npos ? path
                                                     : path.substr(0, slash));
}

std::string second_component(std::string_view path) {
  const std::size_t a = path.find('/');
  if (a == std::string_view::npos) return {};
  const std::size_t b = path.find('/', a + 1);
  return std::string(path.substr(a + 1, b == std::string_view::npos
                                            ? std::string_view::npos
                                            : b - a - 1));
}

// ---------------------------------------------------------------------------
// layering
// ---------------------------------------------------------------------------

/// Where a quoted include lands: src-relative targets resolve against
/// root/src first (the include dir every src target exports), then tools/,
/// then tests/, then the repo root.
struct ResolvedInclude {
  std::string tree;  // "src" | "tools" | "tests" | "" (unresolved/system)
  std::string path;  // root-relative path when resolved
};

ResolvedInclude resolve_include(const fs::path& root,
                                const std::string& target) {
  static const char* kTrees[] = {"src", "tools", "tests"};
  for (const char* tree : kTrees) {
    std::error_code ec;
    if (fs::exists(root / tree / target, ec)) {
      return {tree, std::string(tree) + "/" + target};
    }
  }
  std::error_code ec;
  if (fs::exists(root / target, ec)) {
    return {first_component(target), target};
  }
  return {};
}

}  // namespace

std::vector<Finding> check_layering(const Options& opts,
                                    const SourceIndex& index) {
  std::vector<Finding> findings;
  std::map<std::string, const LayerSpec*> layer_of;
  for (const LayerSpec& l : opts.layers) layer_of[l.dir] = &l;

  // File-level include graph over the governed tree, for cycle detection.
  std::map<std::string, std::vector<std::string>> graph;

  const std::string prefix = opts.layering_root + "/";
  for (const auto& [path, file] : index.files) {
    if (path.rfind(prefix, 0) != 0) continue;
    const std::string dir = second_component(path);
    const auto layer = layer_of.find(dir);
    if (layer == layer_of.end()) {
      findings.push_back(
          {path, 0, "layering",
           "directory " + prefix + dir +
               " is not in the layering spec — add it to the DAG in "
               "docs/STATIC_ANALYSIS.md and the lint layer table"});
      continue;
    }
    for (const IncludeDecl& inc : file.includes) {
      if (inc.angled) continue;  // system headers are outside the DAG
      const ResolvedInclude res = resolve_include(opts.root, inc.target);
      if (res.tree.empty()) continue;  // not a project header
      if (res.tree != opts.layering_root) {
        findings.push_back(
            {path, inc.line, "layering",
             "include chain " + path + " -> " + res.path + ": " + prefix +
                 dir + " must not depend on " + res.tree +
                 "/ (nothing in " + prefix + " may depend on tools or tests)"});
        continue;
      }
      const std::string dep_dir = second_component(res.path);
      graph[path].push_back(res.path);
      if (dep_dir == dir) continue;
      const std::vector<std::string>& allowed = layer->second->deps;
      if (std::find(allowed.begin(), allowed.end(), dep_dir) ==
          allowed.end()) {
        std::string allowed_list;
        for (const std::string& a : allowed) {
          if (!allowed_list.empty()) allowed_list += ", ";
          allowed_list += a;
        }
        findings.push_back(
            {path, inc.line, "layering",
             "include chain " + path + " -> " + res.path + ": layer '" + dir +
                 "' may only depend on {" +
                 (allowed_list.empty() ? "nothing" : allowed_list) +
                 "} — this edge inverts the intended DAG"});
      }
    }
  }

  // Cycle detection (iterative DFS, three colors). Each cycle is reported
  // once, keyed by its member set, with the full include chain printed.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::set<std::set<std::string>> seen_cycles;
  std::vector<std::string> stack;

  struct StackFrame {
    std::string node;
    std::size_t next = 0;
  };
  for (const auto& [start, _] : graph) {
    if (color[start] != 0) continue;
    std::vector<StackFrame> dfs;
    dfs.push_back({start, 0});
    color[start] = 1;
    stack.push_back(start);
    while (!dfs.empty()) {
      StackFrame& frame = dfs.back();
      const auto it = graph.find(frame.node);
      if (it == graph.end() || frame.next >= it->second.size()) {
        color[frame.node] = 2;
        stack.pop_back();
        dfs.pop_back();
        continue;
      }
      const std::string& next = it->second[frame.next++];
      if (color[next] == 1) {
        // Back edge: the cycle is the stack suffix from `next`.
        const auto at = std::find(stack.begin(), stack.end(), next);
        std::set<std::string> members(at, stack.end());
        if (seen_cycles.insert(members).second) {
          std::string chain;
          for (auto m = at; m != stack.end(); ++m) chain += *m + " -> ";
          chain += next;
          findings.push_back(
              {next, 0, "layering",
               "include cycle: " + chain +
                   " — break the cycle with a forward declaration or by "
                   "moving the shared type down a layer"});
        }
        continue;
      }
      if (color[next] == 0) {
        color[next] = 1;
        stack.push_back(next);
        dfs.push_back({next, 0});
      }
    }
  }

  return findings;
}

// ---------------------------------------------------------------------------
// wire-format
// ---------------------------------------------------------------------------

namespace {

/// Wire byte width of a field type; 0 = not a fixed-width scalar.
std::size_t wire_width(std::string_view type) {
  // Normalize away cv and std:: spelling differences.
  std::string t(type);
  const auto strip = [&t](std::string_view what) {
    for (std::size_t pos = t.find(what); pos != std::string::npos;
         pos = t.find(what)) {
      t.erase(pos, what.size());
    }
  };
  strip("const ");
  strip("std::");
  if (t == "uint8_t" || t == "int8_t" || t == "char" || t == "bool") return 1;
  if (t == "uint16_t" || t == "int16_t" || t == "NodeId") return 2;
  if (t == "uint32_t" || t == "int32_t" || t == "float") return 4;
  if (t == "uint64_t" || t == "int64_t" || t == "double") return 8;
  return 0;
}

/// JSON keys a writer emits: every `\"key\":` sequence inside the string
/// literals of the function body (the writers build escaped JSON text).
std::set<std::string> writer_keys(const FileIndex& file,
                                  const FunctionDecl& fn) {
  std::set<std::string> keys;
  for (std::size_t i = fn.tok_begin; i < fn.tok_end && i < file.tokens.size();
       ++i) {
    const Token& t = file.tokens[i];
    if (t.kind != Token::Kind::kString) continue;
    const std::string& s = t.text;  // raw content, escapes preserved
    for (std::size_t p = s.find("\\\""); p != std::string::npos;
         p = s.find("\\\"", p + 1)) {
      std::size_t q = p + 2;
      std::size_t start = q;
      while (q < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[q])) != 0 ||
              s[q] == '_')) {
        ++q;
      }
      if (q == start || q + 2 >= s.size()) continue;
      if (s.compare(q, 2, "\\\"") != 0 || s[q + 2] != ':') continue;
      keys.insert(s.substr(start, q - start));
    }
  }
  return keys;
}

/// JSON keys a reader consumes: the literal first argument of every
/// `find(" / number_or(" / string_or(" / bool_or("` call in the body.
std::set<std::string> reader_keys(const FileIndex& file,
                                  const FunctionDecl& fn) {
  static const char* kAccessors[] = {"find", "number_or", "string_or",
                                     "bool_or"};
  std::set<std::string> keys;
  for (std::size_t i = fn.tok_begin;
       i + 2 < fn.tok_end && i + 2 < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.kind != Token::Kind::kIdent) continue;
    bool accessor = false;
    for (const char* a : kAccessors) {
      if (t.text == a) accessor = true;
    }
    if (!accessor) continue;
    if (file.tokens[i + 1].kind != Token::Kind::kPunct ||
        file.tokens[i + 1].text != "(") {
      continue;
    }
    if (file.tokens[i + 2].kind == Token::Kind::kString) {
      keys.insert(file.tokens[i + 2].text);
    }
  }
  return keys;
}

std::string join_keys(const std::set<std::string>& keys) {
  std::string out;
  for (const std::string& k : keys) {
    if (!out.empty()) out += ", ";
    out += k;
  }
  return out;
}

}  // namespace

std::vector<Finding> check_wire_format(const Options& opts,
                                       const SourceIndex& index) {
  std::vector<Finding> findings;

  // 1. Size-pinned structs and the payload budget. The budget constant may
  //    live in any wire file (src/radio/packet.hpp in this tree).
  long long budget = -1;
  std::string budget_file;
  for (const auto& [path, file] : index.files) {
    bool in_wire_dir = false;
    for (const std::string& d : opts.wire_struct_dirs) {
      if (path.rfind(d + "/", 0) == 0) in_wire_dir = true;
    }
    if (!in_wire_dir) continue;
    if (const ConstDecl* c = file.find_constant(opts.payload_budget_const)) {
      budget = c->value;
      budget_file = path;
    }
  }

  for (const auto& [path, file] : index.files) {
    bool in_wire_dir = false;
    for (const std::string& d : opts.wire_struct_dirs) {
      if (path.rfind(d + "/", 0) == 0) in_wire_dir = true;
    }
    if (!in_wire_dir) continue;
    for (const StructDecl& s : file.structs) {
      const ConstDecl* pin = file.find_constant("k" + s.name + "Bytes");
      std::size_t fixed_sum = 0;
      bool all_fixed = true;
      for (const FieldDecl& f : s.fields) {
        const std::size_t w = wire_width(f.type);
        if (w == 0) {
          all_fixed = false;
          if (pin != nullptr) {
            findings.push_back(
                {path, f.line, "wire-format",
                 s.name + "." + f.name + " has no fixed wire width (" +
                     f.type + ") but k" + s.name +
                     "Bytes pins the struct to a fixed frame size"});
          }
          continue;
        }
        fixed_sum += w;
      }
      if (pin != nullptr && all_fixed &&
          fixed_sum != static_cast<std::size_t>(pin->value)) {
        findings.push_back(
            {path, s.line, "wire-format",
             s.name + " declares " + std::to_string(fixed_sum) +
                 " byte(s) of fields but k" + s.name + "Bytes = " +
                 std::to_string(pin->value) +
                 " — the struct and its documented frame size disagree"});
      }
      if (budget >= 0 && fixed_sum > static_cast<std::size_t>(budget)) {
        findings.push_back(
            {path, s.line, "wire-format",
             s.name + " fixed header sums to " + std::to_string(fixed_sum) +
                 " byte(s), exceeding " + opts.payload_budget_const + " = " +
                 std::to_string(budget) + " (" + budget_file + ")"});
      }
    }
  }

  // 2. Serialize/parse pair conformance.
  for (const SerdeSpec& spec : opts.serde) {
    const FileIndex* wfile = index.file(spec.writer_file);
    const FileIndex* rfile = index.file(spec.reader_file);
    const FunctionDecl* wfn =
        wfile == nullptr ? nullptr : wfile->find_function(spec.writer_fn);
    const FunctionDecl* rfn =
        rfile == nullptr ? nullptr : rfile->find_function(spec.reader_fn);
    if (wfn == nullptr) {
      findings.push_back({spec.writer_file, 0, "wire-format",
                          "serde pair '" + spec.name + "': writer " +
                              spec.writer_fn + "() not found"});
      continue;
    }
    if (rfn == nullptr) {
      findings.push_back({spec.reader_file, 0, "wire-format",
                          "serde pair '" + spec.name + "': reader " +
                              spec.reader_fn + "() not found"});
      continue;
    }
    const std::set<std::string> written = writer_keys(*wfile, *wfn);
    const std::set<std::string> read = reader_keys(*rfile, *rfn);
    if (written.empty()) {
      findings.push_back({spec.writer_file, wfn->line, "wire-format",
                          "serde pair '" + spec.name + "': writer " +
                              spec.writer_fn +
                              "() emits no recognizable JSON keys"});
      continue;
    }
    for (const std::string& k : read) {
      if (!written.contains(k)) {
        findings.push_back(
            {spec.reader_file, rfn->line, "wire-format",
             "serde pair '" + spec.name + "': reader " + spec.reader_fn +
                 "() reads key \"" + k + "\" which writer " + spec.writer_fn +
                 "() never writes (writes: " + join_keys(written) +
                 ") — the reader silently sees its fallback value"});
      }
    }
    if (spec.strict) {
      for (const std::string& k : written) {
        if (!read.contains(k)) {
          findings.push_back(
              {spec.writer_file, wfn->line, "wire-format",
               "serde pair '" + spec.name + "' (strict): writer " +
                   spec.writer_fn + "() writes key \"" + k + "\" that reader " +
                   spec.reader_fn +
                   "() never reads — the round-trip drops a field"});
        }
      }
    }
  }

  return findings;
}

// ---------------------------------------------------------------------------
// code-arith
// ---------------------------------------------------------------------------

namespace {

bool punct_is(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kPunct && t.text == s;
}

bool tok_ident_is(const Token& t, std::string_view s) {
  return t.kind == Token::Kind::kIdent && t.text == s;
}

}  // namespace

std::vector<Finding> check_code_arith(const Options& opts,
                                      const SourceIndex& index) {
  std::vector<Finding> findings;

  // Names with BitString/path-code type, project-wide: struct fields plus
  // per-file local/parameter declarations (`BitString x`, `PathCode& y`).
  std::set<std::string> code_fields;
  for (const auto& [path, file] : index.files) {
    for (const StructDecl& s : file.structs) {
      for (const FieldDecl& f : s.fields) {
        if (f.type.find("BitString") != std::string::npos ||
            f.type.find("PathCode") != std::string::npos) {
          code_fields.insert(f.name);
        }
      }
    }
  }

  static const char* kMutators[] = {"append", "append_bits", "push_back"};

  for (const auto& [path, file] : index.files) {
    bool in_scan = false;
    for (const std::string& d : opts.code_arith_scan_dirs) {
      if (path.rfind(d + "/", 0) == 0) in_scan = true;
    }
    if (!in_scan || is_exempt(path, opts.code_arith_exempt)) continue;

    // Local declarations of BitString/PathCode variables in this file.
    std::set<std::string> local_codes;
    const std::vector<Token>& toks = file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::kIdent ||
          (toks[i].text != "BitString" && toks[i].text != "PathCode")) {
        continue;
      }
      std::size_t j = i + 1;  // skip &, *, const between type and name
      while (j < toks.size() &&
             (punct_is(toks[j], "&") || punct_is(toks[j], "*") ||
              tok_ident_is(toks[j], "const"))) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Token::Kind::kIdent) {
        local_codes.insert(toks[j].text);
      }
    }

    for (std::size_t i = 2; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != Token::Kind::kIdent) continue;
      bool mutator = false;
      for (const char* m : kMutators) {
        if (t.text == m) mutator = true;
      }
      if (!mutator || !punct_is(toks[i + 1], "(")) continue;
      // Member call: `.name(` or `->name(`.
      std::size_t recv = 0;
      if (punct_is(toks[i - 1], ".")) {
        recv = i - 2;
      } else if (punct_is(toks[i - 1], ">") && i >= 3 &&
                 punct_is(toks[i - 2], "-")) {
        recv = i - 3;
      } else {
        continue;
      }
      const Token& r = toks[recv];
      if (r.kind != Token::Kind::kIdent) continue;  // complex receiver
      if (!code_fields.contains(r.text) && !local_codes.contains(r.text)) {
        continue;
      }
      // Walk back over the full receiver chain (a.b.c) to the expression
      // start, then classify the preceding token: a statement boundary
      // means the boolean overflow result is discarded.
      std::size_t start = recv;
      while (start >= 2 &&
             (punct_is(toks[start - 1], ".") ||
              (punct_is(toks[start - 1], ">") && punct_is(toks[start - 2], "-"))) &&
             toks[start - (punct_is(toks[start - 1], ".") ? 2 : 3)].kind ==
                 Token::Kind::kIdent) {
        start -= punct_is(toks[start - 1], ".") ? std::size_t{2}
                                                : std::size_t{3};
      }
      const bool unguarded =
          start == 0 || punct_is(toks[start - 1], ";") ||
          punct_is(toks[start - 1], "{") || punct_is(toks[start - 1], "}") ||
          punct_is(toks[start - 1], ")") ||
          tok_ident_is(toks[start - 1], "else") ||
          tok_ident_is(toks[start - 1], "do");
      if (unguarded) {
        findings.push_back(
            {path, t.line, "code-arith",
             "result of " + r.text + "." + t.text +
                 "() is discarded — BitString capacity mutations outside "
                 "path_code/addressing must check the overflow result "
                 "(static twin of the runtime addr.code_bounds invariant)"});
      }
    }
  }
  return findings;
}

// --- standalone overloads ---------------------------------------------------

std::vector<Finding> check_layering(const Options& opts) {
  return check_layering(opts, build_semantic_index(opts));
}

std::vector<Finding> check_wire_format(const Options& opts) {
  return check_wire_format(opts, build_semantic_index(opts));
}

std::vector<Finding> check_code_arith(const Options& opts) {
  return check_code_arith(opts, build_semantic_index(opts));
}

}  // namespace telea::lint
