#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telea_lint/index.hpp"

/// telea_lint: repo-specific static analysis (docs/STATIC_ANALYSIS.md).
///
/// Eight rule families, each encoding a convention or contract the compiler
/// cannot see. Five are textual (v1):
///   enum-string   every enumerator of a name-mapped enum has a case in its
///                 *_name() switch, and the *_from_name() probe loop is
///                 bounded on the enum's LAST enumerator.
///   metric-docs   every metric name registered in src/ is documented in
///                 docs/OBSERVABILITY.md.
///   trace-docs    every TraceEvent name string appears in the
///                 docs/OBSERVABILITY.md event table, and every backticked
///                 event in that table maps back to a real TraceEvent.
///   rng           no rand()/srand()/time()/std::random_device outside the
///                 seeded simulation RNG (src/util/rng.*).
///   field-width   packet-field narrowing in src/proto, src/net, src/core
///                 goes through the checked helpers in util/field.hpp.
///
/// Three are semantic (v2), built on the shared per-file index
/// (telea_lint/index.hpp):
///   layering      the src/ include graph matches the intended layer DAG
///                 (docs/STATIC_ANALYSIS.md), with no file-level include
///                 cycles and nothing in src/ depending on tools/ or tests/.
///   wire-format   size-pinned wire structs (k<Name>Bytes) sum to their
///                 documented byte count, fixed headers fit the
///                 kMaxPayloadBytes budget, and every registered
///                 serialize/parse pair writes and reads the same JSON keys.
///   code-arith    capacity-returning BitString/path-code mutations outside
///                 path_code/addressing/bitstring must consume the result —
///                 the static twin of the runtime `addr.code_bounds` rule.
///
/// Standalone on purpose: no dependency on the simulator libraries, so the
/// tool builds and runs even when the tree under analysis does not compile.
namespace telea::lint {

struct Finding {
  std::string file;  // repo-root-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
  /// Stable identity: fnv64 over rule + path + normalized content of the
  /// finding's line + message. Line-number and whitespace changes do not
  /// move it, so baselines survive unrelated edits. Filled by
  /// annotate_fingerprints() (or run_all / the CLI, which call it).
  std::string fingerprint = {};
  /// Mechanical-fix payload ("" = not auto-fixable). Kinds:
  ///   insert-enum-case   args: source file, enum, enumerator, name_fn
  ///   insert-doc-row     args: doc file, event name   (trace-docs table)
  ///   insert-metric-doc  args: doc file, metric name  (metric-docs list)
  std::string fix_kind = {};
  std::vector<std::string> fix_args = {};
};

/// A name-mapped enum under the enum-string rule.
struct EnumSpec {
  std::string enum_name;     // e.g. "TraceEvent"
  std::string header;        // file declaring the enum (root-relative)
  std::string source;        // file holding the switch / probe loop
  std::string name_fn;       // e.g. "trace_event_name"
  std::string from_name_fn;  // "" = enum has no from-name probe loop
};

/// One layer of the intended src/ dependency DAG: files under
/// src/<dir> may include src/<dir> itself plus src/<d> for d in deps.
struct LayerSpec {
  std::string dir;
  std::vector<std::string> deps;
};

/// One serialize/parse pair under the wire-format rule: the JSON keys the
/// writer emits versus the keys the reader consumes. The reader's keys must
/// always be a subset of the writer's (a key read but never written is a
/// silent-default bug); `strict` additionally requires the writer's keys to
/// all be read back (a full round-trip codec).
struct SerdeSpec {
  std::string name;         // for messages, e.g. "trace-jsonl"
  std::string writer_file;  // root-relative
  std::string writer_fn;
  std::string reader_file;
  std::string reader_fn;
  bool strict = false;
};

[[nodiscard]] std::vector<EnumSpec> default_enum_specs();
[[nodiscard]] std::vector<LayerSpec> default_layer_specs();
[[nodiscard]] std::vector<SerdeSpec> default_serde_specs();

struct Options {
  std::filesystem::path root = ".";
  std::vector<EnumSpec> enums = default_enum_specs();
  std::string metrics_doc = "docs/OBSERVABILITY.md";
  std::vector<std::string> metric_scan_dirs = {"src", "tools"};
  // trace-docs: where TraceEvent lives and which doc table must list it.
  std::string trace_header = "src/stats/trace.hpp";
  std::string trace_source = "src/stats/trace.cpp";
  std::string trace_doc = "docs/OBSERVABILITY.md";
  std::vector<std::string> rng_scan_dirs = {"src", "examples", "bench",
                                            "tools"};
  std::vector<std::string> rng_exempt = {"src/util/rng.hpp",
                                         "src/util/rng.cpp"};
  std::vector<std::string> field_scan_dirs = {"src/proto", "src/net",
                                              "src/core"};
  std::vector<std::string> field_exempt = {};

  // --- layering ---
  std::vector<LayerSpec> layers = default_layer_specs();
  std::string layering_root = "src";  // the tree the DAG governs

  // --- wire-format ---
  std::vector<std::string> wire_struct_dirs = {"src/radio", "src/proto"};
  // Named payload budget; checked when the constant exists in an indexed
  // wire file. Every wire struct's fixed-width field sum must fit it.
  std::string payload_budget_const = "kMaxPayloadBytes";
  std::vector<SerdeSpec> serde = default_serde_specs();

  // --- code-arith ---
  std::vector<std::string> code_arith_scan_dirs = {"src"};
  std::vector<std::string> code_arith_exempt = {
      "src/core/path_code.cpp",  "src/core/path_code.hpp",
      "src/core/addressing.cpp", "src/core/addressing.hpp",
      "src/util/bitstring.cpp",  "src/util/bitstring.hpp"};
};

/// Replaces comments and string/char literal contents with spaces, keeping
/// every newline so reported line numbers match the original text.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view src);

/// Enumerator names of `enum_name` as declared in `header_text`, in
/// declaration order. Empty when the enum is not found.
[[nodiscard]] std::vector<std::string> parse_enumerators(
    std::string_view header_text, std::string_view enum_name);

// --- v1 rules (textual) ---
[[nodiscard]] std::vector<Finding> check_enum_strings(const Options& opts);
[[nodiscard]] std::vector<Finding> check_metric_docs(const Options& opts);
[[nodiscard]] std::vector<Finding> check_trace_docs(const Options& opts);
[[nodiscard]] std::vector<Finding> check_rng_discipline(const Options& opts);
[[nodiscard]] std::vector<Finding> check_field_widths(const Options& opts);

// --- v2 rules (semantic, index-driven) ---
[[nodiscard]] std::vector<Finding> check_layering(const Options& opts,
                                                  const SourceIndex& index);
[[nodiscard]] std::vector<Finding> check_wire_format(const Options& opts,
                                                     const SourceIndex& index);
[[nodiscard]] std::vector<Finding> check_code_arith(const Options& opts,
                                                    const SourceIndex& index);
// Convenience overloads that build their own index (tests, --rule runs).
[[nodiscard]] std::vector<Finding> check_layering(const Options& opts);
[[nodiscard]] std::vector<Finding> check_wire_format(const Options& opts);
[[nodiscard]] std::vector<Finding> check_code_arith(const Options& opts);

/// The index the semantic rules share: every C++ file under src/, tools/,
/// examples/ and bench/ of `opts.root`.
[[nodiscard]] SourceIndex build_semantic_index(const Options& opts);

/// The rule registry, in execution order (--list-rules).
struct RuleInfo {
  const char* name;
  bool fixable;
  const char* description;  // one line
};
[[nodiscard]] const std::vector<RuleInfo>& rule_registry();

/// Runs one rule family by name; nullopt for an unknown rule.
[[nodiscard]] std::optional<std::vector<Finding>> run_rule(
    std::string_view rule, const Options& opts);

/// All rules in registry order, fingerprints annotated.
[[nodiscard]] std::vector<Finding> run_all(const Options& opts);

// --- finding identity, baselines, SARIF (report.cpp) ---

/// Fills each finding's fingerprint (reads the finding's line from disk).
void annotate_fingerprints(const std::filesystem::path& root,
                           std::vector<Finding>& findings);

/// Baseline file: one `<fingerprint> <rule> <file> <message>` per line;
/// '#' comments and blank lines ignored.
[[nodiscard]] std::optional<std::vector<std::string>> load_baseline(
    const std::filesystem::path& path);
[[nodiscard]] bool write_baseline(const std::filesystem::path& path,
                                  const std::vector<Finding>& findings);

struct BaselineDiff {
  std::vector<Finding> active;     // not in the baseline — fail the run
  std::size_t suppressed = 0;      // matched baseline entries
  std::vector<std::string> stale;  // baseline fingerprints no longer seen
};
[[nodiscard]] BaselineDiff apply_baseline(
    const std::vector<Finding>& findings,
    const std::vector<std::string>& baseline);

/// SARIF 2.1.0 document for GitHub code scanning.
[[nodiscard]] std::string render_sarif(const std::vector<Finding>& findings);

// --- incremental cache (report.cpp) ---

/// mtime+hash warm cache: per-file (mtime, size) matches reuse the cached
/// content hash; when the resulting tree digest matches the cached run, the
/// cached findings are returned without re-analysis. Any change falls back
/// to a full run (and rewrites the cache).
struct CacheResult {
  bool hit = false;
  std::vector<Finding> findings;
};
[[nodiscard]] CacheResult run_all_cached(const Options& opts,
                                         const std::filesystem::path& cache);

// --- mechanical fixes (fix.cpp) ---

/// Applies every finding with a fix payload; returns how many edits were
/// written. Callers re-run the rules afterwards to report what remains.
[[nodiscard]] std::size_t apply_fixes(const std::filesystem::path& root,
                                      const std::vector<Finding>& findings);

}  // namespace telea::lint
