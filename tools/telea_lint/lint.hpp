#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

/// telea_lint: repo-specific static analysis (docs/STATIC_ANALYSIS.md).
///
/// Four rule families, each encoding a convention the compiler cannot see:
///   enum-string   every enumerator of a name-mapped enum has a case in its
///                 *_name() switch, and the *_from_name() probe loop is
///                 bounded on the enum's LAST enumerator (appending a value
///                 without updating the loop silently breaks round-trips).
///   metric-docs   every metric name registered in src/ is documented in
///                 docs/OBSERVABILITY.md.
///   trace-docs    every TraceEvent name string appears in the
///                 docs/OBSERVABILITY.md event table — and every backticked
///                 event in that table maps back to a real TraceEvent — so
///                 span-boundary events cannot ship undocumented.
///   rng           no rand()/srand()/time()/std::random_device outside the
///                 seeded simulation RNG (src/util/rng.*) — any other entropy
///                 source breaks run reproducibility.
///   field-width   packet-field narrowing in src/proto, src/net, src/core
///                 goes through the checked helpers in util/field.hpp, never
///                 a raw static_cast<std::uint8_t|std::uint16_t>.
///
/// Standalone on purpose: no dependency on the simulator libraries, so the
/// tool builds and runs even when the tree under analysis does not compile.
namespace telea::lint {

struct Finding {
  std::string file;  // repo-root-relative path
  std::size_t line = 0;
  // "enum-string" | "metric-docs" | "trace-docs" | "rng" | "field-width"
  std::string rule;
  std::string message;
};

/// A name-mapped enum under the enum-string rule.
struct EnumSpec {
  std::string enum_name;     // e.g. "TraceEvent"
  std::string header;        // file declaring the enum (root-relative)
  std::string source;        // file holding the switch / probe loop
  std::string name_fn;       // e.g. "trace_event_name"
  std::string from_name_fn;  // "" = enum has no from-name probe loop
};

[[nodiscard]] std::vector<EnumSpec> default_enum_specs();

struct Options {
  std::filesystem::path root = ".";
  std::vector<EnumSpec> enums = default_enum_specs();
  std::string metrics_doc = "docs/OBSERVABILITY.md";
  std::vector<std::string> metric_scan_dirs = {"src", "tools"};
  // trace-docs: where TraceEvent lives and which doc table must list it.
  std::string trace_header = "src/stats/trace.hpp";
  std::string trace_source = "src/stats/trace.cpp";
  std::string trace_doc = "docs/OBSERVABILITY.md";
  std::vector<std::string> rng_scan_dirs = {"src", "examples", "bench",
                                            "tools"};
  std::vector<std::string> rng_exempt = {"src/util/rng.hpp",
                                         "src/util/rng.cpp"};
  std::vector<std::string> field_scan_dirs = {"src/proto", "src/net",
                                              "src/core"};
  std::vector<std::string> field_exempt = {};
};

/// Replaces comments and string/char literal contents with spaces, keeping
/// every newline so reported line numbers match the original text.
[[nodiscard]] std::string strip_comments_and_strings(std::string_view src);

/// Enumerator names of `enum_name` as declared in `header_text`, in
/// declaration order. Empty when the enum is not found.
[[nodiscard]] std::vector<std::string> parse_enumerators(
    std::string_view header_text, std::string_view enum_name);

[[nodiscard]] std::vector<Finding> check_enum_strings(const Options& opts);
[[nodiscard]] std::vector<Finding> check_metric_docs(const Options& opts);
[[nodiscard]] std::vector<Finding> check_trace_docs(const Options& opts);
[[nodiscard]] std::vector<Finding> check_rng_discipline(const Options& opts);
[[nodiscard]] std::vector<Finding> check_field_widths(const Options& opts);

/// All rules, in the order above.
[[nodiscard]] std::vector<Finding> run_all(const Options& opts);

}  // namespace telea::lint
