#include <cstring>
#include <iostream>
#include <string>

#include "telea_lint/lint.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: telea_lint [--root DIR] [--rule NAME]\n"
      << "  --root DIR   repository root to analyze (default: .)\n"
      << "  --rule NAME  run one rule family only: enum-string | metric-docs\n"
      << "               | trace-docs | rng | field-width (default: all)\n"
      << "Exits 0 when the tree is clean, 1 when any rule fires,\n"
      << "2 on bad invocation. Rule catalog: docs/STATIC_ANALYSIS.md\n";
}

}  // namespace

int main(int argc, char** argv) {
  telea::lint::Options opts;
  std::string rule;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rule = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "telea_lint: unknown argument '" << arg << "'\n";
      usage();
      return 2;
    }
  }

  std::vector<telea::lint::Finding> findings;
  if (rule.empty()) {
    findings = telea::lint::run_all(opts);
  } else if (rule == "enum-string") {
    findings = telea::lint::check_enum_strings(opts);
  } else if (rule == "metric-docs") {
    findings = telea::lint::check_metric_docs(opts);
  } else if (rule == "trace-docs") {
    findings = telea::lint::check_trace_docs(opts);
  } else if (rule == "rng") {
    findings = telea::lint::check_rng_discipline(opts);
  } else if (rule == "field-width") {
    findings = telea::lint::check_field_widths(opts);
  } else {
    std::cerr << "telea_lint: unknown rule '" << rule << "'\n";
    usage();
    return 2;
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (findings.empty()) {
    std::cout << "telea_lint: clean"
              << (rule.empty() ? "" : (" (" + rule + ")")) << "\n";
    return 0;
  }
  std::cout << "telea_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return 1;
}
