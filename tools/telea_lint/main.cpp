#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "telea_lint/lint.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: telea_lint [--root DIR] [--rule NAME] [--list-rules]\n"
      << "                  [--baseline FILE] [--write-baseline FILE]\n"
      << "                  [--sarif FILE] [--cache FILE] [--fix]\n"
      << "  --root DIR            repository root to analyze (default: .)\n"
      << "  --rule NAME           run one rule family only (see --list-rules)\n"
      << "  --list-rules          print the rule table and exit\n"
      << "  --baseline FILE       suppress findings whose fingerprint is in\n"
      << "                        FILE; report stale entries\n"
      << "  --write-baseline FILE accept the current findings into FILE and\n"
      << "                        exit 0\n"
      << "  --sarif FILE          also write findings as SARIF 2.1.0\n"
      << "  --cache FILE          mtime+hash incremental cache; unchanged\n"
      << "                        trees reuse the previous run's findings\n"
      << "  --fix                 apply mechanical fixes (enum cases, doc\n"
      << "                        rows), then re-run and report what remains\n"
      << "Exits 0 when the tree is clean (or fully baselined), 1 when any\n"
      << "rule fires, 2 on bad invocation. Catalog: docs/STATIC_ANALYSIS.md\n";
}

}  // namespace

int main(int argc, char** argv) {
  telea::lint::Options opts;
  std::string rule;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string cache_path;
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      rule = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--cache" && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--list-rules") {
      for (const telea::lint::RuleInfo& r : telea::lint::rule_registry()) {
        std::printf("%-12s %-5s %s\n", r.name, r.fixable ? "fix" : "-",
                    r.description);
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "telea_lint: unknown "
                << (arg.rfind("--", 0) == 0 ? "option" : "argument") << " '"
                << arg << "'\n";
      usage();
      return 2;
    }
  }

  std::vector<telea::lint::Finding> findings;
  bool cache_hit = false;
  if (!rule.empty()) {
    auto result = telea::lint::run_rule(rule, opts);
    if (!result.has_value()) {
      std::cerr << "telea_lint: unknown rule '" << rule << "'\n";
      usage();
      return 2;
    }
    findings = std::move(*result);
    telea::lint::annotate_fingerprints(opts.root, findings);
  } else if (!cache_path.empty() && !fix) {
    auto cached = telea::lint::run_all_cached(opts, cache_path);
    cache_hit = cached.hit;
    findings = std::move(cached.findings);
  } else {
    findings = telea::lint::run_all(opts);
  }

  if (fix) {
    const std::size_t applied = telea::lint::apply_fixes(opts.root, findings);
    if (applied > 0) {
      std::cout << "telea_lint: applied " << applied << " fix"
                << (applied == 1 ? "" : "es") << ", re-checking\n";
      findings = rule.empty()
                     ? telea::lint::run_all(opts)
                     : std::move(*telea::lint::run_rule(rule, opts));
      telea::lint::annotate_fingerprints(opts.root, findings);
    }
  }

  if (!write_baseline_path.empty()) {
    if (!telea::lint::write_baseline(write_baseline_path, findings)) {
      std::cerr << "telea_lint: cannot write baseline '" << write_baseline_path
                << "'\n";
      return 2;
    }
    std::cout << "telea_lint: accepted " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " into "
              << write_baseline_path << "\n";
    return 0;
  }

  std::size_t suppressed = 0;
  std::vector<std::string> stale;
  if (!baseline_path.empty()) {
    auto accepted = telea::lint::load_baseline(baseline_path);
    if (!accepted.has_value()) {
      std::cerr << "telea_lint: cannot read baseline '" << baseline_path
                << "'\n";
      return 2;
    }
    auto diff = telea::lint::apply_baseline(findings, *accepted);
    findings = std::move(diff.active);
    suppressed = diff.suppressed;
    stale = std::move(diff.stale);
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    out << telea::lint::render_sarif(findings);
    if (!out) {
      std::cerr << "telea_lint: cannot write SARIF '" << sarif_path << "'\n";
      return 2;
    }
  }

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  for (const auto& fp : stale) {
    std::cout << "telea_lint: stale baseline entry " << fp
              << " — the finding is gone; prune it from " << baseline_path
              << "\n";
  }
  if (findings.empty()) {
    std::cout << "telea_lint: clean"
              << (rule.empty() ? "" : (" (" + rule + ")"))
              << (suppressed > 0
                      ? " (" + std::to_string(suppressed) + " baselined)"
                      : "")
              << (cache_hit ? " [cached]" : "") << "\n";
    return 0;
  }
  std::cout << "telea_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s")
            << (suppressed > 0
                    ? " (" + std::to_string(suppressed) + " baselined)"
                    : "")
            << "\n";
  return 1;
}
