#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "telea_lint/lint.hpp"

/// Mechanical fixes for the rules whose remedy is a pure insertion:
/// enum-string switch cases, trace-docs table rows, metric-docs bullets.
/// Anything needing judgment (layering, wire widths) stays manual.
namespace telea::lint {

namespace fs = std::filesystem;

namespace {

std::string read_all(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_all(const fs::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

/// kControlTxDone -> "control_tx_done": the repo's enumerator naming scheme,
/// inverted. Digits attach to the preceding word (kEtx10 -> "etx10").
std::string snake_name(std::string_view enumerator) {
  std::string_view body = enumerator;
  if (body.size() > 1 && body[0] == 'k' &&
      std::isupper(static_cast<unsigned char>(body[1])) != 0) {
    body.remove_prefix(1);
  }
  std::string out;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (std::isupper(static_cast<unsigned char>(c)) != 0) {
      if (!out.empty()) out += '_';
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      out += c;
    }
  }
  return out;
}

/// Inserts `case Enum::Name: return "name";` after the last existing case of
/// the same enum (the switch body in the *_name() function).
bool fix_enum_case(const fs::path& root, const std::vector<std::string>& args) {
  if (args.size() != 4) return false;
  const std::string& source = args[0];
  const std::string& enum_name = args[1];
  const std::string& enumerator = args[2];
  std::string text = read_all(root / source);
  if (text.empty()) return false;
  const std::string label = "case " + enum_name + "::";
  const std::size_t last = text.rfind(label);
  if (last == std::string::npos) return false;
  std::size_t eol = text.find('\n', last);
  if (eol == std::string::npos) eol = text.size();
  const std::size_t bol = text.rfind('\n', last);
  const std::string indent =
      text.substr(bol + 1, last - bol - 1);  // existing case indentation
  const std::string line = "\n" + indent + "case " + enum_name +
                           "::" + enumerator + ": return \"" +
                           snake_name(enumerator) + "\";";
  text.insert(eol, line);
  return write_all(root / source, text);
}

/// Appends a row to the trace event table (first column backticked name).
bool fix_doc_row(const fs::path& root, const std::vector<std::string>& args) {
  if (args.size() != 2) return false;
  const std::string& doc = args[0];
  const std::string& event = args[1];
  std::string text = read_all(root / doc);
  const std::size_t table = text.find("\n| event");
  if (table == std::string::npos) return false;
  std::size_t pos = text.find('\n', table + 1);
  std::size_t insert_at = pos;
  while (pos != std::string::npos && pos + 1 < text.size() &&
         text[pos + 1] == '|') {
    insert_at = text.find('\n', pos + 1);
    if (insert_at == std::string::npos) insert_at = text.size();
    pos = insert_at;
  }
  const std::string row =
      "\n| `" + event + "` | — | — | TODO(--fix): describe the new event |";
  text.insert(insert_at, row);
  return write_all(root / doc, text);
}

/// Appends a bullet to the "Exported names:" metric list.
bool fix_metric_doc(const fs::path& root,
                    const std::vector<std::string>& args) {
  if (args.size() != 2) return false;
  const std::string& doc = args[0];
  const std::string& metric = args[1];
  std::string text = read_all(root / doc);
  const std::size_t anchor = text.find("Exported names:");
  if (anchor == std::string::npos) return false;
  // Walk the bullet list (lines starting "- " or indented continuations).
  std::size_t pos = text.find('\n', anchor);
  std::size_t insert_at = pos;
  while (pos != std::string::npos && pos + 1 < text.size()) {
    const char next = text[pos + 1];
    const bool list_line = next == '-' || next == ' ' || next == '\n';
    if (!list_line) break;
    if (next != '\n') {
      insert_at = text.find('\n', pos + 1);
      if (insert_at == std::string::npos) insert_at = text.size();
    }
    pos = text.find('\n', pos + 1);
  }
  const std::string bullet =
      "\n- `" + metric + "` — TODO(--fix): describe the new metric";
  text.insert(insert_at, bullet);
  return write_all(root / doc, text);
}

}  // namespace

std::size_t apply_fixes(const fs::path& root,
                        const std::vector<Finding>& findings) {
  std::size_t applied = 0;
  for (const Finding& f : findings) {
    bool ok = false;
    if (f.fix_kind == "insert-enum-case") {
      ok = fix_enum_case(root, f.fix_args);
    } else if (f.fix_kind == "insert-doc-row") {
      ok = fix_doc_row(root, f.fix_args);
    } else if (f.fix_kind == "insert-metric-doc") {
      ok = fix_metric_doc(root, f.fix_args);
    }
    if (ok) ++applied;
  }
  return applied;
}

}  // namespace telea::lint
