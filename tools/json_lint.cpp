// json_lint — validates that every file argument parses as JSON (the repo's
// own parser, so a bench artifact that this tool accepts is one every other
// consumer in the tree can read). Used by scripts/check.sh to fail the build
// on malformed bench_results/*.json. Exit code: number of invalid files.
//
//   $ ./json_lint bench_results/*.json

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_lint FILE [FILE...]\n");
    return 2;
  }
  int bad = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "json_lint: %s: cannot open\n", argv[i]);
      ++bad;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    if (!telea::JsonValue::parse(text).has_value()) {
      std::fprintf(stderr, "json_lint: %s: malformed JSON\n", argv[i]);
      ++bad;
      continue;
    }
    std::printf("json_lint: %s: ok (%zu bytes)\n", argv[i], text.size());
  }
  return bad;
}
