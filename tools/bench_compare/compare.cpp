#include "bench_compare/compare.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>

#include "util/json.hpp"

namespace telea::benchcmp {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Renders a JSON cell as a row label: strings verbatim, numbers via %g so
/// "40" and 40 produce the same key on both sides.
std::string label_of(const JsonValue& cell) {
  if (cell.type() == JsonValue::Type::kString) return cell.as_string();
  if (cell.type() == JsonValue::Type::kNumber) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", cell.as_number());
    return buf;
  }
  return "";
}

double numeric_of(const JsonValue& cell) {
  if (cell.type() == JsonValue::Type::kNumber) return cell.as_number();
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

std::optional<Table> parse_table_json(std::string_view text) {
  const auto doc = JsonValue::parse(text);
  if (!doc.has_value() || doc->type() != JsonValue::Type::kObject) {
    return std::nullopt;
  }
  const JsonValue* headers = doc->find("headers");
  const JsonValue* rows = doc->find("rows");
  if (headers == nullptr || headers->type() != JsonValue::Type::kArray ||
      rows == nullptr || rows->type() != JsonValue::Type::kArray ||
      headers->as_array().empty()) {
    return std::nullopt;
  }
  Table table;
  table.name = doc->string_or("name", "");
  for (const JsonValue& h : headers->as_array()) {
    if (h.type() != JsonValue::Type::kString) return std::nullopt;
    table.headers.push_back(h.as_string());
  }
  for (const JsonValue& row : rows->as_array()) {
    if (row.type() != JsonValue::Type::kObject) return std::nullopt;
    const JsonValue* key_cell = row.find(table.headers.front());
    table.row_labels.push_back(key_cell != nullptr ? label_of(*key_cell) : "");
    std::vector<double> cells;
    cells.reserve(table.headers.size());
    for (const std::string& h : table.headers) {
      const JsonValue* cell = row.find(h);
      cells.push_back(cell != nullptr
                          ? numeric_of(*cell)
                          : std::numeric_limits<double>::quiet_NaN());
    }
    table.values.push_back(std::move(cells));
  }
  return table;
}

std::optional<Table> load_table_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_table_json(buf.str());
}

bool lower_is_better(std::string_view header) {
  static const char* kNeedles[] = {"latency", "delay",  "duty", "p50",
                                   "p90",     "p99",    "tx",   "current",
                                   "energy",  "retries"};
  const std::string h = to_lower(header);
  for (const char* needle : kNeedles) {
    if (h.find(needle) != std::string::npos) return true;
  }
  return false;
}

void compare_tables(const Table& baseline, const Table& current,
                    const std::string& file, const CompareOptions& opts,
                    CompareReport& out) {
  ++out.files_compared;

  // Schema drift is reported once per table, not once per row. A removed
  // gated column is a hole in the gate (error); removed non-gated columns
  // and any column new in the current results are informational.
  for (std::size_t col = 1; col < baseline.headers.size(); ++col) {
    const std::string& header = baseline.headers[col];
    if (std::find(current.headers.begin(), current.headers.end(), header) !=
        current.headers.end()) {
      continue;
    }
    if (lower_is_better(header)) {
      out.errors.push_back(file + ": gated column '" + header +
                           "' missing from current results");
    } else {
      out.notes.push_back(file + ": column '" + header +
                          "' removed since the baseline");
    }
  }
  for (std::size_t col = 1; col < current.headers.size(); ++col) {
    const std::string& header = current.headers[col];
    if (std::find(baseline.headers.begin(), baseline.headers.end(), header) !=
        baseline.headers.end()) {
      continue;
    }
    out.notes.push_back(
        file + ": new column '" + header + "' has no baseline" +
        (lower_is_better(header) ? " — refresh baselines to gate it" : ""));
  }

  for (std::size_t row = 0; row < baseline.row_labels.size(); ++row) {
    const std::string& label = baseline.row_labels[row];
    const auto cur_row = std::find(current.row_labels.begin(),
                                   current.row_labels.end(), label);
    if (cur_row == current.row_labels.end()) {
      out.errors.push_back(file + ": row '" + label +
                           "' missing from current results");
      continue;
    }
    const std::size_t cur_idx =
        static_cast<std::size_t>(cur_row - current.row_labels.begin());
    for (std::size_t col = 1; col < baseline.headers.size(); ++col) {
      const std::string& header = baseline.headers[col];
      if (!lower_is_better(header)) continue;
      const double base = baseline.values[row][col];
      if (std::isnan(base) || base <= 0.0) continue;  // nothing to gate on
      const auto cur_col = std::find(current.headers.begin(),
                                     current.headers.end(), header);
      if (cur_col == current.headers.end()) {
        continue;  // already reported once at table level above
      }
      const double cur =
          current.values[cur_idx][static_cast<std::size_t>(
              cur_col - current.headers.begin())];
      if (std::isnan(cur)) {
        out.errors.push_back(file + ": row '" + label + "' column '" + header +
                             "' is not numeric in current results");
        continue;
      }
      ++out.cells_compared;
      const double change = (cur - base) / base;
      CellDelta delta{file, label, header, base, cur, change};
      if (change > opts.tolerance) {
        out.regressions.push_back(std::move(delta));
      } else if (change < -opts.tolerance) {
        out.improvements.push_back(std::move(delta));
      }
    }
  }
}

CompareReport compare_dirs(const std::string& baseline_dir,
                           const std::string& current_dir,
                           const CompareOptions& opts) {
  CompareReport report;
  std::error_code ec;
  std::vector<std::filesystem::path> baselines;
  for (const auto& entry :
       std::filesystem::directory_iterator(baseline_dir, ec)) {
    if (entry.path().extension() == ".json") {
      baselines.push_back(entry.path());
    }
  }
  if (ec) {
    report.errors.push_back("cannot read baseline dir " + baseline_dir);
    return report;
  }
  if (baselines.empty()) {
    report.errors.push_back("no *.json baselines in " + baseline_dir);
    return report;
  }
  std::sort(baselines.begin(), baselines.end());
  for (const auto& path : baselines) {
    const std::string stem = path.stem().string();
    const auto baseline = load_table_json(path.string());
    if (!baseline.has_value()) {
      report.errors.push_back(stem + ": baseline unreadable or malformed");
      continue;
    }
    const std::string cur_path =
        current_dir + "/" + path.filename().string();
    const auto current = load_table_json(cur_path);
    if (!current.has_value()) {
      report.errors.push_back(stem + ": no current result at " + cur_path);
      continue;
    }
    compare_tables(*baseline, *current, stem, opts, report);
  }

  // New result files with no baseline yet: visible but never gated.
  std::vector<std::filesystem::path> extras;
  for (const auto& entry :
       std::filesystem::directory_iterator(current_dir, ec)) {
    if (entry.path().extension() != ".json") continue;
    const auto is_baseline = [&entry](const std::filesystem::path& b) {
      return b.filename() == entry.path().filename();
    };
    if (std::none_of(baselines.begin(), baselines.end(), is_baseline)) {
      extras.push_back(entry.path());
    }
  }
  std::sort(extras.begin(), extras.end());
  for (const auto& extra : extras) {
    report.notes.push_back(extra.stem().string() +
                           ": new result without a baseline (not gated)");
  }
  return report;
}

std::string render_report(const CompareReport& report,
                          const CompareOptions& opts) {
  std::string out;
  char line[512];
  for (const CellDelta& d : report.regressions) {
    std::snprintf(line, sizeof line,
                  "REGRESSION %s [%s / %s]: %.4g -> %.4g (%+.1f%%, "
                  "tolerance %.0f%%)\n",
                  d.file.c_str(), d.row.c_str(), d.column.c_str(), d.baseline,
                  d.current, d.change * 100.0, opts.tolerance * 100.0);
    out += line;
  }
  for (const CellDelta& d : report.improvements) {
    std::snprintf(line, sizeof line,
                  "improved   %s [%s / %s]: %.4g -> %.4g (%+.1f%%) — "
                  "consider refreshing the baseline\n",
                  d.file.c_str(), d.row.c_str(), d.column.c_str(), d.baseline,
                  d.current, d.change * 100.0);
    out += line;
  }
  for (const std::string& e : report.errors) {
    out += "ERROR " + e + "\n";
  }
  for (const std::string& n : report.notes) {
    out += "note       " + n + "\n";
  }
  std::snprintf(line, sizeof line,
                "%zu file(s), %zu gated cell(s): %zu regression(s), "
                "%zu improvement(s), %zu error(s), %zu note(s)\n",
                report.files_compared, report.cells_compared,
                report.regressions.size(), report.improvements.size(),
                report.errors.size(), report.notes.size());
  out += line;
  return out;
}

}  // namespace telea::benchcmp
