#pragma once

// Benchmark regression gate (tools/bench_compare). Compares the JSON
// summaries the bench binaries emit (TextTable::render_json: {"name",
// "headers", "rows":[{header: cell}, ...]}) against a committed baseline
// set, and flags any lower-is-better cell (latency/delay/percentile/duty
// columns) that got worse by more than a tolerance. scripts/check.sh --bench
// runs pinned bench invocations and gates on this; the baselines live in
// bench/baselines/.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace telea::benchcmp {

/// One parsed bench summary table.
struct Table {
  std::string name;
  std::vector<std::string> headers;
  /// Row label (the first column's cell, rendered as text) per row.
  std::vector<std::string> row_labels;
  /// Numeric cells: values[row][col] for headers[col]; NaN = non-numeric.
  std::vector<std::vector<double>> values;
};

/// Parses a TextTable JSON document. nullopt on malformed input.
[[nodiscard]] std::optional<Table> parse_table_json(std::string_view text);

/// Loads + parses a file. nullopt when unreadable or malformed.
[[nodiscard]] std::optional<Table> load_table_json(const std::string& path);

/// Whether a column holds a lower-is-better quantity (latency, delay,
/// percentiles, duty cycle, tx counts) that the gate should watch.
/// Case-insensitive substring match.
[[nodiscard]] bool lower_is_better(std::string_view header);

struct CellDelta {
  std::string file;    // baseline file stem, e.g. "fig10_latency"
  std::string row;     // row label
  std::string column;  // header
  double baseline = 0.0;
  double current = 0.0;
  /// Relative change: (current - baseline) / baseline. Positive = worse.
  double change = 0.0;
};

struct CompareOptions {
  /// Relative worsening above this fraction is a regression.
  double tolerance = 0.10;
};

struct CompareReport {
  std::vector<CellDelta> regressions;
  /// Cells that *improved* past the tolerance — informational, a nudge to
  /// refresh the baseline so the gate stays tight.
  std::vector<CellDelta> improvements;
  std::vector<std::string> errors;  // missing/unreadable/mismatched files
  /// Informational schema drift: columns added since the baseline, non-gated
  /// columns removed, and new result files without a baseline. Never fails
  /// the gate, but keeps silently-unGated data visible in the report.
  std::vector<std::string> notes;
  std::size_t cells_compared = 0;
  std::size_t files_compared = 0;
  [[nodiscard]] bool ok() const noexcept {
    return regressions.empty() && errors.empty();
  }
};

/// Compares one current table against its baseline. Rows are matched by
/// label, columns by header. Rows present only in the baseline, and *gated*
/// columns present only in the baseline, are errors (a renamed row silently
/// skipping the gate would make the gate worthless); non-gated removed
/// columns and columns new in the current results are notes.
void compare_tables(const Table& baseline, const Table& current,
                    const std::string& file, const CompareOptions& opts,
                    CompareReport& out);

/// Compares every *.json under `baseline_dir` against its same-named
/// counterpart in `current_dir`. Extra files in `current_dir` (new benches
/// without a baseline yet) are reported as notes, not gated.
[[nodiscard]] CompareReport compare_dirs(const std::string& baseline_dir,
                                         const std::string& current_dir,
                                         const CompareOptions& opts);

/// Human-readable report (one line per finding + summary).
[[nodiscard]] std::string render_report(const CompareReport& report,
                                        const CompareOptions& opts);

}  // namespace telea::benchcmp
