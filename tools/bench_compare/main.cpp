// bench_compare — benchmark regression gate. Diffs a directory of fresh
// bench summaries (TextTable JSON, as written by bench binaries into
// $TELEA_RESULTS_DIR) against the committed baseline set and fails when any
// lower-is-better cell (latency/delay/percentiles/duty/tx/energy) worsened
// past the tolerance.
//
//   $ ./bench_compare baseline=bench/baselines current=bench_results
//
// Options (key=value):
//   baseline=DIR     committed baseline summaries (required)
//   current=DIR      freshly produced summaries (required)
//   tolerance=0.10   relative worsening allowed before failing
//
// Exit codes: 0 within tolerance; 1 regression or missing/mismatched data;
// 2 usage error.
#include <cstdio>
#include <string>

#include "bench_compare/compare.hpp"
#include "util/config.hpp"

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare baseline=DIR current=DIR "
               "[tolerance=FRACTION]\n");
  return 2;
}

int main(int argc, char** argv) {
  const telea::Config cfg = telea::Config::from_args(argc - 1, argv + 1);
  if (!cfg.positional().empty()) {
    std::fprintf(stderr, "bench_compare: unexpected argument '%s'\n",
                 cfg.positional().front().c_str());
    return usage();
  }
  const std::string baseline = cfg.get_string("baseline");
  const std::string current = cfg.get_string("current");
  telea::benchcmp::CompareOptions opts;
  opts.tolerance = cfg.get_double("tolerance", opts.tolerance);
  if (baseline.empty() || current.empty() || opts.tolerance < 0.0 ||
      !cfg.unused_keys().empty()) {
    for (const auto& key : cfg.unused_keys()) {
      std::fprintf(stderr, "bench_compare: unknown option '%s'\n",
                   key.c_str());
    }
    return usage();
  }

  const telea::benchcmp::CompareReport report =
      telea::benchcmp::compare_dirs(baseline, current, opts);
  std::printf("%s", telea::benchcmp::render_report(report, opts).c_str());
  return report.ok() ? 0 : 1;
}
