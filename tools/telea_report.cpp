// telea_report — offline span analyzer. Consumes a run's trace JSONL (as
// written by telea_sim trace=FILE or Tracer::write_jsonl) and emits:
//   (a) a per-command critical-path table naming the dominant latency
//       segment (stdout),
//   (b) aggregate latency/energy percentile tables as
//       <out>/report_<name>.json,
//   (c) a Chrome trace-event / Perfetto-loadable <out>/trace.perfetto.json
//       (tracks = nodes and commands, slices = spans).
//
//   $ ./telea_report trace=run.trace.jsonl out=bench_results name=demo
//
// Options (key=value):
//   trace=FILE        trace JSONL to analyze (required)
//   out=DIR           output directory (default bench_results)
//   name=NAME         report name -> report_<NAME>.json (default "run")
//   tx_ma= rx_ma= volts= airtime_s=   energy-model overrides
//
// Exit codes: 0 ok; 2 usage/input error; 3 span reconciliation failure
// (segment sums disagree with end-to-end latency — a mangled trace).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "stats/spans.hpp"
#include "stats/trace.hpp"
#include "util/config.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: telea_report trace=FILE [out=DIR] [name=NAME]\n"
               "                    [tx_ma=N] [rx_ma=N] [volts=N] "
               "[airtime_s=N]\n");
  return 2;
}

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  const telea::Config cfg = telea::Config::from_args(argc - 1, argv + 1);
  if (!cfg.positional().empty()) {
    std::fprintf(stderr, "telea_report: unexpected argument '%s'\n",
                 cfg.positional().front().c_str());
    return usage();
  }
  const std::string trace_path = cfg.get_string("trace", "");
  const std::string out_dir = cfg.get_string("out", "bench_results");
  const std::string name = cfg.get_string("name", "run");
  telea::SpanEnergyConfig energy;
  energy.tx_current_ma = cfg.get_double("tx_ma", energy.tx_current_ma);
  energy.rx_current_ma = cfg.get_double("rx_ma", energy.rx_current_ma);
  energy.supply_volts = cfg.get_double("volts", energy.supply_volts);
  energy.copy_airtime_s = cfg.get_double("airtime_s", energy.copy_airtime_s);
  const auto unknown = cfg.unused_keys();
  if (!unknown.empty()) {
    for (const auto& k : unknown) {
      std::fprintf(stderr, "telea_report: unknown option '%s'\n", k.c_str());
    }
    return usage();
  }
  if (trace_path.empty()) return usage();

  const auto records = telea::load_trace_jsonl(trace_path);
  if (!records.has_value()) {
    std::fprintf(stderr, "telea_report: cannot read %s\n", trace_path.c_str());
    return 2;
  }
  const auto spans = telea::build_command_spans(*records);
  if (spans.empty()) {
    std::fprintf(stderr, "telea_report: no control commands in %s\n",
                 trace_path.c_str());
    return 2;
  }

  telea::render_critical_path_table(spans, energy).print();

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const std::string report_path = out_dir + "/report_" + name + ".json";
  const std::string perfetto_path = out_dir + "/trace.perfetto.json";
  if (!write_text(report_path, telea::render_report_json(spans, energy, name)) ||
      !write_text(perfetto_path, telea::render_perfetto_json(spans))) {
    std::fprintf(stderr, "telea_report: cannot write outputs under %s\n",
                 out_dir.c_str());
    return 2;
  }
  std::printf("telea_report: wrote %s and %s (%zu commands)\n",
              report_path.c_str(), perfetto_path.c_str(), spans.size());

  const std::size_t failures = telea::count_reconcile_failures(spans);
  if (failures > 0) {
    std::fprintf(stderr,
                 "telea_report: %zu delivered command(s) failed segment-sum "
                 "reconciliation\n",
                 failures);
    return 3;
  }
  return 0;
}
