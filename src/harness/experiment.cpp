#include "harness/experiment.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace telea {

namespace {

/// True for frame types that belong to the control plane under test — what
/// Table III counts as "network-wide transmission count for delivering a
/// control packet".
bool is_control_class(const Frame& frame) noexcept {
  return std::holds_alternative<msg::ControlPacket>(frame.payload) ||
         std::holds_alternative<msg::FeedbackPacket>(frame.payload) ||
         std::holds_alternative<msg::DripMsg>(frame.payload) ||
         std::holds_alternative<msg::RplData>(frame.payload) ||
         std::holds_alternative<msg::OrplData>(frame.payload);
}

struct PendingControl {
  NodeId dest = kInvalidNode;
  int dest_hops = -1;
  SimTime sent_at = 0;
  bool delivered = false;
  SimTime delivered_at = 0;
};

}  // namespace

ControlExperimentResult run_control_experiment(
    const ControlExperimentConfig& config) {
  Network net(config.network);
  ControlExperimentResult result;
  result.protocol = config.network.protocol;
  result.wifi = config.network.wifi_interference;

  // --- bookkeeping ------------------------------------------------------------
  std::unordered_map<std::uint32_t, PendingControl> pending;  // by seqno
  std::unordered_map<std::uint32_t, std::uint32_t> drip_version_to_seq;
  std::unordered_set<std::uint32_t> e2e_acked;
  std::uint32_t next_seq = 1;

  // Per-node relay hooks feed the ATHX figure.
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    NodeStack& node = net.node(id);
    // NodeStack outlives every callback (owned by `net`); capture a pointer,
    // not the loop-local reference.
    const auto record_athx = [&result,
                              node_ptr = &node](std::uint8_t hops_so_far) {
      const int ctp_hops = node_ptr->ctp().hops();
      if (ctp_hops >= 0 && ctp_hops < 0xFF) {
        result.athx_by_hop.add(ctp_hops, hops_so_far);
      }
    };
    if (TeleAdjusting* tele = node.tele()) {
      tele->forwarding().on_claimed =
          [record_athx](const msg::ControlPacket& p) {
            record_athx(p.hops_so_far);
          };
      tele->on_control_delivered = [&, id](const msg::ControlPacket& p, bool) {
        auto it = pending.find(p.seqno);
        if (it == pending.end() || it->second.delivered) return;
        if (it->second.dest != id) return;
        it->second.delivered = true;
        it->second.delivered_at = net.sim().now();
      };
    }
    if (DripNode* drip = node.drip()) {
      drip->on_adopted = [record_athx](const msg::DripMsg& m) {
        record_athx(m.hops_so_far);
      };
      drip->on_delivered = [&, id](const msg::DripMsg& m) {
        const auto sit = drip_version_to_seq.find(m.version);
        if (sit == drip_version_to_seq.end()) return;
        auto it = pending.find(sit->second);
        if (it == pending.end() || it->second.delivered) return;
        if (it->second.dest != id) return;
        it->second.delivered = true;
        it->second.delivered_at = net.sim().now();
      };
    }
    if (OrplNode* orpl = node.orpl()) {
      orpl->on_delivered = [&, id](const msg::OrplData& d) {
        auto it = pending.find(d.seqno);
        if (it == pending.end() || it->second.delivered) return;
        if (it->second.dest != id) return;
        it->second.delivered = true;
        it->second.delivered_at = net.sim().now();
      };
    }
    if (RplNode* rpl = node.rpl()) {
      rpl->on_relayed = [record_athx](const msg::RplData& d) {
        record_athx(d.hops_so_far);
      };
      rpl->on_delivered = [&, id](const msg::RplData& d) {
        auto it = pending.find(d.seqno);
        if (it == pending.end() || it->second.delivered) return;
        if (it->second.dest != id) return;
        it->second.delivered = true;
        it->second.delivered_at = net.sim().now();
      };
    }
  }
  if (TeleAdjusting* sink_tele = net.sink().tele()) {
    sink_tele->on_e2e_ack = [&e2e_acked](std::uint32_t seqno, NodeId) {
      e2e_acked.insert(seqno);
    };
  }

  // --- warm-up -------------------------------------------------------------------
  TELEA_INFO("harness.exp") << "warm-up: " << protocol_name(result.protocol)
                            << ", " << net.size() << " nodes, "
                            << to_seconds(config.warmup) << "s";
  net.start();
  net.run_for(config.warmup);
  if (config.on_warmed_up) config.on_warmed_up(net);
  net.reset_accounting();
  TELEA_INFO("harness.exp") << "warm-up done: code coverage "
                            << net.code_coverage();

  // Count control-class transmissions (LPL send operations, not copies)
  // from here on: distinct (src, link_seq) pairs.
  std::unordered_set<std::uint64_t> control_ops;
  // add, don't set: on_warmed_up may have installed the tracing hook.
  net.medium().add_transmit_hook(
      [&control_ops](NodeId src, const Frame& frame, SimTime) {
        if (!is_control_class(frame)) return;
        control_ops.insert((static_cast<std::uint64_t>(src) << 32) |
                           frame.link_seq);
      });

  // --- workload -------------------------------------------------------------------
  TELEA_INFO("harness.exp") << "workload: " << to_seconds(config.duration)
                            << "s, control every "
                            << to_seconds(config.control_interval) << "s";
  net.start_data_collection(config.data_ipi);

  Pcg32 dest_rng(config.network.seed ^ 0xDE57ULL, 7);
  const auto node_count = static_cast<std::uint32_t>(net.size());
  const SimTime end = net.sim().now() + config.duration;

  while (net.sim().now() < end) {
    net.run_for(config.control_interval);
    if (net.sim().now() >= end) break;

    const NodeId dest =
        static_cast<NodeId>(dest_rng.uniform_in(1, node_count - 1));
    NodeStack& dest_node = net.node(dest);
    const int dest_hops = dest_node.ctp().hops() == 0xFF
                              ? -1
                              : dest_node.ctp().hops();

    PendingControl record;
    record.dest = dest;
    record.dest_hops = dest_hops;
    record.sent_at = net.sim().now();

    const std::uint32_t seq = next_seq++;
    bool injected = false;
    switch (config.network.protocol) {
      case ControlProtocol::kTele:
      case ControlProtocol::kReTele: {
        TeleAdjusting* dest_tele = dest_node.tele();
        TeleAdjusting* sink_tele = net.sink().tele();
        if (dest_tele != nullptr && sink_tele != nullptr &&
            dest_tele->addressing().has_code()) {
          // The controller knows the destination's reported path code.
          const auto assigned = sink_tele->send_control(
              dest, dest_tele->addressing().code(),
              static_cast<std::uint16_t>(seq & 0xFFFF));
          if (assigned.has_value()) {
            pending.emplace(*assigned, record);
            injected = true;
          }
        }
        break;
      }
      case ControlProtocol::kDrip: {
        const std::uint32_t version = net.sink().drip()->disseminate(
            dest, static_cast<std::uint16_t>(seq & 0xFFFF));
        drip_version_to_seq[version] = seq;
        pending.emplace(seq, record);
        injected = true;
        break;
      }
      case ControlProtocol::kRpl: {
        // A missing stored route is still a sent-and-lost control packet.
        net.sink().rpl()->send_downward(
            dest, static_cast<std::uint16_t>(seq & 0xFFFF), seq);
        pending.emplace(seq, record);
        injected = true;
        break;
      }
      case ControlProtocol::kOrpl: {
        net.sink().orpl()->send_downward(
            dest, static_cast<std::uint16_t>(seq & 0xFFFF), seq);
        pending.emplace(seq, record);
        injected = true;
        break;
      }
    }
    if (!injected) {
      // Could not even address the packet (no path code yet): count as a
      // sent-and-lost control packet, same as the testbed would observe.
      TELEA_DEBUG("harness.exp")
          << "t=" << to_seconds(net.sim().now())
          << "s could not address control #" << seq << " to node " << dest
          << " (no path code); counted as lost";
      pending.emplace(seq, record);
    }
    ++result.sent;
  }

  TELEA_INFO("harness.exp") << "drain: " << to_seconds(config.drain) << "s";
  net.run_for(config.drain);

  // --- collect -------------------------------------------------------------------
  result.duty_cycle = net.average_duty_cycle();
  result.current_ma = net.average_current_ma();
  for (const auto& [seqno, rec] : pending) {
    if (rec.dest_hops < 0) continue;
    result.pdr_by_hop.add(rec.dest_hops, rec.delivered ? 1.0 : 0.0);
    if (rec.delivered) {
      ++result.delivered;
      result.latency_by_hop.add(
          rec.dest_hops, to_seconds(rec.delivered_at - rec.sent_at));
      result.latency.add(to_seconds(rec.delivered_at - rec.sent_at));
    }
    if (e2e_acked.contains(seqno)) ++result.e2e_acked;
  }
  result.tx_per_control =
      result.sent == 0 ? 0.0
                       : static_cast<double>(control_ops.size()) /
                             static_cast<double>(result.sent);
  result.energy_uj_per_command =
      result.sent == 0
          ? 0.0
          : net.average_energy_mj() * static_cast<double>(net.size()) *
                1000.0 / static_cast<double>(result.sent);
  TELEA_INFO("harness.exp") << "done: " << result.delivered << "/"
                            << result.sent << " delivered, "
                            << result.e2e_acked << " e2e-acked, "
                            << result.tx_per_control << " tx/control";
  if (config.on_finished) config.on_finished(net);
  return result;
}

ControlExperimentResult merge_results(
    const std::vector<ControlExperimentResult>& runs) {
  ControlExperimentResult merged;
  if (runs.empty()) return merged;
  merged.protocol = runs.front().protocol;
  merged.wifi = runs.front().wifi;
  double tx = 0, duty = 0, current = 0, energy_uj = 0;
  for (const auto& r : runs) {
    merged.sent += r.sent;
    merged.delivered += r.delivered;
    merged.e2e_acked += r.e2e_acked;
    merged.pdr_by_hop.merge(r.pdr_by_hop);
    merged.latency_by_hop.merge(r.latency_by_hop);
    merged.athx_by_hop.merge(r.athx_by_hop);
    merged.latency.merge(r.latency);
    tx += r.tx_per_control;
    duty += r.duty_cycle;
    current += r.current_ma;
    // Per-command energy is a ratio of totals: weight by commands sent.
    energy_uj += r.energy_uj_per_command * static_cast<double>(r.sent);
  }
  merged.tx_per_control = tx / static_cast<double>(runs.size());
  merged.duty_cycle = duty / static_cast<double>(runs.size());
  merged.current_ma = current / static_cast<double>(runs.size());
  merged.energy_uj_per_command =
      merged.sent == 0 ? 0.0 : energy_uj / static_cast<double>(merged.sent);
  return merged;
}

}  // namespace telea
