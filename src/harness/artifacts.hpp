#pragma once

#include <mutex>
#include <set>
#include <stdexcept>
#include <string>

namespace telea {

/// Thrown when a trial tries to open an artifact output stream another live
/// trial already owns. Two simulations appending to the same JSONL file
/// silently interleave their lines — worse than failing, because the merged
/// artifact parses and *looks* plausible. CLI entry points (telea_sim) turn
/// this into exit 2; docs/PARALLELISM.md carries the contract.
class ArtifactConflictError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide set of artifact paths currently owned by live trials
/// (Network instances). This is the one deliberately-shared piece of runner
/// state: a mutex-guarded claim table whose behavior is order-independent —
/// it only ever turns a silent interleave into a loud error, so it cannot
/// perturb trial results.
class ArtifactRegistry {
 public:
  static ArtifactRegistry& instance();

  /// Claims `path` for the caller. Throws ArtifactConflictError when the
  /// path is already claimed by a live owner. Empty paths are ignored.
  void claim(const std::string& path);

  /// Releases a claim (no-op when `path` was never claimed).
  void release(const std::string& path);

  [[nodiscard]] bool claimed(const std::string& path) const;

 private:
  ArtifactRegistry() = default;

  mutable std::mutex mutex_;
  std::set<std::string> open_;
};

}  // namespace telea
