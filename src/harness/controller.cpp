#include "harness/controller.hpp"

#include "util/logging.hpp"

namespace telea {

Controller::Controller(Network& net) : net_(&net) {
  net.sink().on_sink_data = [this](const msg::CtpData& data) {
    on_sink_data(data);
  };
  if (TeleAdjusting* tele = net.sink().tele()) {
    tele->on_e2e_ack = [this](std::uint32_t seqno, NodeId) {
      acked_.push_back(seqno);
    };
  }
}

void Controller::on_sink_data(const msg::CtpData& data) {
  if (data.is_control_ack) return;
  ++arrivals_[data.origin];
  if (data.has_code_report && !data.reported_code.empty()) {
    reported_[data.origin] = data.reported_code;
  }
}

std::optional<PathCode> Controller::reported_code(NodeId node) const {
  const auto it = reported_.find(node);
  if (it == reported_.end()) return std::nullopt;
  return it->second;
}

void Controller::begin_window() { window_start_ = arrivals_; }

std::vector<NodeId> Controller::quiet_nodes(unsigned expected,
                                            unsigned floor) const {
  std::vector<NodeId> out;
  for (const auto& [node, before] : window_start_) {
    const auto now_it = arrivals_.find(node);
    const unsigned delta =
        (now_it != arrivals_.end() ? now_it->second : 0) - before;
    if (before >= expected && delta < floor) out.push_back(node);
  }
  return out;
}

unsigned Controller::reports_from(NodeId node) const {
  const auto it = arrivals_.find(node);
  return it == arrivals_.end() ? 0 : it->second;
}

std::optional<std::uint32_t> Controller::send_command(NodeId node,
                                                      std::uint16_t command) {
  TeleAdjusting* sink_tele = net_->sink().tele();
  TeleAdjusting* dest_tele =
      node < net_->size() ? net_->node(node).tele() : nullptr;
  if (sink_tele == nullptr || dest_tele == nullptr) {
    TELEA_WARN("harness.ctl")
        << "cannot command node " << node << ": no TeleAdjusting instance";
    return std::nullopt;
  }
  if (use_reported_codes_) {
    const auto code = reported_code(node);
    if (!code.has_value()) {
      TELEA_DEBUG("harness.ctl")
          << "no reported path code for node " << node << " yet";
      return std::nullopt;
    }
    return sink_tele->send_control(node, *code, command);
  }
  const auto& addressing = dest_tele->addressing();
  if (!addressing.has_code()) {
    TELEA_DEBUG("harness.ctl") << "node " << node << " has no path code yet";
    return std::nullopt;
  }
  return sink_tele->send_control(node, addressing.code(), command);
}

std::optional<std::uint32_t> Controller::send_command_group(
    const std::vector<NodeId>& nodes, std::uint16_t command) {
  TeleAdjusting* sink_tele = net_->sink().tele();
  if (sink_tele == nullptr) return std::nullopt;
  std::vector<msg::GroupDest> dests;
  for (NodeId n : nodes) {
    if (n >= net_->size()) continue;
    const TeleAdjusting* tele = net_->node(n).tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    dests.push_back(msg::GroupDest{n, tele->addressing().code()});
  }
  if (dests.empty()) {
    TELEA_DEBUG("harness.ctl")
        << "group command dropped: none of the " << nodes.size()
        << " destinations are addressable";
    return std::nullopt;
  }
  return sink_tele->send_control_group(dests, command);
}

}  // namespace telea
