#include "harness/controller.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace telea {

const char* command_outcome_name(CommandOutcome o) noexcept {
  switch (o) {
    case CommandOutcome::kAcked:
      return "acked";
    case CommandOutcome::kGaveUp:
      return "gave_up";
    case CommandOutcome::kNoCode:
      return "no_code";
  }
  return "?";
}

Controller::Controller(Network& net, ControllerRetryConfig retry)
    : net_(&net),
      retry_(retry),
      rng_(net.config().seed, /*stream=*/0xC0117ULL) {
  net.sink().on_sink_data = [this](const msg::CtpData& data) {
    on_sink_data(data);
  };
  if (TeleAdjusting* tele = net.sink().tele()) {
    tele->on_e2e_ack = [this](std::uint32_t seqno, NodeId) { on_ack(seqno); };
    tele->on_delivery_failed = [this](std::uint32_t seqno) {
      on_failed(seqno);
    };
  }
}

void Controller::on_sink_data(const msg::CtpData& data) {
  if (data.is_control_ack) return;
  ++arrivals_[data.origin];
  if (data.has_code_report && !data.reported_code.empty()) {
    reported_[data.origin] = data.reported_code;
  }
}

std::optional<PathCode> Controller::reported_code(NodeId node) const {
  const auto it = reported_.find(node);
  if (it == reported_.end()) return std::nullopt;
  return it->second;
}

void Controller::begin_window() { window_start_ = arrivals_; }

std::vector<NodeId> Controller::quiet_nodes(unsigned expected,
                                            unsigned floor) const {
  std::vector<NodeId> out;
  for (const auto& [node, before] : window_start_) {
    const auto now_it = arrivals_.find(node);
    const unsigned delta =
        (now_it != arrivals_.end() ? now_it->second : 0) - before;
    if (before >= expected && delta < floor) out.push_back(node);
  }
  return out;
}

unsigned Controller::reports_from(NodeId node) const {
  const auto it = arrivals_.find(node);
  return it == arrivals_.end() ? 0 : it->second;
}

std::optional<PathCode> Controller::address_of(NodeId node) const {
  if (use_reported_codes_) {
    return reported_code(node);
  }
  const TeleAdjusting* dest_tele =
      node < net_->size() ? net_->node(node).tele() : nullptr;
  if (dest_tele == nullptr || !dest_tele->addressing().has_code()) {
    return std::nullopt;
  }
  return dest_tele->addressing().code();
}

std::optional<std::uint32_t> Controller::send_command(NodeId node,
                                                      std::uint16_t command) {
  TeleAdjusting* sink_tele = net_->sink().tele();
  const bool dest_exists =
      node < net_->size() && net_->node(node).tele() != nullptr;
  const auto code = address_of(node);
  if (sink_tele == nullptr || !dest_exists || !code.has_value()) {
    if (sink_tele == nullptr || !dest_exists) {
      TELEA_WARN("harness.ctl")
          << "cannot command node " << node << ": no TeleAdjusting instance";
    } else {
      TELEA_DEBUG("harness.ctl") << "node " << node << " has no path code yet";
    }
    ++no_code_;
    const SimTime now = net_->sim().now();
    TELEA_TRACE_EVENT(net_->tracer(), now, kSinkNode,
                      TraceEvent::kCommandResolve, 0, node);
    if (on_command_resolved) {
      CommandResolution res;
      res.dest = node;
      res.command = command;
      res.outcome = CommandOutcome::kNoCode;
      res.issued_at = now;
      res.resolved_at = now;
      on_command_resolved(res);
    }
    return std::nullopt;
  }

  const auto seq = sink_tele->send_control(node, *code, command);
  if (!seq.has_value()) return std::nullopt;
  if (!retry_.enabled) return seq;
  // Conservation audit: the engine now expects exactly one resolution.
  if (InvariantEngine* inv = net_->invariants()) {
    inv->note_command_issued(*seq);
  }

  const std::uint64_t id = next_cmd_id_++;
  PendingCommand& cmd = pending_[id];
  cmd.dest = node;
  cmd.command = command;
  cmd.code = *code;
  cmd.first_seqno = *seq;
  cmd.last_seqno = *seq;
  cmd.issued_at = net_->sim().now();
  cmd.backoff = retry_.ack_timeout;
  seqno_to_cmd_[*seq] = id;
  arm_timeout(id, cmd.backoff);
  return seq;
}

std::optional<std::uint32_t> Controller::send_command_group(
    const std::vector<NodeId>& nodes, std::uint16_t command) {
  TeleAdjusting* sink_tele = net_->sink().tele();
  if (sink_tele == nullptr) return std::nullopt;
  std::vector<msg::GroupDest> dests;
  for (NodeId n : nodes) {
    if (n >= net_->size()) continue;
    const TeleAdjusting* tele = net_->node(n).tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    dests.push_back(msg::GroupDest{n, tele->addressing().code()});
  }
  if (dests.empty()) {
    TELEA_DEBUG("harness.ctl")
        << "group command dropped: none of the " << nodes.size()
        << " destinations are addressable";
    return std::nullopt;
  }
  return sink_tele->send_control_group(dests, command);
}

void Controller::arm_timeout(std::uint64_t id, SimTime delay) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingCommand& cmd = it->second;
  net_->sim().cancel(cmd.timeout);
  // De-synchronize concurrent retries: scale by 1 ± jitter, deterministically.
  SimTime jittered = delay;
  if (retry_.jitter > 0.0) {
    const double scale =
        rng_.uniform_real(1.0 - retry_.jitter, 1.0 + retry_.jitter);
    jittered = static_cast<SimTime>(static_cast<double>(delay) * scale);
  }
  cmd.timeout = net_->sim().schedule_in(
      jittered, [this, id] { on_timeout(id); }, "controller.retry");
}

void Controller::on_timeout(std::uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingCommand& cmd = it->second;
  const unsigned retries_done = cmd.attempts - 1;
  if (retries_done >= retry_.max_retries) {
    resolve(id, CommandOutcome::kGaveUp);
    return;
  }

  TeleAdjusting* sink_tele = net_->sink().tele();
  if (sink_tele == nullptr) {
    resolve(id, CommandOutcome::kGaveUp);
    return;
  }
  // A fresher report may have arrived since the last attempt (e.g. the
  // destination rebooted and re-announced); prefer it over the stored code.
  if (const auto code = address_of(cmd.dest); code.has_value()) {
    cmd.code = *code;
  }
  // A fresh attempt after backoff re-probes relays the previous attempt
  // marked unreachable — the same rule Forwarding applies on its own origin
  // retry (Sec. III-C3). Without this the sink can refuse to transmit until
  // the marks expire, which takes a routing beacon that may be minutes away.
  auto& neighbors = sink_tele->addressing().neighbors();
  for (const auto& entry : neighbors.entries()) {
    neighbors.mark_reachable(entry.neighbor);
  }
  ++retries_;

  // Once the plain-retry threshold is reached, alternate the detour with
  // plain re-sends: the suggested waypoint can itself be a dead end (or the
  // very fault that cleared), so neither strategy may monopolize the budget.
  const unsigned plain_retries_done = retries_done - cmd.escalations;
  bool escalated = false;
  if (plain_retries_done >= retry_.escalate_after && !cmd.last_escalated) {
    if (const auto detour = net_->suggest_detour(cmd.dest);
        detour.has_value() && detour->via != kInvalidNode) {
      TELEA_INFO("harness.ctl")
          << "t=" << to_seconds(net_->sim().now()) << "s command to node "
          << cmd.dest << " (seq " << cmd.last_seqno
          << ") escalating to Re-Tele detour via " << detour->via;
      TELEA_TRACE_EVENT(net_->tracer(), net_->sim().now(), kSinkNode,
                        TraceEvent::kCommandRetry, cmd.last_seqno, cmd.dest,
                        TraceReason::kEscalated);
      sink_tele->forwarding().send_control_detour(cmd.dest, cmd.code,
                                                  detour->via,
                                                  detour->via_code,
                                                  cmd.command, cmd.last_seqno);
      ++cmd.escalations;
      ++escalations_;
      ++cmd.attempts;
      escalated = true;
    }
  }
  if (!escalated) {
    if (const auto seq = sink_tele->send_control(cmd.dest, cmd.code,
                                                 cmd.command);
        seq.has_value()) {
      TELEA_INFO("harness.ctl")
          << "t=" << to_seconds(net_->sim().now()) << "s command to node "
          << cmd.dest << " unacked; retry " << retries_done + 1 << "/"
          << retry_.max_retries << " as seq " << *seq;
      TELEA_TRACE_EVENT(net_->tracer(), net_->sim().now(), kSinkNode,
                        TraceEvent::kCommandRetry, *seq, cmd.dest,
                        TraceReason::kAckTimeout);
      seqno_to_cmd_[*seq] = id;
      cmd.last_seqno = *seq;
      ++cmd.attempts;
    } else {
      // Even an unsendable attempt (sink mid-reconfiguration, no viable
      // first relay) consumes budget: the lifecycle must terminate.
      ++cmd.attempts;
    }
  }
  cmd.last_escalated = escalated;

  const double next = static_cast<double>(cmd.backoff) * retry_.backoff_factor;
  cmd.backoff = std::min<SimTime>(static_cast<SimTime>(next),
                                  retry_.max_backoff);
  arm_timeout(id, cmd.backoff);
}

void Controller::on_ack(std::uint32_t seqno) {
  acked_.push_back(seqno);
  const auto it = seqno_to_cmd_.find(seqno);
  if (it == seqno_to_cmd_.end()) return;
  resolve(it->second, CommandOutcome::kAcked);
}

void Controller::on_failed(std::uint32_t seqno) {
  // The forwarding plane exhausted its own recovery (backtracking + one
  // detour) for this attempt. Don't wait out the rest of the ack timeout —
  // retry shortly (not synchronously: this callback fires from inside the
  // forwarding machinery).
  const auto it = seqno_to_cmd_.find(seqno);
  if (it == seqno_to_cmd_.end()) return;
  const auto cmd_it = pending_.find(it->second);
  if (cmd_it == pending_.end()) return;
  if (cmd_it->second.last_seqno != seqno) return;  // an old attempt's corpse
  TELEA_DEBUG("harness.ctl") << "delivery failed for seq " << seqno
                             << "; starting backoff now";
  // Start the *current* backoff from the failure verdict rather than from
  // the eventual ack timeout. Never shorter: retrying a known-dead path
  // within seconds would burn the whole budget before the network heals.
  arm_timeout(it->second, cmd_it->second.backoff);
}

void Controller::resolve(std::uint64_t id, CommandOutcome outcome) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingCommand& cmd = it->second;
  net_->sim().cancel(cmd.timeout);

  CommandResolution res;
  res.dest = cmd.dest;
  res.command = cmd.command;
  res.first_seqno = cmd.first_seqno;
  res.last_seqno = cmd.last_seqno;
  res.outcome = outcome;
  res.attempts = cmd.attempts;
  res.escalations = cmd.escalations;
  res.issued_at = cmd.issued_at;
  res.resolved_at = net_->sim().now();

  if (outcome == CommandOutcome::kAcked) {
    ++resolved_acked_;
  } else if (outcome == CommandOutcome::kGaveUp) {
    ++gave_up_;
    TELEA_WARN("harness.ctl")
        << "t=" << to_seconds(res.resolved_at) << "s giving up on command to "
        << "node " << res.dest << " after " << res.attempts << " attempts ("
        << res.escalations << " escalated)";
    // Post-mortem: capture the destination's recent local decisions while
    // they are still in its ring — the give-up is exactly when an operator
    // would pull the node's log.
    net_->dump_flight(res.dest, "command_give_up");
  }
  TELEA_TRACE_EVENT(net_->tracer(), res.resolved_at, kSinkNode,
                    TraceEvent::kCommandResolve, res.last_seqno, res.dest,
                    outcome == CommandOutcome::kGaveUp
                        ? TraceReason::kBudgetExhausted
                        : TraceReason::kNone);

  for (auto sit = seqno_to_cmd_.begin(); sit != seqno_to_cmd_.end();) {
    sit = sit->second == id ? seqno_to_cmd_.erase(sit) : std::next(sit);
  }
  pending_.erase(it);
  if (InvariantEngine* inv = net_->invariants()) {
    inv->note_command_resolved(res.first_seqno);
  }
  if (on_command_resolved) on_command_resolved(res);
}

void Controller::collect_metrics(MetricsRegistry& registry) const {
  registry.describe("telea_controller_retries_total",
                    "Command re-sends after an ack timeout");
  registry.describe("telea_controller_escalations_total",
                    "Retries escalated to the Re-Tele detour path");
  registry.describe("telea_controller_gave_up_total",
                    "Commands abandoned after the retry budget");
  registry.describe("telea_controller_acked_total",
                    "Tracked commands resolved by an e2e ack");
  registry.describe("telea_controller_no_code_total",
                    "Commands rejected for lack of an addressable path code");
  registry.describe("telea_controller_pending",
                    "Commands currently awaiting an ack");
  registry.counter("telea_controller_retries_total").set_total(retries_);
  registry.counter("telea_controller_escalations_total")
      .set_total(escalations_);
  registry.counter("telea_controller_gave_up_total").set_total(gave_up_);
  registry.counter("telea_controller_acked_total").set_total(resolved_acked_);
  registry.counter("telea_controller_no_code_total").set_total(no_code_);
  registry.gauge("telea_controller_pending")
      .set(static_cast<double>(pending_.size()));
}

}  // namespace telea
