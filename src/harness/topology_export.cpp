#include "harness/topology_export.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace telea {

std::string render_topology_dot(Network& net) {
  std::string out = "digraph wsn {\n"
                    "  rankdir=BT;\n"
                    "  node [shape=circle, fontsize=9];\n";
  char buf[256];
  const auto& positions = net.config().topology.positions;
  for (NodeId i = 0; i < net.size(); ++i) {
    std::string label = std::to_string(i);
    if (const auto* tele = net.node(i).tele();
        tele != nullptr && tele->addressing().has_code()) {
      label += "\\n" + tele->addressing().code().to_string();
    }
    const char* style = net.node(i).killed()
                            ? "style=filled, fillcolor=gray"
                            : (i == kSinkNode ? "style=filled, fillcolor=gold"
                                              : "style=solid");
    std::snprintf(buf, sizeof(buf),
                  "  n%u [label=\"%s\", pos=\"%.1f,%.1f!\", %s];\n", i,
                  label.c_str(), positions[i].x, positions[i].y, style);
    out += buf;
  }
  for (NodeId i = 1; i < net.size(); ++i) {
    const NodeId parent = net.node(i).ctp().parent();
    if (parent == kInvalidNode) continue;
    std::snprintf(buf, sizeof(buf), "  n%u -> n%u;\n", i, parent);
    out += buf;
  }
  out += "}\n";
  return out;
}

bool write_topology_dot(Network& net, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TELEA_WARN("harness.topo") << "cannot open " << path << " for writing";
    return false;
  }
  const std::string dot = render_topology_dot(net);
  const bool ok = std::fwrite(dot.data(), 1, dot.size(), f) == dot.size();
  if (std::fclose(f) != 0 || !ok) {
    TELEA_WARN("harness.topo") << "short write to " << path;
    return false;
  }
  TELEA_DEBUG("harness.topo") << "wrote " << path << " (" << dot.size()
                              << " bytes)";
  return true;
}

}  // namespace telea
