#include "harness/runner.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>

namespace telea {

namespace {

/// Mutex/condvar work queue of trial indices. The producer enqueues the
/// whole batch and closes; workers block in pop() until an index is
/// available or the queue is finished (closed-and-empty, or aborted).
class IndexQueue {
 public:
  void push_all(std::vector<std::size_t> indices) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_ = std::move(indices);
      next_ = 0;
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Blocks until an index is available; std::nullopt when drained/aborted.
  std::optional<std::size_t> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] {
      return aborted_ || (closed_ && next_ <= queue_.size());
    });
    if (aborted_ || next_ >= queue_.size()) return std::nullopt;
    return queue_[next_++];
  }

  /// Drops every not-yet-popped index (first trial failure wins).
  void abort() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      aborted_ = true;
    }
    ready_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<std::size_t> queue_;
  std::size_t next_ = 0;
  bool closed_ = false;
  bool aborted_ = false;
};

}  // namespace

unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TELEA_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::string trial_artifact_path(const std::string& path,
                                std::size_t trial_index) {
  const std::string suffix = ".trial" + std::to_string(trial_index);
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;  // no extension: append
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

TrialRunner::TrialRunner(RunnerConfig config)
    : jobs_(resolve_jobs(config.jobs)),
      dispatch_order_(std::move(config.dispatch_order)) {}

void TrialRunner::run_tasks(std::size_t count,
                            const std::function<void(std::size_t)>& task) {
  const auto wall_start = std::chrono::steady_clock::now();
  last_trials_ = count;

  // Dispatch order: the test hook's permutation when it is a valid
  // permutation of [0, count), else submission order. Either way the
  // *results* are identical — that is the contract under test.
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (dispatch_order_.size() == count) {
    std::vector<bool> seen(count, false);
    bool valid = true;
    for (const std::size_t i : dispatch_order_) {
      if (i >= count || seen[i]) {
        valid = false;
        break;
      }
      seen[i] = true;
    }
    if (valid) order = dispatch_order_;
  }

  const std::size_t workers =
      count < static_cast<std::size_t>(jobs_) ? count : jobs_;
  if (workers <= 1) {
    // Inline fast path: jobs=1 runs on the calling thread, which is also
    // the reference ordering every parallel run must reproduce.
    for (const std::size_t i : order) task(i);
    last_wall_seconds_ = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
    return;
  }

  IndexQueue queue;
  std::mutex error_mutex;
  std::exception_ptr first_error;
  queue.push_all(std::move(order));

  const auto worker = [&queue, &error_mutex, &first_error, &task] {
    while (const auto index = queue.pop()) {
      try {
        task(*index);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        queue.abort();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  last_wall_seconds_ = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace telea
