#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "check/invariants.hpp"
#include "core/flight_recorder.hpp"
#include "core/teleadjusting.hpp"
#include "mac/lpl.hpp"
#include "net/ctp.hpp"
#include "net/link_estimator.hpp"
#include "proto/drip.hpp"
#include "proto/orpl.hpp"
#include "proto/rpl.hpp"
#include "radio/interferer.hpp"
#include "radio/medium.hpp"
#include "radio/noise.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/energy.hpp"
#include "stats/health.hpp"
#include "stats/metrics.hpp"
#include "stats/spans.hpp"
#include "stats/timeline.hpp"
#include "stats/trace.hpp"
#include "topo/topology.hpp"

namespace telea {

/// Which downward-control protocol a scenario exercises.
enum class ControlProtocol { kTele, kReTele, kDrip, kRpl, kOrpl };

[[nodiscard]] const char* protocol_name(ControlProtocol p) noexcept;

struct NetworkConfig {
  Topology topology;
  std::uint64_t seed = 1;
  ControlProtocol protocol = ControlProtocol::kReTele;
  bool wifi_interference = false;  // the paper's channel 19 vs 26 contrast

  /// Radio energy model for duty-cycle -> mJ conversion and per-command
  /// span attribution; tx_power_dbm is overridden from the topology.
  EnergyModelConfig energy{};

  LplConfig lpl{};
  CtpConfig ctp{};
  TeleConfig tele{};
  DripConfig drip{};
  RplConfig rpl{};
  OrplConfig orpl{};
  WifiInterfererConfig wifi{};
  MediumConfig medium{};  // tx power is overridden from the topology
  SyntheticTraceConfig noise_trace{};

  [[nodiscard]] bool uses_tele() const noexcept {
    return protocol == ControlProtocol::kTele ||
           protocol == ControlProtocol::kReTele;
  }
};

/// One sensor node's full protocol stack, wired together the way the paper's
/// TinyOS image is ("Drip, RPL, and TeleAdjusting integrated into the same
/// protocol stack: CTP built upon LPL") — with the protocol under test
/// instantiated. Also the node's frame dispatcher and CTP event fan-out.
class NodeStack final : public FrameHandler, public CtpListener {
 public:
  NodeStack(Simulator& sim, RadioMedium& medium, NodeId id,
            const NetworkConfig& config, std::uint64_t seed);

  void start();

  // --- FrameHandler ---------------------------------------------------------
  AckDecision handle_frame(const Frame& frame, bool for_me,
                           double rssi_dbm) override;
  void on_duplicate_frame(const Frame& frame, bool for_me) override;

  // --- CtpListener (fans out to the protocols) -------------------------------
  void on_route_found() override;
  void on_parent_changed(NodeId old_parent, NodeId new_parent) override;
  void on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) override;

  // --- components -------------------------------------------------------------
  [[nodiscard]] NodeId id() const noexcept { return mac_.id(); }
  [[nodiscard]] LplMac& mac() noexcept { return mac_; }
  [[nodiscard]] CtpNode& ctp() noexcept { return ctp_; }
  [[nodiscard]] LinkEstimator& estimator() noexcept { return estimator_; }
  [[nodiscard]] TeleAdjusting* tele() noexcept { return tele_.get(); }
  [[nodiscard]] DripNode* drip() noexcept { return drip_.get(); }
  [[nodiscard]] RplNode* rpl() noexcept { return rpl_.get(); }
  [[nodiscard]] OrplNode* orpl() noexcept { return orpl_.get(); }

  /// Sink-side data delivery (set by the harness / applications).
  std::function<void(const msg::CtpData&)> on_sink_data;

  /// Sink-side piggybacked health reports, fed from the CTP deliver path
  /// before on_sink_data (set by Network::enable_health).
  std::function<void(NodeId, const msg::HealthReport&)> on_health_report;

  /// Turns on in-band health reporting: every locally-originated upward CTP
  /// frame is offered to a rate-limited HealthReporter through the CTP
  /// origin hook. No-op on the sink (it never reports to itself). The
  /// energy config is used for the report's energy-spent estimate.
  void enable_health_reporting(const HealthReporterConfig& config,
                               const EnergyModelConfig& energy);
  [[nodiscard]] HealthReporter* health_reporter() noexcept {
    return health_reporter_.get();
  }

  /// Samples this node's current local health (what the next report will
  /// quantize). Public for tests.
  [[nodiscard]] HealthSample sample_health();

  /// Attaches a bounded flight recorder fed by the forwarding plane and the
  /// CTP/addressing event fan-out. `trigger_dump` fires when this node's own
  /// machinery decides a post-mortem is warranted (currently: a state-loss
  /// reboot); external triggers go through Network::dump_flight.
  void enable_flight_recorder(
      std::size_t capacity,
      std::function<void(NodeId, const char*)> trigger_dump);
  [[nodiscard]] FlightRecorder* flight_recorder() noexcept {
    return flight_.get();
  }

  /// Starts this node's periodic data-collection traffic (CTP upward).
  void start_data_collection(SimTime ipi, std::uint64_t seed);

  /// Failure injection: silences this node permanently (radio off, no more
  /// protocol activity — a crashed/depleted mote).
  void kill();
  /// Brings a killed node back (reboot): the radio resumes; routing and
  /// addressing state repair through the normal protocol machinery.
  void revive();
  [[nodiscard]] bool killed() const noexcept { return mac_.stopped(); }

  /// The hard reboot: the node comes straight back up but every piece of
  /// volatile protocol state — CTP routes, link estimates, path code, child
  /// and neighbor code tables, forwarding state — is wiped. Neighbors (and
  /// the controller) still hold the node's *old* code, so commands sent in
  /// the repair window exercise the paper's stale-code delivery machinery.
  /// If data collection was running it resumes immediately (the application
  /// restarts with the firmware).
  void reboot_with_state_loss();

  /// Attaches a structured event tracer (parent changes, code changes,
  /// kill/revive for this node). Pass nullptr to detach.
  void set_tracer(Tracer* tracer);

  /// Attaches the invariant engine as this node's forwarding auditor and
  /// reset observer. Pass nullptr to detach.
  void set_invariant_engine(InvariantEngine* engine);

 private:
  void note_code_changed();

  LinkEstimator estimator_;
  LplMac mac_;
  CtpNode ctp_;
  std::unique_ptr<TeleAdjusting> tele_;
  std::unique_ptr<DripNode> drip_;
  std::unique_ptr<RplNode> rpl_;
  std::unique_ptr<OrplNode> orpl_;
  Timer data_timer_;
  Simulator* sim_;
  Tracer* tracer_ = nullptr;
  InvariantEngine* invariants_ = nullptr;
  std::unique_ptr<HealthReporter> health_reporter_;
  EnergyModelConfig health_energy_{};
  std::unique_ptr<FlightRecorder> flight_;
  std::function<void(NodeId, const char*)> flight_trigger_;
  // Remembered so a state-loss reboot restarts the application workload.
  SimTime data_ipi_ = 0;
  std::uint64_t data_seed_ = 0;
};

/// Harness-level switches for the in-band health telemetry subsystem
/// (docs/OBSERVABILITY.md). One knob, `period`, drives both sides: the
/// per-node attach rate limit and the sink model's staleness expectations.
struct NetworkHealthConfig {
  SimTime period = 60 * kSecond;  // telemetry period (attach rate limit)
  SimTime stale_after = 0;        // 0 = two periods
  SimTime evict_after = 0;        // 0 = never evict
  /// When non-empty, a snapshot line is appended here every
  /// `snapshot_interval` (0 = every period) — the telea_top input stream.
  std::string snapshot_jsonl;
  SimTime snapshot_interval = 0;
};

/// Harness-level switches for the timeline engine (docs/OBSERVABILITY.md,
/// "Timeline & alerts"): sampling/tier layout, the optional JSONL stream,
/// and the alert rules to evaluate each sample.
struct NetworkTimelineConfig {
  TimelineConfig timeline{};
  std::string jsonl;             // when non-empty, stream samples here
  std::vector<AlertRule> rules;  // evaluated every sample
};

/// A complete simulated deployment: radio substrate + one NodeStack per
/// node. This is the assembly layer every example and benchmark builds on.
class Network {
 public:
  explicit Network(NetworkConfig config);

  /// Releases this trial's artifact-path claims (see enable_health /
  /// enable_timeline): a later trial may reuse the paths once this network
  /// is gone.
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Boots every node (MAC duty cycling, CTP beaconing, protocol timers).
  void start();

  /// Advances virtual time.
  void run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

  [[nodiscard]] Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] RadioMedium& medium() noexcept { return *medium_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] NodeStack& node(NodeId id) noexcept { return *nodes_[id]; }
  [[nodiscard]] NodeStack& sink() noexcept { return *nodes_[kSinkNode]; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LinkGainTable& gains() const noexcept { return *gains_; }

  /// The controller's global knowledge (paper Sec. III-C4 assumes the remote
  /// controller knows each node's local topology): picks the destination's
  /// neighbor with a maximally divergent path code over a good link.
  [[nodiscard]] std::optional<DetourSuggestion> suggest_detour(
      NodeId dest) const;

  /// Depth of `id` in the *code tree* (following position allocators), or -1
  /// when the node has no code / the chain is broken. Fig. 6(d)'s
  /// "downwards hop count".
  [[nodiscard]] int code_tree_depth(NodeId id) const;

  /// Depth of `id` in the live CTP tree (following current parents), or -1
  /// when the node has no route / the chain is broken. Unlike the hops field
  /// carried in beacons, this cannot go stale.
  [[nodiscard]] int ctp_tree_depth(NodeId id) const;

  /// Fraction of non-sink nodes holding a confirmed path code.
  [[nodiscard]] double code_coverage() const;

  /// Resets MAC accounting on every node (call after warm-up).
  void reset_accounting();

  /// Mean radio duty cycle across nodes since the last accounting reset.
  [[nodiscard]] double average_duty_cycle() const;

  /// Mean per-node energy (mJ) since the last accounting reset, under the
  /// TelosB energy model at this deployment's TX power.
  [[nodiscard]] double average_energy_mj() const;

  /// Mean per-node battery current (mA) since the last accounting reset.
  [[nodiscard]] double average_current_ma() const;

  /// This deployment's energy model (config_.energy with the topology's TX
  /// power applied) — what the averages above and span attribution use.
  [[nodiscard]] EnergyModelConfig energy_config() const noexcept;

  /// Span-attribution energy model: the deployment's currents/voltage plus
  /// the exact PHY airtime of one LPL control-frame copy, ready to hand to
  /// attribute_energy / collect_span_metrics / telea_report.
  [[nodiscard]] SpanEnergyConfig span_energy_config() const;

  /// Command spans reconstructed from the live tracer (empty when tracing
  /// was never enabled).
  [[nodiscard]] std::vector<CommandSpan> command_spans() const;

  /// Starts periodic data-collection traffic on every non-sink node.
  void start_data_collection(SimTime ipi);

  /// Enables structured event tracing (transmissions, control relays,
  /// parent/code changes, failures) into an in-memory ring of `capacity`
  /// records. Idempotent; the tracer lives as long as the network.
  Tracer& enable_tracing(std::size_t capacity = 1 << 16);
  [[nodiscard]] Tracer* tracer() noexcept { return tracer_.get(); }

  /// Turns on the runtime invariant engine (src/check): periodic structural
  /// checkpoints over every node's addressing/table/routing state plus
  /// event-driven claim/delivery audits fed by each forwarding plane.
  /// Violations land in the tracer (when tracing is enabled), the logs, and
  /// collect_metrics (telea_invariant_violations_total). Idempotent — the
  /// config of the first call wins; the engine lives as long as the network.
  InvariantEngine& enable_invariants(const InvariantConfig& config = {});
  [[nodiscard]] InvariantEngine* invariants() noexcept {
    return invariants_.get();
  }

  /// One InvariantNodeView per node, snapshotting the protocol state the
  /// structural invariants range over. Public for tests and tools.
  [[nodiscard]] std::vector<InvariantNodeView> invariant_views() const;

  /// Turns on in-band health telemetry: every non-sink node piggybacks
  /// rate-limited 8-byte reports on its upward traffic, the sink assembles
  /// them into a staleness-aware NetworkHealthModel, and Re-Tele detour
  /// selection starts preferring fresh, healthy candidates. Idempotent —
  /// the config of the first call wins; the model lives as long as the
  /// network. A non-empty snapshot_jsonl is claimed in the process-wide
  /// ArtifactRegistry for this network's lifetime; if another live trial
  /// already owns the path this throws ArtifactConflictError instead of
  /// silently interleaving two snapshot streams (docs/PARALLELISM.md).
  NetworkHealthModel& enable_health(const NetworkHealthConfig& config = {});
  [[nodiscard]] NetworkHealthModel* health() noexcept { return health_.get(); }
  [[nodiscard]] const NetworkHealthConfig& health_config() const noexcept {
    return health_config_;
  }

  /// Appends one health snapshot line to the configured JSONL file right
  /// now (also called periodically by the snapshot timer). False when
  /// health is off, no file is configured, or the write failed.
  bool append_health_snapshot();

  /// Turns on the timeline engine: collect_metrics is sampled every
  /// `config.timeline.interval` of simulated time into bounded
  /// multi-resolution series, the configured alert rules are evaluated each
  /// sample (firings land in the tracer, the metrics, and — when flight
  /// recorders are armed — a flight dump with trigger "alert:<rule>"), and
  /// samples stream to `config.jsonl` when set. Idempotent — the config of
  /// the first call wins; the engine lives as long as the network. A
  /// non-empty jsonl path is claimed like enable_health's snapshot stream:
  /// a collision with a live trial throws ArtifactConflictError.
  TimelineEngine& enable_timeline(const NetworkTimelineConfig& config = {});
  [[nodiscard]] TimelineEngine* timeline() noexcept { return timeline_.get(); }

  /// Arms a bounded flight recorder on every node (forward decisions,
  /// parent changes, backtracks, ack timeouts, reboots...). Rings are
  /// dumped — to Network storage, the trace stream, and on_flight_dump —
  /// on invariant violation, command give-up, or node reboot. Idempotent.
  void enable_flight_recorders(std::size_t capacity = 128);
  [[nodiscard]] bool flight_recorders_enabled() const noexcept {
    return flight_enabled_;
  }

  /// Snapshots `node`'s flight-recorder ring into a FlightDump tagged with
  /// `trigger`. No-op when recorders are off or the node id is bogus.
  void dump_flight(NodeId node, std::string trigger);
  [[nodiscard]] const std::vector<FlightDump>& flight_dumps() const noexcept {
    return flight_dumps_;
  }
  /// Fired after each dump is stored (telea_sim streams them to JSONL).
  std::function<void(const FlightDump&)> on_flight_dump;

  /// Mirrors every component's counters into `registry`, scoped per node
  /// (label "node") and per subsystem (label "sub": phy / lpl / ctp /
  /// forwarding / teleadjusting / sim). Collector-style: call it again to
  /// refresh the same registry; values are absolute totals, so
  /// MetricsRegistry::diff gives per-window deltas.
  void collect_metrics(MetricsRegistry& registry) const;

 private:
  /// Routes invariant violations into flight dumps once both subsystems
  /// exist — callable from either enable_ path, whichever runs second.
  void wire_flight_triggers();

  NetworkConfig config_;
  Simulator sim_;
  std::unique_ptr<LinkGainTable> gains_;
  std::unique_ptr<CpmNoiseModel> noise_model_;
  std::unique_ptr<RadioMedium> medium_;
  std::unique_ptr<WifiInterferer> interferer_;
  std::vector<std::unique_ptr<NodeStack>> nodes_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<InvariantEngine> invariants_;
  std::unique_ptr<NetworkHealthModel> health_;
  NetworkHealthConfig health_config_;
  std::unique_ptr<Timer> health_timer_;
  std::unique_ptr<TimelineEngine> timeline_;
  bool flight_enabled_ = false;
  std::vector<FlightDump> flight_dumps_;  // bounded, newest kept
  std::uint64_t flight_dumps_taken_ = 0;  // monotone, for metrics
  // Artifact paths this network holds in the ArtifactRegistry.
  std::vector<std::string> artifact_claims_;
};

}  // namespace telea
