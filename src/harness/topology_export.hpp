#pragma once

#include <string>

#include "harness/network.hpp"

namespace telea {

/// GraphViz DOT rendering of a network's current state: node positions
/// (as layout hints), the live CTP tree (solid edges), path codes as labels
/// and killed nodes grayed out. `dot -Kneato -n -Tpng` reproduces the
/// deployment geometry.
[[nodiscard]] std::string render_topology_dot(Network& net);

/// Writes the DOT rendering to `path`. Returns false on I/O failure.
bool write_topology_dot(Network& net, const std::string& path);

}  // namespace telea
