#pragma once

#include <cstdint>
#include <vector>

#include "harness/network.hpp"

namespace telea {

/// A reproducible failure schedule: kill/revive actions at absolute virtual
/// times, applied to a Network before (or while) it runs. Robustness
/// experiments and churn studies build on this instead of hand-placed
/// schedule_in calls.
class FaultPlan {
 public:
  enum class Action : std::uint8_t { kKill, kRevive };

  struct Event {
    SimTime at = 0;
    NodeId node = kInvalidNode;
    Action action = Action::kKill;
  };

  FaultPlan& kill_at(SimTime at, NodeId node) {
    events_.push_back(Event{at, node, Action::kKill});
    return *this;
  }

  FaultPlan& revive_at(SimTime at, NodeId node) {
    events_.push_back(Event{at, node, Action::kRevive});
    return *this;
  }

  /// Down-for-a-while convenience: kill at `at`, revive at `at + downtime`.
  FaultPlan& outage(SimTime at, SimTime downtime, NodeId node) {
    return kill_at(at, node).revive_at(at + downtime, node);
  }

  /// Random churn: `count` outages of `downtime` each, uniformly placed over
  /// [start, end) on uniformly random non-sink nodes.
  static FaultPlan random_churn(std::size_t node_count, std::size_t count,
                                SimTime start, SimTime end, SimTime downtime,
                                std::uint64_t seed);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Schedules every event on the network's simulator. Call once, before
  /// running past the earliest event. Events for out-of-range nodes are
  /// ignored.
  void apply(Network& net) const;

 private:
  std::vector<Event> events_;
};

}  // namespace telea
