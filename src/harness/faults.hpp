#pragma once

#include <cstdint>
#include <vector>

#include "harness/network.hpp"

namespace telea {

/// A reproducible failure schedule applied to a Network: node outages
/// (kill/revive), state-losing reboots, link degradations/blackouts, noise
/// bursts and partitions, all at absolute virtual times. Robustness
/// experiments and churn studies build on this instead of hand-placed
/// schedule_in calls.
class FaultPlan {
 public:
  enum class Action : std::uint8_t {
    kKill,
    kRevive,
    kRebootStateLoss,  // node comes back with all protocol state wiped
    kLinkLoss,         // add `value` dB of loss on node<->peer (negative undoes)
    kNoiseOn,          // inject a `value` dBm noise source at node
    kNoiseOff,         // remove the injected noise source at node
    kCorruptCode,      // silently flip bit `value` of the node's path code
    kCorruptChildPos,  // rewrite child slot `peer`'s position to `value`
  };

  struct Event {
    SimTime at = 0;
    NodeId node = kInvalidNode;
    Action action = Action::kKill;
    NodeId peer = kInvalidNode;  // kLinkLoss only: the other endpoint
    double value = 0.0;          // kLinkLoss: dB offset; kNoiseOn: dBm level
  };

  FaultPlan& kill_at(SimTime at, NodeId node) {
    events_.push_back(Event{at, node, Action::kKill, kInvalidNode, 0.0});
    return *this;
  }

  FaultPlan& revive_at(SimTime at, NodeId node) {
    events_.push_back(Event{at, node, Action::kRevive, kInvalidNode, 0.0});
    return *this;
  }

  /// Down-for-a-while convenience: kill at `at`, revive at `at + downtime`.
  FaultPlan& outage(SimTime at, SimTime downtime, NodeId node) {
    return kill_at(at, node).revive_at(at + downtime, node);
  }

  /// The hard case for path coding: the node is down for `downtime`, then
  /// reboots having lost every table (NodeStack::reboot_with_state_loss).
  /// Stale codes held by neighbors and the controller must still deliver.
  FaultPlan& outage_with_state_loss(SimTime at, SimTime downtime, NodeId node);

  /// Immediate state-losing reboot (no downtime window).
  FaultPlan& reboot_with_state_loss_at(SimTime at, NodeId node);

  /// Adds `extra_loss_db` of attenuation on the (symmetric) link a<->b for
  /// `duration`, then removes it. A few dB turns a good link marginal; large
  /// values sever it.
  FaultPlan& degrade_link(SimTime at, SimTime duration, NodeId a, NodeId b,
                          double extra_loss_db);

  /// Severs the link a<->b outright for `duration`.
  FaultPlan& blackout_link(SimTime at, SimTime duration, NodeId a, NodeId b);

  /// Raises the noise floor of every node in `region` to (at least) `dbm`
  /// for `duration` — a co-located appliance / jammer burst.
  FaultPlan& noise_burst(SimTime at, SimTime duration,
                         const std::vector<NodeId>& region, double dbm);

  /// Memory-corruption fault (invariant-engine exercises): silently flips
  /// bit `bit` (modulo code length) of the node's own path code — no beacon,
  /// no table update, exactly the inconsistency the checks exist to catch.
  FaultPlan& corrupt_path_code(SimTime at, NodeId node, std::size_t bit = 0);

  /// Rewrites the position of child-table slot `slot` on `node` to
  /// `position`, leaving the stored derived code stale.
  FaultPlan& corrupt_child_position(SimTime at, NodeId node, std::size_t slot,
                                    std::uint32_t position);

  /// Cuts the network: every link between a node in `island` and a node
  /// outside it (over all `node_count` nodes) is blacked out for `duration`.
  FaultPlan& partition(SimTime at, SimTime duration,
                       const std::vector<NodeId>& island,
                       std::size_t node_count);

  /// Random churn: `count` outages of `downtime` each, uniformly placed over
  /// [start, end) on uniformly random non-sink nodes. Per-node outages never
  /// overlap (an overlapping pair would let the first revive resurrect a
  /// node mid-second-outage); placements that would overlap are re-drawn.
  static FaultPlan random_churn(std::size_t node_count, std::size_t count,
                                SimTime start, SimTime end, SimTime downtime,
                                std::uint64_t seed);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Schedules every event on the network's simulator, in time order.
  /// Call once, before running past the earliest event. Events whose time is
  /// already in the past are clamped to `now` (with a warning) so they still
  /// fire in their scheduled order; events for out-of-range nodes are
  /// ignored.
  void apply(Network& net) const;

 private:
  std::vector<Event> events_;
};

}  // namespace telea
