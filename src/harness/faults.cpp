#include "harness/faults.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace telea {

FaultPlan FaultPlan::random_churn(std::size_t node_count, std::size_t count,
                                  SimTime start, SimTime end, SimTime downtime,
                                  std::uint64_t seed) {
  FaultPlan plan;
  if (node_count <= 1 || end <= start) return plan;
  Pcg32 rng(seed, /*stream=*/0xFA17ULL);
  for (std::size_t i = 0; i < count; ++i) {
    const auto node = static_cast<NodeId>(
        1 + rng.uniform(static_cast<std::uint32_t>(node_count - 1)));
    const SimTime at =
        start + rng.uniform(static_cast<std::uint32_t>(
                    std::min<SimTime>(end - start, 0xFFFFFFFFull)));
    plan.outage(at, downtime, node);
  }
  return plan;
}

void FaultPlan::apply(Network& net) const {
  TELEA_INFO("harness.faults") << "applying fault plan: " << events_.size()
                               << " events";
  for (const Event& e : events_) {
    if (e.node >= net.size()) {
      TELEA_WARN("harness.faults")
          << "skipping event for out-of-range node " << e.node;
      continue;
    }
    const Event event = e;
    net.sim().schedule_at(event.at, [&net, event] {
      if (event.action == Action::kKill) {
        TELEA_INFO("harness.faults")
            << "t=" << to_seconds(net.sim().now()) << "s kill node "
            << event.node;
        net.node(event.node).kill();
      } else {
        TELEA_INFO("harness.faults")
            << "t=" << to_seconds(net.sim().now()) << "s revive node "
            << event.node;
        net.node(event.node).revive();
      }
    }, "fault.inject");
  }
}

}  // namespace telea
