#include "harness/faults.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace telea {

FaultPlan& FaultPlan::outage_with_state_loss(SimTime at, SimTime downtime,
                                             NodeId node) {
  kill_at(at, node);
  events_.push_back(
      Event{at + downtime, node, Action::kRebootStateLoss, kInvalidNode, 0.0});
  return *this;
}

FaultPlan& FaultPlan::reboot_with_state_loss_at(SimTime at, NodeId node) {
  events_.push_back(Event{at, node, Action::kRebootStateLoss, kInvalidNode, 0.0});
  return *this;
}

FaultPlan& FaultPlan::degrade_link(SimTime at, SimTime duration, NodeId a,
                                   NodeId b, double extra_loss_db) {
  events_.push_back(Event{at, a, Action::kLinkLoss, b, extra_loss_db});
  events_.push_back(
      Event{at + duration, a, Action::kLinkLoss, b, -extra_loss_db});
  return *this;
}

FaultPlan& FaultPlan::blackout_link(SimTime at, SimTime duration, NodeId a,
                                    NodeId b) {
  return degrade_link(at, duration, a, b, RadioMedium::kBlackoutLossDb);
}

FaultPlan& FaultPlan::noise_burst(SimTime at, SimTime duration,
                                  const std::vector<NodeId>& region,
                                  double dbm) {
  for (const NodeId node : region) {
    events_.push_back(Event{at, node, Action::kNoiseOn, kInvalidNode, dbm});
    events_.push_back(
        Event{at + duration, node, Action::kNoiseOff, kInvalidNode, 0.0});
  }
  return *this;
}

FaultPlan& FaultPlan::corrupt_path_code(SimTime at, NodeId node,
                                        std::size_t bit) {
  events_.push_back(Event{at, node, Action::kCorruptCode, kInvalidNode,
                          static_cast<double>(bit)});
  return *this;
}

FaultPlan& FaultPlan::corrupt_child_position(SimTime at, NodeId node,
                                             std::size_t slot,
                                             std::uint32_t position) {
  events_.push_back(Event{at, node, Action::kCorruptChildPos,
                          static_cast<NodeId>(slot),
                          static_cast<double>(position)});
  return *this;
}

FaultPlan& FaultPlan::partition(SimTime at, SimTime duration,
                                const std::vector<NodeId>& island,
                                std::size_t node_count) {
  for (NodeId outside = 0; outside < static_cast<NodeId>(node_count);
       ++outside) {
    if (std::find(island.begin(), island.end(), outside) != island.end()) {
      continue;
    }
    for (const NodeId inside : island) {
      blackout_link(at, duration, inside, outside);
    }
  }
  return *this;
}

FaultPlan FaultPlan::random_churn(std::size_t node_count, std::size_t count,
                                  SimTime start, SimTime end, SimTime downtime,
                                  std::uint64_t seed) {
  FaultPlan plan;
  if (node_count <= 1 || end <= start) return plan;
  Pcg32 rng(seed, /*stream=*/0xFA17ULL);
  // Per-node outage windows already placed. A same-node overlap would be
  // nonsense churn: the first outage's revive resurrects the node in the
  // middle of the second outage, so the second never actually happens.
  std::vector<std::pair<NodeId, std::pair<SimTime, SimTime>>> busy;
  for (std::size_t i = 0; i < count; ++i) {
    NodeId node = kInvalidNode;
    SimTime at = start;
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      node = static_cast<NodeId>(
          1 + rng.uniform(static_cast<std::uint32_t>(node_count - 1)));
      at = start + rng.uniform(static_cast<std::uint32_t>(
                       std::min<SimTime>(end - start, 0xFFFFFFFFull)));
      placed = true;
      for (const auto& [busy_node, window] : busy) {
        if (busy_node == node && at <= window.second &&
            window.first <= at + downtime) {
          placed = false;
          break;
        }
      }
    }
    if (!placed) {
      TELEA_WARN("harness.faults")
          << "random_churn: no overlap-free slot for outage " << i
          << " after 64 draws; keeping an overlapping placement";
    }
    busy.emplace_back(node, std::make_pair(at, at + downtime));
    plan.outage(at, downtime, node);
  }
  return plan;
}

void FaultPlan::apply(Network& net) const {
  TELEA_INFO("harness.faults") << "applying fault plan: " << events_.size()
                               << " events";
  // Schedule in time order so a clamped-to-now batch still fires in the
  // order the plan intended (kill before its own revive, on before off).
  std::vector<Event> ordered = events_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
  const SimTime now = net.sim().now();
  for (Event event : ordered) {
    if (event.node >= net.size()) {
      TELEA_WARN("harness.faults")
          << "skipping event for out-of-range node " << event.node;
      continue;
    }
    if (event.action == Action::kLinkLoss && event.peer >= net.size()) {
      TELEA_WARN("harness.faults")
          << "skipping link event for out-of-range peer " << event.peer;
      continue;
    }
    if (event.at < now) {
      TELEA_WARN("harness.faults")
          << "event at t=" << to_seconds(event.at) << "s is in the past "
          << "(now t=" << to_seconds(now) << "s); clamping to now";
      event.at = now;
    }
    net.sim().schedule_at(event.at, [&net, event] {
      const SimTime when = net.sim().now();
      switch (event.action) {
        case Action::kKill:
          TELEA_INFO("harness.faults")
              << "t=" << to_seconds(when) << "s kill node " << event.node;
          net.node(event.node).kill();
          break;
        case Action::kRevive:
          TELEA_INFO("harness.faults")
              << "t=" << to_seconds(when) << "s revive node " << event.node;
          net.node(event.node).revive();
          break;
        case Action::kRebootStateLoss:
          TELEA_INFO("harness.faults")
              << "t=" << to_seconds(when) << "s reboot node " << event.node
              << " with state loss";
          net.node(event.node).reboot_with_state_loss();
          break;
        case Action::kLinkLoss:
          TELEA_INFO("harness.faults")
              << "t=" << to_seconds(when) << "s link " << event.node << "<->"
              << event.peer << " " << (event.value >= 0 ? "+" : "")
              << event.value << " dB loss";
          net.medium().add_link_loss_db(event.node, event.peer, event.value);
          TELEA_TRACE_EVENT(
              net.tracer(), when, event.node, TraceEvent::kLinkFault,
              static_cast<std::uint64_t>(std::llround(std::abs(event.value))),
              event.peer);
          break;
        case Action::kNoiseOn:
          TELEA_INFO("harness.faults")
              << "t=" << to_seconds(when) << "s noise burst at node "
              << event.node << ": " << event.value << " dBm";
          net.medium().set_extra_noise_dbm(event.node, event.value);
          TELEA_TRACE_EVENT(
              net.tracer(), when, event.node, TraceEvent::kNoiseBurst,
              static_cast<std::uint64_t>(std::llround(std::abs(event.value))),
              0);
          break;
        case Action::kNoiseOff:
          TELEA_INFO("harness.faults")
              << "t=" << to_seconds(when) << "s noise cleared at node "
              << event.node;
          net.medium().clear_extra_noise(event.node);
          break;
        case Action::kCorruptCode:
          if (TeleAdjusting* tele = net.node(event.node).tele()) {
            const auto bit = static_cast<std::size_t>(event.value);
            if (tele->addressing().corrupt_code_bit(bit)) {
              TELEA_INFO("harness.faults")
                  << "t=" << to_seconds(when) << "s corrupt code bit " << bit
                  << " at node " << event.node;
            }
          }
          break;
        case Action::kCorruptChildPos:
          if (TeleAdjusting* tele = net.node(event.node).tele()) {
            const auto pos = static_cast<std::uint32_t>(event.value);
            if (tele->addressing().corrupt_child_position(event.peer, pos)) {
              TELEA_INFO("harness.faults")
                  << "t=" << to_seconds(when) << "s corrupt child slot "
                  << event.peer << " position to " << pos << " at node "
                  << event.node;
            }
          }
          break;
      }
    }, "fault.inject");
  }
}

}  // namespace telea
