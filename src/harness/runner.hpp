#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

namespace telea {

/// splitmix64 output function (Steele/Lea/Flood 2014; the java.util
/// SplittableRandom mixer): a bijective 64-bit finalizer, so distinct inputs
/// give distinct outputs.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The per-trial seed of the determinism contract (docs/PARALLELISM.md):
/// the `trial_index`-th output of a splitmix64 stream seeded with
/// `base_seed`. A pure function of (base_seed, trial_index), so it never
/// depends on worker count or completion order — and because the mixer is a
/// bijection over the gamma-strided inputs, every trial of a sweep gets a
/// *unique* seed (asserted by the runner seed-sweep smoke test).
[[nodiscard]] constexpr std::uint64_t derive_trial_seed(
    std::uint64_t base_seed, std::uint64_t trial_index) noexcept {
  return splitmix64_mix(base_seed +
                        (trial_index + 1) * 0x9E3779B97F4A7C15ULL);
}

/// Worker-count resolution shared by every bench binary and telea_sim:
/// `requested` when > 0, else the TELEA_JOBS environment variable when set
/// to a positive integer, else std::thread::hardware_concurrency() (at
/// least 1). Oversubscription is allowed — correctness never depends on the
/// count.
[[nodiscard]] unsigned resolve_jobs(unsigned requested = 0);

/// "out/trace.jsonl" -> "out/trace.trial3.jsonl": the trial-index suffix
/// every per-trial artifact sink gets so concurrent trials never share a
/// stream. Inserted before the final extension; a path without an extension
/// gets ".trial<N>" appended.
[[nodiscard]] std::string trial_artifact_path(const std::string& path,
                                              std::size_t trial_index);

struct RunnerConfig {
  /// 0 = resolve_jobs() (TELEA_JOBS env, then hardware concurrency).
  unsigned jobs = 0;
  /// Test hook: the order trial indices are handed to workers. Must be a
  /// permutation of [0, count) to take effect (otherwise submission order is
  /// used). Lets tests prove results are independent of completion order.
  std::vector<std::size_t> dispatch_order;
};

/// A deterministic parallel trial runner: executes `count` independent
/// trials on a small worker pool (std::thread + mutex/condvar work queue)
/// and returns their results indexed by trial — submission order, bit-
/// identical whatever the worker count, the dispatch order, or the host's
/// scheduling. The contract (docs/PARALLELISM.md) is that a trial is a pure
/// function of its own config and derived seed: each one builds a fully
/// isolated Simulator/Network and shares nothing mutable with its siblings.
class TrialRunner {
 public:
  explicit TrialRunner(RunnerConfig config = {});

  TrialRunner(const TrialRunner&) = delete;
  TrialRunner& operator=(const TrialRunner&) = delete;

  /// The resolved worker count.
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// Runs fn(i) for every i in [0, count) across the pool and returns the
  /// results with results[i] == fn(i). The first exception a trial throws is
  /// rethrown here (after the pool drains); remaining queued trials are
  /// abandoned. R must be default-constructible and movable.
  template <typename Fn>
  auto run_indexed(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
    using R = std::decay_t<decltype(fn(std::size_t{}))>;
    std::vector<R> results(count);
    run_tasks(count,
              [&results, &fn](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Wall-clock seconds the last run_indexed/run_tasks call took — the
  /// numerator of the bench runner-stats artifact. Host time, so it is the
  /// one runner output that is *not* deterministic; it never feeds a result
  /// table.
  [[nodiscard]] double last_wall_seconds() const noexcept {
    return last_wall_seconds_;
  }

  /// Trials executed by the last run (== count; completion accounting for
  /// the seed-sweep smoke test).
  [[nodiscard]] std::uint64_t last_trials() const noexcept {
    return last_trials_;
  }

  /// Type-erased core: pops trial indices off the work queue and invokes
  /// `task` until the queue drains. Public so non-template callers (soak
  /// pair, tools) can drive it without instantiating run_indexed.
  void run_tasks(std::size_t count,
                 const std::function<void(std::size_t)>& task);

 private:
  unsigned jobs_;
  std::vector<std::size_t> dispatch_order_;
  double last_wall_seconds_ = 0.0;
  std::uint64_t last_trials_ = 0;
};

}  // namespace telea
