#include "harness/network.hpp"

#include <algorithm>

#include "core/path_code.hpp"
#include "radio/phy.hpp"
#include "stats/energy.hpp"
#include "util/rng.hpp"

namespace telea {

const char* protocol_name(ControlProtocol p) noexcept {
  switch (p) {
    case ControlProtocol::kTele: return "Tele";
    case ControlProtocol::kReTele: return "Re-Tele";
    case ControlProtocol::kDrip: return "Drip";
    case ControlProtocol::kRpl: return "RPL";
    case ControlProtocol::kOrpl: return "ORPL";
  }
  return "?";
}

NodeStack::NodeStack(Simulator& sim, RadioMedium& medium, NodeId id,
                     const NetworkConfig& config, std::uint64_t seed)
    : estimator_(),
      mac_(sim, medium, id, config.lpl, seed),
      ctp_(sim, mac_, estimator_, config.ctp, /*is_root=*/id == kSinkNode,
           seed ^ (0x5EED0000ULL + id)),
      data_timer_(sim),
      sim_(&sim) {
  mac_.set_handler(*this);
  ctp_.set_listener(this);

  if (config.uses_tele()) {
    TeleConfig tele_config = config.tele;
    tele_config.retele = config.protocol == ControlProtocol::kReTele;
    tele_config.addressing.wake_interval = config.lpl.wake_interval;
    tele_ = std::make_unique<TeleAdjusting>(sim, mac_, ctp_, tele_config);
  } else if (config.protocol == ControlProtocol::kDrip) {
    drip_ = std::make_unique<DripNode>(sim, mac_, config.drip,
                                       seed ^ (0xD41B0000ULL + id));
  } else if (config.protocol == ControlProtocol::kRpl) {
    rpl_ = std::make_unique<RplNode>(sim, mac_, ctp_, config.rpl);
  } else if (config.protocol == ControlProtocol::kOrpl) {
    orpl_ = std::make_unique<OrplNode>(sim, mac_, ctp_, config.orpl);
  }

  if (id == kSinkNode) {
    ctp_.set_deliver([this](const msg::CtpData& data) {
      if (tele_) tele_->notify_root_delivery(data);
      if (on_sink_data) on_sink_data(data);
    });
  }
}

void NodeStack::start() {
  mac_.start();
  ctp_.start();
  if (tele_) tele_->start();
  if (drip_) drip_->start();
  if (rpl_) rpl_->start();
  if (orpl_) orpl_->start();
}

AckDecision NodeStack::handle_frame(const Frame& frame, bool for_me,
                                    double rssi_dbm) {
  (void)rssi_dbm;
  return std::visit(
      [&](const auto& payload) -> AckDecision {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, msg::CtpBeacon>) {
          ctp_.handle_beacon(frame.src, payload);
          return AckDecision::kAccept;
        } else if constexpr (std::is_same_v<T, msg::CtpData>) {
          // Overhearing a control e2e ack proves delivery: straggler
          // duplicates of that control packet can be dropped everywhere.
          if (payload.is_control_ack && tele_) {
            tele_->forwarding().note_ack_overheard(payload.control_seqno);
          }
          return ctp_.handle_data(frame.src, payload, for_me);
        } else if constexpr (std::is_same_v<T, msg::DripMsg>) {
          return drip_ ? drip_->handle_msg(frame.src, payload)
                       : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::RplDao>) {
          return rpl_ ? rpl_->handle_dao(frame.src, payload, for_me)
                      : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::RplData>) {
          return rpl_ ? rpl_->handle_data(frame.src, payload, for_me)
                      : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::OrplAnnounce>) {
          return orpl_ ? orpl_->handle_announce(frame.src, payload)
                       : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::OrplData>) {
          return orpl_ ? orpl_->handle_data(frame.src, payload)
                       : AckDecision::kIgnore;
        } else {
          // All TeleAdjusting frame types.
          return tele_ ? tele_->handle_frame(frame, for_me)
                       : AckDecision::kIgnore;
        }
      },
      frame.payload);
}

void NodeStack::on_duplicate_frame(const Frame& frame, bool for_me) {
  (void)for_me;
  if (tele_ == nullptr) return;
  if (const auto* cp = std::get_if<msg::ControlPacket>(&frame.payload)) {
    tele_->forwarding().note_duplicate(frame.src, *cp);
  }
}

void NodeStack::on_route_found() {
  if (tele_) tele_->on_route_found();
}

void NodeStack::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kParentChange, old_parent,
                    new_parent);
  }
  if (tele_) tele_->on_parent_changed(old_parent, new_parent);
  if (rpl_) rpl_->on_parent_changed();
}

void NodeStack::on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) {
  if (tele_) tele_->on_beacon_heard(from, beacon);
}

void NodeStack::kill() {
  if (tracer_ != nullptr) tracer_->record(sim_->now(), id(), TraceEvent::kKill);
  data_timer_.stop();
  mac_.stop();
}

void NodeStack::revive() {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kRevive);
  }
  mac_.restart();
}

void NodeStack::reboot_with_state_loss() {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kReboot);
  }
  if (invariants_ != nullptr) invariants_->note_node_reset(id());
  data_timer_.stop();
  if (!mac_.stopped()) mac_.stop();  // flush queue + in-flight sends
  if (tele_) tele_->reset_state();   // forwarding first, then addressing
  ctp_.reset_routing();
  mac_.restart();
  ctp_.start();  // trickle already at Imin from reset_routing
  if (tele_) tele_->start();
  if (data_ipi_ > 0) start_data_collection(data_ipi_, data_seed_);
}

void NodeStack::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  mac_.set_tracer(tracer);
  ctp_.set_tracer(tracer);
  if (tele_ != nullptr) {
    tele_->set_tracer(tracer);
    if (tracer == nullptr) {
      tele_->addressing().on_code_changed = nullptr;
    } else {
      tele_->addressing().on_code_changed = [this] {
        tracer_->record(sim_->now(), id(), TraceEvent::kCodeChange,
                        tele_->addressing().code().size());
      };
    }
  }
}

void NodeStack::set_invariant_engine(InvariantEngine* engine) {
  invariants_ = engine;
  if (tele_ != nullptr) tele_->forwarding().set_auditor(engine);
}

void NodeStack::start_data_collection(SimTime ipi, std::uint64_t seed) {
  if (mac_.stopped()) return;
  if (ctp_.is_root()) return;
  data_ipi_ = ipi;
  data_seed_ = seed;
  Pcg32 rng(seed ^ (0xDA7AULL + id()), id());
  data_timer_.set_callback([this] {
    msg::CtpData data;
    // In-band code report (paper Sec. III-A): collection traffic carries
    // the node's current path code up to the controller.
    if (tele_ != nullptr && tele_->addressing().has_code()) {
      data.has_code_report = true;
      data.reported_code = tele_->addressing().code();
    }
    ctp_.send_to_sink(data);
  });
  const SimTime phase = rng.uniform(static_cast<std::uint32_t>(
      std::min<SimTime>(ipi, 0xFFFFFFFFull)));
  data_timer_.start_periodic_at(phase + 1, ipi);
}

Network::Network(NetworkConfig config) : config_(std::move(config)) {
  const Topology& topo = config_.topology;
  gains_ = std::make_unique<LinkGainTable>(topo.positions, topo.path_loss,
                                           config_.seed);
  const auto trace =
      generate_heavy_noise_trace(config_.noise_trace, config_.seed ^ 0x4015EULL);
  noise_model_ = std::make_unique<CpmNoiseModel>(trace, /*history=*/3);

  MediumConfig medium_config = config_.medium;
  medium_config.tx_power_dbm = topo.tx_power_dbm;
  medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_model_,
                                          medium_config, config_.seed);

  if (config_.wifi_interference) {
    WifiInterfererConfig wifi = config_.wifi;
    wifi.enabled = true;
    interferer_ = std::make_unique<WifiInterferer>(wifi, topo.size(),
                                                   config_.seed ^ 0x3F1ULL);
    medium_->set_interferer(interferer_.get());
  }

  nodes_.reserve(topo.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    nodes_.push_back(std::make_unique<NodeStack>(
        sim_, *medium_, static_cast<NodeId>(i), config_,
        config_.seed ^ (i * 0x9E3779B97F4A7C15ULL)));
  }

  // Wire the Re-Tele controller knowledge into every sink-capable node (only
  // the sink originates, but the hook is cheap).
  if (config_.protocol == ControlProtocol::kReTele) {
    if (TeleAdjusting* sink_tele = nodes_[kSinkNode]->tele()) {
      sink_tele->set_controller_hook(
          [this](NodeId dest, std::uint32_t) { return suggest_detour(dest); });
    }
  }
}

void Network::start() {
  for (auto& n : nodes_) n->start();
}

std::optional<DetourSuggestion> Network::suggest_detour(NodeId dest) const {
  // The destination id came off the air: validate before indexing.
  if (dest >= nodes_.size()) return std::nullopt;
  const TeleAdjusting* dest_tele = nodes_[dest]->tele();
  if (dest_tele == nullptr || !dest_tele->addressing().has_code()) {
    return std::nullopt;
  }
  const PathCode& dest_code = dest_tele->addressing().code();

  // "High link quality" neighbor: comfortably inside the reception budget.
  const double good_loss =
      config_.topology.tx_power_dbm - Cc2420Phy::kSensitivityDbm - 6.0;

  std::optional<DetourSuggestion> best;
  std::size_t best_divergence = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (id == dest || id == kSinkNode) continue;
    if (gains_->loss_db(id, dest) > good_loss) continue;
    const TeleAdjusting* tele = nodes_[i]->tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    const PathCode& code = tele->addressing().code();
    // The detour must not route through the same broken subtree: prefer the
    // most divergent code (paper: "different path code to the greatest
    // extent").
    const std::size_t divergence = code_divergence(code, dest_code);
    if (!best.has_value() || divergence > best_divergence) {
      best = DetourSuggestion{id, code};
      best_divergence = divergence;
    }
  }
  return best;
}

int Network::code_tree_depth(NodeId id) const {
  if (id >= nodes_.size()) return -1;
  if (id == kSinkNode) return 0;
  int depth = 0;
  NodeId cur = id;
  for (std::size_t guard = 0; guard <= nodes_.size(); ++guard) {
    const TeleAdjusting* tele = nodes_[cur]->tele();
    if (tele == nullptr || !tele->addressing().has_code()) return -1;
    const NodeId up = tele->addressing().code_parent();
    if (up == kInvalidNode) return -1;
    ++depth;
    if (up == kSinkNode) return depth;
    cur = up;
  }
  return -1;  // cycle (stale allocator chain)
}

int Network::ctp_tree_depth(NodeId id) const {
  if (id >= nodes_.size()) return -1;
  if (id == kSinkNode) return 0;
  int depth = 0;
  NodeId cur = id;
  for (std::size_t guard = 0; guard <= nodes_.size(); ++guard) {
    const NodeId up = nodes_[cur]->ctp().parent();
    if (up == kInvalidNode) return -1;
    ++depth;
    if (up == kSinkNode) return depth;
    cur = up;
  }
  return -1;  // routing loop
}

double Network::code_coverage() const {
  if (nodes_.size() <= 1) return 1.0;
  std::size_t with_code = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const TeleAdjusting* tele = nodes_[i]->tele();
    if (tele != nullptr && tele->addressing().has_code()) ++with_code;
  }
  return static_cast<double>(with_code) /
         static_cast<double>(nodes_.size() - 1);
}

void Network::reset_accounting() {
  for (auto& n : nodes_) n->mac().reset_accounting();
}

double Network::average_duty_cycle() const {
  double sum = 0;
  for (const auto& n : nodes_) sum += n->mac().duty_cycle();
  return sum / static_cast<double>(nodes_.size());
}

EnergyModelConfig Network::energy_config() const noexcept {
  EnergyModelConfig cfg = config_.energy;
  cfg.tx_power_dbm = config_.topology.tx_power_dbm;
  return cfg;
}

SpanEnergyConfig Network::span_energy_config() const {
  const EnergyModelConfig model = energy_config();
  SpanEnergyConfig cfg;
  cfg.supply_volts = model.supply_volts;
  cfg.tx_current_ma = EnergyModel::tx_current_ma(model.tx_power_dbm);
  cfg.rx_current_ma = model.rx_current_ma;
  // The exact PHY airtime of one LPL copy of a control frame.
  Frame probe;
  probe.payload = msg::ControlPacket{};
  cfg.copy_airtime_s = to_seconds(Cc2420Phy::airtime(wire_size_bytes(probe)));
  return cfg;
}

std::vector<CommandSpan> Network::command_spans() const {
  if (tracer_ == nullptr) return {};
  return build_command_spans(tracer_->snapshot());
}

double Network::average_energy_mj() const {
  const EnergyModel model(energy_config());
  double sum = 0;
  for (const auto& n : nodes_) {
    sum += model.energy_mj(n->mac().radio_on_time(), n->mac().tx_airtime(),
                           n->mac().accounting_window());
  }
  return sum / static_cast<double>(nodes_.size());
}

double Network::average_current_ma() const {
  const EnergyModel model(energy_config());
  double sum = 0;
  for (const auto& n : nodes_) {
    sum += model.average_current_ma(n->mac().radio_on_time(),
                                    n->mac().tx_airtime(),
                                    n->mac().accounting_window());
  }
  return sum / static_cast<double>(nodes_.size());
}

void Network::start_data_collection(SimTime ipi) {
  for (auto& n : nodes_) n->start_data_collection(ipi, config_.seed);
}

void Network::collect_metrics(MetricsRegistry& registry) const {
  registry.describe("telea_tx_copies_total", "Link-layer frame copies transmitted");
  registry.describe("telea_send_ops_total", "MAC send operations completed");
  registry.describe("telea_duty_cycle", "Radio duty cycle since last accounting reset");
  registry.describe("telea_beacons_total", "CTP routing beacons sent");
  registry.describe("telea_data_total", "CTP data plane activity by kind");
  registry.describe("telea_parent_changes_total", "CTP parent switches");
  registry.describe("telea_control_total", "TeleAdjusting forwarding-plane decisions by kind");
  registry.describe("telea_phy_transmissions_total", "Frame copies put on the medium");
  registry.describe("telea_code_coverage", "Fraction of non-sink nodes holding a confirmed path code");
  registry.describe("telea_node_duty_cycle", "Distribution of per-node duty cycles");
  registry.describe("telea_trace_records", "Trace ring occupancy");
  registry.describe("telea_trace_dropped_total", "Trace records evicted from the ring");
  registry.describe("telea_sim_events_total", "Simulator events dispatched (profiling runs)");
  registry.describe("telea_sim_max_queue_depth", "Peak event-queue depth (profiling runs)");
  registry.describe("telea_invariant_violations_total", "Protocol invariant violations detected, by rule");
  registry.describe("telea_invariant_checkpoints_total", "Structural invariant checkpoints evaluated");
  registry.describe("telea_invariant_claims_audited_total", "Forwarding claims re-checked by the invariant engine");

  Histogram& duty_hist = registry.histogram(
      "telea_node_duty_cycle",
      {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0});
  duty_hist.reset();  // collector-style: re-populate on every scrape
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeStack& n = *nodes_[i];
    const std::string node = std::to_string(i);
    const MetricLabels lpl{{"node", node}, {"sub", "lpl"}};
    registry.counter("telea_tx_copies_total", lpl)
        .set_total(n.mac().copies_sent());
    registry.counter("telea_send_ops_total", lpl).set_total(n.mac().send_ops());
    registry.gauge("telea_duty_cycle", lpl).set(n.mac().duty_cycle());
    duty_hist.observe(n.mac().duty_cycle());

    const MetricLabels ctp{{"node", node}, {"sub", "ctp"}};
    const CtpNode::Stats& cs = n.ctp().stats();
    registry.counter("telea_beacons_total", ctp).set_total(cs.beacons_sent);
    auto data_kind = [&](const char* kind, std::uint64_t v) {
      MetricLabels labels = ctp;
      labels.emplace_back("kind", kind);
      registry.counter("telea_data_total", labels).set_total(v);
    };
    data_kind("originated", cs.data_originated);
    data_kind("forwarded", cs.data_forwarded);
    data_kind("delivered", cs.data_delivered);
    data_kind("dropped", cs.data_dropped);
    registry.counter("telea_parent_changes_total", ctp)
        .set_total(cs.parent_changes);

    if (TeleAdjusting* tele = n.tele()) {
      const Forwarding::Stats& fs = tele->forwarding().stats();
      auto control_kind = [&](const char* kind, std::uint64_t v) {
        registry
            .counter("telea_control_total",
                     {{"node", node}, {"sub", "forwarding"}, {"kind", kind}})
            .set_total(v);
      };
      control_kind("claims", fs.claims);
      control_kind("forwards", fs.forwards);
      control_kind("deliveries", fs.deliveries);
      control_kind("duplicates", fs.duplicates);
      control_kind("yields", fs.yields);
      control_kind("suppressions", fs.suppressions);
      control_kind("backtracks", fs.backtracks);
      control_kind("feedback_claims", fs.feedback_claims);
      control_kind("origin_retries", fs.origin_retries);
      control_kind("origin_failures", fs.origin_failures);
    }
  }

  registry.counter("telea_phy_transmissions_total", {{"sub", "phy"}})
      .set_total(medium_->total_transmissions());
  registry.gauge("telea_code_coverage", {{"sub", "teleadjusting"}})
      .set(code_coverage());
  if (tracer_ != nullptr) {
    registry.gauge("telea_trace_records", {{"sub", "trace"}})
        .set(static_cast<double>(tracer_->size()));
    registry.counter("telea_trace_dropped_total", {{"sub", "trace"}})
        .set_total(tracer_->dropped());
  }
  if (invariants_ != nullptr) {
    for (std::uint8_t i = 0;
         i <= static_cast<std::uint8_t>(InvariantRule::kCtpNoLoop); ++i) {
      const auto rule = static_cast<InvariantRule>(i);
      registry
          .counter("telea_invariant_violations_total",
                   {{"sub", "check"}, {"rule", invariant_rule_name(rule)}})
          .set_total(invariants_->violation_count(rule));
    }
    registry.counter("telea_invariant_checkpoints_total", {{"sub", "check"}})
        .set_total(invariants_->checkpoints_run());
    registry
        .counter("telea_invariant_claims_audited_total", {{"sub", "check"}})
        .set_total(invariants_->claims_audited());
  }
  if (sim_.profiling()) {
    const SimProfile& prof = sim_.profile();
    registry.counter("telea_sim_events_total", {{"sub", "sim"}})
        .set_total(prof.events_dispatched);
    registry.gauge("telea_sim_max_queue_depth", {{"sub", "sim"}})
        .set(static_cast<double>(prof.max_queue_depth));
  }
}

InvariantEngine& Network::enable_invariants(const InvariantConfig& config) {
  if (invariants_ != nullptr) return *invariants_;
  invariants_ = std::make_unique<InvariantEngine>(sim_, config);
  invariants_->set_tracer(tracer_.get());
  for (auto& n : nodes_) n->set_invariant_engine(invariants_.get());
  invariants_->start([this] { return invariant_views(); });
  return *invariants_;
}

std::vector<InvariantNodeView> Network::invariant_views() const {
  std::vector<InvariantNodeView> views;
  views.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    InvariantNodeView v;
    v.id = n->id();
    v.alive = !n->killed();
    v.ctp_parent = n->ctp().parent();
    v.ctp_parent_heard = n->ctp().parent_last_heard();
    v.ctp_cost = n->ctp().path_etx10();
    if (const TeleAdjusting* tele = n->tele()) {
      const Addressing& addr = tele->addressing();
      v.has_addressing = true;
      v.code = addr.code();
      v.old_code = addr.old_code();
      v.code_parent = addr.code_parent();
      v.space_bits = addr.space_bits();
      v.reserve_zero_position = addr.config().reserve_zero_position;
      for (const auto& e : addr.children().entries()) {
        v.children.push_back({e.child, e.position, e.new_code, e.old_code,
                              e.confirmed});
      }
      for (const auto& e : addr.neighbors().entries()) {
        v.neighbors.push_back({e.neighbor, e.new_code, e.old_code,
                               e.unreachable, e.unreachable_since});
      }
    }
    views.push_back(std::move(v));
  }
  return views;
}

Tracer& Network::enable_tracing(std::size_t capacity) {
  if (tracer_ != nullptr) return *tracer_;
  tracer_ = std::make_unique<Tracer>(capacity);
  for (auto& n : nodes_) n->set_tracer(tracer_.get());
  if (invariants_ != nullptr) invariants_->set_tracer(tracer_.get());
  medium_->add_transmit_hook(
      [this](NodeId src, const Frame& frame, SimTime) {
        tracer_->record(sim_.now(), src, TraceEvent::kTransmit,
                        frame.payload.index(), frame.dst);
        if (const auto* cp = std::get_if<msg::ControlPacket>(&frame.payload)) {
          tracer_->record(sim_.now(), src, TraceEvent::kControlTx, cp->seqno,
                          cp->expected_relay);
        }
      });
  return *tracer_;
}

}  // namespace telea
