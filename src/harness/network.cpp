#include "harness/network.hpp"

#include <algorithm>
#include <cstdio>

#include "core/path_code.hpp"
#include "harness/artifacts.hpp"
#include "radio/phy.hpp"
#include "stats/energy.hpp"
#include "util/rng.hpp"

namespace telea {

const char* protocol_name(ControlProtocol p) noexcept {
  switch (p) {
    case ControlProtocol::kTele: return "Tele";
    case ControlProtocol::kReTele: return "Re-Tele";
    case ControlProtocol::kDrip: return "Drip";
    case ControlProtocol::kRpl: return "RPL";
    case ControlProtocol::kOrpl: return "ORPL";
  }
  return "?";
}

NodeStack::NodeStack(Simulator& sim, RadioMedium& medium, NodeId id,
                     const NetworkConfig& config, std::uint64_t seed)
    : estimator_(),
      mac_(sim, medium, id, config.lpl, seed),
      ctp_(sim, mac_, estimator_, config.ctp, /*is_root=*/id == kSinkNode,
           seed ^ (0x5EED0000ULL + id)),
      data_timer_(sim),
      sim_(&sim) {
  mac_.set_handler(*this);
  ctp_.set_listener(this);

  if (config.uses_tele()) {
    TeleConfig tele_config = config.tele;
    tele_config.retele = config.protocol == ControlProtocol::kReTele;
    tele_config.addressing.wake_interval = config.lpl.wake_interval;
    tele_ = std::make_unique<TeleAdjusting>(sim, mac_, ctp_, tele_config);
  } else if (config.protocol == ControlProtocol::kDrip) {
    drip_ = std::make_unique<DripNode>(sim, mac_, config.drip,
                                       seed ^ (0xD41B0000ULL + id));
  } else if (config.protocol == ControlProtocol::kRpl) {
    rpl_ = std::make_unique<RplNode>(sim, mac_, ctp_, config.rpl);
  } else if (config.protocol == ControlProtocol::kOrpl) {
    orpl_ = std::make_unique<OrplNode>(sim, mac_, ctp_, config.orpl);
  }

  if (id == kSinkNode) {
    ctp_.set_deliver([this](const msg::CtpData& data) {
      if (tele_) tele_->notify_root_delivery(data);
      if (data.has_health && on_health_report) {
        on_health_report(data.origin, data.health);
      }
      if (on_sink_data) on_sink_data(data);
    });
  }

  // Permanent code-change fan-out: tracing and the flight recorder both
  // listen, either may be enabled at any time.
  if (tele_) {
    tele_->addressing().on_code_changed = [this] { note_code_changed(); };
  }
}

void NodeStack::note_code_changed() {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kCodeChange,
                    tele_->addressing().code().size());
  }
  if (flight_ != nullptr) {
    flight_->record(sim_->now(), FlightEvent::kCodeChange,
                    tele_->addressing().code().size());
  }
}

void NodeStack::start() {
  mac_.start();
  ctp_.start();
  if (tele_) tele_->start();
  if (drip_) drip_->start();
  if (rpl_) rpl_->start();
  if (orpl_) orpl_->start();
}

AckDecision NodeStack::handle_frame(const Frame& frame, bool for_me,
                                    double rssi_dbm) {
  (void)rssi_dbm;
  return std::visit(
      [&](const auto& payload) -> AckDecision {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, msg::CtpBeacon>) {
          ctp_.handle_beacon(frame.src, payload);
          return AckDecision::kAccept;
        } else if constexpr (std::is_same_v<T, msg::CtpData>) {
          // Overhearing a control e2e ack proves delivery: straggler
          // duplicates of that control packet can be dropped everywhere.
          if (payload.is_control_ack && tele_) {
            tele_->forwarding().note_ack_overheard(payload.control_seqno);
          }
          return ctp_.handle_data(frame.src, payload, for_me);
        } else if constexpr (std::is_same_v<T, msg::DripMsg>) {
          return drip_ ? drip_->handle_msg(frame.src, payload)
                       : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::RplDao>) {
          return rpl_ ? rpl_->handle_dao(frame.src, payload, for_me)
                      : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::RplData>) {
          return rpl_ ? rpl_->handle_data(frame.src, payload, for_me)
                      : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::OrplAnnounce>) {
          return orpl_ ? orpl_->handle_announce(frame.src, payload)
                       : AckDecision::kIgnore;
        } else if constexpr (std::is_same_v<T, msg::OrplData>) {
          return orpl_ ? orpl_->handle_data(frame.src, payload)
                       : AckDecision::kIgnore;
        } else {
          // All TeleAdjusting frame types.
          return tele_ ? tele_->handle_frame(frame, for_me)
                       : AckDecision::kIgnore;
        }
      },
      frame.payload);
}

void NodeStack::on_duplicate_frame(const Frame& frame, bool for_me) {
  (void)for_me;
  if (tele_ == nullptr) return;
  if (const auto* cp = std::get_if<msg::ControlPacket>(&frame.payload)) {
    tele_->forwarding().note_duplicate(frame.src, *cp);
  }
}

void NodeStack::on_route_found() {
  if (tele_) tele_->on_route_found();
}

void NodeStack::on_parent_changed(NodeId old_parent, NodeId new_parent) {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kParentChange, old_parent,
                    new_parent);
  }
  if (flight_ != nullptr) {
    flight_->record(sim_->now(), FlightEvent::kParentChange,
                    old_parent == kInvalidNode ? 0 : old_parent,
                    new_parent == kInvalidNode ? 0 : new_parent);
  }
  if (tele_) tele_->on_parent_changed(old_parent, new_parent);
  if (rpl_) rpl_->on_parent_changed();
}

void NodeStack::on_beacon_heard(NodeId from, const msg::CtpBeacon& beacon) {
  if (tele_) tele_->on_beacon_heard(from, beacon);
}

void NodeStack::kill() {
  if (tracer_ != nullptr) tracer_->record(sim_->now(), id(), TraceEvent::kKill);
  data_timer_.stop();
  mac_.stop();
}

void NodeStack::revive() {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kRevive);
  }
  mac_.restart();
  // kill() stopped the application workload along with the radio; a revived
  // node resumes originating (health telemetry made the omission visible:
  // every node that ever had an outage stayed stale forever).
  if (data_ipi_ > 0) start_data_collection(data_ipi_, data_seed_);
}

void NodeStack::reboot_with_state_loss() {
  if (tracer_ != nullptr) {
    tracer_->record(sim_->now(), id(), TraceEvent::kReboot);
  }
  if (flight_ != nullptr) {
    // The ring survives the reboot (noinit-RAM semantics): record the event,
    // then hand the pre-reboot history out as a post-mortem.
    flight_->record(sim_->now(), FlightEvent::kReboot);
    if (flight_trigger_) flight_trigger_(id(), "reboot");
  }
  if (invariants_ != nullptr) invariants_->note_node_reset(id());
  data_timer_.stop();
  if (!mac_.stopped()) mac_.stop();  // flush queue + in-flight sends
  if (tele_) tele_->reset_state();   // forwarding first, then addressing
  ctp_.reset_routing();
  mac_.restart();
  ctp_.start();  // trickle already at Imin from reset_routing
  if (tele_) tele_->start();
  if (data_ipi_ > 0) start_data_collection(data_ipi_, data_seed_);
}

void NodeStack::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  mac_.set_tracer(tracer);
  ctp_.set_tracer(tracer);
  if (tele_ != nullptr) tele_->set_tracer(tracer);
}

void NodeStack::set_invariant_engine(InvariantEngine* engine) {
  invariants_ = engine;
  if (tele_ != nullptr) tele_->forwarding().set_auditor(engine);
}

void NodeStack::enable_health_reporting(const HealthReporterConfig& config,
                                        const EnergyModelConfig& energy) {
  if (ctp_.is_root() || health_reporter_ != nullptr) return;
  health_reporter_ = std::make_unique<HealthReporter>(config);
  health_energy_ = energy;
  ctp_.set_origin_hook([this](msg::CtpData& data) {
    health_reporter_->maybe_attach(sim_->now(), data,
                                   [this] { return sample_health(); });
  });
}

HealthSample NodeStack::sample_health() {
  HealthSample s;
  s.duty_cycle = mac_.duty_cycle();
  const NodeId parent = ctp_.parent();
  s.etx10 = parent == kInvalidNode ? 0xFFFFu : estimator_.etx10(parent);
  if (tele_ && tele_->addressing().has_code()) {
    s.code_len = tele_->addressing().code().size();
  }
  s.mac_queue_hwm = mac_.send_queue_hwm();
  s.ctp_queue_hwm = ctp_.forward_queue_hwm();
  s.parent_changes = ctp_.stats().parent_changes;
  const EnergyModel model(health_energy_);
  s.energy_mj = model.energy_mj(mac_.radio_on_time(), mac_.tx_airtime(),
                                mac_.accounting_window());
  return s;
}

void NodeStack::enable_flight_recorder(
    std::size_t capacity, std::function<void(NodeId, const char*)> trigger_dump) {
  if (flight_ != nullptr) return;
  flight_ = std::make_unique<FlightRecorder>(capacity);
  flight_trigger_ = std::move(trigger_dump);
  if (tele_ != nullptr) tele_->forwarding().set_flight_recorder(flight_.get());
}

void NodeStack::start_data_collection(SimTime ipi, std::uint64_t seed) {
  if (mac_.stopped()) return;
  if (ctp_.is_root()) return;
  data_ipi_ = ipi;
  data_seed_ = seed;
  Pcg32 rng(seed ^ (0xDA7AULL + id()), id());
  data_timer_.set_callback([this] {
    msg::CtpData data;
    // In-band code report (paper Sec. III-A): collection traffic carries
    // the node's current path code up to the controller.
    if (tele_ != nullptr && tele_->addressing().has_code()) {
      data.has_code_report = true;
      data.reported_code = tele_->addressing().code();
    }
    ctp_.send_to_sink(data);
  });
  const SimTime phase = rng.uniform(static_cast<std::uint32_t>(
      std::min<SimTime>(ipi, 0xFFFFFFFFull)));
  data_timer_.start_periodic_at(phase + 1, ipi);
}

Network::Network(NetworkConfig config) : config_(std::move(config)) {
  const Topology& topo = config_.topology;
  gains_ = std::make_unique<LinkGainTable>(topo.positions, topo.path_loss,
                                           config_.seed);
  const auto trace =
      generate_heavy_noise_trace(config_.noise_trace, config_.seed ^ 0x4015EULL);
  noise_model_ = std::make_unique<CpmNoiseModel>(trace, /*history=*/3);

  MediumConfig medium_config = config_.medium;
  medium_config.tx_power_dbm = topo.tx_power_dbm;
  medium_ = std::make_unique<RadioMedium>(sim_, *gains_, *noise_model_,
                                          medium_config, config_.seed);

  if (config_.wifi_interference) {
    WifiInterfererConfig wifi = config_.wifi;
    wifi.enabled = true;
    interferer_ = std::make_unique<WifiInterferer>(wifi, topo.size(),
                                                   config_.seed ^ 0x3F1ULL);
    medium_->set_interferer(interferer_.get());
  }

  nodes_.reserve(topo.size());
  for (std::size_t i = 0; i < topo.size(); ++i) {
    nodes_.push_back(std::make_unique<NodeStack>(
        sim_, *medium_, static_cast<NodeId>(i), config_,
        config_.seed ^ (i * 0x9E3779B97F4A7C15ULL)));
  }

  // Wire the Re-Tele controller knowledge into every sink-capable node (only
  // the sink originates, but the hook is cheap).
  if (config_.protocol == ControlProtocol::kReTele) {
    if (TeleAdjusting* sink_tele = nodes_[kSinkNode]->tele()) {
      sink_tele->set_controller_hook(
          [this](NodeId dest, std::uint32_t) { return suggest_detour(dest); });
    }
  }
}

Network::~Network() {
  for (const std::string& path : artifact_claims_) {
    ArtifactRegistry::instance().release(path);
  }
}

void Network::start() {
  for (auto& n : nodes_) n->start();
}

std::optional<DetourSuggestion> Network::suggest_detour(NodeId dest) const {
  // The destination id came off the air: validate before indexing.
  if (dest >= nodes_.size()) return std::nullopt;
  const TeleAdjusting* dest_tele = nodes_[dest]->tele();
  if (dest_tele == nullptr || !dest_tele->addressing().has_code()) {
    return std::nullopt;
  }
  const PathCode& dest_code = dest_tele->addressing().code();

  // "High link quality" neighbor: comfortably inside the reception budget.
  const double good_loss =
      config_.topology.tx_power_dbm - Cc2420Phy::kSensitivityDbm - 6.0;

  std::optional<DetourSuggestion> best;
  std::size_t best_divergence = 0;
  int best_health = -1;
  unsigned best_etx10 = 0x100;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto id = static_cast<NodeId>(i);
    if (id == dest || id == kSinkNode) continue;
    if (gains_->loss_db(id, dest) > good_loss) continue;
    const TeleAdjusting* tele = nodes_[i]->tele();
    if (tele == nullptr || !tele->addressing().has_code()) continue;
    const PathCode& code = tele->addressing().code();
    // The detour must not route through the same broken subtree: prefer the
    // most divergent code (paper: "different path code to the greatest
    // extent").
    const std::size_t divergence = code_divergence(code, dest_code);
    // Health bias: among equally divergent candidates, prefer the ones the
    // sink's in-band health model has recently heard from (fresh > merely
    // tracked > silent), then the lowest reported parent-link ETX. Without
    // the model every candidate ranks the same and the seed behavior —
    // first max-divergence candidate wins — is preserved.
    int health_rank = 0;
    unsigned etx10 = 0x100;
    if (health_ != nullptr) {
      if (const NetworkHealthModel::Entry* e = health_->entry(id)) {
        health_rank = health_->is_fresh(sim_.now(), id) ? 2 : 1;
        etx10 = e->report.etx10;
      }
    }
    const bool better =
        !best.has_value() || divergence > best_divergence ||
        (divergence == best_divergence &&
         (health_rank > best_health ||
          (health_rank == best_health && etx10 < best_etx10)));
    if (better) {
      best = DetourSuggestion{id, code};
      best_divergence = divergence;
      best_health = health_rank;
      best_etx10 = etx10;
    }
  }
  return best;
}

int Network::code_tree_depth(NodeId id) const {
  if (id >= nodes_.size()) return -1;
  if (id == kSinkNode) return 0;
  int depth = 0;
  NodeId cur = id;
  for (std::size_t guard = 0; guard <= nodes_.size(); ++guard) {
    const TeleAdjusting* tele = nodes_[cur]->tele();
    if (tele == nullptr || !tele->addressing().has_code()) return -1;
    const NodeId up = tele->addressing().code_parent();
    if (up == kInvalidNode) return -1;
    ++depth;
    if (up == kSinkNode) return depth;
    cur = up;
  }
  return -1;  // cycle (stale allocator chain)
}

int Network::ctp_tree_depth(NodeId id) const {
  if (id >= nodes_.size()) return -1;
  if (id == kSinkNode) return 0;
  int depth = 0;
  NodeId cur = id;
  for (std::size_t guard = 0; guard <= nodes_.size(); ++guard) {
    const NodeId up = nodes_[cur]->ctp().parent();
    if (up == kInvalidNode) return -1;
    ++depth;
    if (up == kSinkNode) return depth;
    cur = up;
  }
  return -1;  // routing loop
}

double Network::code_coverage() const {
  if (nodes_.size() <= 1) return 1.0;
  std::size_t with_code = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const TeleAdjusting* tele = nodes_[i]->tele();
    if (tele != nullptr && tele->addressing().has_code()) ++with_code;
  }
  return static_cast<double>(with_code) /
         static_cast<double>(nodes_.size() - 1);
}

void Network::reset_accounting() {
  for (auto& n : nodes_) n->mac().reset_accounting();
}

double Network::average_duty_cycle() const {
  double sum = 0;
  for (const auto& n : nodes_) sum += n->mac().duty_cycle();
  return sum / static_cast<double>(nodes_.size());
}

EnergyModelConfig Network::energy_config() const noexcept {
  EnergyModelConfig cfg = config_.energy;
  cfg.tx_power_dbm = config_.topology.tx_power_dbm;
  return cfg;
}

SpanEnergyConfig Network::span_energy_config() const {
  const EnergyModelConfig model = energy_config();
  SpanEnergyConfig cfg;
  cfg.supply_volts = model.supply_volts;
  cfg.tx_current_ma = EnergyModel::tx_current_ma(model.tx_power_dbm);
  cfg.rx_current_ma = model.rx_current_ma;
  // The exact PHY airtime of one LPL copy of a control frame.
  Frame probe;
  probe.payload = msg::ControlPacket{};
  cfg.copy_airtime_s = to_seconds(Cc2420Phy::airtime(wire_size_bytes(probe)));
  return cfg;
}

std::vector<CommandSpan> Network::command_spans() const {
  if (tracer_ == nullptr) return {};
  return build_command_spans(tracer_->snapshot());
}

double Network::average_energy_mj() const {
  const EnergyModel model(energy_config());
  double sum = 0;
  for (const auto& n : nodes_) {
    sum += model.energy_mj(n->mac().radio_on_time(), n->mac().tx_airtime(),
                           n->mac().accounting_window());
  }
  return sum / static_cast<double>(nodes_.size());
}

double Network::average_current_ma() const {
  const EnergyModel model(energy_config());
  double sum = 0;
  for (const auto& n : nodes_) {
    sum += model.average_current_ma(n->mac().radio_on_time(),
                                    n->mac().tx_airtime(),
                                    n->mac().accounting_window());
  }
  return sum / static_cast<double>(nodes_.size());
}

void Network::start_data_collection(SimTime ipi) {
  for (auto& n : nodes_) n->start_data_collection(ipi, config_.seed);
}

void Network::collect_metrics(MetricsRegistry& registry) const {
  registry.describe("telea_tx_copies_total", "Link-layer frame copies transmitted");
  registry.describe("telea_send_ops_total", "MAC send operations completed");
  registry.describe("telea_duty_cycle", "Radio duty cycle since last accounting reset");
  registry.describe("telea_beacons_total", "CTP routing beacons sent");
  registry.describe("telea_data_total", "CTP data plane activity by kind");
  registry.describe("telea_parent_changes_total", "CTP parent switches");
  registry.describe("telea_control_total", "TeleAdjusting forwarding-plane decisions by kind");
  registry.describe("telea_phy_transmissions_total", "Frame copies put on the medium");
  registry.describe("telea_code_coverage", "Fraction of non-sink nodes holding a confirmed path code");
  registry.describe("telea_node_duty_cycle", "Distribution of per-node duty cycles");
  registry.describe("telea_trace_records", "Trace ring occupancy");
  registry.describe("telea_trace_dropped_total", "Trace records evicted from the ring");
  registry.describe("telea_sim_events_total", "Simulator events dispatched (profiling runs)");
  registry.describe("telea_sim_max_queue_depth", "Peak event-queue depth (profiling runs)");
  registry.describe("telea_invariant_violations_total", "Protocol invariant violations detected, by rule");
  registry.describe("telea_invariant_checkpoints_total", "Structural invariant checkpoints evaluated");
  registry.describe("telea_invariant_claims_audited_total", "Forwarding claims re-checked by the invariant engine");

  Histogram& duty_hist = registry.histogram(
      "telea_node_duty_cycle",
      {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0});
  duty_hist.reset();  // collector-style: re-populate on every scrape
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeStack& n = *nodes_[i];
    const std::string node = std::to_string(i);
    const MetricLabels lpl{{"node", node}, {"sub", "lpl"}};
    registry.counter("telea_tx_copies_total", lpl)
        .set_total(n.mac().copies_sent());
    registry.counter("telea_send_ops_total", lpl).set_total(n.mac().send_ops());
    registry.gauge("telea_duty_cycle", lpl).set(n.mac().duty_cycle());
    duty_hist.observe(n.mac().duty_cycle());

    const MetricLabels ctp{{"node", node}, {"sub", "ctp"}};
    const CtpNode::Stats& cs = n.ctp().stats();
    registry.counter("telea_beacons_total", ctp).set_total(cs.beacons_sent);
    auto data_kind = [&](const char* kind, std::uint64_t v) {
      MetricLabels labels = ctp;
      labels.emplace_back("kind", kind);
      registry.counter("telea_data_total", labels).set_total(v);
    };
    data_kind("originated", cs.data_originated);
    data_kind("forwarded", cs.data_forwarded);
    data_kind("delivered", cs.data_delivered);
    data_kind("dropped", cs.data_dropped);
    registry.counter("telea_parent_changes_total", ctp)
        .set_total(cs.parent_changes);

    if (TeleAdjusting* tele = n.tele()) {
      const Forwarding::Stats& fs = tele->forwarding().stats();
      auto control_kind = [&](const char* kind, std::uint64_t v) {
        registry
            .counter("telea_control_total",
                     {{"node", node}, {"sub", "forwarding"}, {"kind", kind}})
            .set_total(v);
      };
      control_kind("claims", fs.claims);
      control_kind("forwards", fs.forwards);
      control_kind("deliveries", fs.deliveries);
      control_kind("duplicates", fs.duplicates);
      control_kind("yields", fs.yields);
      control_kind("suppressions", fs.suppressions);
      control_kind("backtracks", fs.backtracks);
      control_kind("feedback_claims", fs.feedback_claims);
      control_kind("origin_retries", fs.origin_retries);
      control_kind("origin_failures", fs.origin_failures);
    }
  }

  registry.counter("telea_phy_transmissions_total", {{"sub", "phy"}})
      .set_total(medium_->total_transmissions());
  registry.gauge("telea_code_coverage", {{"sub", "teleadjusting"}})
      .set(code_coverage());
  if (tracer_ != nullptr) {
    registry.gauge("telea_trace_records", {{"sub", "trace"}})
        .set(static_cast<double>(tracer_->size()));
    registry.counter("telea_trace_dropped_total", {{"sub", "trace"}})
        .set_total(tracer_->dropped());
  }
  if (invariants_ != nullptr) {
    for (std::uint8_t i = 0;
         i <= static_cast<std::uint8_t>(InvariantRule::kCtpNoLoop); ++i) {
      const auto rule = static_cast<InvariantRule>(i);
      registry
          .counter("telea_invariant_violations_total",
                   {{"sub", "check"}, {"rule", invariant_rule_name(rule)}})
          .set_total(invariants_->violation_count(rule));
    }
    registry.counter("telea_invariant_checkpoints_total", {{"sub", "check"}})
        .set_total(invariants_->checkpoints_run());
    registry
        .counter("telea_invariant_claims_audited_total", {{"sub", "check"}})
        .set_total(invariants_->claims_audited());
  }
  if (sim_.profiling()) {
    const SimProfile& prof = sim_.profile();
    registry.counter("telea_sim_events_total", {{"sub", "sim"}})
        .set_total(prof.events_dispatched);
    registry.gauge("telea_sim_max_queue_depth", {{"sub", "sim"}})
        .set(static_cast<double>(prof.max_queue_depth));
  }
  if (health_ != nullptr) {
    health_->collect_metrics(registry, sim_.now());
    registry.describe("telea_health_suppressed_total",
                      "Health reports withheld by the origin rate limiter");
    std::uint64_t attached = 0;
    std::uint64_t bytes = 0;
    std::uint64_t suppressed = 0;
    for (const auto& n : nodes_) {
      if (const HealthReporter* r = n->health_reporter()) {
        attached += r->stats().reports_attached;
        bytes += r->stats().bytes_attached;
        suppressed += r->stats().suppressed;
      }
    }
    const MetricLabels origin{{"side", "origin"}, {"sub", "health"}};
    registry.counter("telea_health_reports_total", origin).set_total(attached);
    registry.counter("telea_health_overhead_bytes", origin).set_total(bytes);
    registry.counter("telea_health_suppressed_total", origin)
        .set_total(suppressed);
  }
  if (timeline_ != nullptr) timeline_->collect_metrics(registry);
  if (flight_enabled_) {
    registry.describe("telea_flight_events_total",
                      "Events recorded into per-node flight-recorder rings");
    registry.describe("telea_flight_dumps_total",
                      "Flight-recorder rings dumped on a trigger");
    std::uint64_t recorded = 0;
    for (const auto& n : nodes_) {
      if (const FlightRecorder* r = n->flight_recorder()) {
        recorded += r->total_recorded();
      }
    }
    registry.counter("telea_flight_events_total", {{"sub", "flight"}})
        .set_total(recorded);
    registry.counter("telea_flight_dumps_total", {{"sub", "flight"}})
        .set_total(flight_dumps_taken_);
  }
}

InvariantEngine& Network::enable_invariants(const InvariantConfig& config) {
  if (invariants_ != nullptr) return *invariants_;
  invariants_ = std::make_unique<InvariantEngine>(sim_, config);
  invariants_->set_tracer(tracer_.get());
  for (auto& n : nodes_) n->set_invariant_engine(invariants_.get());
  invariants_->start([this] { return invariant_views(); });
  wire_flight_triggers();
  return *invariants_;
}

NetworkHealthModel& Network::enable_health(const NetworkHealthConfig& config) {
  if (health_ != nullptr) return *health_;
  // Claim the snapshot stream before any state lands: a collision with a
  // live trial must throw and leave this network health-off.
  if (!config.snapshot_jsonl.empty()) {
    ArtifactRegistry::instance().claim(config.snapshot_jsonl);
    artifact_claims_.push_back(config.snapshot_jsonl);
  }
  health_config_ = config;
  if (health_config_.period == 0) health_config_.period = 60 * kSecond;

  HealthModelConfig model_config;
  model_config.period = health_config_.period;
  model_config.stale_after = health_config_.stale_after;
  model_config.evict_after = health_config_.evict_after;
  health_ = std::make_unique<NetworkHealthModel>(model_config);
  health_->set_expected_nodes(nodes_.empty() ? 0 : nodes_.size() - 1);

  HealthReporterConfig reporter_config;
  reporter_config.min_interval = health_config_.period;
  const EnergyModelConfig energy = energy_config();
  for (auto& n : nodes_) n->enable_health_reporting(reporter_config, energy);
  sink().on_health_report = [this](NodeId node, const msg::HealthReport& r) {
    health_->on_report(sim_.now(), node, r);
  };

  if (!health_config_.snapshot_jsonl.empty()) {
    const SimTime interval = health_config_.snapshot_interval != 0
                                 ? health_config_.snapshot_interval
                                 : health_config_.period;
    health_timer_ = std::make_unique<Timer>(sim_);
    health_timer_->set_callback([this] { append_health_snapshot(); });
    health_timer_->start_periodic(interval);
  }
  return *health_;
}

bool Network::append_health_snapshot() {
  if (health_ == nullptr || health_config_.snapshot_jsonl.empty()) return false;
  std::FILE* f = std::fopen(health_config_.snapshot_jsonl.c_str(), "a");
  if (f == nullptr) return false;
  const std::string line = health_->render_snapshot_json(sim_.now()) + "\n";
  const bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  return std::fclose(f) == 0 && ok;
}

TimelineEngine& Network::enable_timeline(const NetworkTimelineConfig& config) {
  if (timeline_ != nullptr) return *timeline_;
  if (!config.jsonl.empty()) {
    ArtifactRegistry::instance().claim(config.jsonl);
    artifact_claims_.push_back(config.jsonl);
  }
  timeline_ = std::make_unique<TimelineEngine>(sim_, config.timeline);
  // Self-inclusion is intentional: the engine's own telea_timeline_* /
  // telea_alert_* families ride in the same collector pass, one sample late
  // at worst and never recursive (the scratch registry is the engine's own).
  timeline_->set_collector(
      [this](MetricsRegistry& registry) { collect_metrics(registry); });
  timeline_->set_tracer(tracer_.get());
  timeline_->set_rules(config.rules);
  if (!config.jsonl.empty()) timeline_->set_jsonl(config.jsonl);
  timeline_->on_alert_fired = [this](const AlertState& alert, NodeId node) {
    if (!flight_enabled_) return;
    // A rule naming a node="N" series dumps that node's ring — the alert is
    // about it; network-wide rules dump the sink, the controller's vantage.
    const NodeId target =
        (node == kInvalidNode || node >= nodes_.size()) ? kSinkNode : node;
    if (FlightRecorder* recorder = nodes_[target]->flight_recorder()) {
      recorder->record(sim_.now(), FlightEvent::kAlert, alert.index,
                       alert.fired);
    }
    dump_flight(target, "alert:" + alert.rule.name);
  };
  timeline_->start();
  return *timeline_;
}

void Network::enable_flight_recorders(std::size_t capacity) {
  if (flight_enabled_) return;
  flight_enabled_ = true;
  for (auto& n : nodes_) {
    n->enable_flight_recorder(
        capacity,
        [this](NodeId node, const char* trigger) { dump_flight(node, trigger); });
  }
  wire_flight_triggers();
}

void Network::wire_flight_triggers() {
  if (!flight_enabled_ || invariants_ == nullptr) return;
  invariants_->on_violation = [this](const InvariantViolation& v) {
    if (v.node == kInvalidNode || v.node >= nodes_.size()) return;
    dump_flight(v.node,
                std::string("invariant:") + invariant_rule_name(v.rule));
  };
}

void Network::dump_flight(NodeId node, std::string trigger) {
  if (node >= nodes_.size()) return;
  FlightRecorder* recorder = nodes_[node]->flight_recorder();
  if (recorder == nullptr) return;
  FlightDump dump;
  dump.time = sim_.now();
  dump.node = node;
  dump.trigger = std::move(trigger);
  dump.events = recorder->snapshot();
  dump.dropped = recorder->total_recorded() - dump.events.size();
  if (tracer_ != nullptr) {
    tracer_->record(sim_.now(), node, TraceEvent::kFlightDump,
                    dump.events.size(), flight_dumps_taken_);
  }
  ++flight_dumps_taken_;
  constexpr std::size_t kMaxStoredDumps = 256;
  if (flight_dumps_.size() >= kMaxStoredDumps) {
    flight_dumps_.erase(flight_dumps_.begin());
  }
  flight_dumps_.push_back(std::move(dump));
  if (on_flight_dump) on_flight_dump(flight_dumps_.back());
}

std::vector<InvariantNodeView> Network::invariant_views() const {
  std::vector<InvariantNodeView> views;
  views.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    InvariantNodeView v;
    v.id = n->id();
    v.alive = !n->killed();
    v.ctp_parent = n->ctp().parent();
    v.ctp_parent_heard = n->ctp().parent_last_heard();
    v.ctp_cost = n->ctp().path_etx10();
    if (const TeleAdjusting* tele = n->tele()) {
      const Addressing& addr = tele->addressing();
      v.has_addressing = true;
      v.code = addr.code();
      v.old_code = addr.old_code();
      v.code_parent = addr.code_parent();
      v.space_bits = addr.space_bits();
      v.reserve_zero_position = addr.config().reserve_zero_position;
      for (const auto& e : addr.children().entries()) {
        v.children.push_back({e.child, e.position, e.new_code, e.old_code,
                              e.confirmed});
      }
      for (const auto& e : addr.neighbors().entries()) {
        v.neighbors.push_back({e.neighbor, e.new_code, e.old_code,
                               e.unreachable, e.unreachable_since});
      }
    }
    views.push_back(std::move(v));
  }
  return views;
}

Tracer& Network::enable_tracing(std::size_t capacity) {
  if (tracer_ != nullptr) return *tracer_;
  tracer_ = std::make_unique<Tracer>(capacity);
  for (auto& n : nodes_) n->set_tracer(tracer_.get());
  if (invariants_ != nullptr) invariants_->set_tracer(tracer_.get());
  if (timeline_ != nullptr) timeline_->set_tracer(tracer_.get());
  medium_->add_transmit_hook(
      [this](NodeId src, const Frame& frame, SimTime) {
        tracer_->record(sim_.now(), src, TraceEvent::kTransmit,
                        frame.payload.index(), frame.dst);
        if (const auto* cp = std::get_if<msg::ControlPacket>(&frame.payload)) {
          tracer_->record(sim_.now(), src, TraceEvent::kControlTx, cp->seqno,
                          cp->expected_relay);
        }
      });
  return *tracer_;
}

}  // namespace telea
