#include "harness/artifacts.hpp"

namespace telea {

ArtifactRegistry& ArtifactRegistry::instance() {
  static ArtifactRegistry registry;
  return registry;
}

void ArtifactRegistry::claim(const std::string& path) {
  if (path.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!open_.insert(path).second) {
    throw ArtifactConflictError(
        "artifact path '" + path +
        "' is already opened by a live trial — give each trial its own "
        "stream (trial_artifact_path suffixes them; docs/PARALLELISM.md)");
  }
}

void ArtifactRegistry::release(const std::string& path) {
  if (path.empty()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  open_.erase(path);
}

bool ArtifactRegistry::claimed(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return open_.contains(path);
}

}  // namespace telea
