#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "harness/network.hpp"
#include "stats/metrics.hpp"
#include "util/rng.hpp"

namespace telea {

/// Terminal state of a tracked command's lifecycle.
enum class CommandOutcome : std::uint8_t {
  kAcked,   // end-to-end acknowledgement arrived at the sink
  kGaveUp,  // retry budget exhausted without an ack
  kNoCode,  // destination was never addressable (no path code known)
};

[[nodiscard]] const char* command_outcome_name(CommandOutcome o) noexcept;

/// Reliable-delivery policy for Controller::send_command. With `enabled` the
/// controller tracks every command until an e2e ack arrives: unacked commands
/// are re-sent after `ack_timeout` with exponential backoff (factor
/// `backoff_factor`, capped at `max_backoff`, de-synchronized by ±`jitter`),
/// and after `escalate_after` plain retries the re-send goes through the
/// Re-Tele redirect path (Sec. III-C4) instead of the plain encoded path.
/// After `max_retries` re-sends the command is abandoned (kGaveUp).
struct ControllerRetryConfig {
  bool enabled = true;
  SimTime ack_timeout = 25 * kSecond;
  double backoff_factor = 2.0;
  SimTime max_backoff = 2 * kMinute;
  double jitter = 0.25;
  unsigned max_retries = 4;
  unsigned escalate_after = 2;
};

/// Everything known about a command when its lifecycle closes.
struct CommandResolution {
  NodeId dest = kInvalidNode;
  std::uint16_t command = 0;
  std::uint32_t first_seqno = 0;  // seqno of the initial transmission
  std::uint32_t last_seqno = 0;   // seqno of the attempt that closed it
  CommandOutcome outcome = CommandOutcome::kGaveUp;
  unsigned attempts = 0;  // total sends (initial + retries)
  unsigned escalations = 0;
  SimTime issued_at = 0;
  SimTime resolved_at = 0;
};

/// The remote controller of the paper's Fig. 1: the entity behind the sink
/// that watches collected data, detects anomalies, and issues remote-control
/// commands addressed by path code. In a deployment it lives in the data
/// center and learns codes/topology from reports; here it reads them from
/// the simulated network, which is exactly the knowledge the paper grants it
/// ("the local topology information of each node is necessary and likely
/// known", Sec. III-C4).
///
/// Commands are tracked through a full lifecycle (see ControllerRetryConfig):
/// pending until acked, re-sent on ack timeout, escalated to a Re-Tele detour
/// when plain retries keep failing, and finally resolved as kAcked / kGaveUp
/// through `on_command_resolved`.
class Controller {
 public:
  explicit Controller(Network& net, ControllerRetryConfig retry = {});

  // --- data-plane monitoring (anomaly detection) -------------------------
  /// Feed every CtpData delivered at the sink.
  void on_sink_data(const msg::CtpData& data);

  /// Starts an observation window for quiet-node detection.
  void begin_window();

  /// Nodes that had reported at least `expected` packets before the window
  /// but fewer than `floor` inside it — the "observed network anomaly" the
  /// paper's remote control exists to fix (Sec. II).
  [[nodiscard]] std::vector<NodeId> quiet_nodes(unsigned expected,
                                                unsigned floor) const;

  [[nodiscard]] unsigned reports_from(NodeId node) const;

  /// The destination's path code as last *reported in-band* (piggybacked on
  /// its collection traffic), or nullopt if it never reported. This is the
  /// knowledge a real controller has; reading codes out of the simulation
  /// objects is the documented substitution (DESIGN.md §4).
  [[nodiscard]] std::optional<PathCode> reported_code(NodeId node) const;

  /// When true, send_command addresses destinations by their *reported*
  /// codes only (fails for nodes that never reported) instead of reading
  /// the live addressing state. Default false.
  void set_use_reported_codes(bool use) { use_reported_codes_ = use; }

  // --- control plane -------------------------------------------------------
  /// Sends `command` to `node`, addressed by its current reported path code,
  /// and (when retries are enabled) tracks it until it resolves. Returns the
  /// control seqno of the first attempt, or nullopt when the node has no
  /// code or the network runs a non-TeleAdjusting protocol (in which case
  /// on_command_resolved fires immediately with kNoCode).
  std::optional<std::uint32_t> send_command(NodeId node,
                                            std::uint16_t command);

  /// One-to-many: sends `command` to every node in `nodes` as a group
  /// packet. Returns the group seqno, or nullopt when unsupported. Group
  /// packets are fire-and-forget (no retry tracking).
  std::optional<std::uint32_t> send_command_group(
      const std::vector<NodeId>& nodes, std::uint16_t command);

  /// Fires exactly once per tracked command, when its lifecycle closes.
  std::function<void(const CommandResolution&)> on_command_resolved;

  /// Acknowledged command seqnos seen so far (from e2e acks at the sink).
  /// A retried command appears under whichever attempt's seqno got acked.
  [[nodiscard]] const std::vector<std::uint32_t>& acked() const noexcept {
    return acked_;
  }

  // --- lifecycle introspection ---------------------------------------------
  [[nodiscard]] const ControllerRetryConfig& retry_config() const noexcept {
    return retry_;
  }
  [[nodiscard]] std::size_t pending_commands() const noexcept {
    return pending_.size();
  }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t escalations() const noexcept {
    return escalations_;
  }
  [[nodiscard]] std::uint64_t gave_up() const noexcept { return gave_up_; }
  [[nodiscard]] std::uint64_t resolved_acked() const noexcept {
    return resolved_acked_;
  }
  [[nodiscard]] std::uint64_t no_code() const noexcept { return no_code_; }

  /// Mirrors the controller's lifecycle counters into `registry`
  /// (telea_controller_* series; collector-style, call again to refresh).
  void collect_metrics(MetricsRegistry& registry) const;

 private:
  struct PendingCommand {
    NodeId dest = kInvalidNode;
    std::uint16_t command = 0;
    PathCode code;  // the code the last attempt was addressed with
    std::uint32_t first_seqno = 0;
    std::uint32_t last_seqno = 0;
    unsigned attempts = 1;
    unsigned escalations = 0;
    bool last_escalated = false;
    SimTime issued_at = 0;
    SimTime backoff = 0;  // timeout armed for the current attempt
    EventHandle timeout;
  };

  /// Resolves the code to address `node` with, honoring the reported-codes
  /// mode. nullopt when the node is not addressable.
  [[nodiscard]] std::optional<PathCode> address_of(NodeId node) const;

  void arm_timeout(std::uint64_t id, SimTime delay);
  void on_timeout(std::uint64_t id);
  void on_ack(std::uint32_t seqno);
  void on_failed(std::uint32_t seqno);
  void resolve(std::uint64_t id, CommandOutcome outcome);

  Network* net_;
  ControllerRetryConfig retry_;
  Pcg32 rng_;
  bool use_reported_codes_ = false;
  std::map<NodeId, PathCode> reported_;
  std::map<NodeId, unsigned> arrivals_;
  std::map<NodeId, unsigned> window_start_;
  std::vector<std::uint32_t> acked_;

  std::map<std::uint64_t, PendingCommand> pending_;
  std::map<std::uint32_t, std::uint64_t> seqno_to_cmd_;
  std::uint64_t next_cmd_id_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t gave_up_ = 0;
  std::uint64_t resolved_acked_ = 0;
  std::uint64_t no_code_ = 0;
};

}  // namespace telea
