#pragma once

#include <map>
#include <optional>
#include <vector>

#include "harness/network.hpp"

namespace telea {

/// The remote controller of the paper's Fig. 1: the entity behind the sink
/// that watches collected data, detects anomalies, and issues remote-control
/// commands addressed by path code. In a deployment it lives in the data
/// center and learns codes/topology from reports; here it reads them from
/// the simulated network, which is exactly the knowledge the paper grants it
/// ("the local topology information of each node is necessary and likely
/// known", Sec. III-C4).
class Controller {
 public:
  explicit Controller(Network& net);

  // --- data-plane monitoring (anomaly detection) -------------------------
  /// Feed every CtpData delivered at the sink.
  void on_sink_data(const msg::CtpData& data);

  /// Starts an observation window for quiet-node detection.
  void begin_window();

  /// Nodes that had reported at least `expected` packets before the window
  /// but fewer than `floor` inside it — the "observed network anomaly" the
  /// paper's remote control exists to fix (Sec. II).
  [[nodiscard]] std::vector<NodeId> quiet_nodes(unsigned expected,
                                                unsigned floor) const;

  [[nodiscard]] unsigned reports_from(NodeId node) const;

  /// The destination's path code as last *reported in-band* (piggybacked on
  /// its collection traffic), or nullopt if it never reported. This is the
  /// knowledge a real controller has; reading codes out of the simulation
  /// objects is the documented substitution (DESIGN.md §4).
  [[nodiscard]] std::optional<PathCode> reported_code(NodeId node) const;

  /// When true, send_command addresses destinations by their *reported*
  /// codes only (fails for nodes that never reported) instead of reading
  /// the live addressing state. Default false.
  void set_use_reported_codes(bool use) { use_reported_codes_ = use; }

  // --- control plane -------------------------------------------------------
  /// Sends `command` to `node`, addressed by its current reported path code.
  /// Returns the control seqno, or nullopt when the node has no code or the
  /// network runs a non-TeleAdjusting protocol.
  std::optional<std::uint32_t> send_command(NodeId node,
                                            std::uint16_t command);

  /// One-to-many: sends `command` to every node in `nodes` as a group
  /// packet. Returns the group seqno, or nullopt when unsupported.
  std::optional<std::uint32_t> send_command_group(
      const std::vector<NodeId>& nodes, std::uint16_t command);

  /// Acknowledged command seqnos seen so far (from e2e acks at the sink).
  [[nodiscard]] const std::vector<std::uint32_t>& acked() const noexcept {
    return acked_;
  }

 private:
  Network* net_;
  bool use_reported_codes_ = false;
  std::map<NodeId, PathCode> reported_;
  std::map<NodeId, unsigned> arrivals_;
  std::map<NodeId, unsigned> window_start_;
  std::vector<std::uint32_t> acked_;
};

}  // namespace telea
