#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "harness/network.hpp"
#include "stats/summary.hpp"

namespace telea {

/// Workload of the paper's testbed experiments (Sec. IV-B1): after warm-up,
/// each node collects data every `data_ipi`, and the sink sends one control
/// packet to a uniformly random destination every `control_interval`.
struct ControlExperimentConfig {
  NetworkConfig network{};
  SimTime warmup = 25 * kMinute;
  SimTime duration = 60 * kMinute;  // paper runs 3-9 h; configurable
  SimTime control_interval = 1 * kMinute;
  SimTime data_ipi = 10 * kMinute;
  SimTime drain = 2 * kMinute;  // tail to let in-flight packets settle

  /// Invoked once after warm-up, before the measured workload starts —
  /// snapshot hooks (topology export, fault-plan application, tracing).
  std::function<void(Network&)> on_warmed_up;

  /// Invoked once after the drain phase, while the network still exists —
  /// artifact-export hooks (trace JSONL, metrics, simulator profile).
  std::function<void(Network&)> on_finished;
};

/// Everything the paper's Figs. 7-10 and Table III report, from one run.
struct ControlExperimentResult {
  ControlProtocol protocol{};
  bool wifi = false;

  unsigned sent = 0;
  unsigned delivered = 0;
  unsigned e2e_acked = 0;

  /// Per-destination-CTP-hop delivery outcomes (1 delivered / 0 lost):
  /// mean() of a group is the PDR at that hop count (Fig. 7).
  GroupedStats pdr_by_hop;
  /// End-to-end latency (seconds) of delivered packets, by hop (Fig. 10).
  GroupedStats latency_by_hop;
  /// Accumulated transmission hop count of received control packets vs the
  /// receiver's CTP hop count (Fig. 8) — recorded at every relay/adopter.
  GroupedStats athx_by_hop;
  /// Pooled end-to-end latency samples (seconds) of delivered packets —
  /// the distribution behind p50/p90/p99 in the bench artifacts.
  Cdf latency;
  /// Whole-network radio energy over the measurement window divided by
  /// control packets sent (µJ/command) under the deployment's energy model.
  /// Includes the concurrent data-collection load: it is the network-level
  /// price of keeping the control plane available, not a per-span sum.
  double energy_uj_per_command = 0.0;
  /// Network-wide control-plane transmissions per control packet
  /// (Table III): LPL send operations of control-class frames / sent.
  double tx_per_control = 0.0;
  /// Mean radio duty cycle across nodes over the measurement phase (Fig. 9).
  double duty_cycle = 0.0;
  /// Mean per-node battery current (mA) over the measurement phase — the
  /// energy-model extension of Fig. 9.
  double current_ma = 0.0;

  [[nodiscard]] double pdr() const noexcept {
    return sent == 0 ? 0.0
                     : static_cast<double>(delivered) /
                           static_cast<double>(sent);
  }
};

/// Runs one control-plane experiment end to end: build, warm up, drive the
/// workload, collect. Deterministic in (config, config.network.seed).
[[nodiscard]] ControlExperimentResult run_control_experiment(
    const ControlExperimentConfig& config);

/// Merges per-run results (the paper averages over >= 5 runs).
[[nodiscard]] ControlExperimentResult merge_results(
    const std::vector<ControlExperimentResult>& runs);

}  // namespace telea
