#pragma once

#include <cstdint>
#include <string>

#include "harness/controller.hpp"
#include "harness/network.hpp"

namespace telea {

/// A randomized robustness soak: a connected random deployment running
/// collection traffic while the controller issues periodic commands, under a
/// mixed fault schedule (node churn, parent-link blackouts, a noise burst,
/// one state-losing reboot) built *after* warm-up from the live CTP tree —
/// so the blackouts sever links the routing actually uses.
struct ChurnSoakConfig {
  std::size_t nodes = 24;
  double side_m = 90.0;
  std::uint64_t seed = 1;

  SimTime warmup = 12 * kMinute;
  SimTime duration = 30 * kMinute;   // command/fault window after warm-up
  SimTime drain = 6 * kMinute;       // long enough for the slowest lifecycle
  SimTime command_interval = 30 * kSecond;
  SimTime data_ipi = 1 * kMinute;

  /// Reliable delivery on/off — the soak's A/B knob. With false the
  /// controller is fire-and-forget (the seed repo's behavior).
  bool reliable = true;
  ControllerRetryConfig retry{};

  // --- fault mix ------------------------------------------------------------
  unsigned outages = 6;
  SimTime outage_downtime = 2 * kMinute;
  unsigned link_blackouts = 3;
  SimTime blackout_duration = 4 * kMinute;
  bool noise_burst = true;
  double noise_dbm = -75.0;
  SimTime noise_duration = 90 * kSecond;
  bool state_loss_reboot = true;

  /// Run the soak under the runtime invariant engine (src/check). The soak
  /// must come out clean: any violation means fault handling corrupted
  /// protocol state rather than merely losing packets.
  bool invariants = true;

  /// Trace the run and reconstruct command spans (src/stats/spans.*) at the
  /// end: every delivered span's segment decomposition must reconcile with
  /// its end-to-end latency even under churn — the observability analogue of
  /// the invariant engine's "faults lose packets, never corrupt state".
  bool spans = true;

  /// Piggybacked health telemetry (src/stats/health.*): the sink model's
  /// coverage/staleness verdict under the same fault mix.
  bool health = false;
  SimTime health_period = 60 * kSecond;

  /// Timeline engine over the soak (docs/OBSERVABILITY.md, "Timeline &
  /// alerts"): sample the full metric set every `timeline_interval`,
  /// evaluate `timeline_rules` each sample, and stream samples + alert
  /// transitions to `timeline_jsonl` when set. Flight recorders are armed
  /// alongside so every firing captures node-level context; the dumps
  /// stream to `flight_jsonl` when set. The sampling overhead is measured
  /// against the soak's wall-clock (timeline_wall_fraction below) — the
  /// harness gates it at <5%.
  bool timeline = false;
  SimTime timeline_interval = 10 * kSecond;
  std::vector<AlertRule> timeline_rules;
  std::string timeline_jsonl;
  std::string flight_jsonl;
};

struct ChurnSoakResult {
  unsigned commands = 0;     // commands issued (addressable destinations)
  unsigned acked = 0;        // e2e-acknowledged (resolved or raw acks)
  unsigned gave_up = 0;      // reliable mode: budget exhausted
  unsigned no_code = 0;      // issue attempts rejected for lack of a code
  unsigned unresolved = 0;   // still pending when the run ended
  std::uint64_t retries = 0;
  std::uint64_t escalations = 0;
  unsigned faults_injected = 0;  // logical faults (an outage counts once)
  double tx_per_command = 0.0;   // control-plane LPL send ops / command
  // Invariant engine verdict (cfg.invariants): violations must stay 0.
  std::uint64_t invariant_violations = 0;
  std::uint64_t invariant_checkpoints = 0;
  std::uint64_t claims_audited = 0;
  // Span engine verdict (cfg.spans): reconcile failures must stay 0.
  std::size_t command_spans = 0;
  std::size_t span_reconcile_failures = 0;
  // Health model verdict (cfg.health), read at end of run.
  double health_coverage = 0.0;      // fresh / expected
  std::size_t health_tracked = 0;    // nodes ever heard from (not evicted)
  std::uint64_t health_reports = 0;  // reports the sink accepted or rejected
  std::uint64_t health_bytes = 0;    // piggyback bytes that reached the sink
  // Timeline engine verdict (cfg.timeline), read at end of run.
  std::uint64_t timeline_samples = 0;
  std::size_t timeline_series = 0;
  std::uint64_t alerts_fired = 0;
  std::uint64_t alerts_resolved = 0;
  std::uint64_t counter_resets = 0;     // clamped deltas (reboots observed)
  double timeline_wall_fraction = 0.0;  // sampling wall / soak wall (<0.05)

  [[nodiscard]] double delivery_ratio() const noexcept {
    return commands == 0
               ? 0.0
               : static_cast<double>(acked) / static_cast<double>(commands);
  }
};

/// Runs one soak end to end. Deterministic in `cfg` (including cfg.seed).
[[nodiscard]] ChurnSoakResult run_churn_soak(const ChurnSoakConfig& cfg);

/// The A/B comparison both the churn bench and the soak tests report: the
/// same scenario (same seed, same fault schedule) with the reliable
/// controller and fire-and-forget. The two arms are independent trials, so
/// they run concurrently on the trial runner (docs/PARALLELISM.md); any
/// timeline/flight JSONL paths in `cfg` are trial-suffixed per arm
/// (".trial0" = reliable, ".trial1" = fire-and-forget) so the arms never
/// share a stream. Results are identical for any `jobs` (0 = resolve_jobs).
struct ChurnSoakPair {
  ChurnSoakResult with_retries;
  ChurnSoakResult without;
};
[[nodiscard]] ChurnSoakPair run_churn_soak_pair(const ChurnSoakConfig& cfg,
                                                unsigned jobs = 0);

/// The robustness_churn artifact: one JSON object comparing the reliable and
/// fire-and-forget arms of the same scenario. Parseable by JsonValue::parse.
[[nodiscard]] std::string churn_soak_json(const ChurnSoakConfig& cfg,
                                          const ChurnSoakResult& with_retries,
                                          const ChurnSoakResult& without);

/// Writes churn_soak_json to `path`. Returns false on I/O failure.
bool write_churn_soak_json(const std::string& path, const ChurnSoakConfig& cfg,
                           const ChurnSoakResult& with_retries,
                           const ChurnSoakResult& without);

}  // namespace telea
