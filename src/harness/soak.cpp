#include "harness/soak.hpp"

#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "harness/faults.hpp"
#include "harness/runner.hpp"
#include "stats/spans.hpp"
#include "topo/topology.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace telea {

namespace {

/// Builds the mixed fault schedule from the *converged* network: churn on
/// random nodes, blackouts on links the CTP tree is actually using, a noise
/// burst near a relay, and one state-losing reboot (the stale-code case).
FaultPlan build_fault_plan(const ChurnSoakConfig& cfg, Network& net,
                           unsigned* faults_out) {
  const SimTime t0 = net.sim().now();
  Pcg32 rng(cfg.seed, /*stream=*/0x50A7ULL);
  unsigned faults = 0;

  FaultPlan plan = FaultPlan::random_churn(
      net.size(), cfg.outages, t0 + 1 * kMinute,
      t0 + cfg.duration - cfg.outage_downtime - 2 * kMinute,
      cfg.outage_downtime, cfg.seed);
  faults += cfg.outages;

  std::vector<std::pair<NodeId, NodeId>> parent_links;
  for (NodeId n = 1; n < static_cast<NodeId>(net.size()); ++n) {
    const NodeId parent = net.node(n).ctp().parent();
    if (parent != kInvalidNode) parent_links.emplace_back(n, parent);
  }
  for (unsigned i = 0; i < cfg.link_blackouts && !parent_links.empty(); ++i) {
    const auto& [child, parent] = parent_links[rng.uniform(
        static_cast<std::uint32_t>(parent_links.size()))];
    const SimTime at = t0 + 2 * kMinute + i * (cfg.duration / 8);
    plan.blackout_link(at, cfg.blackout_duration, child, parent);
    ++faults;
  }

  const auto random_non_sink = [&rng, &net] {
    return static_cast<NodeId>(
        1 + rng.uniform(static_cast<std::uint32_t>(net.size() - 1)));
  };
  if (cfg.noise_burst) {
    plan.noise_burst(t0 + cfg.duration / 2, cfg.noise_duration,
                     {random_non_sink()}, cfg.noise_dbm);
    ++faults;
  }
  if (cfg.state_loss_reboot) {
    plan.outage_with_state_loss(t0 + cfg.duration / 3, 1 * kMinute,
                                random_non_sink());
    ++faults;
  }
  *faults_out = faults;
  return plan;
}

bool append_jsonl_line(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  out << line << "\n";
  return static_cast<bool>(out);
}

bool is_tele_control(const Frame& frame) noexcept {
  return std::holds_alternative<msg::ControlPacket>(frame.payload) ||
         std::holds_alternative<msg::FeedbackPacket>(frame.payload);
}

void emit_arm(std::ostringstream& out, const char* key,
              const ChurnSoakResult& r) {
  out << "    \"" << key << "\": {\n"
      << "      \"commands\": " << r.commands << ",\n"
      << "      \"acked\": " << r.acked << ",\n"
      << "      \"gave_up\": " << r.gave_up << ",\n"
      << "      \"no_code\": " << r.no_code << ",\n"
      << "      \"unresolved\": " << r.unresolved << ",\n"
      << "      \"retries\": " << r.retries << ",\n"
      << "      \"escalations\": " << r.escalations << ",\n"
      << "      \"faults_injected\": " << r.faults_injected << ",\n"
      << "      \"tx_per_command\": " << r.tx_per_command << ",\n"
      << "      \"delivery_ratio\": " << r.delivery_ratio() << ",\n"
      << "      \"invariant_violations\": " << r.invariant_violations << ",\n"
      << "      \"invariant_checkpoints\": " << r.invariant_checkpoints
      << ",\n"
      << "      \"claims_audited\": " << r.claims_audited << ",\n"
      << "      \"command_spans\": " << r.command_spans << ",\n"
      << "      \"span_reconcile_failures\": " << r.span_reconcile_failures
      << "\n"
      << "    }";
}

}  // namespace

ChurnSoakResult run_churn_soak(const ChurnSoakConfig& cfg) {
  // Host wall-clock over the whole soak — the denominator of the timeline
  // sampling-overhead gate (<5% of run wall-clock, asserted by the tests).
  const auto wall_start = std::chrono::steady_clock::now();
  NetworkConfig net_cfg;
  net_cfg.topology = make_connected_random(cfg.nodes, cfg.side_m, cfg.seed);
  net_cfg.seed = cfg.seed;
  net_cfg.protocol = ControlProtocol::kReTele;
  Network net(net_cfg);

  ControllerRetryConfig retry = cfg.retry;
  retry.enabled = cfg.reliable;
  Controller controller(net, retry);
  // The controller addresses by in-band reported codes: stale after a
  // state-loss reboot until the node reports again — the case under test.
  controller.set_use_reported_codes(true);

  ChurnSoakResult result;
  std::set<std::uint32_t> issued;
  std::set<std::uint32_t> delivered_seqnos;
  controller.on_command_resolved = [&result](const CommandResolution& res) {
    switch (res.outcome) {
      case CommandOutcome::kAcked:
        ++result.acked;
        break;
      case CommandOutcome::kGaveUp:
        ++result.gave_up;
        break;
      case CommandOutcome::kNoCode:
        ++result.no_code;
        break;
    }
  };

  if (cfg.invariants) net.enable_invariants();
  // Span reconciliation needs the command trajectories to survive the whole
  // window, so size the ring well above the default.
  if (cfg.spans) net.enable_tracing(1 << 20);
  if (cfg.health) {
    NetworkHealthConfig health_cfg;
    health_cfg.period = cfg.health_period;
    net.enable_health(health_cfg);
  }
  if (cfg.timeline) {
    // Flight recorders armed from boot, so alert firings (and reboots,
    // give-ups...) always have node context to dump.
    net.enable_flight_recorders();
    if (!cfg.flight_jsonl.empty()) {
      net.on_flight_dump = [path = cfg.flight_jsonl](const FlightDump& dump) {
        if (!append_jsonl_line(path, render_flight_dump_json(dump))) {
          TELEA_WARN("harness.soak") << "cannot append to " << path;
        }
      };
    }
  }

  net.start();
  net.start_data_collection(cfg.data_ipi);
  net.run_for(cfg.warmup);
  TELEA_INFO("harness.soak") << "warmed up: code coverage "
                             << net.code_coverage();

  if (cfg.timeline) {
    // Armed only after warmup: the soak's alert question is about steady
    // state. Health coverage climbs from zero while nodes boot and report
    // in, and paging on that transient would make every clean run noisy.
    NetworkTimelineConfig timeline_cfg;
    timeline_cfg.timeline.interval = cfg.timeline_interval;
    timeline_cfg.rules = cfg.timeline_rules;
    timeline_cfg.jsonl = cfg.timeline_jsonl;
    TimelineEngine& tl = net.enable_timeline(timeline_cfg);
    // The network collector covers node/protocol series; the soak also
    // watches the controller, whose e2e retry counters are what storm
    // rules key on. The engine only samples while run_for pumps the
    // simulator below, with both referents alive.
    tl.set_collector([&net, &controller](MetricsRegistry& registry) {
      net.collect_metrics(registry);
      controller.collect_metrics(registry);
    });
  }

  unsigned faults = 0;
  build_fault_plan(cfg, net, &faults).apply(net);
  result.faults_injected = faults;

  // Count control-plane LPL send operations (distinct (src, link_seq)).
  std::set<std::uint64_t> control_ops;
  net.medium().add_transmit_hook(
      [&control_ops](NodeId src, const Frame& frame, SimTime) {
        if (!is_tele_control(frame)) return;
        control_ops.insert((static_cast<std::uint64_t>(src) << 32) |
                           frame.link_seq);
      });

  // Command loop: a random reported-code destination every interval. The
  // controller does not know who is down — that is the robustness question.
  Pcg32 dest_rng(cfg.seed ^ 0x50CCULL, 3);
  const SimTime end = net.sim().now() + cfg.duration;
  std::uint16_t command = 1;
  while (net.sim().now() < end) {
    net.run_for(cfg.command_interval);
    if (net.sim().now() >= end) break;
    std::vector<NodeId> addressable;
    for (NodeId n = 1; n < static_cast<NodeId>(net.size()); ++n) {
      if (controller.reported_code(n).has_value()) addressable.push_back(n);
    }
    if (addressable.empty()) continue;
    const NodeId dest = addressable[dest_rng.uniform(
        static_cast<std::uint32_t>(addressable.size()))];
    if (const auto seq = controller.send_command(dest, command++);
        seq.has_value()) {
      issued.insert(*seq);
      ++result.commands;
    }
  }

  net.run_for(cfg.drain);

  if (!cfg.reliable) {
    // Fire-and-forget: an ack for any issued seqno is a delivery.
    for (const std::uint32_t seq : controller.acked()) {
      if (issued.contains(seq)) delivered_seqnos.insert(seq);
    }
    result.acked = static_cast<unsigned>(delivered_seqnos.size());
  }
  result.unresolved = static_cast<unsigned>(controller.pending_commands());
  result.retries = controller.retries();
  result.escalations = controller.escalations();
  result.tx_per_command =
      result.commands == 0
          ? 0.0
          : static_cast<double>(control_ops.size()) /
                static_cast<double>(result.commands);
  if (cfg.spans) {
    const auto spans = net.command_spans();
    result.command_spans = spans.size();
    result.span_reconcile_failures = count_reconcile_failures(spans);
    if (result.span_reconcile_failures > 0) {
      TELEA_WARN("harness.soak")
          << result.span_reconcile_failures << "/" << result.command_spans
          << " spans failed segment-sum reconciliation";
    }
  }
  if (InvariantEngine* inv = net.invariants()) {
    inv->final_audit();
    result.invariant_violations = inv->violations().size();
    result.invariant_checkpoints = inv->checkpoints_run();
    result.claims_audited = inv->claims_audited();
    if (result.invariant_violations > 0) {
      TELEA_WARN("harness.soak") << "invariant violations:\n"
                                 << inv->render_report();
    }
  }
  if (NetworkHealthModel* health = net.health()) {
    const SimTime now = net.sim().now();
    result.health_coverage = health->coverage(now);
    result.health_tracked = health->tracked();
    result.health_reports = health->stats().reports;
    result.health_bytes = health->stats().bytes;
    TELEA_INFO("harness.soak") << "health coverage " << result.health_coverage
                               << " over " << result.health_tracked
                               << " tracked nodes";
  }
  if (TimelineEngine* tl = net.timeline()) {
    tl->sample_now();  // close the stream with a final boundary sample
    result.timeline_samples = tl->samples_taken();
    result.timeline_series = tl->series_count();
    result.alerts_fired = tl->alerts_fired_total();
    result.alerts_resolved = tl->alerts_resolved_total();
    result.counter_resets = tl->counter_resets();
    const double total_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    result.timeline_wall_fraction =
        total_wall > 0.0 ? tl->sampling_wall_seconds() / total_wall : 0.0;
    TELEA_INFO("harness.soak")
        << "timeline: " << result.timeline_samples << " samples over "
        << result.timeline_series << " series, " << result.alerts_fired
        << " alert(s) fired, sampling overhead "
        << result.timeline_wall_fraction * 100.0 << "% of wall-clock";
  }
  TELEA_INFO("harness.soak") << "done: " << result.acked << "/"
                             << result.commands << " acked, "
                             << result.retries << " retries, "
                             << result.escalations << " escalations, "
                             << result.gave_up << " gave up, "
                             << result.unresolved << " unresolved";
  return result;
}

ChurnSoakPair run_churn_soak_pair(const ChurnSoakConfig& cfg, unsigned jobs) {
  // Arm 0 keeps cfg.reliable (the configured controller); arm 1 is the
  // fire-and-forget twin. Same seed on purpose: the comparison is about the
  // controller, so both arms must face the identical fault schedule.
  std::vector<ChurnSoakConfig> arms(2, cfg);
  arms[1].reliable = false;
  for (std::size_t arm = 0; arm < arms.size(); ++arm) {
    if (!arms[arm].timeline_jsonl.empty()) {
      arms[arm].timeline_jsonl =
          trial_artifact_path(arms[arm].timeline_jsonl, arm);
    }
    if (!arms[arm].flight_jsonl.empty()) {
      arms[arm].flight_jsonl = trial_artifact_path(arms[arm].flight_jsonl, arm);
    }
  }
  TrialRunner runner(RunnerConfig{jobs, {}});
  const auto results = runner.run_indexed(
      arms.size(), [&arms](std::size_t i) { return run_churn_soak(arms[i]); });
  return {results[0], results[1]};
}

std::string churn_soak_json(const ChurnSoakConfig& cfg,
                            const ChurnSoakResult& with_retries,
                            const ChurnSoakResult& without) {
  std::ostringstream out;
  out << "{\n"
      << "  \"name\": \"robustness_churn\",\n"
      << "  \"config\": {\n"
      << "    \"nodes\": " << cfg.nodes << ",\n"
      << "    \"seed\": " << cfg.seed << ",\n"
      << "    \"warmup_s\": " << to_seconds(cfg.warmup) << ",\n"
      << "    \"duration_s\": " << to_seconds(cfg.duration) << ",\n"
      << "    \"outages\": " << cfg.outages << ",\n"
      << "    \"link_blackouts\": " << cfg.link_blackouts << ",\n"
      << "    \"noise_burst\": " << (cfg.noise_burst ? "true" : "false")
      << ",\n"
      << "    \"state_loss_reboot\": "
      << (cfg.state_loss_reboot ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"results\": {\n";
  emit_arm(out, "with_retries", with_retries);
  out << ",\n";
  emit_arm(out, "without_retries", without);
  out << "\n  }\n}\n";
  return out.str();
}

bool write_churn_soak_json(const std::string& path, const ChurnSoakConfig& cfg,
                           const ChurnSoakResult& with_retries,
                           const ChurnSoakResult& without) {
  std::ofstream out(path);
  if (!out) {
    TELEA_WARN("harness.soak") << "cannot write " << path;
    return false;
  }
  out << churn_soak_json(cfg, with_retries, without);
  return static_cast<bool>(out);
}

}  // namespace telea
