#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace telea {

enum class LogLevel : std::uint8_t { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger for simulator diagnostics. Global level defaults to
/// kWarn so experiment binaries stay quiet; tests and debugging sessions can
/// lower it. Each simulation is single-threaded, but the trial runner
/// (src/harness/runner) executes independent simulations on worker threads —
/// the level is the one mutable global they all read, so it is atomic
/// (relaxed: it gates diagnostics, never results), and write() emits each
/// line with a single stdio call, which locks the stream.
class Logger {
 public:
  static LogLevel level() noexcept {
    return level_.load(std::memory_order_relaxed);
  }
  static void set_level(LogLevel level) noexcept {
    level_.store(level, std::memory_order_relaxed);
  }

  static bool enabled(LogLevel level) noexcept { return level >= Logger::level(); }

  /// Emits one line: "[LEVEL] tag: message\n" to stderr.
  static void write(LogLevel level, std::string_view tag,
                    std::string_view message);

 private:
  static std::atomic<LogLevel> level_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::write(level_, tag_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace telea

// Streaming log macros; the stream expression is not evaluated when the level
// is disabled.
#define TELEA_LOG(level, tag)                    \
  if (!::telea::Logger::enabled(level)) {        \
  } else                                         \
    ::telea::detail::LogLine(level, tag)

#define TELEA_TRACE(tag) TELEA_LOG(::telea::LogLevel::kTrace, tag)
#define TELEA_DEBUG(tag) TELEA_LOG(::telea::LogLevel::kDebug, tag)
#define TELEA_INFO(tag) TELEA_LOG(::telea::LogLevel::kInfo, tag)
#define TELEA_WARN(tag) TELEA_LOG(::telea::LogLevel::kWarn, tag)
#define TELEA_ERROR(tag) TELEA_LOG(::telea::LogLevel::kError, tag)
