#include "util/logging.hpp"

#include <cstdio>

namespace telea {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarn};

namespace {
constexpr const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Logger::write(LogLevel level, std::string_view tag,
                   std::string_view message) {
  if (!enabled(level)) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace telea
