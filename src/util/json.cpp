#include "util/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace telea {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", JsonValue(true));
      case 'f': return literal("false", JsonValue(false));
      case 'n': return literal("null", JsonValue());
      default: return number();
    }
  }

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

 private:
  std::optional<JsonValue> literal(std::string_view word, JsonValue result) {
    if (text_.substr(pos_, word.size()) != word) return std::nullopt;
    pos_ += word.size();
    return result;
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    if (!digits) return std::nullopt;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return std::nullopt;
    return JsonValue(v);
  }

  std::optional<std::string> string_body() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // Encode as UTF-8 (good enough for the BMP; exports only emit
          // control characters this way).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> string_value() {
    auto body = string_body();
    if (!body.has_value()) return std::nullopt;
    return JsonValue(std::move(*body));
  }

  std::optional<JsonValue> array() {
    ++pos_;  // '['
    JsonValue out;
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      auto element = value();
      if (!element.has_value()) return std::nullopt;
      out.array_.push_back(std::move(*element));
      skip_ws();
      if (pos_ >= text_.size()) return std::nullopt;
      const char c = text_[pos_++];
      if (c == ']') return out;
      if (c != ',') return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    ++pos_;  // '{'
    JsonValue out;
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      skip_ws();
      auto key = string_body();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return std::nullopt;
      ++pos_;
      auto member = value();
      if (!member.has_value()) return std::nullopt;
      out.object_.emplace(std::move(*key), std::move(*member));
      skip_ws();
      if (pos_ >= text_.size()) return std::nullopt;
      const char c = text_[pos_++];
      if (c == '}') return out;
      if (c != ',') return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type() == Type::kNumber) ? v->as_number()
                                                      : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->type() == Type::kString) ? v->as_string()
                                                      : fallback;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  JsonParser p(text);
  auto v = p.value();
  if (!v.has_value()) return std::nullopt;
  p.skip_ws();
  if (p.pos() != text.size()) return std::nullopt;  // trailing garbage
  return v;
}

std::optional<JsonValue> JsonValue::parse_prefix(std::string_view text,
                                                 std::size_t* consumed) {
  JsonParser p(text);
  auto v = p.value();
  if (consumed != nullptr) *consumed = p.pos();
  return v;
}

std::string JsonValue::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace telea
