#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace telea {

/// Typed key=value configuration, parsed from command-line style tokens
/// ("key=value") and/or simple config files (one pair per line, `#`
/// comments). Backs the `telea_sim` scenario tool so downstream users can
/// run experiments without writing C++.
class Config {
 public:
  /// Parses "key=value" tokens; tokens without '=' are collected as
  /// positional arguments. Later values override earlier ones.
  static Config from_args(int argc, const char* const* argv);

  /// Parses a config file. Returns nullopt when the file cannot be read or
  /// a line is malformed (error details via `error()` on the partial
  /// object are not provided — fail fast instead).
  static std::optional<Config> from_file(const std::string& path);

  /// Merges `other` over this config (other wins on conflicts).
  void merge(const Config& other);

  void set(std::string key, std::string value);

  [[nodiscard]] bool has(std::string_view key) const;

  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string default_value = "") const;
  /// Typed getters return the default when the key is absent *or*
  /// unparsable; `get_*_checked` variants return nullopt on bad syntax so
  /// callers can reject typos loudly.
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t default_value = 0) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double default_value = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view key,
                              bool default_value = false) const;

  [[nodiscard]] std::optional<std::int64_t> get_int_checked(
      std::string_view key) const;
  [[nodiscard]] std::optional<double> get_double_checked(
      std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool_checked(
      std::string_view key) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// All keys, sorted — for help/diagnostic output.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Keys that were set but never read — catches misspelled options.
  [[nodiscard]] std::vector<std::string> unused_keys() const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
  mutable std::map<std::string, bool, std::less<>> read_;
  std::vector<std::string> positional_;
};

}  // namespace telea
