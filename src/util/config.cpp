#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace telea {

namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 0; i < argc; ++i) {
    const std::string_view token = argv[i];
    const auto eq = token.find('=');
    if (eq == std::string_view::npos) {
      cfg.positional_.emplace_back(token);
      continue;
    }
    cfg.set(trim(token.substr(0, eq)), trim(token.substr(eq + 1)));
  }
  return cfg;
}

std::optional<Config> Config::from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  Config cfg;
  char line[1024];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    std::string_view sv = line;
    // Strip comments.
    if (const auto hash = sv.find('#'); hash != std::string_view::npos) {
      sv = sv.substr(0, hash);
    }
    const std::string text = trim(sv);
    if (text.empty()) continue;
    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      std::fclose(f);
      return std::nullopt;  // malformed line: fail fast
    }
    cfg.set(trim(std::string_view(text).substr(0, eq)),
            trim(std::string_view(text).substr(eq + 1)));
  }
  std::fclose(f);
  return cfg;
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
  positional_.insert(positional_.end(), other.positional_.begin(),
                     other.positional_.end());
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string default_value) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  read_[it->first] = true;
  return it->second;
}

std::optional<std::int64_t> Config::get_int_checked(
    std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_[it->first] = true;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> Config::get_double_checked(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_[it->first] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> Config::get_bool_checked(std::string_view key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  read_[it->first] = true;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t default_value) const {
  return get_int_checked(key).value_or(default_value);
}

double Config::get_double(std::string_view key, double default_value) const {
  return get_double_checked(key).value_or(default_value);
}

bool Config::get_bool(std::string_view key, bool default_value) const {
  return get_bool_checked(key).value_or(default_value);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::vector<std::string> Config::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    const auto it = read_.find(k);
    if (it == read_.end() || !it->second) out.push_back(k);
  }
  return out;
}

}  // namespace telea
