#pragma once

#include <cmath>

namespace telea {

/// Conversions between the logarithmic (dBm) and linear (milliwatt) power
/// domains. All radio-stack arithmetic that sums powers (interference, noise)
/// must happen in milliwatts; everything stored or configured is in dBm.

[[nodiscard]] inline double dbm_to_mw(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0);
}

[[nodiscard]] inline double mw_to_dbm(double mw) noexcept {
  // Clamp to a floor far below thermal noise instead of returning -inf so
  // downstream subtraction stays finite.
  constexpr double kFloorMw = 1e-18;
  return 10.0 * std::log10(mw < kFloorMw ? kFloorMw : mw);
}

/// Sum of two powers expressed in dBm, returned in dBm.
[[nodiscard]] inline double dbm_add(double a_dbm, double b_dbm) noexcept {
  return mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm));
}

/// Signal-to-interference-plus-noise ratio in dB.
[[nodiscard]] inline double sinr_db(double signal_dbm,
                                    double interference_noise_dbm) noexcept {
  return signal_dbm - interference_noise_dbm;
}

[[nodiscard]] inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

}  // namespace telea
