#include "util/bitstring.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace telea {

namespace {
constexpr std::uint64_t kMsb = 0x8000'0000'0000'0000ULL;

// Mask with the top `n` bits set (n in [0,64]).
constexpr std::uint64_t top_mask(std::size_t n) noexcept {
  if (n == 0) return 0;
  if (n >= 64) return ~0ULL;
  return ~0ULL << (64 - n);
}
}  // namespace

BitString BitString::from_string_unchecked(std::string_view bits) noexcept {
  BitString out;
  if (!from_string(bits, out)) return BitString{};
  return out;
}

bool BitString::from_string(std::string_view bits, BitString& out) noexcept {
  if (bits.size() > kCapacity) return false;
  BitString tmp;
  for (char c : bits) {
    if (c != '0' && c != '1') return false;
    tmp.push_back(c == '1');
  }
  out = tmp;
  return true;
}

bool BitString::bit(std::size_t i) const noexcept {
  assert(i < len_);
  return (words_[i / 64] >> (63 - (i % 64))) & 1ULL;
}

void BitString::set_bit(std::size_t i, bool value) noexcept {
  assert(i < len_);
  const std::uint64_t mask = kMsb >> (i % 64);
  if (value) {
    words_[i / 64] |= mask;
  } else {
    words_[i / 64] &= ~mask;
  }
}

bool BitString::push_back(bool value) noexcept {
  if (len_ >= kCapacity) return false;
  ++len_;
  set_bit(len_ - 1, value);
  return true;
}

bool BitString::append_bits(std::uint64_t value, std::size_t width) noexcept {
  if (width > 64 || len_ + width > kCapacity) return false;
  for (std::size_t i = 0; i < width; ++i) {
    push_back((value >> (width - 1 - i)) & 1ULL);
  }
  return true;
}

bool BitString::append(const BitString& other) noexcept {
  if (len_ + other.len_ > kCapacity) return false;
  for (std::size_t i = 0; i < other.len_; ++i) {
    push_back(other.bit(i));
  }
  return true;
}

void BitString::truncate_back(std::size_t n) noexcept {
  assert(n <= len_);
  resize_front(len_ - n);
}

void BitString::resize_front(std::size_t n) noexcept {
  assert(n <= len_);
  len_ = static_cast<std::uint32_t>(n);
  // Re-establish the zero-padding invariant beyond the new length.
  const std::size_t word = n / 64;
  const std::size_t rem = n % 64;
  if (word < kWords) {
    words_[word] &= top_mask(rem);
    for (std::size_t w = word + 1; w < kWords; ++w) words_[w] = 0;
  }
}

BitString BitString::prefix(std::size_t n) const noexcept {
  assert(n <= len_);
  BitString out = *this;
  out.resize_front(n);
  return out;
}

std::uint64_t BitString::extract_bits(std::size_t pos,
                                      std::size_t width) const noexcept {
  assert(width <= 64 && pos + width <= len_);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < width; ++i) {
    out = (out << 1) | static_cast<std::uint64_t>(bit(pos + i));
  }
  return out;
}

bool BitString::is_prefix_of(const BitString& other) const noexcept {
  if (len_ > other.len_) return false;
  return common_prefix_len(other) == len_;
}

std::size_t BitString::common_prefix_len(const BitString& other) const noexcept {
  const std::size_t limit = std::min<std::size_t>(len_, other.len_);
  std::size_t matched = 0;
  for (std::size_t w = 0; w < kWords && matched < limit; ++w) {
    const std::uint64_t diff = words_[w] ^ other.words_[w];
    if (diff == 0) {
      matched = std::min<std::size_t>(limit, (w + 1) * 64);
      continue;
    }
    const std::size_t lead = static_cast<std::size_t>(std::countl_zero(diff));
    matched = std::min<std::size_t>(limit, w * 64 + lead);
    break;
  }
  return matched;
}

std::string BitString::to_string() const {
  std::string out;
  out.reserve(len_);
  for (std::size_t i = 0; i < len_; ++i) out.push_back(bit(i) ? '1' : '0');
  return out;
}

std::string BitString::to_display(std::size_t width) const {
  std::string out = to_string();
  while (out.size() < width) out.push_back('-');
  return out;
}

bool operator<(const BitString& a, const BitString& b) noexcept {
  for (std::size_t w = 0; w < BitString::kWords; ++w) {
    if (a.words_[w] != b.words_[w]) return a.words_[w] < b.words_[w];
  }
  return a.len_ < b.len_;
}

std::size_t BitString::hash() const noexcept {
  // FNV-1a over the packed words plus the length.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (std::uint64_t w : words_) mix(w);
  mix(len_);
  return static_cast<std::size_t>(h);
}

}  // namespace telea
