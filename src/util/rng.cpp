#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace telea {

double Pcg32::normal() noexcept {
  // Box-Muller: avoid log(0) by nudging u1 away from zero.
  const double u1 = std::max(uniform01(), 0x1.0p-64);
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Pcg32::exponential(double mean) noexcept {
  const double u = std::max(uniform01(), 0x1.0p-64);
  return -mean * std::log(u);
}

}  // namespace telea
