#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace telea {

/// A fixed-capacity, variable-length string of bits, most-significant first.
///
/// This is the representation of TeleAdjusting *path codes*: a short binary
/// string in which a node's entire upstream relay chain is implicitly encoded
/// (paper Sec. III-B). The paper measures at most 20 valid bits on a 6-hop
/// testbed and ~40 bits on its 225-node tight field; the deep Sparse-linear
/// field (~30 hops at ~4 bits per hop) needs well over 128, so we provision
/// 256 bits while keeping the value type trivially copyable (four machine
/// words + a length).
///
/// Bit 0 is the first (root-most) bit of the code. Bits are stored packed in
/// 64-bit words, MSB-first within each word, so lexicographic comparison of
/// codes matches numeric comparison of the padded words.
class BitString {
 public:
  static constexpr std::size_t kCapacity = 256;

  constexpr BitString() = default;

  /// Parses a string of '0'/'1' characters (other characters are rejected).
  /// Returns an all-zero, zero-length string when the input is malformed or
  /// longer than capacity; use `from_string` for checked construction.
  static BitString from_string_unchecked(std::string_view bits) noexcept;

  /// Checked parse: returns false (and leaves `out` untouched) on bad input.
  static bool from_string(std::string_view bits, BitString& out) noexcept;

  /// Number of valid bits.
  [[nodiscard]] constexpr std::size_t size() const noexcept { return len_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return len_ == 0; }

  /// Value of bit `i` (0-based from the front). Precondition: i < size().
  [[nodiscard]] bool bit(std::size_t i) const noexcept;

  /// Sets bit `i`. Precondition: i < size().
  void set_bit(std::size_t i, bool value) noexcept;

  /// Appends a single bit. Returns false (unchanged) when at capacity.
  bool push_back(bool value) noexcept;

  /// Appends the low `width` bits of `value`, most-significant first.
  /// Returns false (unchanged) when the result would exceed capacity or
  /// width > 64.
  bool append_bits(std::uint64_t value, std::size_t width) noexcept;

  /// Appends all bits of `other`. Returns false (unchanged) on overflow.
  bool append(const BitString& other) noexcept;

  /// Removes the trailing `n` bits. Precondition: n <= size().
  void truncate_back(std::size_t n) noexcept;

  /// Keeps only the first `n` bits. Precondition: n <= size().
  void resize_front(std::size_t n) noexcept;

  /// The first `n` bits as a new BitString. Precondition: n <= size().
  [[nodiscard]] BitString prefix(std::size_t n) const noexcept;

  /// The low `width` bits starting at `pos`, as an integer (MSB-first).
  /// Precondition: pos + width <= size() and width <= 64.
  [[nodiscard]] std::uint64_t extract_bits(std::size_t pos,
                                           std::size_t width) const noexcept;

  /// True when *this (all of it) is a prefix of `other`.
  [[nodiscard]] bool is_prefix_of(const BitString& other) const noexcept;

  /// Length of the longest common prefix with `other`.
  [[nodiscard]] std::size_t common_prefix_len(
      const BitString& other) const noexcept;

  /// Number of leading bits of *this that match the front of `code`,
  /// capped at min(size(), code.size()). Identical to common_prefix_len but
  /// named for the forwarding-engine call sites.
  [[nodiscard]] std::size_t match_len(const BitString& code) const noexcept {
    return common_prefix_len(code);
  }

  /// '0'/'1' rendering of the valid bits.
  [[nodiscard]] std::string to_string() const;

  /// Rendering padded with '-' to a fixed display width (paper-style, e.g.
  /// "00101---" for a 5-valid-bit code shown in an 8-bit field).
  [[nodiscard]] std::string to_display(std::size_t width) const;

  friend bool operator==(const BitString& a, const BitString& b) noexcept {
    return a.len_ == b.len_ && a.words_ == b.words_;
  }
  friend bool operator!=(const BitString& a, const BitString& b) noexcept {
    return !(a == b);
  }

  /// Lexicographic order on the bit sequence (shorter prefix sorts first).
  friend bool operator<(const BitString& a, const BitString& b) noexcept;

  /// Stable hash of (bits, length) for use in unordered containers.
  [[nodiscard]] std::size_t hash() const noexcept;

 private:
  static constexpr std::size_t kWords = kCapacity / 64;

  // Padded with zero bits beyond len_; all mutators maintain this invariant
  // so equality and ordering can compare whole words.
  std::array<std::uint64_t, kWords> words_{};
  std::uint32_t len_ = 0;
};

struct BitStringHash {
  std::size_t operator()(const BitString& b) const noexcept {
    return b.hash();
  }
};

}  // namespace telea
