#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace telea::field {

/// Checked-width narrowing for packet wire fields.
///
/// Integer arithmetic on narrow packet fields (`hops_so_far + 1`, ETX sums,
/// seqno deltas) promotes to int, and `-Wconversion` rightly flags the
/// assignment back into the field. A bare `static_cast` silences the warning
/// but also silences genuine overflow: a hop counter that wraps 255 -> 0
/// resets a loop guard instead of saturating it. These helpers make the
/// narrowing intent explicit and keep the value inside the field's range:
///
///  - `u8(v)` / `u16(v)`  saturate at the field limits (and assert in debug
///    builds that no clamping actually happened — a clamp in a unit test is
///    a bug worth hearing about),
///  - `wrap_u8(v)` / `wrap_u16(v)` reduce modulo 2^width for fields whose
///    arithmetic is *defined* to wrap (link-layer sequence number deltas).
///
/// tools/telea_lint enforces that src/core, src/net and src/proto use these
/// instead of raw `static_cast<std::uint8_t|std::uint16_t>` on packet paths.
template <typename Narrow, typename Wide>
[[nodiscard]] constexpr Narrow saturate(Wide v) noexcept {
  static_assert(std::is_integral_v<Wide> && std::is_unsigned_v<Narrow>);
  constexpr Wide kMax = static_cast<Wide>(std::numeric_limits<Narrow>::max());
  if constexpr (std::is_signed_v<Wide>) {
    if (v < 0) {
      assert(!"field::saturate: negative value clamped to 0");
      return 0;
    }
  }
  if (v > kMax) {
    assert(!"field::saturate: value clamped to field maximum");
    return std::numeric_limits<Narrow>::max();
  }
  return static_cast<Narrow>(v);
}

template <typename Wide>
[[nodiscard]] constexpr std::uint8_t u8(Wide v) noexcept {
  return saturate<std::uint8_t>(v);
}

template <typename Wide>
[[nodiscard]] constexpr std::uint16_t u16(Wide v) noexcept {
  return saturate<std::uint16_t>(v);
}

/// Modulo-2^8 reduction for fields whose arithmetic is defined to wrap.
template <typename Wide>
[[nodiscard]] constexpr std::uint8_t wrap_u8(Wide v) noexcept {
  static_assert(std::is_integral_v<Wide>);
  return static_cast<std::uint8_t>(static_cast<std::uint64_t>(v) & 0xFFu);
}

/// Modulo-2^16 reduction for fields whose arithmetic is defined to wrap.
template <typename Wide>
[[nodiscard]] constexpr std::uint16_t wrap_u16(Wide v) noexcept {
  static_assert(std::is_integral_v<Wide>);
  return static_cast<std::uint16_t>(static_cast<std::uint64_t>(v) & 0xFFFFu);
}

}  // namespace telea::field
