#pragma once

#include <array>
#include <cstdint>

#include "util/ids.hpp"

namespace telea {

/// Fixed-size Bloom filter over node ids — the space-efficient sub-DODAG
/// membership representation ORPL propagates (Duquennoy et al., SenSys'13).
/// Deliberately small (default 64 bits, 2 hashes, like ORPL's per-packet
/// budget): the false positives that come with that size are exactly the
/// weakness the TeleAdjusting paper calls out ("the inherent false positive
/// of bloom filter can incur multiple rounds of ineffectual transmissions").
template <std::size_t Bits = 64, unsigned Hashes = 2>
class BloomFilter {
  static_assert(Bits % 64 == 0, "whole words only");

 public:
  void insert(NodeId id) noexcept {
    for (unsigned h = 0; h < Hashes; ++h) set(index(id, h));
  }

  [[nodiscard]] bool contains(NodeId id) const noexcept {
    for (unsigned h = 0; h < Hashes; ++h) {
      if (!get(index(id, h))) return false;
    }
    return true;
  }

  /// Union with another filter (a parent absorbing a child's sub-DODAG).
  void merge(const BloomFilter& other) noexcept {
    for (std::size_t w = 0; w < kWords; ++w) words_[w] |= other.words_[w];
  }

  void clear() noexcept { words_.fill(0); }

  [[nodiscard]] bool empty() const noexcept {
    for (auto w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of set bits (load indicator: false-positive rate grows with it).
  [[nodiscard]] unsigned popcount() const noexcept {
    unsigned n = 0;
    for (auto w : words_) n += static_cast<unsigned>(__builtin_popcountll(w));
    return n;
  }

  [[nodiscard]] static constexpr std::size_t bits() noexcept { return Bits; }

  friend bool operator==(const BloomFilter& a, const BloomFilter& b) noexcept {
    return a.words_ == b.words_;
  }

 private:
  static constexpr std::size_t kWords = Bits / 64;

  [[nodiscard]] static std::size_t index(NodeId id, unsigned h) noexcept {
    // Two independent 64-bit mixes (splitmix-style) reduced mod Bits.
    std::uint64_t x = (static_cast<std::uint64_t>(id) << 8) | (h + 1);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % Bits);
  }

  void set(std::size_t bit) noexcept {
    words_[bit / 64] |= 1ULL << (bit % 64);
  }
  [[nodiscard]] bool get(std::size_t bit) const noexcept {
    return (words_[bit / 64] >> (bit % 64)) & 1ULL;
  }

  std::array<std::uint64_t, kWords> words_{};
};

/// The size ORPL-lite uses on the wire (8 bytes).
using OrplBloom = BloomFilter<64, 2>;

}  // namespace telea
