#pragma once

#include <cstdint>
#include <limits>

namespace telea {

/// PCG32 pseudo-random generator (O'Neill 2014, pcg-random.org, Apache-2.0
/// reference algorithm). Small state, excellent statistical quality, and —
/// crucially for a simulator — deterministic and streamable: every component
/// of an experiment draws from its own (seed, stream) pair so interleaving of
/// events never perturbs another component's draws.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  constexpr Pcg32() noexcept { seed(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL); }

  constexpr Pcg32(std::uint64_t init_state, std::uint64_t init_seq = 1) noexcept {
    seed(init_state, init_seq);
  }

  constexpr void seed(std::uint64_t init_state, std::uint64_t init_seq) noexcept {
    state_ = 0;
    inc_ = (init_seq << 1u) | 1u;
    next();
    state_ += init_state;
    next();
  }

  constexpr result_type next() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31u));
  }

  constexpr result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// simplified to the rejection form).
  constexpr std::uint32_t uniform(std::uint32_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint32_t threshold = (~bound + 1u) % bound;
    for (;;) {
      const std::uint32_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint32_t uniform_in(std::uint32_t lo, std::uint32_t hi) noexcept {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next()) * 0x1.0p-32;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

  /// Standard normal via Box-Muller (polar-free form; two uniforms).
  double normal() noexcept;

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept;

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
};

}  // namespace telea
