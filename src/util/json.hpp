#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace telea {

/// Minimal JSON document model + recursive-descent parser. Exists so the
/// observability exports (metrics JSON, JSONL traces, bench summaries) can be
/// round-trip tested and re-loaded by tools without an external dependency.
/// Full JSON except \uXXXX escapes beyond Latin-1 (parsed, emitted verbatim).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& as_array() const noexcept {
    return array_;
  }
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object()
      const noexcept {
    return object_;
  }

  /// Object member lookup, or nullptr when absent / not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  /// Convenience typed getters with defaults (for tolerant tool code).
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

  /// Parses one JSON document from `text`. Returns nullopt on malformed
  /// input. Trailing whitespace is allowed; trailing garbage is not.
  static std::optional<JsonValue> parse(std::string_view text);

  /// Parses the *first* JSON value in `text` and reports how many bytes it
  /// consumed — the building block for JSONL streams.
  static std::optional<JsonValue> parse_prefix(std::string_view text,
                                               std::size_t* consumed);

  /// Escapes `s` as the contents of a JSON string literal (no quotes).
  static std::string escape(std::string_view s);

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace telea
