#pragma once

#include <cstdint>
#include <limits>

namespace telea {

/// Node identifier within a deployment. The sink is conventionally node 0
/// (TinyOS's TOS_NODE_ID convention with the root at id 0).
using NodeId = std::uint16_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr NodeId kBroadcastNode = kInvalidNode - 1;
inline constexpr NodeId kSinkNode = 0;

}  // namespace telea
