#include "mac/lpl.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "radio/phy.hpp"
#include "util/logging.hpp"

namespace telea {

namespace {
constexpr SimTime kQuietRecheck = 1 * kMillisecond;
constexpr unsigned kQuietSamplesToSleep = 3;

std::uint64_t seen_key(NodeId src, std::uint32_t link_seq) noexcept {
  return (static_cast<std::uint64_t>(src) << 32) | link_seq;
}
}  // namespace

LplMac::LplMac(Simulator& sim, RadioMedium& medium, NodeId id,
               const LplConfig& config, std::uint64_t seed)
    : sim_(&sim),
      medium_(&medium),
      id_(id),
      config_(config),
      rng_(seed ^ (0xACDCULL + id), /*stream=*/id),
      wake_timer_(sim),
      window_timer_(sim),
      linger_timer_(sim),
      csma_timer_(sim),
      gap_timer_(sim) {
  medium.attach(id, *this);
  wake_timer_.set_callback([this] { on_wake(); });
  linger_timer_.set_callback([this] { end_rx_linger(); });
  csma_timer_.set_callback([this] { csma_attempt(); });
  gap_timer_.set_callback([this] { transmit_copy(); });
  wake_timer_.set_tag("lpl.wake");
  window_timer_.set_tag("lpl.window");
  linger_timer_.set_tag("lpl.linger");
  csma_timer_.set_tag("lpl.csma");
  gap_timer_.set_tag("lpl.gap");
  accounting_start_ = sim.now();
}

void LplMac::start() {
  // Random wake phase: the asynchronous schedules TeleAdjusting exploits
  // ("earlier wake-up nodes", Sec. III-C2) come from exactly this offset.
  const SimTime offset = rng_.uniform(
      static_cast<std::uint32_t>(config_.wake_interval));
  wake_timer_.start_periodic_at(offset + 1, config_.wake_interval);
}

void LplMac::acquire(AwakeReason reason) {
  if (awake_reasons_ == 0) {
    medium_->set_listening(id_, true);
    radio_on_since_ = sim_->now();
  }
  awake_reasons_ |= reason;
}

void LplMac::release(AwakeReason reason) {
  if ((awake_reasons_ & reason) == 0) return;
  awake_reasons_ &= ~static_cast<unsigned>(reason);
  if (awake_reasons_ == 0) {
    medium_->set_listening(id_, false);
    radio_on_accum_ += sim_->now() - radio_on_since_;
  }
}

void LplMac::on_wake() {
  acquire(kWakeWindow);
  // First re-check after the full CCA window; then 1 ms polls that require
  // several consecutive quiet samples before sleeping, so the short gaps
  // between a sender's back-to-back copies don't cause a premature sleep
  // (same trick as TinyOS LPL's multi-sample CCA).
  window_timer_.set_callback([this, quiet = 0u]() mutable {
    const bool busy =
        medium_->receiving(id_) ||
        medium_->channel_energy_dbm(id_) > config_.cca_threshold_dbm;
    quiet = busy ? 0 : quiet + 1;
    if (quiet >= kQuietSamplesToSleep) {
      release(kWakeWindow);
      return;
    }
    window_timer_.start_one_shot(kQuietRecheck);
  });
  window_timer_.start_one_shot(config_.cca_window);
}

void LplMac::end_rx_linger() { release(kRxLinger); }

void LplMac::stop() {
  stopped_ = true;
  wake_timer_.stop();
  window_timer_.stop();
  linger_timer_.stop();
  csma_timer_.stop();
  gap_timer_.stop();
  queue_.clear();
  send_queue_hwm_ = 0;  // RAM-resident watermark: lost with the queue
  sending_ = false;
  // Force the radio off regardless of held reasons.
  if (awake_reasons_ != 0) {
    awake_reasons_ = 0;
    medium_->set_listening(id_, false);
    radio_on_accum_ += sim_->now() - radio_on_since_;
  }
}

void LplMac::restart() {
  if (!stopped_) return;
  stopped_ = false;
  start();
}

bool LplMac::send(Frame frame, SendCallback done) {
  return send_cancellable(std::move(frame), std::move(done)).has_value();
}

std::optional<std::uint32_t> LplMac::send_cancellable(Frame frame,
                                                      SendCallback done) {
  if (stopped_) return std::nullopt;
  if (queue_.size() >= config_.send_queue_limit) return std::nullopt;
  frame.src = id_;
  frame.link_seq = next_link_seq_++;
  const std::uint32_t token = frame.link_seq;
  queue_.push_back(PendingSend{std::move(frame), std::move(done), false});
  send_queue_hwm_ = std::max(send_queue_hwm_, queue_.size());
  try_start_next_send();
  return token;
}

void LplMac::cancel_send(std::uint32_t link_seq) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].frame.link_seq != link_seq || queue_[i].cancelled) continue;
    if (i == 0 && sending_) {
      // In flight: let the current copy complete, then stop (the ongoing
      // medium transaction cannot be yanked back out of the air).
      queue_[i].cancelled = true;
      if (!copy_in_flight_) {
        csma_timer_.stop();
        gap_timer_.stop();
        finish_send(false, kInvalidNode);
      }
      return;
    }
    // Still queued: drop it and report failure.
    PendingSend dropped = std::move(queue_[i]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
    if (dropped.done) dropped.done(SendResult{false, kInvalidNode, 0});
    return;
  }
}

void LplMac::try_start_next_send() {
  if (sending_ || queue_.empty()) return;
  sending_ = true;
  acquire(kTxOp);
  send_start_ = sim_->now();
  copies_this_send_ = 0;
  csma_backoffs_ = 0;
  csma_attempt();
}

void LplMac::csma_attempt() {
  // Don't stomp on a frame this radio is currently locked onto.
  if (medium_->receiving(id_)) {
    csma_timer_.start_one_shot(2 * kMillisecond);
    return;
  }
  const bool clear =
      medium_->channel_energy_dbm(id_) <= config_.cca_threshold_dbm;
  if (clear || csma_backoffs_ >= config_.max_csma_backoffs) {
    // After exhausting backoffs, transmit anyway (congestion then shows up
    // as reduced PRR, not a silent local drop) — TinyOS CC2420 behaviour.
    transmit_copy();
    return;
  }
  ++csma_backoffs_;
  const std::uint32_t slots = rng_.uniform_in(1, 1u << std::min(csma_backoffs_, 5u));
  csma_timer_.start_one_shot(config_.backoff_unit * slots);
}

void LplMac::transmit_copy() {
  assert(sending_ && !queue_.empty());
  copy_in_flight_ = true;
  ++copies_this_send_;
  ++copies_sent_;
  tx_airtime_ += Cc2420Phy::airtime(wire_size_bytes(queue_.front().frame));
  medium_->transmit(id_, queue_.front().frame);
}

void LplMac::on_tx_done(bool acked, NodeId acker) {
  assert(copy_in_flight_);
  copy_in_flight_ = false;
  if (stopped_) return;  // killed while a copy was in flight
  assert(sending_ && !queue_.empty());

  if (queue_.front().cancelled) {
    finish_send(false, kInvalidNode);
    return;
  }
  const bool wants_ack = RadioMedium::frame_wants_ack(queue_.front().frame);
  if (wants_ack && acked) {
    finish_send(true, acker);
    return;
  }
  continue_send();
}

void LplMac::continue_send() {
  assert(sending_ && !queue_.empty());
  const bool wants_ack = RadioMedium::frame_wants_ack(queue_.front().frame);
  const SimTime elapsed = sim_->now() - send_start_;
  const auto limit = static_cast<SimTime>(
      static_cast<double>(config_.wake_interval) *
      (wants_ack ? config_.max_send_intervals : 1.05));
  if (elapsed >= limit) {
    // A full sweep of every wake phase: broadcast is complete, while an
    // unacknowledged unicast/anycast is a link-layer failure.
    finish_send(!wants_ack, kInvalidNode);
    return;
  }
  // Per-copy CCA: concurrent senders (e.g. synchronized periodic traffic)
  // must interleave instead of colliding copy-for-copy through the whole
  // window. Busy channel -> short randomized defer, then try again.
  const bool busy =
      medium_->receiving(id_) ||
      medium_->channel_energy_dbm(id_) > config_.cca_threshold_dbm;
  if (busy) {
    gap_timer_.set_callback([this] { continue_send(); });
    gap_timer_.start_one_shot(kMillisecond + rng_.uniform(2000));
    return;
  }
  gap_timer_.set_callback([this] { transmit_copy(); });
  gap_timer_.start_one_shot(config_.copy_gap);
}

void LplMac::finish_send(bool success, NodeId acker) {
  ++send_ops_;
  PendingSend done = std::move(queue_.front());
  queue_.pop_front();
  sending_ = false;
  release(kTxOp);
  // A control packet that swept every wake phase unacknowledged: the
  // link-layer evidence a forwarding retry or backtrack is built on.
  // (Cancelled sends are suppressions — the forwarding plane records those.)
  if (!done.cancelled) {
    if (const auto* cp = std::get_if<msg::ControlPacket>(&done.frame.payload)) {
      if (success) {
        // Span-engine boundary: the first kControlTx copy to this mark is
        // the hop's LPL wakeup wait + retransmission airtime.
        TELEA_TRACE_EVENT(tracer_, sim_->now(), id_,
                          TraceEvent::kControlTxDone, cp->seqno, acker);
      } else {
        TELEA_TRACE_EVENT(tracer_, sim_->now(), id_, TraceEvent::kSuppress,
                          cp->seqno, cp->expected_relay,
                          TraceReason::kRetryExhausted);
      }
    }
  }
  if (done.done) {
    done.done(SendResult{success, acker, copies_this_send_});
  }
  try_start_next_send();
}

AckDecision LplMac::on_frame(const Frame& frame, double rssi_dbm) {
  if (stopped_) return AckDecision::kIgnore;
  const std::uint64_t key = seen_key(frame.src, frame.link_seq);
  if (auto it = seen_.find(key); it != seen_.end()) {
    it->second.heard = sim_->now();
    // A repeated LPL copy of a frame we already have: re-ack if we claimed
    // it (the sender may have missed the first ack), and — crucially for the
    // duty cycle — go back to sleep instead of sitting out the rest of the
    // sender's transmission window (BoX-MAC-2 behaviour).
    release(kWakeWindow);
    window_timer_.stop();
    const AckDecision prior = it->second.decision;
    if (handler_ != nullptr) {
      handler_->on_duplicate_frame(frame,
                                   frame.is_broadcast() || frame.dst == id_);
    }
    return prior == AckDecision::kAcceptAndAck ? AckDecision::kAcceptAndAck
                                               : AckDecision::kIgnore;
  }

  // First copy of a new frame: end the wake window (its job is done) and
  // keep the radio up only briefly — follow-up traffic (our own forward, the
  // next relay's copy we might suppress on) arrives right away. Acquire the
  // linger before releasing the window so the radio never flickers off.
  acquire(kRxLinger);
  linger_timer_.start_one_shot(config_.rx_linger);
  release(kWakeWindow);
  window_timer_.stop();

  const bool for_me = frame.is_broadcast() || frame.dst == id_;
  AckDecision decision = AckDecision::kIgnore;
  if (handler_ != nullptr) {
    decision = handler_->handle_frame(frame, for_me, rssi_dbm);
  } else if (for_me) {
    decision = AckDecision::kAccept;
  }

  if (seen_.size() > 256) {
    const SimTime horizon = sim_->now();
    const SimTime keep = 2 * config_.wake_interval;
    std::erase_if(seen_, [horizon, keep](const auto& kv) {
      return kv.second.heard + keep < horizon;
    });
  }
  seen_.emplace(key, SeenEntry{decision, sim_->now()});
  return decision;
}

SimTime LplMac::radio_on_time() const noexcept {
  SimTime total = radio_on_accum_;
  if (awake_reasons_ != 0) total += sim_->now() - radio_on_since_;
  return total;
}

double LplMac::duty_cycle() const noexcept {
  const SimTime elapsed = sim_->now() - accounting_start_;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(radio_on_time()) / static_cast<double>(elapsed);
}

void LplMac::reset_accounting() {
  accounting_start_ = sim_->now();
  radio_on_accum_ = 0;
  if (awake_reasons_ != 0) radio_on_since_ = sim_->now();
  tx_airtime_ = 0;
  copies_sent_ = 0;
  send_ops_ = 0;
}

}  // namespace telea
