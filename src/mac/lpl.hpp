#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "radio/medium.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "stats/trace.hpp"
#include "util/rng.hpp"

namespace telea {

/// Upper-layer interface: the node's frame dispatcher. Called once per
/// distinct frame (the MAC suppresses duplicate LPL copies); `for_me` is true
/// for broadcast frames and unicasts addressed to this node. The return
/// value controls link-layer acknowledgement — returning kAcceptAndAck for a
/// frame *not* addressed to you is how TeleAdjusting claims anycast control
/// packets (Sec. III-C2).
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;
  virtual AckDecision handle_frame(const Frame& frame, bool for_me,
                                   double rssi_dbm) = 0;

  /// A repeated LPL copy of an already-delivered frame was heard (and
  /// re-acked if previously claimed). TeleAdjusting uses this to detect that
  /// its claim-acks are not reaching the sender (Sec. III-C2 duplicate
  /// handling). Default: ignore.
  virtual void on_duplicate_frame(const Frame& frame, bool for_me) {
    (void)frame;
    (void)for_me;
  }
};

struct LplConfig {
  SimTime wake_interval = 512 * kMillisecond;  // paper Sec. IV-A1 / IV-B1
  SimTime cca_window = 11 * kMillisecond;      // listen window at each wakeup
  SimTime rx_linger = 25 * kMillisecond;       // stay awake after a reception
  SimTime copy_gap = 500;                      // pause between repeated copies
  double cca_threshold_dbm = -85.0;
  unsigned max_csma_backoffs = 5;
  SimTime backoff_unit = 320;  // CC2420 backoff slot (us)
  /// Sender keeps repeating copies for this many wake intervals before
  /// declaring a unicast/anycast send failed (1.0 covers every wake phase).
  double max_send_intervals = 1.2;
  std::size_t send_queue_limit = 8;
};

struct SendResult {
  bool success = false;
  NodeId acker = kInvalidNode;  // who claimed the frame (unicast/anycast)
  unsigned copies = 0;          // transmitted copies of this frame
};

/// Low-power-listening MAC in the style of TinyOS's BoX-MAC-2 / LplC — the
/// MAC the paper's stack ("CTP built upon LPL") runs on:
///
/// * Receivers sleep and wake every `wake_interval`, sampling the channel
///   for `cca_window`; energy keeps them awake to catch a full frame copy.
/// * Senders repeat the frame back-to-back. Unicast/anycast stops at the
///   first decoded acknowledgement; broadcast runs a full wake interval so
///   every neighbor's window intersects a copy.
/// * Radio-on time is accounted for the paper's duty-cycle metric (Fig. 9).
class LplMac final : public MediumListener {
 public:
  LplMac(Simulator& sim, RadioMedium& medium, NodeId id,
         const LplConfig& config, std::uint64_t seed);

  LplMac(const LplMac&) = delete;
  LplMac& operator=(const LplMac&) = delete;

  void set_handler(FrameHandler& handler) { handler_ = &handler; }

  /// Starts duty cycling with a random wake phase. Call once at node boot.
  void start();

  /// Kills the node's radio: stops duty cycling, drops the send queue, turns
  /// the radio off and rejects future sends. Failure injection for tests and
  /// robustness experiments.
  void stop();

  /// Brings a stopped node back to life (reboot): duty cycling resumes with
  /// a fresh wake phase. Link-layer state (dedup cache) survives; protocol
  /// state above is whatever it was — exactly like a mote rebooting.
  void restart();

  [[nodiscard]] bool stopped() const noexcept { return stopped_; }

  using SendCallback = std::function<void(const SendResult&)>;

  /// Enqueues a frame for LPL transmission. Returns false when the send
  /// queue is full (the frame is dropped, callback never fires).
  bool send(Frame frame, SendCallback done);

  /// Like send(), but returns the operation's link sequence token so the
  /// caller can cancel it later (nullopt = queue full).
  std::optional<std::uint32_t> send_cancellable(Frame frame, SendCallback done);

  /// Cancels a pending or in-flight send operation by its token. A queued
  /// frame is dropped immediately; an in-flight one stops after the current
  /// copy. The callback fires with success=false either way. No-op for
  /// unknown/completed tokens.
  void cancel_send(std::uint32_t link_seq);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const LplConfig& config() const noexcept { return config_; }

  /// Attaches a decision tracer: the MAC reports control packets whose
  /// full-sweep transmission never drew an acknowledgement (the link-layer
  /// evidence behind a forwarding-plane retry/backtrack).
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] bool radio_on() const noexcept { return awake_reasons_ != 0; }

  // --- energy / traffic accounting -------------------------------------
  [[nodiscard]] SimTime radio_on_time() const noexcept;
  /// Time spent actually transmitting (a subset of radio_on_time),
  /// for the energy model's TX-current term.
  [[nodiscard]] SimTime tx_airtime() const noexcept { return tx_airtime_; }
  /// Length of the current accounting window.
  [[nodiscard]] SimTime accounting_window() const noexcept {
    return sim_->now() - accounting_start_;
  }
  [[nodiscard]] double duty_cycle() const noexcept;
  [[nodiscard]] std::uint64_t copies_sent() const noexcept {
    return copies_sent_;
  }
  [[nodiscard]] std::uint64_t send_ops() const noexcept { return send_ops_; }
  /// Deepest the TX queue has been since boot (or since stop()) — the "TX
  /// queue" half of the in-band health report's high-water field.
  [[nodiscard]] std::size_t send_queue_hwm() const noexcept {
    return send_queue_hwm_;
  }
  /// Resets the accounting clock (call after warm-up so metrics cover only
  /// the measurement phase).
  void reset_accounting();

  // --- MediumListener ----------------------------------------------------
  AckDecision on_frame(const Frame& frame, double rssi_dbm) override;
  void on_tx_done(bool acked, NodeId acker) override;

 private:
  enum AwakeReason : unsigned {
    kWakeWindow = 1u << 0,
    kTxOp = 1u << 1,
    kRxLinger = 1u << 2,
  };

  struct PendingSend {
    Frame frame;
    SendCallback done;
    bool cancelled = false;
  };

  void acquire(AwakeReason reason);
  void release(AwakeReason reason);
  void on_wake();
  void wake_window_check();
  void try_start_next_send();
  void csma_attempt();
  void continue_send();
  void transmit_copy();
  void finish_send(bool success, NodeId acker);
  void end_rx_linger();

  Simulator* sim_;
  RadioMedium* medium_;
  NodeId id_;
  LplConfig config_;
  FrameHandler* handler_ = nullptr;
  Tracer* tracer_ = nullptr;
  Pcg32 rng_;

  Timer wake_timer_;
  Timer window_timer_;
  Timer linger_timer_;
  Timer csma_timer_;
  Timer gap_timer_;

  unsigned awake_reasons_ = 0;

  std::deque<PendingSend> queue_;
  std::size_t send_queue_hwm_ = 0;
  bool stopped_ = false;
  bool sending_ = false;      // a send op is in progress
  bool copy_in_flight_ = false;
  SimTime send_start_ = 0;
  unsigned copies_this_send_ = 0;
  unsigned csma_backoffs_ = 0;
  std::uint32_t next_link_seq_ = 1;

  // Duplicate suppression for repeated LPL copies: (src, link_seq) -> the
  // decision previously returned, so re-heard copies are re-acked but not
  // re-delivered.
  struct SeenEntry {
    AckDecision decision;
    SimTime heard;
  };
  std::unordered_map<std::uint64_t, SeenEntry> seen_;

  // Accounting.
  SimTime accounting_start_ = 0;
  SimTime radio_on_accum_ = 0;
  SimTime radio_on_since_ = 0;
  SimTime tx_airtime_ = 0;
  std::uint64_t copies_sent_ = 0;
  std::uint64_t send_ops_ = 0;
};

}  // namespace telea
