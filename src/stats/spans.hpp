#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/table.hpp"
#include "stats/trace.hpp"
#include "util/ids.hpp"

namespace telea {

class MetricsRegistry;

/// Causal span engine: turns the flat per-node trace-event stream into one
/// *command span* per control seqno — a cross-node timeline with per-hop
/// relay spans and a latency decomposition answering "where did the time
/// go" for every command (the axis the paper's Figs. 7-10 evaluate).
///
/// The decomposition is a *partition* of the span: consecutive trace events
/// bound half-open segments, each labeled with one SegmentKind, so segment
/// durations sum to the end-to-end latency by construction. telea_report
/// re-checks that invariant on every load and fails loudly if a trace is
/// too mangled (e.g. ring eviction) to reconcile.

/// What a slice of a command's lifetime was spent on.
enum class SegmentKind : std::uint8_t {
  kLplWait,    // carrier sweeping LPL copies, waiting for a wake-up + claim
  kAirtime,    // on-air time of the copy that produced the next claim
  kBacktrack,  // task handed back upstream, not yet re-forwarded
  kDetour,     // Re-Tele detour leg in flight
};
inline constexpr std::size_t kSegmentKinds = 4;

[[nodiscard]] const char* segment_kind_name(SegmentKind k) noexcept;

struct SpanSegment {
  SimTime start = 0;
  SimTime end = 0;
  SegmentKind kind{};
  NodeId node = kInvalidNode;  // the node whose radio owns this interval
  std::uint32_t copies = 0;    // kControlTx copies recorded in [start, end)
};

/// One relay's tenure of the forwarding task: from its claim (or the
/// origin's first transmission) until the next claim or final delivery.
struct HopSpan {
  NodeId node = kInvalidNode;
  SimTime start = 0;
  SimTime end = 0;
  std::uint32_t copies = 0;  // LPL copies this node transmitted in tenure
};

struct CommandSpan {
  std::uint32_t seqno = 0;
  NodeId origin = kInvalidNode;
  NodeId dest = kInvalidNode;  // known once delivered, else kInvalidNode
  SimTime start = 0;
  SimTime end = 0;
  bool delivered = false;
  std::vector<HopSpan> hops;
  std::vector<SpanSegment> segments;  // chronological partition of the span

  [[nodiscard]] SimTime latency() const noexcept { return end - start; }
  /// Sum of segment durations (== latency() when the trace is complete).
  [[nodiscard]] SimTime segment_total() const noexcept;
  /// Total seconds spent in one segment kind.
  [[nodiscard]] double segment_seconds(SegmentKind k) const noexcept;
  /// The invariant: |latency - segment_total| <= tolerance (one tick).
  [[nodiscard]] bool reconciles(SimTime tolerance = 1) const noexcept;
  /// The kind holding the largest share of the span (kLplWait when empty).
  [[nodiscard]] SegmentKind dominant_segment() const noexcept;
};

/// Reconstructs one span per control seqno from trace records (live
/// snapshot or re-loaded JSONL). Records need not be sorted. Seqnos whose
/// early records were evicted from the ring degrade gracefully: the span
/// starts at the first surviving record.
[[nodiscard]] std::vector<CommandSpan> build_command_spans(
    const std::vector<TraceRecord>& records);

/// Spans failing the segment-sum invariant, for reporting.
[[nodiscard]] std::size_t count_reconcile_failures(
    const std::vector<CommandSpan>& spans, SimTime tolerance = 1);

/// Radio-state energy model for span attribution. Defaults follow the
/// CC2420 datasheet at 3 V / 0 dBm; the harness overrides copy_airtime_s
/// with the exact PHY airtime of the control frame it simulates.
struct SpanEnergyConfig {
  double supply_volts = 3.0;
  double tx_current_ma = 17.4;    // CC2420 TX at 0 dBm
  double rx_current_ma = 18.8;    // CC2420 RX / idle listening
  double copy_airtime_s = 0.002;  // one LPL copy's on-air time
};

/// Energy attributed to one command: the carrier's radio is on for the
/// whole span (LPL sweep = listen between copies), with the TX-over-RX
/// delta added for each recorded copy's airtime.
struct CommandEnergy {
  double total_uj = 0.0;
  double tx_uj = 0.0;      // TX-current delta over the copies' airtime
  double listen_uj = 0.0;  // RX/listen floor over the span duration
  std::map<NodeId, double> per_node_uj;
};

[[nodiscard]] CommandEnergy attribute_energy(const CommandSpan& span,
                                             const SpanEnergyConfig& cfg);

/// Registers/updates the telea_command_* histograms and span counters in
/// `registry` from delivered spans (see docs/OBSERVABILITY.md).
void collect_span_metrics(const std::vector<CommandSpan>& spans,
                          const SpanEnergyConfig& cfg,
                          MetricsRegistry& registry);

/// Per-command critical-path table: latency decomposition, energy, and the
/// dominant segment for every span.
[[nodiscard]] TextTable render_critical_path_table(
    const std::vector<CommandSpan>& spans, const SpanEnergyConfig& cfg);

/// Aggregate report JSON (parseable by JsonValue): command counts,
/// p50/p90/p99 latency + energy, segment shares, and per-command rows.
[[nodiscard]] std::string render_report_json(
    const std::vector<CommandSpan>& spans, const SpanEnergyConfig& cfg,
    const std::string& name);

/// Chrome trace-event JSON (load in Perfetto / chrome://tracing): pid 0
/// tracks one thread per node carrying hop spans; pid 1 tracks one thread
/// per command carrying the command slice and its segment partition.
[[nodiscard]] std::string render_perfetto_json(
    const std::vector<CommandSpan>& spans);

}  // namespace telea
