#include "stats/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "util/json.hpp"

namespace telea {

const char* trace_event_name(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kTransmit: return "transmit";
    case TraceEvent::kControlTx: return "control_tx";
    case TraceEvent::kParentChange: return "parent_change";
    case TraceEvent::kCodeChange: return "code_change";
    case TraceEvent::kKill: return "kill";
    case TraceEvent::kRevive: return "revive";
    case TraceEvent::kForwardDecision: return "forward_decision";
    case TraceEvent::kSuppress: return "suppress";
    case TraceEvent::kBacktrack: return "backtrack";
    case TraceEvent::kRedirect: return "redirect";
    case TraceEvent::kAckPath: return "ack_path";
    case TraceEvent::kCommandRetry: return "command_retry";
    case TraceEvent::kCommandResolve: return "command_resolve";
    case TraceEvent::kLinkFault: return "link_fault";
    case TraceEvent::kNoiseBurst: return "noise_burst";
    case TraceEvent::kReboot: return "reboot";
    case TraceEvent::kInvariantViolation: return "invariant_violation";
    case TraceEvent::kControlTxDone: return "control_tx_done";
    case TraceEvent::kControlDelivered: return "control_delivered";
    case TraceEvent::kFlightDump: return "flight_dump";
    case TraceEvent::kAlertFired: return "alert_fired";
    case TraceEvent::kAlertResolved: return "alert_resolved";
  }
  return "?";
}

const char* trace_reason_name(TraceReason r) noexcept {
  switch (r) {
    case TraceReason::kNone: return "none";
    case TraceReason::kExpectedRelay: return "expected_relay";
    case TraceReason::kLongerPrefix: return "longer_prefix";
    case TraceReason::kNeighborPrefix: return "neighbor_prefix";
    case TraceReason::kRetryExhausted: return "retry_exhausted";
    case TraceReason::kNeighborUnreachable: return "neighbor_unreachable";
    case TraceReason::kAckTimeout: return "ack_timeout";
    case TraceReason::kEscalated: return "escalated";
    case TraceReason::kBudgetExhausted: return "budget_exhausted";
  }
  return "?";
}

std::optional<TraceEvent> trace_event_from_name(std::string_view name) noexcept {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(TraceEvent::kAlertResolved); ++i) {
    const auto e = static_cast<TraceEvent>(i);
    if (name == trace_event_name(e)) return e;
  }
  return std::nullopt;
}

std::optional<TraceReason> trace_reason_from_name(
    std::string_view name) noexcept {
  for (std::uint8_t i = 0;
       i <= static_cast<std::uint8_t>(TraceReason::kBudgetExhausted); ++i) {
    const auto r = static_cast<TraceReason>(i);
    if (name == trace_reason_name(r)) return r;
  }
  return std::nullopt;
}

Tracer::Tracer(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 1)) {}

void Tracer::record(SimTime time, NodeId node, TraceEvent event,
                    std::uint64_t a, std::uint64_t b, TraceReason reason) {
  if (!enabled_) return;
  ring_[head_] = TraceRecord{time, node, event, reason, a, b};
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecord> Tracer::by_event(TraceEvent event) const {
  std::vector<TraceRecord> out;
  for (const auto& r : snapshot()) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

std::size_t Tracer::count(TraceEvent event) const {
  std::size_t n = 0;
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    if (ring_[(start + i) % ring_.size()].event == event) ++n;
  }
  return n;
}

std::vector<NodeId> Tracer::control_path(std::uint32_t seqno) const {
  std::vector<NodeId> path;
  for (const auto& r : snapshot()) {
    if (r.event != TraceEvent::kControlTx || r.a != seqno) continue;
    if (path.empty() || path.back() != r.node) path.push_back(r.node);
  }
  return path;
}

std::string Tracer::explain(std::uint32_t seqno) const {
  return explain_control(snapshot(), seqno);
}

std::string Tracer::render_csv() const {
  std::string out = "time_s,node,event,a,b,reason\n";
  char buf[160];
  for (const auto& r : snapshot()) {
    std::snprintf(buf, sizeof(buf), "%.6f,%u,%s,%llu,%llu,%s\n",
                  to_seconds(r.time), r.node, trace_event_name(r.event),
                  static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b),
                  trace_reason_name(r.reason));
    out += buf;
  }
  return out;
}

bool Tracer::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = render_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

std::string Tracer::render_jsonl() const {
  std::string out;
  char buf[224];
  for (const auto& r : snapshot()) {
    std::snprintf(buf, sizeof(buf),
                  "{\"t\":%.6f,\"node\":%u,\"event\":\"%s\",\"a\":%llu,"
                  "\"b\":%llu,\"reason\":\"%s\"}\n",
                  to_seconds(r.time), r.node, trace_event_name(r.event),
                  static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b),
                  trace_reason_name(r.reason));
    out += buf;
  }
  return out;
}

bool Tracer::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string jsonl = render_jsonl();
  const bool ok = std::fwrite(jsonl.data(), 1, jsonl.size(), f) == jsonl.size();
  return std::fclose(f) == 0 && ok;
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<TraceRecord> parse_trace_jsonl(std::string_view text,
                                           std::size_t* skipped) {
  std::vector<TraceRecord> out;
  std::size_t bad = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const auto doc = JsonValue::parse(line);
    if (!doc.has_value() || doc->type() != JsonValue::Type::kObject) {
      ++bad;
      continue;
    }
    const auto event = trace_event_from_name(doc->string_or("event", ""));
    if (!event.has_value()) {
      ++bad;
      continue;
    }
    TraceRecord r;
    // from_seconds truncates; round so "%.6f"-printed microsecond stamps
    // survive the text round trip exactly.
    r.time = static_cast<SimTime>(
        doc->number_or("t", 0.0) * static_cast<double>(kSecond) + 0.5);
    r.node = static_cast<NodeId>(doc->number_or("node", kInvalidNode));
    r.event = *event;
    r.reason = trace_reason_from_name(doc->string_or("reason", "none"))
                   .value_or(TraceReason::kNone);
    r.a = static_cast<std::uint64_t>(doc->number_or("a", 0.0));
    r.b = static_cast<std::uint64_t>(doc->number_or("b", 0.0));
    out.push_back(r);
  }
  if (skipped != nullptr) *skipped = bad;
  return out;
}

std::optional<std::vector<TraceRecord>> load_trace_jsonl(
    const std::string& path, std::size_t* skipped) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return parse_trace_jsonl(text, skipped);
}

std::string explain_control(const std::vector<TraceRecord>& records,
                            std::uint32_t seqno) {
  return explain_control(records, seqno, ExplainOptions{});
}

std::string explain_control(const std::vector<TraceRecord>& records,
                            std::uint32_t seqno, const ExplainOptions& opts) {
  std::string out;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "control seqno %u\n", seqno);
  out += buf;

  // LPL broadcasts the same control frame once per wake-up slot, so a single
  // send operation records dozens of identical transmissions; collapse each
  // run of same-(node, event, peer, reason) records into one line with a
  // repeat count to keep the trajectory readable.
  std::vector<TraceRecord> relevant;
  for (const auto& r : records) {
    if (r.a != seqno) continue;
    switch (r.event) {
      case TraceEvent::kControlTx:
      case TraceEvent::kForwardDecision:
      case TraceEvent::kSuppress:
      case TraceEvent::kBacktrack:
      case TraceEvent::kRedirect:
      case TraceEvent::kAckPath:
      case TraceEvent::kControlTxDone:
      case TraceEvent::kControlDelivered:
        relevant.push_back(r);
        break;
      default:
        break;
    }
  }
  const bool any_for_seqno = !relevant.empty();
  if (opts.node.has_value()) {
    std::erase_if(relevant,
                  [&](const TraceRecord& r) { return r.node != *opts.node; });
  }
  if (opts.path_only) relevant.clear();
  SimTime prev_time = relevant.empty() ? 0 : relevant.front().time;
  for (std::size_t i = 0; i < relevant.size();) {
    const TraceRecord& r = relevant[i];
    std::size_t run = 1;
    while (i + run < relevant.size()) {
      const TraceRecord& n = relevant[i + run];
      if (n.node != r.node || n.event != r.event || n.b != r.b ||
          n.reason != r.reason) {
        break;
      }
      ++run;
    }
    const char* verb = nullptr;
    switch (r.event) {
      case TraceEvent::kControlTx: verb = "transmit, expecting relay"; break;
      case TraceEvent::kForwardDecision: verb = "claim forwarding, advertise"; break;
      case TraceEvent::kSuppress: verb = "suppress, yielded to"; break;
      case TraceEvent::kBacktrack: verb = "backtrack, hand task to"; break;
      case TraceEvent::kRedirect: verb = "redirect, detour via"; break;
      case TraceEvent::kAckPath: verb = "ack hop, next"; break;
      case TraceEvent::kControlTxDone: verb = "sweep done, acked by"; break;
      case TraceEvent::kControlDelivered: verb = "delivered, arrived from"; break;
      default: verb = "?"; break;
    }
    if (opts.deltas) {
      std::snprintf(buf, sizeof(buf), "  +%9.6fs  node %-4u %s %llu",
                    to_seconds(r.time - prev_time), r.node, verb,
                    static_cast<unsigned long long>(r.b));
      prev_time = r.time;
    } else {
      std::snprintf(buf, sizeof(buf), "  %10.6fs  node %-4u %s %llu",
                    to_seconds(r.time), r.node, verb,
                    static_cast<unsigned long long>(r.b));
    }
    out += buf;
    if (run > 1) {
      std::snprintf(buf, sizeof(buf), "  (x%zu)", run);
      out += buf;
    }
    if (r.reason != TraceReason::kNone) {
      out += "  [";
      out += trace_reason_name(r.reason);
      out += "]";
    }
    out += "\n";
    i += run;
  }
  if (!any_for_seqno) {
    out += "  (no records for this seqno)\n";
    return out;
  }
  if (relevant.empty() && !opts.path_only) {
    out += "  (no records for this seqno at the selected node)\n";
  }

  // Relay path summary: kControlTx transmissions with adjacent repeats
  // collapsed, mirroring Tracer::control_path.
  std::vector<NodeId> path;
  for (const auto& r : records) {
    if (r.event != TraceEvent::kControlTx || r.a != seqno) continue;
    if (path.empty() || path.back() != r.node) path.push_back(r.node);
  }
  if (!path.empty()) {
    out += "  relay path:";
    for (const NodeId n : path) {
      std::snprintf(buf, sizeof(buf), " %u", n);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace telea
