#include "stats/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace telea {

const char* trace_event_name(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kTransmit: return "transmit";
    case TraceEvent::kControlTx: return "control_tx";
    case TraceEvent::kParentChange: return "parent_change";
    case TraceEvent::kCodeChange: return "code_change";
    case TraceEvent::kKill: return "kill";
    case TraceEvent::kRevive: return "revive";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 1)) {}

void Tracer::record(SimTime time, NodeId node, TraceEvent event,
                    std::uint64_t a, std::uint64_t b) {
  ring_[head_] = TraceRecord{time, node, event, a, b};
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceRecord> Tracer::by_event(TraceEvent event) const {
  std::vector<TraceRecord> out;
  for (const auto& r : snapshot()) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

std::size_t Tracer::count(TraceEvent event) const {
  std::size_t n = 0;
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    if (ring_[(start + i) % ring_.size()].event == event) ++n;
  }
  return n;
}

std::vector<NodeId> Tracer::control_path(std::uint32_t seqno) const {
  std::vector<NodeId> path;
  for (const auto& r : snapshot()) {
    if (r.event != TraceEvent::kControlTx || r.a != seqno) continue;
    if (path.empty() || path.back() != r.node) path.push_back(r.node);
  }
  return path;
}

std::string Tracer::render_csv() const {
  std::string out = "time_s,node,event,a,b\n";
  char buf[128];
  for (const auto& r : snapshot()) {
    std::snprintf(buf, sizeof(buf), "%.6f,%u,%s,%llu,%llu\n",
                  to_seconds(r.time), r.node, trace_event_name(r.event),
                  static_cast<unsigned long long>(r.a),
                  static_cast<unsigned long long>(r.b));
    out += buf;
  }
  return out;
}

bool Tracer::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = render_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace telea
