#pragma once

#include "sim/time.hpp"

namespace telea {

/// Energy model for a TelosB-class mote (CC2420 radio + MSP430 MCU),
/// converting the MAC's radio-time accounting into charge and energy.
/// Current figures follow the CC2420 datasheet (3 V supply); the TX draw
/// depends on the output power level, interpolated from the datasheet table.
///
/// This extends the paper's duty-cycle metric (Fig. 9) to the quantity
/// deployments actually budget: millijoules (and mAh) per node per day.
struct EnergyModelConfig {
  double supply_volts = 3.0;
  double rx_current_ma = 18.8;       // CC2420 RX / idle listening
  double sleep_current_ua = 5.1;     // Telos module sleep (MCU LPM3 + radio off)
  double mcu_active_ma = 1.8;        // MSP430 active alongside the radio
  double tx_power_dbm = 0.0;         // sets the TX current draw
};

class EnergyModel {
 public:
  EnergyModel() : EnergyModel(EnergyModelConfig{}) {}
  explicit EnergyModel(const EnergyModelConfig& config) : config_(config) {}

  /// CC2420 TX current (mA) at the given output power (dBm), interpolated
  /// from the datasheet's PA table.
  [[nodiscard]] static double tx_current_ma(double tx_power_dbm) noexcept;

  /// Energy (mJ) consumed over an accounting window.
  /// `radio_on` is total radio-on time (RX + TX), `tx_time` the part spent
  /// transmitting, `total` the window length.
  [[nodiscard]] double energy_mj(SimTime radio_on, SimTime tx_time,
                                 SimTime total) const noexcept;

  /// Average current (mA) over the window — what a battery sees.
  [[nodiscard]] double average_current_ma(SimTime radio_on, SimTime tx_time,
                                          SimTime total) const noexcept;

  /// Projected lifetime (days) on a battery of `capacity_mah` at the
  /// measured average current.
  [[nodiscard]] double lifetime_days(double capacity_mah, SimTime radio_on,
                                     SimTime tx_time,
                                     SimTime total) const noexcept;

  [[nodiscard]] const EnergyModelConfig& config() const noexcept {
    return config_;
  }

 private:
  EnergyModelConfig config_;
};

}  // namespace telea
