#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>
#include <vector>

namespace telea {

/// Streaming summary statistics (Welford's online algorithm for variance).
class SummaryStats {
 public:
  void add(double value) noexcept {
    ++n_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return n_ ? max_ : 0.0;
  }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const SummaryStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    const double new_mean =
        mean_ + delta * static_cast<double>(other.n_) / total;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ = new_mean;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Values grouped by an integer key (e.g. per-hop-count statistics, the
/// x-axis of most of the paper's figures).
class GroupedStats {
 public:
  void add(int key, double value) { groups_[key].add(value); }

  [[nodiscard]] const std::map<int, SummaryStats>& groups() const noexcept {
    return groups_;
  }
  [[nodiscard]] bool empty() const noexcept { return groups_.empty(); }

  void merge(const GroupedStats& other) {
    for (const auto& [k, s] : other.groups_) groups_[k].merge(s);
  }

 private:
  std::map<int, SummaryStats> groups_;
};

/// Empirical CDF over collected samples.
class Cdf {
 public:
  void add(double value) { samples_.push_back(value); }

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const {
    if (samples_.empty()) return 0.0;
    sort();
    const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
  }

  /// Value at quantile q in [0,1].
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    sort();
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[std::min(idx, samples_.size() - 1)];
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }

  void merge(const Cdf& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

 private:
  void sort() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace telea
