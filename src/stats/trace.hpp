#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"

namespace telea {

/// Structured event kinds a deployment would log over serial — the
/// simulator-side equivalent of the paper's testbed instrumentation
/// (Sec. IV-B1: "each node records ... and periodically sends these
/// counters to the controller through serial port").
///
/// For the control-plane decision events (kForwardDecision and below) the
/// operand convention is uniform: `a` is always the control packet seqno so
/// one filter reconstructs a packet's full trajectory; `b` is the peer node
/// the decision concerns (expected relay, suppressing transmitter, backtrack
/// target, detour relay, or ack next-hop).
enum class TraceEvent : std::uint8_t {
  kTransmit,         // a = frame kind index, b = link destination
  kControlTx,        // a = control seqno, b = expected relay
  kParentChange,     // a = old parent, b = new parent
  kCodeChange,       // a = new code length
  kKill,
  kRevive,
  kForwardDecision,  // node claims the forwarding task; reason = which claim
                     // condition fired; b = expected relay it advertises
  kSuppress,         // node abandons a pending/active relay; b = transmitter
                     // that made it redundant (0 when giving up on its own)
  kBacktrack,        // node hands the task back upstream; b = upstream node
  kRedirect,         // Re-Tele detour around a dead region; b = detour relay
  kAckPath,          // delivery ack hop toward the controller; b = next hop
  kCommandRetry,     // controller re-sends an unacked command; b = destination
  kCommandResolve,   // controller closes a command's lifecycle; b = destination
  kLinkFault,        // injected link perturbation; a = |extra loss| in dB,
                     // b = the other endpoint (node = this endpoint)
  kNoiseBurst,       // injected channel noise at this node; a = |dBm| level
  kReboot,           // node rebooted with all protocol state wiped
  kInvariantViolation,  // protocol invariant broke at this node; a = rule id
                        // (InvariantRule), b = the peer/seqno the rule names
  kControlTxDone,    // sender's LPL sweep for a control frame ended with an
                     // ack; a = seqno, b = the acking node. The gap between
                     // the first kControlTx copy and this marks LPL wakeup
                     // wait + retransmission airtime at this hop.
  kControlDelivered,  // control packet consumed at its destination;
                      // a = seqno, b = the node it arrived from (0 when the
                      // destination was the origin itself). Closes the
                      // command span in the span engine.
  kFlightDump,       // a node's flight-recorder ring was dumped; a = events
                     // in the dump, b = the dump's index in Network storage
  kAlertFired,       // a timeline alert rule's condition held for its full
                     // `for` window; a = rule index in the loaded rule set,
                     // b = the node the rule's series labels (0 = network-wide)
  kAlertResolved,    // a previously fired alert's condition went false;
                     // a = rule index, b = same node convention as kAlertFired
};

/// Why a decision event fired. kNone for events that carry no reason.
enum class TraceReason : std::uint8_t {
  kNone,
  kExpectedRelay,        // claim condition 1: named as the expected relay
  kLongerPrefix,         // claim condition 2: own code extends the target code
  kNeighborPrefix,       // claim condition 3: a neighbor's code can progress
  kRetryExhausted,       // gave up after the retransmission budget
  kNeighborUnreachable,  // no live candidate neighbor to hand the task to
  kAckTimeout,           // controller: no e2e ack within the timeout window
  kEscalated,            // controller: retry went through the Re-Tele detour
  kBudgetExhausted,      // controller: retry budget spent, command abandoned
};

[[nodiscard]] const char* trace_event_name(TraceEvent e) noexcept;
[[nodiscard]] const char* trace_reason_name(TraceReason r) noexcept;
/// Reverse lookups for re-loading exported traces; nullopt on unknown names.
[[nodiscard]] std::optional<TraceEvent> trace_event_from_name(
    std::string_view name) noexcept;
[[nodiscard]] std::optional<TraceReason> trace_reason_from_name(
    std::string_view name) noexcept;

struct TraceRecord {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  TraceEvent event{};
  TraceReason reason = TraceReason::kNone;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Bounded in-memory event trace with CSV/JSONL export and simple analysis.
/// Recording is cheap (append to a preallocated ring); when the capacity is
/// exceeded the oldest records are dropped and `dropped()` counts them.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);

  void record(SimTime time, NodeId node, TraceEvent event, std::uint64_t a = 0,
              std::uint64_t b = 0, TraceReason reason = TraceReason::kNone);

  /// Runtime kill switch: while disabled, record() is a cheap early return
  /// (the TELEA_TRACE_EVENT macro checks it before evaluating arguments).
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Records in chronological order (oldest retained first).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Records of one event type, chronological.
  [[nodiscard]] std::vector<TraceRecord> by_event(TraceEvent event) const;

  /// Number of records of one event type (cheaper than by_event).
  [[nodiscard]] std::size_t count(TraceEvent event) const;

  /// The realized relay sequence of a control packet: every node that
  /// transmitted it, in transmission order. Only *adjacent* repeats are
  /// collapsed — a node that re-transmits later (e.g. after a backtrack
  /// returned the task to it) appears again, so the trajectory keeps its
  /// loops: A,A,B,A collapses to A,B,A, not A,B.
  [[nodiscard]] std::vector<NodeId> control_path(std::uint32_t seqno) const;

  /// Human-readable reconstruction of one control packet's trajectory
  /// (relays, suppressions, backtracks, redirects, ack path) with reasons.
  [[nodiscard]] std::string explain(std::uint32_t seqno) const;

  /// CSV export: time_s,node,event,a,b,reason.
  [[nodiscard]] std::string render_csv() const;
  bool write_csv(const std::string& path) const;

  /// JSONL export: one {"t","node","event","a","b","reason"} object per line.
  [[nodiscard]] std::string render_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  void clear();

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = true;
};

/// Parses records back from JSONL text (as produced by render_jsonl). Lines
/// that are not valid trace objects are skipped; the count of skipped lines
/// is reported through `skipped` when non-null.
[[nodiscard]] std::vector<TraceRecord> parse_trace_jsonl(
    std::string_view text, std::size_t* skipped = nullptr);

/// Loads a JSONL trace file; nullopt when the file cannot be read.
[[nodiscard]] std::optional<std::vector<TraceRecord>> load_trace_jsonl(
    const std::string& path, std::size_t* skipped = nullptr);

/// Rendering filters for explain_control (telea_explain's node=/path-only=/
/// deltas= options map straight onto these fields).
struct ExplainOptions {
  std::optional<NodeId> node;  // only decision lines from this node
  bool path_only = false;      // suppress decision lines, keep the path summary
  bool deltas = false;         // elapsed time since the previous printed line
                               // instead of absolute timestamps
};

/// The engine behind Tracer::explain, usable on records re-loaded from a
/// JSONL export (tools reconstruct trajectories without the live Tracer).
[[nodiscard]] std::string explain_control(
    const std::vector<TraceRecord>& records, std::uint32_t seqno);
[[nodiscard]] std::string explain_control(
    const std::vector<TraceRecord>& records, std::uint32_t seqno,
    const ExplainOptions& opts);

}  // namespace telea

/// Zero-overhead-when-off trace emission. Compile out entirely with
/// -DTELEA_TRACING_DISABLED; otherwise a null check plus a runtime-enable
/// check guard argument evaluation, so hot paths pay one predictable branch.
#ifdef TELEA_TRACING_DISABLED
// Dead branch: arguments stay type-checked and "used" (no -Wunused fallout
// at call sites) but the optimizer removes the whole statement.
#define TELEA_TRACE_EVENT(tracer, ...)                             \
  do {                                                             \
    if (false) {                                                   \
      auto* telea_trace_tracer_ = (tracer);                        \
      if (telea_trace_tracer_ != nullptr) {                        \
        telea_trace_tracer_->record(__VA_ARGS__);                  \
      }                                                            \
    }                                                              \
  } while (0)
#else
#define TELEA_TRACE_EVENT(tracer, ...)                             \
  do {                                                             \
    auto* telea_trace_tracer_ = (tracer);                          \
    if (telea_trace_tracer_ != nullptr &&                          \
        telea_trace_tracer_->enabled()) {                          \
      telea_trace_tracer_->record(__VA_ARGS__);                    \
    }                                                              \
  } while (0)
#endif
