#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/ids.hpp"

namespace telea {

/// Structured event kinds a deployment would log over serial — the
/// simulator-side equivalent of the paper's testbed instrumentation
/// (Sec. IV-B1: "each node records ... and periodically sends these
/// counters to the controller through serial port").
enum class TraceEvent : std::uint8_t {
  kTransmit,      // a = frame kind index, b = link destination
  kControlTx,     // a = control seqno, b = expected relay
  kParentChange,  // a = old parent, b = new parent
  kCodeChange,    // a = new code length
  kKill,
  kRevive,
};

[[nodiscard]] const char* trace_event_name(TraceEvent e) noexcept;

struct TraceRecord {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  TraceEvent event{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Bounded in-memory event trace with CSV export and simple analysis.
/// Recording is cheap (append to a preallocated ring); when the capacity is
/// exceeded the oldest records are dropped and `dropped()` counts them.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1 << 16);

  void record(SimTime time, NodeId node, TraceEvent event, std::uint64_t a = 0,
              std::uint64_t b = 0);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Records in chronological order (oldest retained first).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Records of one event type, chronological.
  [[nodiscard]] std::vector<TraceRecord> by_event(TraceEvent event) const;

  /// Number of records of one event type (cheaper than by_event).
  [[nodiscard]] std::size_t count(TraceEvent event) const;

  /// The realized relay sequence of a control packet: every node that
  /// transmitted it, in transmission order (duplicates collapsed).
  [[nodiscard]] std::vector<NodeId> control_path(std::uint32_t seqno) const;

  /// CSV export: time_s,node,event,a,b.
  [[nodiscard]] std::string render_csv() const;
  bool write_csv(const std::string& path) const;

  void clear();

 private:
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace telea
