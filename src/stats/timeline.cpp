#include "stats/timeline.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/json.hpp"

namespace telea {

namespace {

// Shortest representation that parses back to the same double — to_chars
// gives exactly that, without the snprintf/round-trip dance, and it is on
// the per-sample JSONL hot path (one call per live series).
std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";  // JSON has no Inf
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return {buf, res.ptr};
}

void accumulate(TimelineBucket& b, SimTime t, double v) {
  if (b.count == 0) {
    b = TimelineBucket{t, v, v, v, 1};
    return;
  }
  b.min = std::min(b.min, v);
  b.max = std::max(b.max, v);
  b.sum += v;
  ++b.count;
}

void merge(TimelineBucket& into, const TimelineBucket& from) {
  if (from.count == 0) return;
  if (into.count == 0) {
    into = from;
    return;
  }
  into.min = std::min(into.min, from.min);
  into.max = std::max(into.max, from.max);
  into.sum += from.sum;
  into.count += from.count;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Histogram per-le detail sample ("..._bucket{...le=\"x\"...}").
bool is_bucket_sample(const std::string& name) {
  const auto brace = name.find("_bucket{");
  return brace != std::string::npos &&
         name.find("le=\"", brace) != std::string::npos;
}

}  // namespace

// --- MetricSeries -----------------------------------------------------------

MetricSeries::MetricSeries(const TimelineConfig& cfg, bool cumulative)
    : cumulative_(cumulative),
      raw_capacity_(std::max<std::size_t>(cfg.raw_capacity, 1)),
      mid_cfg_(cfg.mid),
      coarse_cfg_(cfg.coarse),
      quantile_window_(std::max<std::size_t>(cfg.quantile_window, 1)),
      ewma_alpha_(std::clamp(cfg.ewma_alpha, 1e-6, 1.0)),
      interval_(cfg.interval) {
  mid_cfg_.fold = std::max<std::size_t>(mid_cfg_.fold, 1);
  coarse_cfg_.fold = std::max<std::size_t>(coarse_cfg_.fold, 1);
}

void MetricSeries::append(SimTime t, double value) {
  raw_.push_back(TimelinePoint{t, value});
  if (raw_.size() > raw_capacity_) raw_.pop_front();
  ewma_ = total_ == 0 ? value
                      : ewma_alpha_ * value + (1.0 - ewma_alpha_) * ewma_;
  ++total_;

  accumulate(mid_pending_, t, value);
  if (mid_pending_.count >= mid_cfg_.fold) {
    // A mid bucket completed; it cascades into the coarse pending bucket
    // (coarse folds are counted in completed mid buckets, not raw points).
    if (mid_cfg_.capacity > 0) {
      mid_.push_back(mid_pending_);
      if (mid_.size() > mid_cfg_.capacity) mid_.pop_front();
    }
    merge(coarse_pending_, mid_pending_);
    ++coarse_folded_;
    mid_pending_ = TimelineBucket{};
    if (coarse_folded_ >= coarse_cfg_.fold) {
      if (coarse_cfg_.capacity > 0) {
        coarse_.push_back(coarse_pending_);
        if (coarse_.size() > coarse_cfg_.capacity) coarse_.pop_front();
      }
      coarse_pending_ = TimelineBucket{};
      coarse_folded_ = 0;
    }
  }
}

double MetricSeries::window_sum(std::size_t n) const noexcept {
  double sum = 0.0;
  const std::size_t take = std::min(n, raw_.size());
  for (std::size_t i = raw_.size() - take; i < raw_.size(); ++i) {
    sum += raw_[i].value;
  }
  return sum;
}

double MetricSeries::window_rate(std::size_t n) const noexcept {
  const std::size_t take = std::min(n, raw_.size());
  if (take == 0 || interval_ == 0) return 0.0;
  const double window_s =
      static_cast<double>(take) * static_cast<double>(interval_) /
      static_cast<double>(kSecond);
  return window_sum(n) / window_s;
}

double MetricSeries::window_quantile(double q) const noexcept {
  const std::size_t take = std::min(quantile_window_, raw_.size());
  if (take == 0) return 0.0;
  std::vector<double> vals;
  vals.reserve(take);
  for (std::size_t i = raw_.size() - take; i < raw_.size(); ++i) {
    vals.push_back(raw_[i].value);
  }
  std::sort(vals.begin(), vals.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(vals.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, vals.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return vals[lo] + (vals[hi] - vals[lo]) * frac;
}

// --- alert rules ------------------------------------------------------------

const char* alert_signal_name(AlertSignal s) noexcept {
  switch (s) {
    case AlertSignal::kValue: return "value";
    case AlertSignal::kRate: return "rate";
    case AlertSignal::kEwma: return "ewma";
    case AlertSignal::kQuantile: return "quantile";
    case AlertSignal::kAbsent: return "absent";
    case AlertSignal::kBurnRate: return "burn_rate";
  }
  return "?";
}

const char* alert_op_name(AlertOp o) noexcept {
  switch (o) {
    case AlertOp::kGt: return ">";
    case AlertOp::kGe: return ">=";
    case AlertOp::kLt: return "<";
    case AlertOp::kLe: return "<=";
  }
  return "?";
}

namespace {

bool parse_number(std::string_view text, double* out) {
  const std::string buf(text);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool parse_size(std::string_view text, std::size_t* out) {
  double v = 0;
  if (!parse_number(text, &v) || v < 1 || v != std::floor(v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

void add_error(std::vector<AlertParseError>* errors, std::size_t line,
               std::string message) {
  if (errors != nullptr) {
    errors->push_back(AlertParseError{line, std::move(message)});
  }
}

/// Parses "<signal>(<args>)" off the front of `rest`; on success `rest` is
/// advanced past the closing paren. Series names carry Prometheus label
/// blocks, so the argument split for burn_rate happens at the last comma
/// outside `{}` (labels contain commas too).
bool parse_signal_call(std::string_view* rest, AlertRule* rule,
                       std::string* error) {
  const auto open = rest->find('(');
  if (open == std::string_view::npos) {
    *error = "expected <signal>(<series>)";
    return false;
  }
  const std::string_view fn = trim(rest->substr(0, open));
  // The series argument may contain '{...}' but never parens, so the first
  // ')' closes the call.
  const auto close = rest->find(')', open);
  if (close == std::string_view::npos) {
    *error = "missing ')'";
    return false;
  }
  std::string_view args = trim(rest->substr(open + 1, close - open - 1));
  rest->remove_prefix(close + 1);

  if (fn == "value") {
    rule->signal = AlertSignal::kValue;
  } else if (fn == "rate") {
    rule->signal = AlertSignal::kRate;
  } else if (fn == "ewma") {
    rule->signal = AlertSignal::kEwma;
  } else if (fn == "absent") {
    rule->signal = AlertSignal::kAbsent;
  } else if (fn == "burn_rate") {
    rule->signal = AlertSignal::kBurnRate;
  } else if (fn == "p50" || fn == "p90" || fn == "p99") {
    rule->signal = AlertSignal::kQuantile;
    rule->quantile = fn == "p50" ? 0.5 : fn == "p90" ? 0.9 : 0.99;
  } else {
    *error = "unknown signal '" + std::string(fn) +
             "' (value|rate|ewma|p50|p90|p99|absent|burn_rate)";
    return false;
  }

  if (rule->signal == AlertSignal::kBurnRate) {
    std::size_t split = std::string_view::npos;
    int depth = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == '{') ++depth;
      else if (args[i] == '}') --depth;
      else if (args[i] == ',' && depth == 0) split = i;
    }
    if (split == std::string_view::npos) {
      *error = "burn_rate needs (series, budget_per_s)";
      return false;
    }
    rule->series = std::string(trim(args.substr(0, split)));
    if (!parse_number(trim(args.substr(split + 1)), &rule->budget_per_s) ||
        rule->budget_per_s <= 0) {
      *error = "burn_rate budget must be a positive number";
      return false;
    }
  } else {
    rule->series = std::string(args);
  }
  if (rule->series.empty()) {
    *error = "empty series name";
    return false;
  }
  return true;
}

}  // namespace

std::optional<std::vector<AlertRule>> parse_alert_rules(
    std::string_view text, std::vector<AlertParseError>* errors) {
  std::vector<AlertRule> rules;
  bool ok = true;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const auto nl = text.find('\n');
    std::string_view line = trim(text.substr(0, nl));
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (line.empty() || line.front() == '#') continue;

    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      add_error(errors, line_no, "expected '<name>: <expr>'");
      ok = false;
      continue;
    }
    AlertRule rule;
    rule.name = std::string(trim(line.substr(0, colon)));
    if (rule.name.empty() ||
        rule.name.find_first_of(" \t\"{}") != std::string::npos) {
      add_error(errors, line_no, "rule name must be a bare token");
      ok = false;
      continue;
    }

    std::string_view rest = trim(line.substr(colon + 1));
    std::string error;
    if (!parse_signal_call(&rest, &rule, &error)) {
      add_error(errors, line_no, error);
      ok = false;
      continue;
    }
    rest = trim(rest);

    if (rule.signal != AlertSignal::kAbsent) {
      if (rest.rfind(">=", 0) == 0) {
        rule.op = AlertOp::kGe;
        rest = trim(rest.substr(2));
      } else if (rest.rfind("<=", 0) == 0) {
        rule.op = AlertOp::kLe;
        rest = trim(rest.substr(2));
      } else if (rest.rfind('>', 0) == 0) {
        rule.op = AlertOp::kGt;
        rest = trim(rest.substr(1));
      } else if (rest.rfind('<', 0) == 0) {
        rule.op = AlertOp::kLt;
        rest = trim(rest.substr(1));
      } else {
        add_error(errors, line_no, "expected comparison (> >= < <=)");
        ok = false;
        continue;
      }
      const auto for_pos = rest.find(" for ");
      std::string_view num =
          for_pos == std::string_view::npos ? rest : rest.substr(0, for_pos);
      if (!parse_number(trim(num), &rule.threshold)) {
        add_error(errors, line_no, "threshold is not a number");
        ok = false;
        continue;
      }
      rest = for_pos == std::string_view::npos
                 ? std::string_view{}
                 : trim(rest.substr(for_pos + 1));
    }

    if (!rest.empty()) {
      if (rest.rfind("for ", 0) != 0 ||
          !parse_size(trim(rest.substr(4)), &rule.for_windows)) {
        add_error(errors, line_no,
                  "trailing text (expected 'for <windows>=1>')");
        ok = false;
        continue;
      }
    }
    rules.push_back(std::move(rule));
  }
  if (!ok) return std::nullopt;
  return rules;
}

std::optional<std::vector<AlertRule>> load_alert_rules(
    const std::string& path, std::vector<AlertParseError>* errors) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    add_error(errors, 0, "cannot open " + path);
    return std::nullopt;
  }
  std::string body;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, got);
  }
  std::fclose(f);
  return parse_alert_rules(body, errors);
}

std::string render_alert_rule(const AlertRule& rule) {
  std::string out = rule.name + ": ";
  switch (rule.signal) {
    case AlertSignal::kQuantile:
      out += rule.quantile >= 0.99 ? "p99" : rule.quantile >= 0.9 ? "p90"
                                                                  : "p50";
      out += "(" + rule.series + ")";
      break;
    case AlertSignal::kBurnRate:
      out += "burn_rate(" + rule.series + ", " +
             fmt_double(rule.budget_per_s) + ")";
      break;
    default:
      out += std::string(alert_signal_name(rule.signal)) + "(" + rule.series +
             ")";
      break;
  }
  if (rule.signal != AlertSignal::kAbsent) {
    out += " " + std::string(alert_op_name(rule.op)) + " " +
           fmt_double(rule.threshold);
  }
  out += " for " + std::to_string(rule.for_windows);
  return out;
}

std::optional<NodeId> series_node_label(std::string_view name) {
  const auto pos = name.find("node=\"");
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view digits = name.substr(pos + 6);
  const auto end = digits.find('"');
  if (end == std::string_view::npos || end == 0) return std::nullopt;
  digits = digits.substr(0, end);
  std::uint32_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
    if (value > kInvalidNode) return std::nullopt;
  }
  return static_cast<NodeId>(value);
}

// --- TimelineEngine ---------------------------------------------------------

TimelineEngine::TimelineEngine(Simulator& sim, TimelineConfig cfg)
    : sim_(&sim), cfg_(cfg), timer_(sim) {
  cfg_.interval = std::max<SimTime>(cfg_.interval, 1);
  timer_.set_tag("timeline");
  timer_.set_callback([this] { sample_now(); });
}

TimelineEngine::~TimelineEngine() {
  if (jsonl_ != nullptr) std::fclose(jsonl_);
}

void TimelineEngine::set_rules(std::vector<AlertRule> rules) {
  alerts_.clear();
  alerts_.reserve(rules.size());
  for (auto& rule : rules) {
    AlertState state;
    state.rule = std::move(rule);
    state.index = alerts_.size();
    alerts_.push_back(std::move(state));
  }
}

bool TimelineEngine::set_jsonl(const std::string& path) {
  if (jsonl_ != nullptr) std::fclose(jsonl_);
  jsonl_ = std::fopen(path.c_str(), "w");
  jsonl_path_ = path;
  meta_written_ = false;
  return jsonl_ != nullptr;
}

void TimelineEngine::start() {
  if (!timer_.running()) timer_.start_periodic(cfg_.interval);
}

void TimelineEngine::stop() { timer_.stop(); }

TimelineEngine::SeriesEntry::SeriesEntry(const TimelineConfig& cfg,
                                         bool cumulative,
                                         const std::string& name)
    : series(cfg, cumulative) {
  json_key.push_back('"');
  json_key += JsonValue::escape(name);
  json_key += "\":";
}

const TimelineEngine::SeriesEntry* TimelineEngine::entry(
    std::string_view name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

const MetricSeries* TimelineEngine::series(std::string_view name) const {
  const SeriesEntry* e = entry(name);
  return e == nullptr ? nullptr : &e->series;
}

std::vector<std::string> TimelineEngine::series_names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    (void)s;
    out.push_back(name);
  }
  return out;
}

std::uint64_t TimelineEngine::alerts_fired_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& a : alerts_) total += a.fired;
  return total;
}

std::uint64_t TimelineEngine::alerts_resolved_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& a : alerts_) total += a.resolved;
  return total;
}

void TimelineEngine::write_meta_line() {
  std::string line = "{\"meta\":{\"interval_us\":" +
                     std::to_string(cfg_.interval) +
                     ",\"raw_capacity\":" + std::to_string(cfg_.raw_capacity) +
                     ",\"mid\":{\"capacity\":" +
                     std::to_string(cfg_.mid.capacity) +
                     ",\"fold\":" + std::to_string(cfg_.mid.fold) +
                     "},\"coarse\":{\"capacity\":" +
                     std::to_string(cfg_.coarse.capacity) +
                     ",\"fold\":" + std::to_string(cfg_.coarse.fold) +
                     "},\"window\":" + std::to_string(cfg_.window) +
                     ",\"quantile_window\":" +
                     std::to_string(cfg_.quantile_window) +
                     ",\"ewma_alpha\":" + fmt_double(cfg_.ewma_alpha) +
                     ",\"rules\":[";
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    if (i > 0) line.push_back(',');
    line.push_back('"');
    line += JsonValue::escape(render_alert_rule(alerts_[i].rule));
    line.push_back('"');
  }
  line += "]}}";
  append_jsonl(line);
}

void TimelineEngine::append_jsonl(const std::string& line) {
  if (jsonl_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), jsonl_);
  std::fputc('\n', jsonl_);
  std::fflush(jsonl_);  // a killed soak still leaves a parseable timeline
}

void TimelineEngine::sample_now() {
  const auto wall_start = std::chrono::steady_clock::now();
  const SimTime now = sim_->now();

  scratch_.clear();
  if (collector_) collector_(scratch_);

  ++samples_;
  scratch_.visit_samples([this, now](const std::string& name, double value,
                                     SampleKind kind) {
    if (!cfg_.include_histogram_detail && is_bucket_sample(name)) return;
    const bool cumulative = kind != SampleKind::kGauge;
    auto sit = series_.find(name);
    if (sit == series_.end()) {
      sit = series_.emplace(name, SeriesEntry(cfg_, cumulative, name)).first;
    }
    SeriesEntry& entry = sit->second;
    double v = value;
    if (cumulative) {
      // Delta-encode against the previous absolute value; a shrinking
      // cumulative sample means its owner reset (state-loss reboot), and
      // the honest bounded answer for that interval is "no progress seen".
      v = value - entry.prev_absolute;
      if (v < 0.0) {
        v = 0.0;
        ++counter_resets_;
      }
      entry.prev_absolute = value;
    }
    entry.series.append(now, v);
    entry.last_sample = samples_;
  });

  if (jsonl_ != nullptr) {
    if (!meta_written_) {
      write_meta_line();
      meta_written_ = true;
    }
    std::string line;
    line.reserve(jsonl_line_hint_);
    line += "{\"t\":";
    line += fmt_double(static_cast<double>(now) / static_cast<double>(kSecond));
    line += ",\"v\":{";
    bool first = true;
    for (const auto& [name, entry] : series_) {
      (void)name;
      if (entry.last_sample != samples_) continue;  // no sample this pass
      if (!first) line.push_back(',');
      first = false;
      line += entry.json_key;
      line += fmt_double(entry.series.last());
    }
    line += "}}";
    jsonl_line_hint_ = std::max(jsonl_line_hint_, line.size() + 64);
    append_jsonl(line);
  }

  evaluate_alerts(now);

  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
}

double TimelineEngine::eval_signal(const AlertRule& rule,
                                   const MetricSeries* s) const {
  if (s == nullptr) return 0.0;
  switch (rule.signal) {
    case AlertSignal::kValue: return s->last();
    case AlertSignal::kRate: return s->window_rate(cfg_.window);
    case AlertSignal::kEwma: return s->ewma();
    case AlertSignal::kQuantile: return s->window_quantile(rule.quantile);
    case AlertSignal::kBurnRate:
      return s->window_rate(cfg_.window) / rule.budget_per_s;
    case AlertSignal::kAbsent: return 0.0;  // handled by the caller
  }
  return 0.0;
}

void TimelineEngine::evaluate_alerts(SimTime now) {
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    AlertState& alert = alerts_[i];
    const AlertRule& rule = alert.rule;
    bool condition = false;
    if (rule.signal == AlertSignal::kAbsent) {
      // Absent means "not reported in this sampling pass", not "never seen":
      // a series that existed and then stopped is exactly the case to page on.
      const SeriesEntry* e = entry(rule.series);
      condition = e == nullptr || e->last_sample != samples_;
      alert.last_signal = condition ? 1.0 : 0.0;
    } else {
      const double v = eval_signal(rule, series(rule.series));
      alert.last_signal = v;
      switch (rule.op) {
        case AlertOp::kGt: condition = v > rule.threshold; break;
        case AlertOp::kGe: condition = v >= rule.threshold; break;
        case AlertOp::kLt: condition = v < rule.threshold; break;
        case AlertOp::kLe: condition = v <= rule.threshold; break;
      }
    }

    const std::optional<NodeId> node = series_node_label(rule.series);
    if (condition) {
      ++alert.consecutive;
      if (!alert.active && alert.consecutive >= rule.for_windows) {
        alert.active = true;
        ++alert.fired;
        alert.last_fired = now;
        TELEA_TRACE_EVENT(tracer_, now, node.value_or(kSinkNode),
                          TraceEvent::kAlertFired, i, node.value_or(0));
        append_jsonl(
            "{\"t\":" +
            fmt_double(static_cast<double>(now) /
                       static_cast<double>(kSecond)) +
            ",\"alert\":\"" + JsonValue::escape(rule.name) +
            "\",\"state\":\"fired\",\"signal\":" +
            fmt_double(alert.last_signal) + ",\"rule\":\"" +
            JsonValue::escape(render_alert_rule(rule)) + "\"}");
        if (on_alert_fired) {
          on_alert_fired(alert, node.value_or(kInvalidNode));
        }
      }
    } else {
      alert.consecutive = 0;
      if (alert.active) {
        alert.active = false;
        ++alert.resolved;
        alert.last_resolved = now;
        TELEA_TRACE_EVENT(tracer_, now, node.value_or(kSinkNode),
                          TraceEvent::kAlertResolved, i, node.value_or(0));
        append_jsonl(
            "{\"t\":" +
            fmt_double(static_cast<double>(now) /
                       static_cast<double>(kSecond)) +
            ",\"alert\":\"" + JsonValue::escape(rule.name) +
            "\",\"state\":\"resolved\",\"signal\":" +
            fmt_double(alert.last_signal) + ",\"rule\":\"" +
            JsonValue::escape(render_alert_rule(rule)) + "\"}");
        if (on_alert_resolved) {
          on_alert_resolved(alert, node.value_or(kInvalidNode));
        }
      }
    }
  }
}

void TimelineEngine::collect_metrics(MetricsRegistry& registry) const {
  registry.describe("telea_timeline_samples_total",
                    "Timeline sampling passes taken");
  registry.counter("telea_timeline_samples_total").set_total(samples_);
  registry.describe("telea_timeline_series",
                    "Distinct metric series the timeline engine tracks");
  registry.gauge("telea_timeline_series")
      .set(static_cast<double>(series_.size()));
  registry.describe(
      "telea_timeline_counter_resets_total",
      "Negative counter deltas clamped to zero (owner reset between samples)");
  registry.counter("telea_timeline_counter_resets_total")
      .set_total(counter_resets_);
  registry.describe(
      "telea_timeline_sampling_wall_seconds",
      "Host wall-clock spent inside timeline sampling (overhead gate input)");
  registry.gauge("telea_timeline_sampling_wall_seconds").set(wall_seconds_);
  for (const auto& alert : alerts_) {
    const MetricLabels labels = {{"rule", alert.rule.name}};
    registry.describe("telea_alert_fired_total",
                      "Alert-rule firings (per rule)");
    registry.counter("telea_alert_fired_total", labels).set_total(alert.fired);
    registry.describe("telea_alert_resolved_total",
                      "Alert-rule resolutions (per rule)");
    registry.counter("telea_alert_resolved_total", labels)
        .set_total(alert.resolved);
    registry.describe("telea_alert_active",
                      "1 while the alert rule is currently firing");
    registry.gauge("telea_alert_active", labels)
        .set(alert.active ? 1.0 : 0.0);
  }
}

}  // namespace telea
