#include "stats/energy.hpp"

#include <algorithm>
#include <array>

namespace telea {

double EnergyModel::tx_current_ma(double tx_power_dbm) noexcept {
  struct Point {
    double dbm;
    double ma;
  };
  // CC2420 datasheet: output power vs current consumption.
  static constexpr std::array<Point, 8> kTable{{{-25.0, 8.5},
                                                {-15.0, 9.9},
                                                {-10.0, 11.2},
                                                {-7.0, 12.5},
                                                {-5.0, 13.9},
                                                {-3.0, 15.2},
                                                {-1.0, 16.5},
                                                {0.0, 17.4}}};
  const double p = std::clamp(tx_power_dbm, kTable.front().dbm,
                              kTable.back().dbm);
  for (std::size_t i = 1; i < kTable.size(); ++i) {
    if (p <= kTable[i].dbm) {
      const auto& lo = kTable[i - 1];
      const auto& hi = kTable[i];
      const double t = (p - lo.dbm) / (hi.dbm - lo.dbm);
      return lo.ma + t * (hi.ma - lo.ma);
    }
  }
  return kTable.back().ma;
}

double EnergyModel::average_current_ma(SimTime radio_on, SimTime tx_time,
                                       SimTime total) const noexcept {
  if (total == 0) return 0.0;
  const double tx_s = to_seconds(std::min(tx_time, radio_on));
  const double rx_s = to_seconds(radio_on) - tx_s;
  const double sleep_s = std::max(0.0, to_seconds(total) - to_seconds(radio_on));
  // While the radio is up, the MCU is active too.
  const double awake_ma = config_.mcu_active_ma;
  const double charge_mas =
      rx_s * (config_.rx_current_ma + awake_ma) +
      tx_s * (tx_current_ma(config_.tx_power_dbm) + awake_ma) +
      sleep_s * (config_.sleep_current_ua / 1000.0);
  return charge_mas / to_seconds(total);
}

double EnergyModel::energy_mj(SimTime radio_on, SimTime tx_time,
                              SimTime total) const noexcept {
  return average_current_ma(radio_on, tx_time, total) * to_seconds(total) *
         config_.supply_volts;
}

double EnergyModel::lifetime_days(double capacity_mah, SimTime radio_on,
                                  SimTime tx_time,
                                  SimTime total) const noexcept {
  const double ma = average_current_ma(radio_on, tx_time, total);
  if (ma <= 0.0) return 0.0;
  return capacity_mah / ma / 24.0;
}

}  // namespace telea
