#include "stats/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace telea {

namespace {

/// Saturating quantization without the debug-assert of field::u8 — health
/// fields are *expected* to clamp under load (that is the signal).
std::uint8_t sat_u8(double v) noexcept {
  if (!(v > 0.0)) return 0;
  const long r = std::lround(v);
  return r >= 255 ? 255 : static_cast<std::uint8_t>(r);
}

std::uint8_t sat_u8(std::uint64_t v) noexcept {
  return v > 255 ? 255 : static_cast<std::uint8_t>(v);
}

std::uint8_t nibble(std::size_t v) noexcept {
  return v > 15 ? 15 : static_cast<std::uint8_t>(v);
}

}  // namespace

msg::HealthReport encode_health_report(const HealthSample& sample,
                                       std::uint8_t seqno) noexcept {
  msg::HealthReport r;
  r.seqno = seqno;
  r.duty_permille = sat_u8(sample.duty_cycle * 1000.0);
  r.etx10 = sat_u8(static_cast<std::uint64_t>(sample.etx10));
  r.code_len = sat_u8(static_cast<std::uint64_t>(sample.code_len));
  r.queue_hwm = static_cast<std::uint8_t>(
      (nibble(sample.mac_queue_hwm) << 4) | nibble(sample.ctp_queue_hwm));
  r.parent_epoch = static_cast<std::uint8_t>(sample.parent_changes & 0xFFu);
  const double mj = std::max(0.0, sample.energy_mj);
  r.energy_mj = mj >= 65535.0 ? 65535
                              : static_cast<std::uint16_t>(std::lround(mj));
  return r;
}

bool health_seqno_newer(std::uint8_t candidate, std::uint8_t current) noexcept {
  // Wrapping window: candidate is newer when it is 1..127 ahead mod 256.
  const std::uint8_t ahead =
      static_cast<std::uint8_t>(candidate - current);
  return ahead != 0 && ahead < 128;
}

void HealthReporter::maybe_attach(SimTime now, msg::CtpData& data,
                                  const std::function<HealthSample()>& sample) {
  if (data.has_health) return;  // never overwrite (defensive; origins only)
  if (attached_once_ && now < last_attach_ + config_.min_interval) {
    ++stats_.suppressed;
    return;
  }
  data.has_health = true;
  data.health = encode_health_report(sample(), next_seqno_);
  ++next_seqno_;
  attached_once_ = true;
  last_attach_ = now;
  ++stats_.reports_attached;
  stats_.bytes_attached += msg::kHealthReportBytes;
}

void NetworkHealthModel::on_report(SimTime now, NodeId node,
                                   const msg::HealthReport& report) {
  stats_.bytes += msg::kHealthReportBytes;
  auto it = entries_.find(node);
  if (it != entries_.end() &&
      !health_seqno_newer(report.seqno, it->second.report.seqno)) {
    ++stats_.stale_dropped;  // out-of-order straggler: freshest wins
    return;
  }
  Entry& e = it != entries_.end() ? it->second : entries_[node];
  e.report = report;
  e.updated = now;
  ++e.updates;
  ++stats_.reports;
}

const NetworkHealthModel::Entry* NetworkHealthModel::entry(NodeId node) const {
  const auto it = entries_.find(node);
  return it == entries_.end() ? nullptr : &it->second;
}

void NetworkHealthModel::prune(SimTime now) {
  if (config_.evict_after == 0) return;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now >= it->second.updated + config_.evict_after) {
      it = entries_.erase(it);
      ++stats_.evicted;
    } else {
      ++it;
    }
  }
}

bool NetworkHealthModel::is_fresh(SimTime now, NodeId node) const {
  const Entry* e = entry(node);
  return e != nullptr && now < e->updated + config_.effective_stale_after();
}

double NetworkHealthModel::coverage(SimTime now) const {
  if (expected_nodes_ == 0) return 1.0;
  std::size_t fresh = 0;
  for (const auto& [id, e] : entries_) {
    if (now < e.updated + config_.effective_stale_after()) ++fresh;
  }
  return static_cast<double>(fresh) / static_cast<double>(expected_nodes_);
}

std::vector<NodeId> NetworkHealthModel::stale_nodes(SimTime now) const {
  std::vector<NodeId> out;
  for (const auto& [id, e] : entries_) {
    if (now >= e.updated + config_.effective_stale_after()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> NetworkHealthModel::unseen_nodes() const {
  std::vector<NodeId> out;
  for (std::size_t i = 1; i <= expected_nodes_; ++i) {
    const auto id = static_cast<NodeId>(i);
    if (entries_.find(id) == entries_.end()) out.push_back(id);
  }
  return out;
}

void NetworkHealthModel::collect_metrics(MetricsRegistry& registry,
                                         SimTime now) {
  registry.describe("telea_health_reports_total",
                    "In-band health reports, by side (origin attach / sink accept)");
  registry.describe("telea_health_stale_reports_total",
                    "Out-of-order health reports dropped by freshest-wins");
  registry.describe("telea_health_overhead_bytes",
                    "Piggyback byte overhead of health telemetry, by side");
  registry.describe("telea_health_evicted_total",
                    "Health entries aged out of the sink model");
  registry.describe("telea_health_nodes",
                    "Sink health-model population by state (tracked/fresh/stale/unseen)");
  registry.describe("telea_health_coverage",
                    "Fraction of expected nodes with a fresh health report");
  registry.describe("telea_health_report_age_seconds",
                    "Distribution of health-report ages at the sink");
  registry.describe("telea_health_duty_cycle",
                    "Distribution of node-reported duty cycles");
  registry.describe("telea_health_etx10",
                    "Distribution of node-reported parent-link ETX (1/10 units)");

  prune(now);

  const MetricLabels sink{{"side", "sink"}, {"sub", "health"}};
  registry.counter("telea_health_reports_total", sink).set_total(stats_.reports);
  registry.counter("telea_health_stale_reports_total", sink)
      .set_total(stats_.stale_dropped);
  registry.counter("telea_health_overhead_bytes", sink).set_total(stats_.bytes);
  registry.counter("telea_health_evicted_total", sink).set_total(stats_.evicted);

  const SimTime stale_after = config_.effective_stale_after();
  std::size_t fresh = 0;
  Histogram& age = registry.histogram(
      "telea_health_report_age_seconds",
      {1, 5, 15, 30, 60, 120, 300, 600, 1800, 3600}, sink);
  Histogram& duty = registry.histogram(
      "telea_health_duty_cycle",
      {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.255}, sink);
  Histogram& etx = registry.histogram(
      "telea_health_etx10", {10, 12, 15, 20, 30, 50, 100, 200}, sink);
  age.reset();
  duty.reset();
  etx.reset();
  for (const auto& [id, e] : entries_) {
    const SimTime report_age = now - e.updated;
    if (report_age < stale_after) ++fresh;
    age.observe(to_seconds(report_age));
    duty.observe(static_cast<double>(e.report.duty_permille) / 1000.0);
    etx.observe(static_cast<double>(e.report.etx10));
  }
  auto state_gauge = [&](const char* state, double v) {
    registry
        .gauge("telea_health_nodes",
               {{"side", "sink"}, {"state", state}, {"sub", "health"}})
        .set(v);
  };
  state_gauge("tracked", static_cast<double>(entries_.size()));
  state_gauge("fresh", static_cast<double>(fresh));
  state_gauge("stale", static_cast<double>(entries_.size() - fresh));
  state_gauge("unseen", static_cast<double>(unseen_nodes().size()));
  registry.gauge("telea_health_coverage", sink).set(coverage(now));
}

std::string NetworkHealthModel::render_snapshot_json(SimTime now) const {
  const SimTime stale_after = config_.effective_stale_after();
  std::size_t fresh = 0;
  for (const auto& [id, e] : entries_) {
    if (now - e.updated < stale_after) ++fresh;
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"t\":%.6f,\"period_s\":%.3f,\"stale_after_s\":%.3f,"
                "\"expected\":%zu,\"tracked\":%zu,\"fresh\":%zu,"
                "\"coverage\":%.6f,\"reports\":%llu,\"stale_dropped\":%llu,"
                "\"bytes\":%llu,\"nodes\":[",
                to_seconds(now), to_seconds(config_.period),
                to_seconds(stale_after), expected_nodes_, entries_.size(),
                fresh, coverage(now),
                static_cast<unsigned long long>(stats_.reports),
                static_cast<unsigned long long>(stats_.stale_dropped),
                static_cast<unsigned long long>(stats_.bytes));
  out += buf;
  bool first = true;
  for (const auto& [id, e] : entries_) {
    const msg::HealthReport& r = e.report;
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"id\":%u,\"age_s\":%.3f,\"seq\":%u,\"duty\":%.4f,"
        "\"etx10\":%u,\"code_len\":%u,\"txq_hwm\":%u,\"fwdq_hwm\":%u,"
        "\"parent_epoch\":%u,\"energy_mj\":%u,\"updates\":%llu}",
        first ? "" : ",", static_cast<unsigned>(id),
        to_seconds(now - e.updated), static_cast<unsigned>(r.seqno),
        static_cast<double>(r.duty_permille) / 1000.0,
        static_cast<unsigned>(r.etx10), static_cast<unsigned>(r.code_len),
        static_cast<unsigned>(r.queue_hwm >> 4),
        static_cast<unsigned>(r.queue_hwm & 0x0F),
        static_cast<unsigned>(r.parent_epoch),
        static_cast<unsigned>(r.energy_mj),
        static_cast<unsigned long long>(e.updates));
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

}  // namespace telea
