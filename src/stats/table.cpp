#include "stats/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdlib>

#include "util/json.hpp"

namespace telea {

std::string TextTable::fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::fmt_pct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

namespace {
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::render_csv() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_field(cells[i]);
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return out;
}

bool TextTable::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = render_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

/// Renders a cell as a JSON value: numeric cells become numbers ("12.3%"
/// becomes 0.123), anything else a quoted string.
std::string json_cell(const std::string& s) {
  if (!s.empty()) {
    const char* begin = s.c_str();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end != begin) {
      if (*end == '\0') {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", v);
        return buf;
      }
      if (end[0] == '%' && end[1] == '\0') {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", v / 100.0);
        return buf;
      }
    }
  }
  return "\"" + JsonValue::escape(s) + "\"";
}

}  // namespace

std::string TextTable::render_json(const std::string& name) const {
  std::string out = "{\"name\":\"" + JsonValue::escape(name) + "\",";
  out += "\"headers\":[";
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + JsonValue::escape(headers_[i]) + "\"";
  }
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      if (i > 0) out += ',';
      const std::string& cell =
          i < rows_[r].size() ? rows_[r][i] : std::string{};
      out += "\"" + JsonValue::escape(headers_[i]) + "\":" + json_cell(cell);
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

bool TextTable::write_json(const std::string& name,
                           const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = render_json(name);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto fit = [&widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  fit(headers_);
  for (const auto& r : rows_) fit(r);

  std::string out;
  auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out += "| ";
      out += c;
      out.append(widths[i] - c.size() + 1, ' ');
    }
    out += "|\n";
  };
  emit(headers_);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    out += "|";
    out.append(widths[i] + 2, '-');
  }
  out += "|\n";
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  if (values.empty() || width == 0) return {};
  static constexpr char kRamp[] = "_.:-=+*#@";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 1;
  const std::size_t take = std::min(width, values.size());
  const std::size_t first = values.size() - take;
  double lo = values[first];
  double hi = values[first];
  for (std::size_t i = first; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  out.reserve(take);
  for (std::size_t i = first; i < values.size(); ++i) {
    if (hi <= lo) {
      out.push_back('-');
      continue;
    }
    const double norm = (values[i] - lo) / (hi - lo);
    const auto level = static_cast<std::size_t>(
        norm * static_cast<double>(kLevels - 1) + 0.5);
    out.push_back(kRamp[std::min(level, kLevels - 1)]);
  }
  return out;
}

}  // namespace telea
