#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "radio/packet.hpp"
#include "sim/time.hpp"
#include "stats/metrics.hpp"
#include "util/ids.hpp"

namespace telea {

/// In-band health telemetry (docs/OBSERVABILITY.md, "Health telemetry &
/// flight recorder"). Two halves:
///
///  * node side — `HealthReporter` piggybacks an 8-byte `msg::HealthReport`
///    onto locally-originated upward CTP traffic (data and e2e acks) through
///    `CtpNode::set_origin_hook`. No dedicated packets, rate-limited to one
///    report per `min_interval`.
///  * sink side — `NetworkHealthModel` assembles the reports into a
///    staleness-aware per-node picture: last-seen state with age tracking,
///    freshest-wins acceptance on out-of-order arrivals, coverage and
///    distribution aggregates, metrics export (`telea_health_*`) and a JSONL
///    snapshot line `tools/telea_top` renders.

/// What a node samples locally, in natural units, to build one report.
/// `encode_health_report` quantizes to the wire widths.
struct HealthSample {
  double duty_cycle = 0.0;         // radio duty cycle in [0,1]
  std::uint32_t etx10 = 0xFFFF;    // link ETX to CTP parent, 1/10 units
  std::size_t code_len = 0;        // valid bits of the node's path code
  std::size_t mac_queue_hwm = 0;   // TX (MAC send) queue high-water mark
  std::size_t ctp_queue_hwm = 0;   // CTP forward queue high-water mark
  std::uint64_t parent_changes = 0;
  double energy_mj = 0.0;          // estimated energy spent, mJ
};

/// Quantizes `sample` into the 8-byte wire report. Saturating fields clamp
/// (duty at 25.5%, ETX at 25.5, queues at 15, energy at 65535 mJ); the
/// parent epoch wraps mod 256 by design.
[[nodiscard]] msg::HealthReport encode_health_report(const HealthSample& sample,
                                                     std::uint8_t seqno) noexcept;

/// True when `candidate` is newer than `current` under wrapping u8 sequence
/// arithmetic (the freshest-wins rule for out-of-order piggybacks).
[[nodiscard]] bool health_seqno_newer(std::uint8_t candidate,
                                      std::uint8_t current) noexcept;

struct HealthReporterConfig {
  /// At most one report attached per interval — the "telemetry period".
  SimTime min_interval = 60 * kSecond;
};

/// Node-side attach policy. Owns the rate limiter and the wrapping report
/// sequence number; the host stack supplies a sampling callback so the
/// (cheap but not free) sample is only taken when a report actually goes out.
class HealthReporter {
 public:
  explicit HealthReporter(HealthReporterConfig config) : config_(config) {}

  /// Offers an origin frame to the reporter: attaches a freshly sampled
  /// report when the rate limiter allows, otherwise leaves the frame alone.
  void maybe_attach(SimTime now, msg::CtpData& data,
                    const std::function<HealthSample()>& sample);

  struct Stats {
    std::uint64_t reports_attached = 0;
    std::uint64_t bytes_attached = 0;   // 8 per attached report
    std::uint64_t suppressed = 0;       // origin frames left bare (rate limit)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const HealthReporterConfig& config() const noexcept {
    return config_;
  }

 private:
  HealthReporterConfig config_;
  Stats stats_;
  std::uint8_t next_seqno_ = 0;
  bool attached_once_ = false;
  SimTime last_attach_ = 0;
};

struct HealthModelConfig {
  /// The telemetry period the model expects (= reporter min_interval).
  SimTime period = 60 * kSecond;
  /// Reports older than this are stale (excluded from coverage).
  /// 0 = two telemetry periods.
  SimTime stale_after = 0;
  /// Entries older than this are evicted entirely. 0 = never evict.
  SimTime evict_after = 0;

  [[nodiscard]] SimTime effective_stale_after() const noexcept {
    return stale_after != 0 ? stale_after : 2 * period;
  }
};

/// The sink's staleness-aware view of network health, assembled purely from
/// in-band reports — no simulator omniscience.
class NetworkHealthModel {
 public:
  explicit NetworkHealthModel(HealthModelConfig config = {})
      : config_(config) {}

  /// Node-id universe for coverage/unseen accounting: ids 1..n are expected
  /// to report (the sink itself never does).
  void set_expected_nodes(std::size_t n) { expected_nodes_ = n; }
  [[nodiscard]] std::size_t expected_nodes() const noexcept {
    return expected_nodes_;
  }

  /// Ingests one piggybacked report delivered at the sink. Freshest-wins:
  /// a report not newer (wrapping seqno) than the stored one is dropped as
  /// an out-of-order straggler. All arrivals count toward byte overhead.
  void on_report(SimTime now, NodeId node, const msg::HealthReport& report);

  struct Entry {
    msg::HealthReport report;
    SimTime updated = 0;        // sink arrival time of the freshest report
    std::uint64_t updates = 0;  // accepted reports from this node
  };
  /// Last accepted state for `node`, or nullptr when never seen / evicted.
  [[nodiscard]] const Entry* entry(NodeId node) const;
  [[nodiscard]] std::size_t tracked() const noexcept { return entries_.size(); }

  /// Drops entries older than `evict_after` (no-op when 0 = never).
  void prune(SimTime now);

  [[nodiscard]] bool is_fresh(SimTime now, NodeId node) const;
  /// Fraction of expected nodes with a fresh (non-stale) report.
  [[nodiscard]] double coverage(SimTime now) const;
  /// Tracked nodes whose report has gone stale, ascending id.
  [[nodiscard]] std::vector<NodeId> stale_nodes(SimTime now) const;
  /// Expected nodes with no tracked report at all, ascending id.
  [[nodiscard]] std::vector<NodeId> unseen_nodes() const;

  struct Stats {
    std::uint64_t reports = 0;        // accepted (freshest) reports
    std::uint64_t stale_dropped = 0;  // out-of-order arrivals ignored
    std::uint64_t bytes = 0;          // piggyback bytes seen at the sink
    std::uint64_t evicted = 0;        // entries aged out by prune()
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const HealthModelConfig& config() const noexcept {
    return config_;
  }

  /// Mirrors the model into `registry` (all `telea_health_*` names are
  /// documented in docs/OBSERVABILITY.md). Collector-style: refreshes on
  /// every call. Runs prune() first so gauges reflect the eviction policy.
  void collect_metrics(MetricsRegistry& registry, SimTime now);

  /// One JSONL line: aggregates plus a per-node array, newest state only.
  /// The input format of `tools/telea_top`.
  [[nodiscard]] std::string render_snapshot_json(SimTime now) const;

 private:
  HealthModelConfig config_;
  std::size_t expected_nodes_ = 0;
  std::map<NodeId, Entry> entries_;  // sorted: deterministic export order
  Stats stats_;
};

}  // namespace telea
