#include "stats/spans.hpp"

#include <algorithm>
#include <cstdio>

#include "stats/metrics.hpp"
#include "stats/summary.hpp"

namespace telea {
namespace {

/// Events that participate in span reconstruction for a given seqno.
bool span_relevant(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kControlTx:
    case TraceEvent::kForwardDecision:
    case TraceEvent::kBacktrack:
    case TraceEvent::kRedirect:
    case TraceEvent::kControlTxDone:
    case TraceEvent::kControlDelivered:
      return true;
    default:
      return false;
  }
}

void append_segment(std::vector<SpanSegment>& segments, SimTime start,
                    SimTime end, SegmentKind kind, NodeId node) {
  if (end <= start) return;
  if (!segments.empty() && segments.back().kind == kind &&
      segments.back().node == node && segments.back().end == start) {
    segments.back().end = end;
    return;
  }
  segments.push_back(SpanSegment{start, end, kind, node, 0});
}

CommandSpan build_one(std::uint32_t seqno,
                      const std::vector<TraceRecord>& events) {
  CommandSpan span;
  span.seqno = seqno;
  span.start = events.front().time;
  span.origin = events.front().node;
  for (const auto& e : events) {
    if (e.event == TraceEvent::kControlTx) {
      // The command properly starts at the origin's first transmission;
      // earlier stray records (possible after partial ring eviction) are
      // kept as the start only when no transmission survived at all.
      span.origin = e.node;
      span.start = e.time;
      break;
    }
  }
  span.end = events.back().time;
  for (const auto& e : events) {
    if (e.event == TraceEvent::kControlDelivered && e.time >= span.start) {
      span.delivered = true;
      span.dest = e.node;
      span.end = e.time;
      break;
    }
  }
  if (span.end < span.start) span.end = span.start;

  // --- segment partition ---------------------------------------------------
  // Walk events in [start, end]; each gap between consecutive events becomes
  // one segment labeled by the carrier's current activity. The gap ending at
  // a claim (or delivery) whose predecessor is another node's transmission is
  // that copy's airtime; everything else inherits the running mode.
  SegmentKind mode = SegmentKind::kLplWait;
  NodeId holder = span.origin;
  const TraceRecord* prev = nullptr;
  for (const auto& e : events) {
    if (e.time < span.start || e.time > span.end) continue;
    if (prev != nullptr) {
      SegmentKind kind = mode;
      NodeId node = holder;
      const bool arrival = e.event == TraceEvent::kForwardDecision ||
                           e.event == TraceEvent::kControlDelivered;
      if (arrival && prev->event == TraceEvent::kControlTx &&
          prev->node != e.node) {
        kind = SegmentKind::kAirtime;
        node = prev->node;
      }
      append_segment(span.segments, prev->time, e.time, kind, node);
    }
    switch (e.event) {
      case TraceEvent::kControlTx:
        holder = e.node;
        mode = SegmentKind::kLplWait;
        break;
      case TraceEvent::kBacktrack:
        mode = SegmentKind::kBacktrack;
        holder = e.node;
        break;
      case TraceEvent::kRedirect:
        mode = SegmentKind::kDetour;
        break;
      default:
        break;
    }
    prev = &e;
  }

  // --- per-segment copy counts --------------------------------------------
  for (auto& seg : span.segments) {
    for (const auto& e : events) {
      if (e.event == TraceEvent::kControlTx && e.time >= seg.start &&
          e.time < seg.end) {
        ++seg.copies;
      }
    }
  }

  // --- hop spans -----------------------------------------------------------
  // Tenure boundaries: the origin's first transmission plus every claim, in
  // timeline order (concurrent opportunistic claims resolve by time).
  std::vector<std::pair<SimTime, NodeId>> starts;
  starts.emplace_back(span.start, span.origin);
  for (const auto& e : events) {
    if (e.event != TraceEvent::kForwardDecision) continue;
    if (e.time < span.start || e.time > span.end) continue;
    if (starts.back().second != e.node) starts.emplace_back(e.time, e.node);
  }
  for (std::size_t i = 0; i < starts.size(); ++i) {
    HopSpan hop;
    hop.node = starts[i].second;
    hop.start = starts[i].first;
    hop.end = i + 1 < starts.size() ? starts[i + 1].first : span.end;
    for (const auto& e : events) {
      if (e.event == TraceEvent::kControlTx && e.node == hop.node &&
          e.time >= hop.start && e.time < hop.end) {
        ++hop.copies;
      }
    }
    span.hops.push_back(hop);
  }
  return span;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

const char* segment_kind_name(SegmentKind k) noexcept {
  switch (k) {
    case SegmentKind::kLplWait: return "lpl_wait";
    case SegmentKind::kAirtime: return "airtime";
    case SegmentKind::kBacktrack: return "backtrack";
    case SegmentKind::kDetour: return "detour";
  }
  return "?";
}

SimTime CommandSpan::segment_total() const noexcept {
  SimTime total = 0;
  for (const auto& s : segments) total += s.end - s.start;
  return total;
}

double CommandSpan::segment_seconds(SegmentKind k) const noexcept {
  SimTime total = 0;
  for (const auto& s : segments) {
    if (s.kind == k) total += s.end - s.start;
  }
  return to_seconds(total);
}

bool CommandSpan::reconciles(SimTime tolerance) const noexcept {
  const SimTime lat = latency();
  const SimTime sum = segment_total();
  const SimTime gap = lat > sum ? lat - sum : sum - lat;
  return gap <= tolerance;
}

SegmentKind CommandSpan::dominant_segment() const noexcept {
  SimTime by_kind[kSegmentKinds] = {};
  for (const auto& s : segments) {
    by_kind[static_cast<std::size_t>(s.kind)] += s.end - s.start;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < kSegmentKinds; ++i) {
    if (by_kind[i] > by_kind[best]) best = i;
  }
  return static_cast<SegmentKind>(best);
}

std::vector<CommandSpan> build_command_spans(
    const std::vector<TraceRecord>& records) {
  std::map<std::uint32_t, std::vector<TraceRecord>> by_seqno;
  for (const auto& r : records) {
    if (!span_relevant(r.event)) continue;
    by_seqno[static_cast<std::uint32_t>(r.a)].push_back(r);
  }
  std::vector<CommandSpan> spans;
  spans.reserve(by_seqno.size());
  for (auto& [seqno, events] : by_seqno) {
    // Stable: simultaneous records keep their causal (insertion) order.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceRecord& x, const TraceRecord& y) {
                       return x.time < y.time;
                     });
    spans.push_back(build_one(seqno, events));
  }
  return spans;
}

std::size_t count_reconcile_failures(const std::vector<CommandSpan>& spans,
                                     SimTime tolerance) {
  std::size_t failures = 0;
  for (const auto& s : spans) {
    if (s.delivered && !s.reconciles(tolerance)) ++failures;
  }
  return failures;
}

CommandEnergy attribute_energy(const CommandSpan& span,
                               const SpanEnergyConfig& cfg) {
  CommandEnergy e;
  const double tx_delta_ma =
      std::max(0.0, cfg.tx_current_ma - cfg.rx_current_ma);
  for (const auto& seg : span.segments) {
    const double dur_s = to_seconds(seg.end - seg.start);
    const double listen_mj = dur_s * cfg.rx_current_ma * cfg.supply_volts;
    const double tx_mj = static_cast<double>(seg.copies) * cfg.copy_airtime_s *
                         tx_delta_ma * cfg.supply_volts;
    e.listen_uj += listen_mj * 1000.0;
    e.tx_uj += tx_mj * 1000.0;
    e.per_node_uj[seg.node] += (listen_mj + tx_mj) * 1000.0;
  }
  e.total_uj = e.listen_uj + e.tx_uj;
  return e;
}

void collect_span_metrics(const std::vector<CommandSpan>& spans,
                          const SpanEnergyConfig& cfg,
                          MetricsRegistry& registry) {
  static const std::vector<double> kLatencyBounds = {
      0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  static const std::vector<double> kEnergyBounds = {
      100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000};
  registry.describe("telea_command_latency_seconds",
                    "End-to-end latency of delivered commands (span engine)");
  registry.describe("telea_command_energy_uj",
                    "Radio energy attributed per delivered command (uJ)");
  registry.describe("telea_command_segment_seconds",
                    "Per-command time in one latency segment kind");
  registry.describe("telea_command_spans_total",
                    "Command spans reconstructed from the trace");
  registry.describe("telea_command_spans_delivered_total",
                    "Command spans that reached their destination");
  registry.describe("telea_span_reconcile_failures_total",
                    "Delivered spans whose segment sums missed e2e latency");
  auto& lat = registry.histogram("telea_command_latency_seconds",
                                 kLatencyBounds);
  auto& energy = registry.histogram("telea_command_energy_uj", kEnergyBounds);
  std::uint64_t delivered = 0;
  for (const auto& span : spans) {
    if (!span.delivered) continue;
    ++delivered;
    lat.observe(to_seconds(span.latency()));
    energy.observe(attribute_energy(span, cfg).total_uj);
    for (std::size_t i = 0; i < kSegmentKinds; ++i) {
      const auto kind = static_cast<SegmentKind>(i);
      registry
          .histogram("telea_command_segment_seconds", kLatencyBounds,
                     {{"segment", segment_kind_name(kind)}})
          .observe(span.segment_seconds(kind));
    }
  }
  registry.counter("telea_command_spans_total").set_total(spans.size());
  registry.counter("telea_command_spans_delivered_total").set_total(delivered);
  registry.counter("telea_span_reconcile_failures_total")
      .set_total(count_reconcile_failures(spans));
}

TextTable render_critical_path_table(const std::vector<CommandSpan>& spans,
                                     const SpanEnergyConfig& cfg) {
  TextTable table({"seqno", "dest", "hops", "latency_s", "lpl_wait_s",
                   "airtime_s", "backtrack_s", "detour_s", "energy_uj",
                   "dominant"});
  for (const auto& span : spans) {
    const CommandEnergy e = attribute_energy(span, cfg);
    table.row({std::to_string(span.seqno),
               span.dest == kInvalidNode ? "?" : std::to_string(span.dest),
               std::to_string(span.hops.size()),
               TextTable::fmt(to_seconds(span.latency()), 6),
               TextTable::fmt(span.segment_seconds(SegmentKind::kLplWait), 6),
               TextTable::fmt(span.segment_seconds(SegmentKind::kAirtime), 6),
               TextTable::fmt(span.segment_seconds(SegmentKind::kBacktrack), 6),
               TextTable::fmt(span.segment_seconds(SegmentKind::kDetour), 6),
               TextTable::fmt(e.total_uj, 1),
               span.delivered ? segment_kind_name(span.dominant_segment())
                              : "(unresolved)"});
  }
  return table;
}

std::string render_report_json(const std::vector<CommandSpan>& spans,
                               const SpanEnergyConfig& cfg,
                               const std::string& name) {
  Cdf latency;
  Cdf energy;
  double seg_totals[kSegmentKinds] = {};
  double span_total_s = 0.0;
  std::size_t delivered = 0;
  for (const auto& span : spans) {
    if (!span.delivered) continue;
    ++delivered;
    latency.add(to_seconds(span.latency()));
    energy.add(attribute_energy(span, cfg).total_uj);
    span_total_s += to_seconds(span.latency());
    for (std::size_t i = 0; i < kSegmentKinds; ++i) {
      seg_totals[i] += span.segment_seconds(static_cast<SegmentKind>(i));
    }
  }

  std::string out = "{\n  \"name\": \"";
  json_escape_into(out, name);
  out += "\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"commands\": %zu,\n  \"delivered\": %zu,\n"
                "  \"reconcile_failures\": %zu,\n",
                spans.size(), delivered, count_reconcile_failures(spans));
  out += buf;
  const auto quantiles = [&](const Cdf& c) {
    char q[192];
    std::snprintf(q, sizeof(q),
                  "{\"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, "
                  "\"max\": %.6f}",
                  c.quantile(0.5), c.quantile(0.9), c.quantile(0.99),
                  c.quantile(1.0));
    return std::string(q);
  };
  out += "  \"latency_s\": " + quantiles(latency) + ",\n";
  out += "  \"energy_uj\": " + quantiles(energy) + ",\n";
  out += "  \"segment_share\": {";
  for (std::size_t i = 0; i < kSegmentKinds; ++i) {
    const double share = span_total_s > 0.0 ? seg_totals[i] / span_total_s : 0.0;
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.4f", i == 0 ? "" : ", ",
                  segment_kind_name(static_cast<SegmentKind>(i)), share);
    out += buf;
  }
  out += "},\n  \"per_command\": [";
  bool first = true;
  for (const auto& span : spans) {
    const CommandEnergy e = attribute_energy(span, cfg);
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"seqno\": %u, \"dest\": %lld, \"hops\": %zu, "
        "\"delivered\": %s, \"reconciled\": %s, \"latency_s\": %.6f, "
        "\"energy_uj\": %.1f, \"dominant\": \"%s\",",
        first ? "" : ",", span.seqno,
        span.dest == kInvalidNode ? -1LL : static_cast<long long>(span.dest),
        span.hops.size(), span.delivered ? "true" : "false",
        span.reconciles() ? "true" : "false", to_seconds(span.latency()),
        e.total_uj, segment_kind_name(span.dominant_segment()));
    out += buf;
    out += " \"segments\": {";
    for (std::size_t i = 0; i < kSegmentKinds; ++i) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6f", i == 0 ? "" : ", ",
                    segment_kind_name(static_cast<SegmentKind>(i)),
                    span.segment_seconds(static_cast<SegmentKind>(i)));
      out += buf;
    }
    out += "}}";
    first = false;
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string render_perfetto_json(const std::vector<CommandSpan>& spans) {
  std::string out = "{\"traceEvents\":[\n";
  char buf[320];
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"nodes\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"commands\"}}";

  std::vector<NodeId> nodes;
  for (const auto& span : spans) {
    for (const auto& hop : span.hops) {
      if (std::find(nodes.begin(), nodes.end(), hop.node) == nodes.end()) {
        nodes.push_back(hop.node);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  for (const NodeId n : nodes) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"node %u\"}}",
                  n, n);
    out += buf;
  }
  for (const auto& span : spans) {
    std::snprintf(buf, sizeof(buf),
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%u,\"args\":{\"name\":\"cmd %u\"}}",
                  span.seqno, span.seqno);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        ",\n{\"name\":\"cmd %u -> node %lld\",\"cat\":\"command\","
        "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u,"
        "\"args\":{\"delivered\":%s,\"hops\":%zu}}",
        span.seqno,
        span.dest == kInvalidNode ? -1LL : static_cast<long long>(span.dest),
        static_cast<unsigned long long>(span.start),
        static_cast<unsigned long long>(span.latency()), span.seqno,
        span.delivered ? "true" : "false", span.hops.size());
    out += buf;
    for (const auto& seg : span.segments) {
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"%s\",\"cat\":\"segment\",\"ph\":\"X\","
                    "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"node\":%u,\"copies\":%u}}",
                    segment_kind_name(seg.kind),
                    static_cast<unsigned long long>(seg.start),
                    static_cast<unsigned long long>(seg.end - seg.start),
                    span.seqno, seg.node, seg.copies);
      out += buf;
    }
    for (const auto& hop : span.hops) {
      std::snprintf(buf, sizeof(buf),
                    ",\n{\"name\":\"relay cmd %u\",\"cat\":\"hop\","
                    "\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu,\"pid\":0,"
                    "\"tid\":%u,\"args\":{\"seqno\":%u,\"copies\":%u}}",
                    span.seqno, static_cast<unsigned long long>(hop.start),
                    static_cast<unsigned long long>(hop.end - hop.start),
                    hop.node, span.seqno, hop.copies);
      out += buf;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace telea
