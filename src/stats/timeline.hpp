#pragma once

// Timeline engine (docs/OBSERVABILITY.md, "Timeline & alerts"): in-sim
// metric time-series with bounded memory, derived windowed signals, and a
// declarative alert-rule pipeline.
//
// End-of-run aggregates average away exactly the transients worth debugging
// (count-to-infinity repair, retry storms under churn, outage-silenced
// origination). The engine samples a MetricsRegistry on a simulated-time
// cadence, stores every sample in fixed-capacity multi-resolution rings
// (raw tier + two downsampled tiers with min/max/sum/count per bucket), and
// evaluates operator-style alert rules — threshold, absence, burn-rate —
// each sample, firing trace events and flight-recorder dumps with node-level
// context. Counters are delta-encoded per interval (with counter-reset
// clamping across state-loss reboots), so a 2-hour soak stays bounded no
// matter how large the underlying totals grow.

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/timer.hpp"
#include "stats/metrics.hpp"
#include "stats/trace.hpp"
#include "util/ids.hpp"

namespace telea {

/// One downsampled bucket: the aggregate of `count` finer-grained points.
struct TimelineBucket {
  SimTime start = 0;  // sim time of the first folded point
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// One raw sample point.
struct TimelinePoint {
  SimTime time = 0;
  double value = 0.0;
};

/// One downsampled tier: every `fold` points of the next-finer tier become
/// one bucket; at most `capacity` buckets are retained (oldest evicted).
struct TimelineTierConfig {
  std::size_t capacity = 0;
  std::size_t fold = 1;
};

struct TimelineConfig {
  /// Sampling cadence in simulated time.
  SimTime interval = 10 * kSecond;
  /// Raw tier ring capacity (samples). 720 x 10 s = 2 h of raw history.
  std::size_t raw_capacity = 720;
  /// Mid tier: fold raw samples 6:1 (1-minute buckets at the default
  /// cadence), keep 4 h of them.
  TimelineTierConfig mid{240, 6};
  /// Coarse tier: fold mid buckets 10:1 (10-minute buckets), keep 2 days.
  TimelineTierConfig coarse{288, 10};
  /// Sliding window (raw samples) for gauge quantiles and rates.
  std::size_t window = 6;
  std::size_t quantile_window = 30;
  /// EWMA smoothing factor in (0,1]: 1 = no smoothing.
  double ewma_alpha = 0.3;
  /// Keep per-le histogram `_bucket{...}` series too. Off by default: the
  /// `_sum`/`_count` samples carry the trend at a fraction of the series
  /// count, and sliding-window quantiles come from gauges.
  bool include_histogram_detail = false;
};

/// One metric sample's series: a raw ring plus two downsampled tiers.
/// Counter (and histogram `_sum`/`_count`) samples are appended as
/// per-interval deltas; gauges as absolute values — so bucket sums are
/// meaningful in both cases (events per bucket vs. value-seconds).
class MetricSeries {
 public:
  MetricSeries(const TimelineConfig& cfg, bool cumulative);

  void append(SimTime t, double value);

  /// True when the underlying sample is cumulative (delta-encoded here).
  [[nodiscard]] bool cumulative() const noexcept { return cumulative_; }
  [[nodiscard]] const std::deque<TimelinePoint>& raw() const noexcept {
    return raw_;
  }
  [[nodiscard]] const std::deque<TimelineBucket>& mid() const noexcept {
    return mid_;
  }
  [[nodiscard]] const std::deque<TimelineBucket>& coarse() const noexcept {
    return coarse_;
  }
  /// Points ever appended (evicted ones included).
  [[nodiscard]] std::uint64_t total_points() const noexcept { return total_; }
  [[nodiscard]] double last() const noexcept {
    return raw_.empty() ? 0.0 : raw_.back().value;
  }
  /// Exponentially weighted moving average over all appended points.
  [[nodiscard]] double ewma() const noexcept { return ewma_; }
  /// Sum of the most recent `n` raw points (for delta-encoded counters:
  /// the event count inside the window).
  [[nodiscard]] double window_sum(std::size_t n) const noexcept;
  /// Per-second rate over the most recent `n` raw points, using the
  /// configured sampling interval. 0 until at least one point exists.
  [[nodiscard]] double window_rate(std::size_t n) const noexcept;
  /// Sliding-window quantile (nearest-rank with interpolation) over the
  /// most recent `quantile_window` raw points. 0 when empty.
  [[nodiscard]] double window_quantile(double q) const noexcept;

 private:
  bool cumulative_;
  std::size_t raw_capacity_;
  TimelineTierConfig mid_cfg_;
  TimelineTierConfig coarse_cfg_;
  std::size_t quantile_window_;
  double ewma_alpha_;
  SimTime interval_;
  std::deque<TimelinePoint> raw_;
  std::deque<TimelineBucket> mid_;
  std::deque<TimelineBucket> coarse_;
  TimelineBucket mid_pending_{};
  TimelineBucket coarse_pending_{};
  std::size_t coarse_folded_ = 0;  // completed mid buckets in coarse_pending_
  double ewma_ = 0.0;
  std::uint64_t total_ = 0;
};

// --- alert rules ------------------------------------------------------------

/// What a rule evaluates each sampling window.
enum class AlertSignal : std::uint8_t {
  kValue,     // value(series): the latest raw sample
  kRate,      // rate(series): per-second rate over the sliding window
  kEwma,      // ewma(series): smoothed value
  kQuantile,  // p50/p90/p99(series): sliding-window quantile
  kAbsent,    // absent(series): series produced no sample this window
  kBurnRate,  // burn_rate(series, budget): rate / budget-per-second
};

enum class AlertOp : std::uint8_t { kGt, kGe, kLt, kLe };

[[nodiscard]] const char* alert_signal_name(AlertSignal s) noexcept;
[[nodiscard]] const char* alert_op_name(AlertOp o) noexcept;

/// One parsed rule. Grammar (one rule per line, `#` comments):
///
///   <name>: <signal>(<series>) <op> <threshold> for <N>
///   <name>: burn_rate(<series>, <budget_per_s>) <op> <mult> for <N>
///   <name>: absent(<series>) for <N>
///
/// signal = value | rate | ewma | p50 | p90 | p99; op = > | >= | < | <=.
/// `for <N>` (default 1) requires the condition to hold for N consecutive
/// sampling windows before the alert fires.
struct AlertRule {
  std::string name;
  std::string series;  // exact sample name, labels included
  AlertSignal signal = AlertSignal::kValue;
  AlertOp op = AlertOp::kGt;
  double threshold = 0.0;
  double quantile = 0.0;      // kQuantile
  double budget_per_s = 0.0;  // kBurnRate denominator
  std::size_t for_windows = 1;
};

struct AlertParseError {
  std::size_t line = 0;  // 1-based
  std::string message;
};

/// Parses a rules file body. Returns nullopt when any line is malformed;
/// every error is reported through `errors` (when non-null) so a typo'd
/// rules file fails loudly instead of silently watching nothing.
[[nodiscard]] std::optional<std::vector<AlertRule>> parse_alert_rules(
    std::string_view text, std::vector<AlertParseError>* errors = nullptr);

/// Loads + parses a rules file; nullopt when unreadable or malformed.
[[nodiscard]] std::optional<std::vector<AlertRule>> load_alert_rules(
    const std::string& path, std::vector<AlertParseError>* errors = nullptr);

/// Renders one rule back to its grammar line (round-trips parse).
[[nodiscard]] std::string render_alert_rule(const AlertRule& rule);

/// Live state of one rule inside the engine.
struct AlertState {
  AlertRule rule;
  std::size_t index = 0;  // position in the loaded rule set (trace `a` field)
  bool active = false;
  std::size_t consecutive = 0;  // windows the condition has held
  std::uint64_t fired = 0;
  std::uint64_t resolved = 0;
  SimTime last_fired = 0;
  SimTime last_resolved = 0;
  double last_signal = 0.0;  // most recent evaluated signal value
};

/// Node a rule's series names through its `node="N"` label, if any.
[[nodiscard]] std::optional<NodeId> series_node_label(std::string_view name);

// --- engine -----------------------------------------------------------------

/// Samples a metric source on a simulated-time cadence into MetricSeries
/// rings, evaluates alert rules each sample, and optionally streams every
/// sample (and alert transition) as JSONL. The source is a collector
/// callback so the engine stays below the harness layer; `Network` wires it
/// to `collect_metrics`.
class TimelineEngine {
 public:
  explicit TimelineEngine(Simulator& sim, TimelineConfig cfg = {});
  TimelineEngine(const TimelineEngine&) = delete;
  TimelineEngine& operator=(const TimelineEngine&) = delete;
  ~TimelineEngine();

  void set_collector(std::function<void(MetricsRegistry&)> collector) {
    collector_ = std::move(collector);
  }
  /// Alert transitions are recorded here as `alert_fired`/`alert_resolved`
  /// trace events (a = rule index, b = node the rule's series labels, or 0).
  void set_tracer(Tracer* tracer) noexcept { tracer_ = tracer; }
  void set_rules(std::vector<AlertRule> rules);
  /// Streams one JSONL line per sample (plus alert-transition lines) to
  /// `path`. The first line is a meta object describing the tier layout so
  /// tools can rebuild the downsampled tiers exactly.
  bool set_jsonl(const std::string& path);

  /// Fired on alert transitions, after the trace event. The NodeId is the
  /// rule's `node="N"` label target, or kInvalidNode for network-wide rules.
  std::function<void(const AlertState&, NodeId)> on_alert_fired;
  std::function<void(const AlertState&, NodeId)> on_alert_resolved;

  /// Arms the periodic sampling timer (tag "timeline"). Idempotent.
  void start();
  void stop();

  /// One sampling pass right now — the timer body, public so harnesses can
  /// flush a final sample at end of run and tests can drive the engine
  /// without a simulator loop.
  void sample_now();

  [[nodiscard]] const TimelineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const MetricSeries* series(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] std::size_t series_count() const noexcept {
    return series_.size();
  }
  [[nodiscard]] const std::vector<AlertState>& alerts() const noexcept {
    return alerts_;
  }
  [[nodiscard]] std::uint64_t samples_taken() const noexcept {
    return samples_;
  }
  /// Negative counter deltas clamped to zero (post-reboot counter resets).
  [[nodiscard]] std::uint64_t counter_resets() const noexcept {
    return counter_resets_;
  }
  [[nodiscard]] std::uint64_t alerts_fired_total() const noexcept;
  [[nodiscard]] std::uint64_t alerts_resolved_total() const noexcept;
  /// Host wall-clock spent inside sample_now() — the soak harness gates
  /// timeline overhead on this (< 5 % of the run's wall-clock).
  [[nodiscard]] double sampling_wall_seconds() const noexcept {
    return wall_seconds_;
  }

  /// Mirrors the engine's own state as `telea_timeline_*` / `telea_alert_*`
  /// metrics (collector-style, like every other subsystem).
  void collect_metrics(MetricsRegistry& registry) const;

 private:
  /// Per-series sampling state kept alongside the rings so the hot path
  /// resolves one map entry per sample, not three (series + previous
  /// absolute + appeared-this-sample used to live in separate maps).
  struct SeriesEntry {
    MetricSeries series;
    std::string json_key;        // `"escaped-name":` — built once, reused
    double prev_absolute = 0.0;  // last absolute cumulative value seen
    std::uint64_t last_sample = 0;  // 1-based sample number of last append

    SeriesEntry(const TimelineConfig& cfg, bool cumulative,
                const std::string& name);
  };

  void evaluate_alerts(SimTime now);
  [[nodiscard]] double eval_signal(const AlertRule& rule,
                                   const MetricSeries* s) const;
  [[nodiscard]] const SeriesEntry* entry(std::string_view name) const;
  void write_meta_line();
  void append_jsonl(const std::string& line);

  Simulator* sim_;
  TimelineConfig cfg_;
  Timer timer_;
  std::function<void(MetricsRegistry&)> collector_;
  Tracer* tracer_ = nullptr;
  MetricsRegistry scratch_;  // refreshed by the collector each sample
  std::map<std::string, SeriesEntry, std::less<>> series_;
  std::vector<AlertState> alerts_;
  std::FILE* jsonl_ = nullptr;
  std::string jsonl_path_;
  std::size_t jsonl_line_hint_ = 256;  // reserve size for the next line
  bool meta_written_ = false;
  std::uint64_t samples_ = 0;
  std::uint64_t counter_resets_ = 0;
  double wall_seconds_ = 0.0;
};

}  // namespace telea
