#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace telea {

/// Label set attached to a metric instance (e.g. {{"node","3"},{"sub","lpl"}}).
/// Kept sorted by key so the identity of a (name, labels) pair is canonical.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter. `set_total` exists for collector-style use where a
/// component keeps its own cumulative tally and the registry mirrors it.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  void set_total(std::uint64_t total) noexcept { value_ = total; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double delta) noexcept { value_ += delta; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram (Prometheus semantics: cumulative bucket counts,
/// an implicit +Inf bucket, plus sum and count).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;
  /// Zeroes all counts (for collector-style re-population each scrape).
  void reset() noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) observation counts; size = bounds+1, the
  /// last slot is the overflow (+Inf) bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts()
      const noexcept {
    return counts_;
  }
  /// Cumulative count of observations <= bounds()[i].
  [[nodiscard]] std::uint64_t cumulative(std::size_t i) const noexcept;
  /// Estimated value at quantile q in [0,1] (Prometheus histogram_quantile
  /// semantics: linear interpolation inside the bucket holding the rank;
  /// ranks landing in the +Inf bucket clamp to the highest finite bound).
  /// Returns 0 when the histogram is empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::vector<double> bounds_;          // strictly increasing
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 (last = +Inf)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Flattened sample map: one entry per exported Prometheus sample
/// ("name{labels}" or "name_bucket{...,le=\"x\"}" / "_sum" / "_count").
/// This is the snapshot/diff currency — plain data, cheap to copy and compare.
using MetricsSnapshot = std::map<std::string, double>;

/// Flattened-sample semantics, for consumers that must treat cumulative
/// samples differently from instantaneous ones (the timeline engine
/// delta-encodes counters but stores gauges as-is). Histogram samples are
/// all cumulative (`_bucket`/`_sum`/`_count` only ever grow).
enum class SampleKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// A named registry of counters, gauges and histograms. Metric instances are
/// identified by (name, labels); lookups return stable references (instances
/// live as long as the registry), so hot paths can resolve once and hold the
/// pointer. Single-threaded, like everything else in the simulator.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const MetricLabels& labels = {});
  Gauge& gauge(const std::string& name, const MetricLabels& labels = {});
  /// `upper_bounds` is only consulted on first creation of the instance.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds,
                       const MetricLabels& labels = {});

  /// Optional one-line help text rendered as "# HELP" in Prometheus output.
  void describe(const std::string& name, std::string help);

  /// Live (visible) instrument count — see clear().
  [[nodiscard]] std::size_t size() const noexcept { return live_; }
  /// Logically empties the registry while retaining instrument storage:
  /// existing instances become invisible to size()/snapshot()/visit/render
  /// until the next counter()/gauge()/histogram() lookup, which resets them
  /// to pristine values. Collector-style scrape loops (the timeline engine
  /// clears and re-collects every sample) therefore pay no re-allocation
  /// after the first pass, and "absent this pass" stays observable.
  void clear() noexcept {
    ++epoch_;
    live_ = 0;
  }

  /// Prometheus text exposition format (deterministic ordering).
  [[nodiscard]] std::string render_prometheus() const;
  /// JSON export: {"metrics":[{name,labels,type,...}]}. Parseable by
  /// JsonValue::parse — the unit tests round-trip it.
  [[nodiscard]] std::string render_json() const;
  bool write_prometheus(const std::string& path) const;
  bool write_json(const std::string& path) const;

  /// Current values flattened to Prometheus sample granularity.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Delta since `older`: counter and histogram samples are subtracted
  /// (absent-in-older counts as 0) with negative deltas clamped to 0 — a
  /// cumulative sample can only shrink when its owner reset (state-loss
  /// reboot re-registering a collector), and reporting the reset as a huge
  /// negative rate is strictly worse than reporting no progress. Gauge
  /// samples pass through at their current value.
  [[nodiscard]] MetricsSnapshot diff(const MetricsSnapshot& older) const;

  /// Visits every flattened sample with its kind — snapshot() plus the
  /// counter/gauge distinction snapshot's plain map erases.
  void visit_samples(
      const std::function<void(const std::string&, double, SampleKind)>& fn)
      const;

 private:
  using Kind = SampleKind;

  struct Metric {
    std::string name;
    MetricLabels labels;
    Kind kind;
    std::uint64_t touched = 0;  // epoch of the last lookup; stale = invisible
    /// Flattened sample names, built lazily on first flatten and reused —
    /// identity is immutable, and scrape loops re-flatten every pass.
    /// Counter/gauge: one entry. Histogram: buckets..., +Inf, _sum, _count.
    mutable std::vector<std::string> flat;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& upsert(const std::string& name, const MetricLabels& labels,
                 Kind kind);
  /// True when the instance is visible (touched in the current epoch).
  [[nodiscard]] bool live(const Metric& m) const noexcept {
    return m.touched == epoch_;
  }
  /// "name{a="x",b="y"}" with `extra` appended inside the braces.
  static std::string sample_name(const Metric& m, const std::string& suffix,
                                 const std::string& extra = {});
  void flatten(
      const Metric& m,
      const std::function<void(const std::string&, double, Kind)>& emit) const;

  std::map<std::string, Metric, std::less<>> metrics_;  // key -> instance
  std::map<std::string, std::string> help_;
  std::string key_buf_;       // reused instance-key scratch (hot-path lookups)
  std::uint64_t epoch_ = 0;   // bumped by clear()
  std::size_t live_ = 0;      // instruments touched in the current epoch
};

}  // namespace telea
