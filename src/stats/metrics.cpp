#include "stats/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string_view>

#include "util/json.hpp"

namespace telea {

namespace {

/// %g-style shortest faithful rendering; Prometheus and JSON share it.
std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips.
  char shorter[64];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == v) {
    return shorter;
  }
  return buf;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

void Histogram::reset() noexcept {
  counts_.assign(counts_.size(), 0);
  count_ = 0;
  sum_ = 0.0;
}

std::uint64_t Histogram::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i && b < counts_.size(); ++b) {
    total += counts_[b];
  }
  return total;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Degenerate cases where interpolation has nothing to interpolate: a
  // single sample (p50 of one observe(7) on bounds {0,100} used to come out
  // 50, a value never observed — the sample itself is the exact answer for
  // every q), and a histogram with no finite bucket (everything lands in
  // +Inf, which used to report 0).
  if (count_ == 1 || bounds_.empty()) {
    return sum_ / static_cast<double>(count_);
  }
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket = counts_[i];
    if (static_cast<double>(cum + in_bucket) >= rank && in_bucket > 0) {
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double into =
          (rank - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cum += in_bucket;
  }
  // Rank fell in the +Inf overflow bucket: the best bounded answer.
  return bounds_.empty() ? 0.0 : bounds_.back();
}

MetricsRegistry::Metric& MetricsRegistry::upsert(const std::string& name,
                                                 const MetricLabels& labels,
                                                 Kind kind) {
  // Callers overwhelmingly pass already-sorted label sets; only copy when
  // they do not. The key is built into a reused buffer so the steady-state
  // lookup (collector loops re-resolving every scrape) allocates nothing.
  MetricLabels sorted;
  const MetricLabels* use = &labels;
  if (!std::is_sorted(labels.begin(), labels.end())) {
    sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    use = &sorted;
  }
  key_buf_.clear();
  key_buf_ += name;
  key_buf_.push_back('\x1f');
  for (const auto& [k, v] : *use) {
    key_buf_ += k;
    key_buf_.push_back('=');
    key_buf_ += v;
    key_buf_.push_back('\x1f');
  }
  auto it = metrics_.find(std::string_view(key_buf_));
  if (it == metrics_.end()) {
    Metric m;
    m.name = name;
    m.labels = *use;
    m.kind = kind;
    m.touched = epoch_;
    ++live_;
    return metrics_.emplace(key_buf_, std::move(m)).first->second;
  }
  Metric& m = it->second;
  if (!live(m)) {
    // First touch since clear(): same identity, pristine values.
    m.touched = epoch_;
    ++live_;
    if (m.counter) m.counter->set_total(0);
    if (m.gauge) m.gauge->set(0.0);
    if (m.histogram) m.histogram->reset();
  }
  return m;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const MetricLabels& labels) {
  Metric& m = upsert(name, labels, Kind::kCounter);
  if (m.counter == nullptr) m.counter = std::make_unique<Counter>();
  return *m.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const MetricLabels& labels) {
  Metric& m = upsert(name, labels, Kind::kGauge);
  if (m.gauge == nullptr) m.gauge = std::make_unique<Gauge>();
  return *m.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& upper_bounds,
                                      const MetricLabels& labels) {
  Metric& m = upsert(name, labels, Kind::kHistogram);
  if (m.histogram == nullptr) {
    m.histogram = std::make_unique<Histogram>(upper_bounds);
  }
  return *m.histogram;
}

void MetricsRegistry::describe(const std::string& name, std::string help) {
  help_[name] = std::move(help);
}

std::string MetricsRegistry::sample_name(const Metric& m,
                                         const std::string& suffix,
                                         const std::string& extra) {
  std::string out = m.name + suffix;
  if (m.labels.empty() && extra.empty()) return out;
  out.push_back('{');
  bool first = true;
  for (const auto& [k, v] : m.labels) {
    if (!first) out.push_back(',');
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += "\"";
  }
  if (!extra.empty()) {
    if (!first) out.push_back(',');
    out += extra;
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::flatten(
    const Metric& m,
    const std::function<void(const std::string&, double, Kind)>& emit) const {
  if (m.flat.empty()) {
    // Sample identities never change once the instrument exists; build the
    // strings once so scrape loops (the timeline engine re-flattens every
    // sample) pay no per-pass formatting.
    switch (m.kind) {
      case Kind::kCounter:
      case Kind::kGauge:
        m.flat.push_back(sample_name(m, ""));
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        for (const double bound : h.bounds()) {
          m.flat.push_back(
              sample_name(m, "_bucket", "le=\"" + fmt_double(bound) + "\""));
        }
        m.flat.push_back(sample_name(m, "_bucket", "le=\"+Inf\""));
        m.flat.push_back(sample_name(m, "_sum"));
        m.flat.push_back(sample_name(m, "_count"));
        break;
      }
    }
  }
  switch (m.kind) {
    case Kind::kCounter:
      emit(m.flat[0], static_cast<double>(m.counter->value()), Kind::kCounter);
      break;
    case Kind::kGauge:
      emit(m.flat[0], m.gauge->value(), Kind::kGauge);
      break;
    case Kind::kHistogram: {
      const Histogram& h = *m.histogram;
      const std::size_t buckets = h.bounds().size();
      for (std::size_t i = 0; i < buckets; ++i) {
        emit(m.flat[i], static_cast<double>(h.cumulative(i)),
             Kind::kHistogram);
      }
      emit(m.flat[buckets], static_cast<double>(h.count()), Kind::kHistogram);
      emit(m.flat[buckets + 1], h.sum(), Kind::kHistogram);
      emit(m.flat[buckets + 2], static_cast<double>(h.count()),
           Kind::kHistogram);
      break;
    }
  }
}

std::string MetricsRegistry::render_prometheus() const {
  std::string out;
  std::string last_name;
  for (const auto& [key, m] : metrics_) {
    (void)key;
    if (!live(m)) continue;
    if (m.name != last_name) {
      last_name = m.name;
      const auto help = help_.find(m.name);
      if (help != help_.end()) {
        out += "# HELP " + m.name + " " + help->second + "\n";
      }
      out += "# TYPE " + m.name + " ";
      switch (m.kind) {
        case Kind::kCounter: out += "counter"; break;
        case Kind::kGauge: out += "gauge"; break;
        case Kind::kHistogram: out += "histogram"; break;
      }
      out += "\n";
    }
    flatten(m, [&out](const std::string& name, double value, Kind) {
      out += name;
      out.push_back(' ');
      out += fmt_double(value);
      out.push_back('\n');
    });
  }
  return out;
}

std::string MetricsRegistry::render_json() const {
  std::string out = "{\"metrics\":[";
  bool first_metric = true;
  for (const auto& [key, m] : metrics_) {
    (void)key;
    if (!live(m)) continue;
    if (!first_metric) out.push_back(',');
    first_metric = false;
    out += "{\"name\":\"" + JsonValue::escape(m.name) + "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : m.labels) {
      if (!first_label) out.push_back(',');
      first_label = false;
      out += "\"" + JsonValue::escape(k) + "\":\"" + JsonValue::escape(v) + "\"";
    }
    out += "},\"type\":\"";
    switch (m.kind) {
      case Kind::kCounter:
        out += "counter\",\"value\":" +
               fmt_double(static_cast<double>(m.counter->value()));
        break;
      case Kind::kGauge:
        out += "gauge\",\"value\":" + fmt_double(m.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *m.histogram;
        out += "histogram\",\"buckets\":[";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) out.push_back(',');
          out += "{\"le\":" + fmt_double(h.bounds()[i]) + ",\"count\":" +
                 fmt_double(static_cast<double>(h.bucket_counts()[i])) + "}";
        }
        out += "],\"overflow\":" +
               fmt_double(static_cast<double>(h.bucket_counts().back())) +
               ",\"sum\":" + fmt_double(h.sum()) +
               ",\"count\":" + fmt_double(static_cast<double>(h.count()));
        break;
      }
    }
    out += "}";
  }
  out += "]}";
  return out;
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  return write_file(path, render_prometheus());
}

bool MetricsRegistry::write_json(const std::string& path) const {
  return write_file(path, render_json());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [key, m] : metrics_) {
    (void)key;
    if (!live(m)) continue;
    flatten(m, [&snap](const std::string& name, double value, Kind) {
      snap.emplace(name, value);
    });
  }
  return snap;
}

MetricsSnapshot MetricsRegistry::diff(const MetricsSnapshot& older) const {
  MetricsSnapshot out;
  for (const auto& [key, m] : metrics_) {
    (void)key;
    if (!live(m)) continue;
    flatten(m,
            [&out, &older](const std::string& name, double value, Kind kind) {
              if (kind != Kind::kGauge) {
                const auto it = older.find(name);
                if (it != older.end()) {
                  value = std::max(0.0, value - it->second);
                }
              }
              out.emplace(name, value);
            });
  }
  return out;
}

void MetricsRegistry::visit_samples(
    const std::function<void(const std::string&, double, SampleKind)>& fn)
    const {
  for (const auto& [key, m] : metrics_) {
    (void)key;
    if (!live(m)) continue;
    flatten(m, fn);
  }
}

}  // namespace telea
