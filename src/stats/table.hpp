#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace telea {

/// Fixed-width text table renderer for the benchmark binaries: prints the
/// same rows/series the paper's tables and figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  TextTable& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Renders with column widths fitted to content.
  [[nodiscard]] std::string render() const;

  void print() const { std::fputs(render().c_str(), stdout); }

  /// RFC-4180-style CSV rendering (quotes fields containing separators).
  [[nodiscard]] std::string render_csv() const;

  /// Writes the CSV rendering to `path`. Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Machine-readable JSON: {"name":...,"headers":[...],"rows":[{header:
  /// cell}...]}. Cells that parse fully as numbers (including "12.3%", which
  /// becomes the fraction 0.123) are emitted as JSON numbers; everything else
  /// stays a string. Parseable by JsonValue::parse.
  [[nodiscard]] std::string render_json(const std::string& name) const;

  /// Writes the JSON rendering to `path`. Returns false on I/O failure.
  bool write_json(const std::string& name, const std::string& path) const;

  static std::string fmt(double v, int decimals = 2);
  static std::string fmt_pct(double fraction, int decimals = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// One-line ASCII sparkline of `values` (oldest first), min-max normalized
/// onto a single-byte character ramp — single-byte so it stays aligned as a
/// TextTable cell. At most `width` points are drawn (the newest); a flat
/// series renders as a run of '-', empty input as "".
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    std::size_t width = 32);

}  // namespace telea
